"""Extension bench: fault-injection coverage + adaptive recovery."""

from conftest import run_once

from repro.experiments import ext_faults


def test_ext_faults(benchmark, ctx):
    result = run_once(
        benchmark, ext_faults.run, ctx, num_sites=52, num_patterns=600,
    )
    # Razor is a *timing* monitor: delay hot-spots are fully covered,
    # while stuck-at corruption mostly latches cleanly before the main
    # edge (silent data corruption).
    assert result.coverage("delay") == 1.0
    assert result.coverage("stuck-at-0") < 0.5
    # The delay hot-spot elevates the error rate past the indicator
    # threshold: the AHL switches to Skip-(n+1) and sheds errors the
    # traditional design keeps taking.
    hotspot = result.hotspot
    assert hotspot.errors["traditional"] > hotspot.pristine_errors
    assert hotspot.adaptive_aged_at >= 0
    assert hotspot.errors["adaptive"] < hotspot.errors["traditional"]
    print()
    print(result.render())
