"""Fig. 5 bench: 16x16 path-delay distributions (AM / CB / RB)."""

from conftest import run_once

from repro.experiments import fig05_delay_distribution


def test_fig05_delay_distribution(benchmark, ctx):
    result = run_once(benchmark, fig05_delay_distribution.run, ctx)
    # Paper: max delays 1.32 / 1.88 / 1.82 ns; bulk of paths far below.
    assert abs(result.critical_ns["am"] - 1.32) < 0.01
    assert result.critical_ns["column"] > result.critical_ns["am"]
    assert result.fraction_below["am"] > 0.9
    print()
    print(result.render())
