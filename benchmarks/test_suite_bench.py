"""Parallel suite scheduler + persistent artifact store benchmarks.

Three timed configurations of the full 27-experiment suite at bench
scale, all through :func:`repro.experiments.run_suite`:

* **serial cold** -- ``jobs=1``, no store: the pre-scheduler baseline
  (every invocation recomputes everything in one process);
* **parallel cold** -- ``jobs=4`` over a fresh shared store: the
  two-stage schedule (warm-up characterizes each design once, then the
  experiments fan out over a process pool);
* **warm store** -- ``jobs=1`` re-run against the now-populated store:
  netlists, stress profiles, stream results and value planes all load
  from disk, so almost no simulation runs.

Byte-identity of the rendered outputs is asserted across all three
before any timing claim is recorded in
``benchmarks/results/BENCH_suite.json``.  Gates:

* warm re-run >= ``MIN_SPEEDUP_WARM`` x faster than serial cold
  (asserted always -- it is single-process and machine-independent);
* parallel cold >= ``MIN_SPEEDUP_JOBS`` x faster than serial cold,
  asserted only on machines with >= 4 CPUs (process fan-out cannot beat
  serial on a single core; the recorded numbers tell the story either
  way).
"""

import json
import os
import time

from repro.experiments import ArtifactStore, run_suite

RESULTS = os.path.join(os.path.dirname(__file__), "results")
#: Pattern-count multiplier for the suite runs (full registry, so the
#: bench stays in CI-friendly wall-clock).
SUITE_SCALE = 0.02
JOBS = 4
MIN_SPEEDUP_WARM = 5.0
MIN_SPEEDUP_JOBS = 2.0

_RECORD = {}


def test_suite_store_and_jobs_speedup(benchmark, tmp_path):
    store_dir = str(tmp_path / "store")
    cpus = os.cpu_count() or 1
    timings = {}

    t0 = time.perf_counter()
    serial = run_suite(scale=SUITE_SCALE)
    timings["serial"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = run_suite(
        scale=SUITE_SCALE, jobs=JOBS, store=ArtifactStore(store_dir)
    )
    timings["parallel"] = time.perf_counter() - t0

    def warm_run():
        t0 = time.perf_counter()
        out = run_suite(scale=SUITE_SCALE, store=ArtifactStore(store_dir))
        timings["warm"] = time.perf_counter() - t0
        return out

    warm = benchmark.pedantic(warm_run, rounds=1, iterations=1)

    # Byte-identity gates come before any timing claim.  ext_faults
    # reports how many checkpointed sites it *resumed* vs simulated --
    # operationally interesting, numerically irrelevant -- so the warm
    # run is compared modulo that one accounting line.
    serial_rendered = serial.rendered_by_name()
    assert parallel.rendered_by_name() == serial_rendered
    warm_rendered = warm.rendered_by_name()
    assert set(warm_rendered) == set(serial_rendered)
    for name in serial_rendered:
        want, got = serial_rendered[name], warm_rendered[name]
        if name == "ext_faults":
            drop = lambda text: [
                line
                for line in text.splitlines()
                if not line.startswith("pruned ")
            ]
            want, got = drop(want), drop(got)
        assert got == want, "%s differs from the serial run" % name

    warm_speedup = timings["serial"] / timings["warm"]
    jobs_speedup = timings["serial"] / timings["parallel"]
    warm_totals = {"hits": 0, "misses": 0, "writes": 0}
    for stats in warm.store_counters.values():
        for key in warm_totals:
            warm_totals[key] += stats.get(key, 0)

    _RECORD["suite"] = {
        "experiment": "full %d-experiment suite, scale %.2f"
        % (len(serial.entries), SUITE_SCALE),
        "cpu_count": cpus,
        "jobs": JOBS,
        "rendered_identical": True,
        "serial_cold_seconds": round(timings["serial"], 3),
        "parallel_cold_seconds": round(timings["parallel"], 3),
        "warm_store_seconds": round(timings["warm"], 3),
        "jobs_speedup": round(jobs_speedup, 2),
        "warm_speedup": round(warm_speedup, 2),
        "warm_store_hits": warm_totals["hits"],
        "warm_store_misses": warm_totals["misses"],
    }
    _flush()
    print()
    print(
        "suite: serial %.2fs | jobs=%d %.2fs (%.2fx) | warm %.2fs (%.2fx)"
        " on %d cpu(s)"
        % (
            timings["serial"],
            JOBS,
            timings["parallel"],
            jobs_speedup,
            timings["warm"],
            warm_speedup,
            cpus,
        )
    )

    assert warm_totals["hits"] > 0, "warm run never touched the store"
    assert warm_totals["writes"] == 0, "warm run recomputed artifacts"
    assert warm_speedup >= MIN_SPEEDUP_WARM, (
        "warm-store re-run only %.2fx faster than serial cold"
        % warm_speedup
    )
    if cpus >= 4:
        assert jobs_speedup >= MIN_SPEEDUP_JOBS, (
            "jobs=%d only %.2fx faster than serial on %d cpus"
            % (JOBS, jobs_speedup, cpus)
        )


def _flush():
    os.makedirs(RESULTS, exist_ok=True)
    with open(os.path.join(RESULTS, "BENCH_suite.json"), "w") as fh:
        json.dump(_RECORD, fh, indent=2, sort_keys=True)
        fh.write("\n")
