"""Fig. 6 bench: CB delay distribution vs multiplicand zero count."""

from conftest import run_once

from repro.experiments import fig06_zeros_vs_delay


def test_fig06_zeros_vs_delay(benchmark, ctx):
    result = run_once(benchmark, fig06_zeros_vs_delay.run, ctx)
    # Paper: more zeros => left-shifted distribution, lower mean.
    assert result.monotone_decreasing
    print()
    print(result.render())
