"""Extension bench: application-shaped workloads (FIR / DCT / image)."""

from conftest import run_once

from repro.experiments import ext_workloads


def test_ext_workloads(benchmark, ctx):
    result = run_once(benchmark, ext_workloads.run, ctx, num_patterns=1500)
    assert all(row.products_exact for row in result.rows.values())
    assert (
        result.rows["fir"].one_cycle_potential
        > result.rows["uniform"].one_cycle_potential
    )
    print()
    print(result.render())
