"""Fig. 14 bench: 32x32 latency vs cycle period, all skips and kinds."""

from conftest import run_once

from repro.experiments import fig13_14_latency_sweep


def test_fig14_latency_sweep_32(benchmark, ctx):
    result = run_once(
        benchmark, fig13_14_latency_sweep.run_fig14, ctx, num_patterns=600
    )
    # Paper: larger multipliers gain even more from variable latency
    # (A-VLCB up to ~47% over the FLCB at 32x32).
    assert result.improvement_vs("column", 15, "flcb") > 0.3
    assert result.improvement_vs("column", 15, "am") > 0.0
    print()
    print(result.render())
