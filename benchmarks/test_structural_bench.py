"""Bench: gate-level structural validation of the architecture.

Times the structural (netlist-AHL, per-bit Razor) closed-loop run and
asserts cycle-for-cycle equivalence with the behavioral model -- the
reproduction's end-to-end consistency proof at benchmark scale.
"""

from conftest import run_once

from repro.core.structural import validate_against_behavioral


def test_structural_equivalence_16(benchmark, ctx):
    arch = ctx.variable_design(16, "column", 7, 0.8)
    md, mr = ctx.stream(16, 1000)

    validation = run_once(
        benchmark, validate_against_behavioral, arch, md, mr, 7.0
    )
    assert validation.ok, validation.mismatched_ops[:10]


def test_structural_equivalence_row(benchmark, ctx):
    arch = ctx.variable_design(16, "row", 7, 0.7)
    md, mr = ctx.stream(16, 1000)
    validation = run_once(
        benchmark, validate_against_behavioral, arch, md, mr, 0.0
    )
    assert validation.ok
