"""Benchmark trend gate: diff fresh results against committed baselines.

The bench harnesses write machine-readable artifacts to
``benchmarks/results/BENCH_*.json``; this script compares them against
the committed reference copies in ``benchmarks/baselines/`` and exits
non-zero when a tracked metric regressed, so CI can gate on performance
drift without eyeballing tables.

Metric classification (by key suffix, applied recursively through
nested dicts):

* ``*speedup`` / ``*_factor`` / ``*_per_sec`` -- higher is better.
  These are ratios or rates whose *relative* change is meaningful even
  across somewhat different machines; they are the default gate set.
* ``*seconds`` -- lower is better, but raw wall-clock is only
  comparable on one machine class, so seconds participate only with
  ``--include-seconds`` (off in CI, useful locally).
* everything else (counts, flags, labels) -- reported only when it
  changed shape, never gated.

A metric present in the baseline but missing from the fresh results
(or vice versa) is reported as schema drift and fails the gate --
silently dropped coverage must not read as "no regressions".

Usage::

    python benchmarks/trend.py                 # gate vs baselines
    python benchmarks/trend.py --max-regression 0.5
    python benchmarks/trend.py --update        # bless current results
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
from typing import Dict, Iterator, List, Tuple

HERE = os.path.dirname(os.path.abspath(__file__))
RESULTS_DIR = os.path.join(HERE, "results")
BASELINES_DIR = os.path.join(HERE, "baselines")

#: Key suffixes of gated higher-is-better metrics.
HIGHER_IS_BETTER = ("speedup", "_factor", "_per_sec")
#: Key suffix of (optionally gated) lower-is-better metrics.
LOWER_IS_BETTER = ("seconds",)


def _flatten(payload, prefix="") -> Iterator[Tuple[str, object]]:
    if isinstance(payload, dict):
        for key in sorted(payload):
            yield from _flatten(payload[key], "%s%s." % (prefix, key))
    else:
        yield prefix[:-1] if prefix.endswith(".") else prefix, payload


def _classify(path: str) -> str:
    leaf = path.rsplit(".", 1)[-1]
    if any(leaf.endswith(suffix) for suffix in HIGHER_IS_BETTER):
        return "higher"
    if any(leaf.endswith(suffix) for suffix in LOWER_IS_BETTER):
        return "lower"
    return "ignore"


def compare_file(
    baseline: Dict,
    current: Dict,
    max_regression: float,
    include_seconds: bool,
) -> Tuple[List[str], List[str]]:
    """Returns (regressions, notes) for one results file pair."""
    base = dict(_flatten(baseline))
    cur = dict(_flatten(current))
    regressions: List[str] = []
    notes: List[str] = []
    for path in sorted(set(base) | set(cur)):
        kind = _classify(path)
        if kind == "ignore":
            continue
        if kind == "lower" and not include_seconds:
            continue
        if path not in cur:
            regressions.append("metric disappeared: %s" % path)
            continue
        if path not in base:
            notes.append("new metric (not in baseline): %s" % path)
            continue
        old, new = base[path], cur[path]
        if not isinstance(old, (int, float)) or not isinstance(
            new, (int, float)
        ):
            continue
        if old <= 0:
            continue
        change = (new - old) / old
        if kind == "higher" and change < -max_regression:
            regressions.append(
                "%s: %.4g -> %.4g (%.0f%% worse)"
                % (path, old, new, -100 * change)
            )
        elif kind == "lower" and change > max_regression:
            regressions.append(
                "%s: %.4g -> %.4g (%.0f%% slower)"
                % (path, old, new, 100 * change)
            )
    return regressions, notes


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Gate benchmark results against committed baselines."
    )
    parser.add_argument(
        "--results", default=RESULTS_DIR,
        help="fresh results directory (default benchmarks/results)",
    )
    parser.add_argument(
        "--baselines", default=BASELINES_DIR,
        help="reference directory (default benchmarks/baselines)",
    )
    parser.add_argument(
        "--max-regression", type=float, default=0.3, metavar="FRAC",
        help="tolerated fractional drop per metric (default 0.3)",
    )
    parser.add_argument(
        "--include-seconds", action="store_true",
        help="also gate raw *_seconds metrics (same-machine runs only)",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="copy current results over the baselines and exit",
    )
    args = parser.parse_args(argv)

    if args.update:
        os.makedirs(args.baselines, exist_ok=True)
        copied = 0
        for name in sorted(os.listdir(args.results)):
            if name.endswith(".json"):
                shutil.copyfile(
                    os.path.join(args.results, name),
                    os.path.join(args.baselines, name),
                )
                copied += 1
                print("blessed %s" % name)
        print("updated %d baseline(s) in %s" % (copied, args.baselines))
        return 0

    if not os.path.isdir(args.baselines):
        print(
            "no baselines directory %s (run with --update to create)"
            % args.baselines,
            file=sys.stderr,
        )
        return 2

    failed = False
    checked = 0
    for name in sorted(os.listdir(args.baselines)):
        if not name.endswith(".json"):
            continue
        current_path = os.path.join(args.results, name)
        if not os.path.exists(current_path):
            # Only gate artifacts the current run produced: CI bench
            # jobs run one harness at a time, each writing one file.
            print("%-26s skipped (no fresh results)" % name)
            continue
        with open(os.path.join(args.baselines, name)) as fh:
            baseline = json.load(fh)
        with open(current_path) as fh:
            current = json.load(fh)
        regressions, notes = compare_file(
            baseline, current, args.max_regression, args.include_seconds
        )
        checked += 1
        status = "OK" if not regressions else "REGRESSED"
        print("%-26s %s" % (name, status))
        for note in notes:
            print("    note: %s" % note)
        for regression in regressions:
            print("    FAIL: %s" % regression)
            failed = True
    if checked == 0:
        print("nothing to compare (no overlapping result files)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
