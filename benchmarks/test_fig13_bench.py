"""Fig. 13 bench: 16x16 latency vs cycle period, all skips and kinds."""

from conftest import run_once

from repro.experiments import fig13_14_latency_sweep


def test_fig13_latency_sweep_16(benchmark, ctx):
    result = run_once(benchmark, fig13_14_latency_sweep.run_fig13, ctx)
    # Paper headline: A-VLCB up to ~37% faster than the FLCB and ~11%
    # faster than the AM at its preferred cycle period.
    assert result.improvement_vs("column", 7, "flcb") > 0.25
    assert result.improvement_vs("column", 7, "am") > 0.0
    assert result.improvement_vs("row", 7, "flrb") > 0.25
    print()
    print(result.render())
