"""Extension bench: the VL-Adder lineage with adaptive hold logic."""

from conftest import run_once

from repro.experiments import ext_vladder


def test_ext_vladder(benchmark, ctx):
    result = run_once(benchmark, ext_vladder.run, ctx, num_patterns=2000)
    # Fixed adder tracks the critical-path drift; the VL adder is flat.
    assert result.growth("fixed") > 0.10
    assert result.growth("a-vl") < 0.03
    # Adaptation never increases the tight-clock error count.
    assert result.adaptive_never_worse()
    print()
    print(result.render())
