"""Ablation bench: stream-engine throughput and delay-mode cost.

Measures raw simulator speed (patterns/second through the 16x16
column-bypassing multiplier) and compares the two delay semantics --
the floating-mode bound must never fall below the inertial estimate.
"""

import numpy as np

from repro.timing import CompiledCircuit
from repro.workloads import uniform_operands

PATTERNS = 2000


def test_engine_throughput_inertial(benchmark, ctx):
    circuit = ctx.factory(16, "column").circuit(0.0)
    md, mr = uniform_operands(16, PATTERNS, seed=1)
    result = benchmark.pedantic(
        circuit.run, args=({"md": md, "mr": mr},), rounds=2, iterations=1
    )
    assert result.num_patterns == PATTERNS


def test_engine_throughput_floating(benchmark, ctx):
    netlist = ctx.netlist(16, "column")
    circuit = CompiledCircuit(netlist, ctx.technology, mode="floating")
    md, mr = uniform_operands(16, PATTERNS, seed=1)
    floating = benchmark.pedantic(
        circuit.run, args=({"md": md, "mr": mr},), rounds=2, iterations=1
    )
    inertial = ctx.factory(16, "column").circuit(0.0).run(
        {"md": md, "mr": mr}
    )
    assert np.all(inertial.delays <= floating.delays + 1e-9)


def test_engine_chunked_memory_mode(benchmark, ctx):
    """Chunked processing returns identical results (bounded memory)."""
    circuit = ctx.factory(16, "column").circuit(0.0)
    md, mr = uniform_operands(16, PATTERNS, seed=2)
    whole = circuit.run({"md": md, "mr": mr})
    chunked = benchmark.pedantic(
        circuit.run,
        args=({"md": md, "mr": mr},),
        kwargs={"chunk_size": 256},
        rounds=1,
        iterations=1,
    )
    assert np.allclose(chunked.delays, whole.delays)
