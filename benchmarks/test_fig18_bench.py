"""Fig. 18 bench: 32x32 error counts per skip over the cycle sweep."""

from conftest import run_once

from repro.experiments import fig15_18_skip_comparison


def test_fig18_error_counts_32(benchmark, ctx):
    result = run_once(
        benchmark,
        fig15_18_skip_comparison.run_fig18,
        ctx,
        num_patterns=500,
        adaptive=False,
    )
    assert result.errors_monotone()
    print()
    print(result.render())
