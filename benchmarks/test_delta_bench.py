"""Variant-sweep bench: cone-delta patch-replay vs from-scratch runs.

The acceptance claim of the incremental-evaluation machinery: a
100-mutant sweep of the 16x16 column-bypass multiplier evaluates an
order of magnitude faster through :func:`repro.timing.delta
.replay_delta` (one shared :class:`~repro.timing.delta.DeltaBase`, one
cone re-simulation per mutant) than through per-variant from-scratch
compile+simulate+replay -- while producing the byte-identical canonical
sweep document.  Identity is asserted *before* the speedup, so a broken
delta path can never pass on speed alone.  Measured throughputs land in
``benchmarks/results/BENCH_delta.json`` (committed reference copy in
``benchmarks/baselines/``, gated by ``trend.py``).
"""

import json
import os
import time

from repro.experiments.sweep import SweepSpec, VariantSweep, render_payload

RESULTS = os.path.join(os.path.dirname(__file__), "results")

SPEC = SweepSpec(
    width=16,
    kind="column",
    years=(0.0, 10.0),
    num_patterns=2000,
    seed=1,
    characterize_patterns=600,
    num_variants=100,
    variant_seed=0,
)

#: Conservative gate for noisy CI boxes; the recorded speedup is the
#: measured value (>= 10x on an idle machine, see BENCH_delta.json).
MIN_SPEEDUP = 6.0


def test_variant_sweep_delta_speedup(benchmark):
    sweep = VariantSweep(SPEC)
    # Warm the state both engines share (netlist, characterization,
    # stimulus, aging scales) so neither timed section pays for it.
    sweep.netlist
    sweep.variants
    sweep.scales
    sweep.stimulus

    timings = {}

    def run_both():
        t0 = time.time()
        full_payload, _ = sweep.run(engine="full")
        timings["full"] = time.time() - t0
        # The delta timing deliberately includes building the DeltaBase
        # (value plane with captured values + dense arrival tensor):
        # that is the real per-sweep cost of the incremental path.
        t0 = time.time()
        delta_payload, delta_stats = sweep.run(engine="delta")
        timings["delta"] = time.time() - t0
        return full_payload, delta_payload, delta_stats

    full_payload, delta_payload, delta_stats = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )

    # Byte identity first -- a fast-but-wrong delta path must fail
    # here, before any speedup is computed.
    assert render_payload(delta_payload) == render_payload(full_payload)
    assert delta_stats["methods"].get("full", 0) == 0, (
        "delta sweep silently fell back to from-scratch evaluations"
    )

    full_s = timings["full"]
    delta_s = timings["delta"]
    speedup = full_s / delta_s
    n = SPEC.num_variants
    record = {
        "experiment": "100-mutant variant sweep (16x16 column-bypass)",
        "num_variants": n,
        "num_patterns": SPEC.num_patterns,
        "corners": len(SPEC.years),
        "bit_identical": True,
        "full_seconds": round(full_s, 4),
        "delta_seconds": round(delta_s, 4),
        "full_ms_per_variant": round(1e3 * full_s / n, 2),
        "delta_ms_per_variant": round(1e3 * delta_s / n, 2),
        "full_variants_per_sec": round(n / full_s, 2),
        "delta_variants_per_sec": round(n / delta_s, 2),
        "sweep_speedup": round(speedup, 2),
    }
    os.makedirs(RESULTS, exist_ok=True)
    with open(os.path.join(RESULTS, "BENCH_delta.json"), "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print()
    print(
        "full %.2fs vs delta %.2fs = %.1fx (%.1f -> %.1f ms/variant)"
        % (
            full_s, delta_s, speedup,
            1e3 * full_s / n, 1e3 * delta_s / n,
        )
    )
    assert speedup >= MIN_SPEEDUP, (
        "cone-delta sweep only %.2fx faster than from-scratch" % speedup
    )
