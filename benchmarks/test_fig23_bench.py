"""Fig. 23 bench: 16x16 adaptive vs traditional latency, aged."""

from conftest import run_once

from repro.experiments import fig23_24_adaptive_latency


def test_fig23_adaptive_latency_16(benchmark, ctx):
    result = run_once(
        benchmark,
        fig23_24_adaptive_latency.run_fig23,
        ctx,
        num_patterns=1500,
    )
    # Paper: the AHL's gain is largest at short cycle periods.
    for kind in ("column", "row"):
        assert result.gap_at_shortest(kind, 7) >= 0.0
    print()
    print(result.render())
