"""Benchmark fixtures.

Each benchmark regenerates one paper table/figure through the experiment
registry and reports its wall-clock via pytest-benchmark.  Pattern counts
are scaled down (see ``SCALE``) so the whole suite runs in minutes; the
full-scale numbers live in EXPERIMENTS.md and can be regenerated with
``python -m repro.experiments all``.

Every benchmark also *asserts the paper's qualitative claim* for its
figure, so the suite doubles as an end-to-end reproduction check.
"""

from __future__ import annotations

import pytest

from repro.experiments.context import ExperimentContext

#: Pattern-count multiplier vs the paper's counts.
SCALE = 0.08


@pytest.fixture(scope="session")
def ctx():
    return ExperimentContext(scale=SCALE, characterize_patterns=600)


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(
        fn, args=args, kwargs=kwargs, rounds=1, iterations=1
    )
