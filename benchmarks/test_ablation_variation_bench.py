"""Ablation bench: process-variation tolerance (related work [19]).

Samples process corners and shows the elastic (variable-latency)
architecture converting die-to-die delay spread into a much smaller
latency spread, with high parametric yield at the nominal clock.
"""

from conftest import run_once

from repro.timing.variation import ProcessVariation, yield_analysis


def test_yield_across_corners(benchmark, ctx):
    arch = ctx.variable_design(16, "column", 7, 0.9)

    def analyze():
        return yield_analysis(
            arch,
            num_dies=12,
            num_patterns=800,
            variation=ProcessVariation(sigma_global=0.1, sigma_local=0.03),
            seed=3,
        )

    report = run_once(benchmark, analyze)
    # A 2-sigma ~ +-20% corner spread stays a bounded latency spread
    # (slow dies pay Razor penalties instead of failing), and the dies
    # stay inside the two-cycle safety envelope.
    assert report.latency_spread < 0.40
    assert report.yield_fraction >= 0.75
    print()
    print(
        "dies=%d yield=%.2f mean=%.3f worst=%.3f spread=%.3f"
        % (
            report.num_dies,
            report.yield_fraction,
            report.mean_latency_ns,
            report.worst_latency_ns,
            report.latency_spread,
        )
    )
