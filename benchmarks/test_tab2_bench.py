"""Table II bench: 32x32 one-cycle pattern ratios (Skip-15/16/17)."""

from conftest import run_once

from repro.experiments import tables_one_cycle_ratio


def test_table2_one_cycle_ratio(benchmark, ctx):
    result = run_once(benchmark, tables_one_cycle_ratio.run_table2, ctx)
    ratios = [result.ratios[("row", s)] for s in (15, 16, 17)]
    assert ratios[0] > ratios[1] > ratios[2]
    print()
    print(result.render())
