"""Fig. 17 bench: 32x32 latency under three skip numbers (column)."""

from conftest import run_once

from repro.experiments import fig15_18_skip_comparison


def test_fig17_skip_latency_32(benchmark, ctx):
    result = run_once(
        benchmark,
        fig15_18_skip_comparison.run_fig17,
        ctx,
        num_patterns=500,
    )
    assert result.crossover_ok()
    print()
    print(result.render())
