"""Fig. 25 bench: transistor-count area comparison."""

from conftest import run_once

from repro.experiments import fig25_area


def test_fig25_area(benchmark, ctx):
    result = run_once(benchmark, fig25_area.run, ctx)
    # Adaptive designs cost extra area, but relatively less at 32x32.
    assert result.adaptive_overhead(16, "column") > 0
    assert result.adaptive_overhead(32, "column") < (
        result.adaptive_overhead(16, "column")
    )
    assert result.adaptive_overhead(32, "row") < (
        result.adaptive_overhead(16, "row")
    )
    print()
    print(result.render())
