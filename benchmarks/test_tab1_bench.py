"""Table I bench: 16x16 one-cycle pattern ratios (Skip-7/8/9)."""

from conftest import run_once

from repro.experiments import tables_one_cycle_ratio


def test_table1_one_cycle_ratio(benchmark, ctx):
    result = run_once(benchmark, tables_one_cycle_ratio.run_table1, ctx)
    # Ratios decrease with the skip number (Table I's trend) and track
    # the binomial tail.
    ratios = [result.ratios[("column", s)] for s in (7, 8, 9)]
    assert ratios[0] > ratios[1] > ratios[2]
    assert abs(ratios[0] - 0.7728) < 0.03
    print()
    print(result.render())
