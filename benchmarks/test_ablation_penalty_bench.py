"""Ablation bench: Razor re-execution penalty.

The paper charges 3 extra cycles per violation (1 detection + 2
re-execution).  This ablation sweeps the penalty: with a cheaper
recovery, aggressive (small-skip, short-cycle) operating points become
more attractive -- quantifying how sensitive the headline improvements
are to the recovery microarchitecture.
"""

from conftest import run_once

from repro.config import SimulationConfig
from repro.core import AgingAwareMultiplier

PATTERNS = 1500


def test_penalty_sweep(benchmark, ctx):
    def sweep():
        reports = {}
        md, mr = ctx.stream(16, PATTERNS, seed=42)
        stream = ctx.stream_result(16, "column", 0.0, PATTERNS, seed=42)
        for penalty in (1, 3, 6):
            arch = AgingAwareMultiplier(
                netlist=ctx.netlist(16, "column"),
                kind="column",
                width=16,
                skip=7,
                cycle_ns=0.6,
                factory=ctx.factory(16, "column"),
                technology=ctx.technology,
                config=SimulationConfig(razor_penalty_cycles=penalty),
            )
            reports[penalty] = arch.run_patterns(md, mr, stream=stream).report
        return reports

    reports = run_once(benchmark, sweep)
    # Latency grows monotonically with the recovery penalty.
    latencies = [reports[p].average_latency_ns for p in (1, 3, 6)]
    assert latencies[0] < latencies[1] < latencies[2]
    for penalty, report in sorted(reports.items()):
        print(
            "penalty=%d: latency=%.3f errors=%d"
            % (penalty, report.average_latency_ns, report.error_count)
        )
