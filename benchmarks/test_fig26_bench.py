"""Fig. 26 bench: 16x16 lifetime latency / power / EDP."""

from conftest import run_once

from repro.experiments import fig26_27_lifetime


def test_fig26_lifetime_16(benchmark, ctx):
    result = run_once(
        benchmark,
        fig26_27_lifetime.run_fig26,
        ctx,
        num_patterns=2500,
        years=(0.0, 1.0, 2.0, 4.0, 7.0),
    )
    # Fixed designs degrade ~13-15%; adaptive designs stay nearly flat.
    assert result.latency_growth("flcb") > 0.10
    assert result.latency_growth("a-vlcb") < 0.05
    # AM burns the most power; power falls with age for every design.
    assert result.power_w["am"].y[0] > result.power_w["flcb"].y[0]
    assert result.power_w["am"].y[-1] < result.power_w["am"].y[0]
    print()
    print(result.render())
