"""Extension bench: Wallace/Booth baselines vs the bypassing hosts.

Regenerates the ``ext_baselines`` comparison and asserts the
architectural claim: the bypassing multipliers' delay is predictable
from the judged operand's zero count; the tree baselines' is not.
"""

from conftest import run_once

from repro.experiments import ext_baselines


def test_ext_baselines(benchmark, ctx):
    result = run_once(benchmark, ext_baselines.run, ctx, num_patterns=1500)
    stats = result.stats
    assert stats["column"].zero_delay_correlation < -0.2
    assert stats["booth"].zero_delay_correlation > -0.2
    assert stats["wallace"].critical_ns < stats["am"].critical_ns
    print()
    print(result.render())
