"""Ablation bench: aging-indicator threshold and stickiness.

DESIGN.md calls out the 10%-per-100-ops threshold as a paper-given
constant; this ablation sweeps it.  A lower threshold switches to the
strict judging block sooner (fewer errors, more two-cycle patterns); a
very high threshold reduces the adaptive design to the traditional one.
"""

from conftest import run_once

from repro.config import SimulationConfig
from repro.core import AgingAwareMultiplier
from repro.workloads import uniform_operands

PATTERNS = 1500


def _run_with_threshold(ctx, threshold, sticky=True):
    config = SimulationConfig(
        indicator_threshold=threshold, indicator_sticky=sticky
    )
    arch = AgingAwareMultiplier(
        netlist=ctx.netlist(16, "column"),
        kind="column",
        width=16,
        skip=7,
        cycle_ns=0.65,
        factory=ctx.factory(16, "column"),
        technology=ctx.technology,
        config=config,
    )
    md, mr = uniform_operands(16, PATTERNS, seed=5)
    stream = ctx.stream_result(16, "column", 7.0, PATTERNS, seed=99)
    md, mr = ctx.stream(16, PATTERNS, seed=99)
    return arch.run_patterns(md, mr, years=7.0, stream=stream).report


def test_indicator_threshold_sweep(benchmark, ctx):
    def sweep():
        return {
            threshold: _run_with_threshold(ctx, threshold)
            for threshold in (2, 10, 50)
        }

    reports = run_once(benchmark, sweep)
    # A stricter (lower) threshold switches earlier and ends with fewer
    # Razor errors on aged silicon.
    assert reports[2].error_count <= reports[50].error_count
    for threshold, report in sorted(reports.items()):
        print(
            "threshold %2d: errors=%4d latency=%.3f"
            % (threshold, report.error_count, report.average_latency_ns)
        )


def test_indicator_stickiness(benchmark, ctx):
    sticky = run_once(benchmark, _run_with_threshold, ctx, 10, True)
    relaxing = _run_with_threshold(ctx, 10, sticky=False)
    # A relaxing indicator may switch back and accumulate extra errors.
    assert relaxing.error_count >= sticky.error_count
