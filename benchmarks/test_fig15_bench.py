"""Fig. 15 bench: 16x16 latency under three skip numbers (column)."""

from conftest import run_once

from repro.experiments import fig15_18_skip_comparison


def test_fig15_skip_latency_16(benchmark, ctx):
    result = run_once(
        benchmark,
        fig15_18_skip_comparison.run_fig15,
        ctx,
        num_patterns=1500,
    )
    # Paper: Skip-7 best at long cycles, worst at short cycles.
    assert result.crossover_ok()
    print()
    print(result.render())
