"""Fig. 24 bench: 32x32 adaptive vs traditional latency, aged."""

from conftest import run_once

from repro.experiments import fig23_24_adaptive_latency


def test_fig24_adaptive_latency_32(benchmark, ctx):
    result = run_once(
        benchmark,
        fig23_24_adaptive_latency.run_fig24,
        ctx,
        num_patterns=400,
        skips=(15,),
    )
    # Paper: adaptive is equal or better; allow sampling noise of a few
    # hundredths of a ns at this reduced pattern count.
    for kind in ("column", "row"):
        assert result.gap_at_shortest(kind, 15) >= -0.05
    print()
    print(result.render())
