"""Campaign execution bench: serial vs sharded sweep wall-clock.

Runs the same 52-site fault-injection campaign serially and across two
worker processes, asserts the sharded sweep is bit-identical to the
serial one (the determinism contract of DESIGN.md section 9), and
reports both wall-clocks.  ``python -m repro.faults bench`` produces the
committed JSON artifact (``benchmarks/results/campaign_scaling.json``)
from the same machinery.
"""

import time

from conftest import run_once

from repro.core import AgingAwareMultiplier
from repro.faults import InjectionCampaign

SITES = 52
PATTERNS = 400


def _campaign():
    arch = AgingAwareMultiplier.build(
        8, "column", skip=3, cycle_ns=0.9, characterize_patterns=600
    )
    arch = arch.with_cycle(0.6 * arch.critical_path_ns())
    return InjectionCampaign.sweep(
        arch, num_sites=SITES, num_patterns=PATTERNS, seed=7
    )


def test_campaign_serial_vs_sharded(benchmark):
    campaign = _campaign()
    start = time.time()
    serial = campaign.run(workers=1)
    serial_s = time.time() - start
    # The benchmark timer records the sharded sweep; the serial sweep's
    # wall-clock is printed alongside for the comparison.
    sharded = run_once(benchmark, campaign.run, workers=2)
    assert sharded.sites == serial.sites, (
        "sharded sweep diverged from the serial sweep"
    )
    assert serial.num_sites == SITES
    assert serial.complete
    print()
    print(
        "serial %.2f s vs sharded (workers=2, see benchmark timer); "
        "%d sites, %d pruned, %d simulated"
        % (
            serial_s,
            serial.num_sites,
            serial.pruned_sites,
            serial.simulated_sites,
        )
    )
