"""Two-plane engine bench: lifetime sweep via value plane + batched
arrival replay vs one full simulation per aging timestep.

The replay path must be bit-identical to the per-year full runs and
substantially faster end-to-end; the measured throughputs land in the
committed artifact ``benchmarks/results/BENCH_engine.json``.
"""

import json
import os
import time

import numpy as np

from repro.aging.degradation import AgedCircuitFactory
from repro.arith import column_bypass_multiplier
from repro.timing import ArrivalReplay, build_value_plane
from repro.workloads import uniform_operands

PATTERNS = 10_000
TIMESTEPS = 20
LIFETIME_YEARS = 7.0
RESULTS = os.path.join(os.path.dirname(__file__), "results")
#: Conservative gate for noisy CI boxes; the recorded speedup is the
#: measured value (>= 3x on an idle machine, see BENCH_engine.json).
MIN_SPEEDUP = 2.0


def test_lifetime_sweep_replay_speedup(benchmark):
    netlist = column_bypass_multiplier(8)
    factory = AgedCircuitFactory.characterize(netlist, num_patterns=600)
    md, mr = uniform_operands(8, PATTERNS, seed=21)
    stimulus = {"md": md, "mr": mr}
    years = [
        LIFETIME_YEARS * i / (TIMESTEPS - 1) for i in range(TIMESTEPS)
    ]
    scales = factory.lifetime_delay_scales(years)
    circuit = factory.circuit(0.0)

    # Baseline: one full simulation per aging timestep.
    start = time.time()
    full = [factory.circuit(year).run(stimulus) for year in years]
    full_s = time.time() - start

    # Two-plane: one value pass, then every timestep in one replay.
    # Timed with an inner wall clock (pytest-benchmark's harness adds
    # measurable per-round overhead at this scale).  The replay takes
    # the min of two rounds: the 20 sequential full runs above amortize
    # their one-time numpy/allocator warmup across the whole baseline,
    # while a single replay call would bear all of it.
    timings = {}

    def two_plane():
        t0 = time.time()
        plane = build_value_plane(circuit, stimulus)
        timings["value"] = time.time() - t0
        replay = ArrivalReplay(circuit, plane)
        rounds = []
        for _ in range(2):
            t0 = time.time()
            out = replay.replay(scales)
            rounds.append(time.time() - t0)
        timings["replay"] = min(rounds)
        return out

    replayed = benchmark.pedantic(two_plane, rounds=1, iterations=1)
    value_s = timings["value"]
    replay_s = timings["replay"]

    for k, want in enumerate(full):
        got = replayed.stream_result(k)
        assert np.array_equal(got.delays, want.delays)
        assert np.array_equal(got.switched_caps, want.switched_caps)
        assert np.array_equal(got.outputs["p"], want.outputs["p"])

    two_plane_s = value_s + replay_s
    speedup = full_s / two_plane_s
    record = {
        "experiment": "two-plane lifetime sweep (8x8 column-bypass)",
        "num_patterns": PATTERNS,
        "timesteps": TIMESTEPS,
        "lifetime_years": LIFETIME_YEARS,
        "bit_identical": True,
        "full_seconds": round(full_s, 4),
        "value_pass_seconds": round(value_s, 4),
        "replay_seconds": round(replay_s, 4),
        "two_plane_seconds": round(two_plane_s, 4),
        "value_pass_patterns_per_sec": round(PATTERNS / value_s, 1),
        "replay_pattern_corners_per_sec": round(
            PATTERNS * TIMESTEPS / replay_s, 1
        ),
        "end_to_end_pattern_corners_per_sec": round(
            PATTERNS * TIMESTEPS / two_plane_s, 1
        ),
        "full_pattern_corners_per_sec": round(
            PATTERNS * TIMESTEPS / full_s, 1
        ),
        "end_to_end_speedup": round(speedup, 2),
    }
    os.makedirs(RESULTS, exist_ok=True)
    with open(os.path.join(RESULTS, "BENCH_engine.json"), "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print()
    print(
        "full %.2fs vs value %.2fs + replay %.2fs = %.2fx end-to-end"
        % (full_s, value_s, replay_s, speedup)
    )
    assert speedup >= MIN_SPEEDUP, (
        "two-plane sweep only %.2fx faster than per-year full runs"
        % speedup
    )
