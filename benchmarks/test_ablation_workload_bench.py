"""Ablation bench: operand bias.

The paper evaluates uniform operands; this ablation sweeps the bit-level
one-probability.  Sparse operands (many zeros) make almost everything a
one-cycle pattern; dense operands defeat the bypass and push the design
toward two-cycle operation.
"""

from conftest import run_once

from repro.arith import golden_products
from repro.workloads import zero_weighted_operands

PATTERNS = 1200


def test_operand_bias_sweep(benchmark, ctx):
    arch = ctx.variable_design(16, "column", 7, 0.9)

    def sweep():
        reports = {}
        for p_one in (0.2, 0.5, 0.8):
            md = zero_weighted_operands(16, PATTERNS, p_one, seed=7)
            mr = zero_weighted_operands(16, PATTERNS, p_one, seed=8)
            reports[p_one] = arch.run_patterns(md, mr).report
        return reports

    reports = run_once(benchmark, sweep)
    # Sparse multiplicands: more one-cycle patterns, lower latency.
    assert (
        reports[0.2].one_cycle_ratio
        > reports[0.5].one_cycle_ratio
        > reports[0.8].one_cycle_ratio
    )
    assert (
        reports[0.2].average_latency_ns < reports[0.8].average_latency_ns
    )
    for p_one, report in sorted(reports.items()):
        print(
            "P(bit=1)=%.1f: one-cycle=%.3f latency=%.3f errors=%d"
            % (
                p_one,
                report.one_cycle_ratio,
                report.average_latency_ns,
                report.error_count,
            )
        )


def test_biased_operands_still_multiply_exactly(benchmark, ctx):
    circuit = ctx.factory(16, "row").circuit(0.0)
    md = zero_weighted_operands(16, PATTERNS, 0.9, seed=9)
    mr = zero_weighted_operands(16, PATTERNS, 0.1, seed=10)
    result = run_once(benchmark, circuit.run, {"md": md, "mr": mr})
    import numpy as np

    assert np.array_equal(result.outputs["p"], golden_products(md, mr, 16))
