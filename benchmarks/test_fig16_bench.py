"""Fig. 16 bench: 16x16 error counts per skip over the cycle sweep."""

from conftest import run_once

from repro.experiments import fig15_18_skip_comparison


def test_fig16_error_counts_16(benchmark, ctx):
    # Traditional designs give the clean monotone error curves of the
    # paper's figure (no mid-run judging-block switches).
    result = run_once(
        benchmark,
        fig15_18_skip_comparison.run_fig16,
        ctx,
        num_patterns=1500,
        adaptive=False,
    )
    assert result.errors_monotone()
    # Smaller skip => more errors at the shortest period.
    assert result.errors[7].y[0] >= result.errors[9].y[0]
    print()
    print(result.render())
