"""Extension bench: BTI + electromigration lifetime (Section V claim)."""

from conftest import run_once

from repro.experiments import ext_em


def test_ext_em(benchmark, ctx):
    result = run_once(
        benchmark, ext_em.run, ctx, num_patterns=800,
        years=(0.0, 5.0, 10.0),
    )
    # EM compounds the fixed designs' degradation; the adaptive designs
    # stay an order of magnitude flatter.
    assert result.growth("combined", "flcb") > result.growth("bti", "flcb")
    assert result.growth("combined", "a-vlcb") < (
        result.growth("combined", "flcb") / 3
    )
    print()
    print(result.render())
