"""Monte Carlo die-population compiler benchmark (the 10k-die gate).

Prices a full **10,000-die x 6-year** population of the 8-bit
column-bypassing multiplier through the batched path
(:func:`repro.montecarlo.population.price_population`: one
:class:`~repro.timing.replay.ArrivalReplay` pass per
``die_chunk * num_years`` slab over a shared value plane) and compares
its per-(die, year) cost against the naive reference
(:func:`price_population_naive`: one full :class:`~repro.timing.engine
.CompiledCircuit` compile + event-driven run per corner), extrapolated
from a small die subset.

Bit-identity of the naive subset's reductions against the matching
batched slice is asserted **before** any timing claim -- the speedup is
only meaningful because both paths produce the same numbers.

Gates recorded in ``benchmarks/results/BENCH_mc.json``:

* population >= ``MIN_DIES`` dies x >= ``MIN_YEARS`` aging corners
  through the batched path;
* batched path >= ``MIN_SPEEDUP`` x faster per (die, year) row than the
  naive per-die loop.
"""

import json
import os
import time

import numpy as np

from repro.arith.reference import count_zeros
from repro.montecarlo import MonteCarloSpec
from repro.montecarlo.population import (
    price_population,
    price_population_naive,
)
from repro.montecarlo.sampler import CorrelatedVthSampler
from repro.timing.replay import ArrivalReplay
from repro.workloads.generators import uniform_operands

RESULTS = os.path.join(os.path.dirname(__file__), "results")

#: Acceptance floor: the population the batched path must price.
MIN_DIES = 10_000
MIN_YEARS = 5
#: Batched path must beat the naive per-die loop by this factor.
MIN_SPEEDUP = 20.0

#: Bench population: 10k dies x 6 aging corners, 128-pattern stream,
#: 192-die slabs (the replay-throughput sweet spot on one core).
NUM_DIES = 10_000
YEARS = (0.0, 2.0, 4.0, 6.0, 8.0, 10.0)
NUM_PATTERNS = 128
DIE_CHUNK = 192
#: Dies the naive reference loop actually runs (then extrapolates).
NAIVE_DIES = 3

WIDTH = 8
SKIP = WIDTH // 2 - 1

_RECORD = {}


def test_population_pricing_speedup(benchmark, ctx):
    spec = MonteCarloSpec.from_overrides(
        num_dies=NUM_DIES,
        years=YEARS,
        num_patterns=NUM_PATTERNS,
        die_chunk=DIE_CHUNK,
    )
    factory = ctx.factory(WIDTH, "column")
    num_cells = len(factory.netlist.cells)
    md, mr = uniform_operands(WIDTH, spec.num_patterns, spec.stream_seed)
    stimulus = {"md": md, "mr": mr}
    zeros = count_zeros(md, WIDTH)  # column bypass judges md

    plane = factory.value_plane(stimulus)
    fresh = ArrivalReplay(factory.circuit(0.0), plane).replay(
        np.ones((1, num_cells))
    )
    base_period_ns = float(fresh.delays.max())
    clock_ns = tuple(f * base_period_ns for f in (0.7, 0.85, 1.0, 1.15))

    sampler = CorrelatedVthSampler(num_cells, spec)

    def batched_run():
        t0 = time.perf_counter()
        out = price_population(
            factory, sampler, spec, stimulus, zeros, WIDTH, SKIP, clock_ns
        )
        return out, time.perf_counter() - t0

    batched, batched_seconds = benchmark.pedantic(
        batched_run, rounds=1, iterations=1
    )
    assert batched.num_dies == NUM_DIES

    t0 = time.perf_counter()
    naive = price_population_naive(
        factory, sampler, spec, stimulus, zeros, WIDTH, SKIP, clock_ns,
        die_range=(0, NAIVE_DIES),
    )
    naive_seconds = time.perf_counter() - t0

    # Correctness before speed: the naive subset must reproduce the
    # batched slice bit for bit.
    for field in (
        "crit_ns", "bucket_max_ns", "one_violations", "one_deep",
        "deep_ops", "deep_cycles",
    ):
        want = getattr(batched, field)[:NAIVE_DIES]
        got = getattr(naive, field)
        assert np.array_equal(want, got), (
            "naive reference diverges from the batched path on %s"
            % field
        )

    num_years = spec.num_years
    batched_rows = NUM_DIES * num_years
    naive_rows = NAIVE_DIES * num_years
    batched_ms_per_row = batched_seconds / batched_rows * 1e3
    naive_ms_per_row = naive_seconds / naive_rows * 1e3
    speedup = naive_ms_per_row / batched_ms_per_row

    _RECORD["mc_population"] = {
        "experiment": "correlated-variation x aging MC pricing, 8x8"
        " column-bypassing multiplier (%d cells)" % num_cells,
        "num_dies": NUM_DIES,
        "num_years": num_years,
        "num_patterns": NUM_PATTERNS,
        "num_clocks": len(clock_ns),
        "die_chunk": DIE_CHUNK,
        "bit_identical_to_naive": True,
        "batched_seconds": round(batched_seconds, 3),
        "batched_ms_per_die_year": round(batched_ms_per_row, 4),
        "naive_subset_dies": NAIVE_DIES,
        "naive_subset_seconds": round(naive_seconds, 3),
        "naive_ms_per_die_year": round(naive_ms_per_row, 4),
        "naive_extrapolated_seconds": round(
            naive_ms_per_row * batched_rows / 1e3, 1
        ),
        "speedup": round(speedup, 2),
    }
    _flush()
    print()
    print(
        "mc: %d dies x %d years batched in %.2fs (%.3f ms/row) |"
        " naive %.3f ms/row -> %.1fx"
        % (
            NUM_DIES,
            num_years,
            batched_seconds,
            batched_ms_per_row,
            naive_ms_per_row,
            speedup,
        )
    )

    assert NUM_DIES >= MIN_DIES
    assert num_years >= MIN_YEARS
    assert speedup >= MIN_SPEEDUP, (
        "batched pricing only %.2fx faster than the naive per-die loop"
        % speedup
    )


def _flush():
    os.makedirs(RESULTS, exist_ok=True)
    with open(os.path.join(RESULTS, "BENCH_mc.json"), "w") as fh:
        json.dump(_RECORD, fh, indent=2, sort_keys=True)
        fh.write("\n")
