"""Figs. 9-10 bench: zero/one-count distributions of random operands."""

from conftest import run_once

from repro.experiments import fig09_10_zero_distribution


def test_fig09_10_zero_distribution(benchmark, ctx):
    result = run_once(benchmark, fig09_10_zero_distribution.run, ctx)
    # Paper: near-normal (binomial) bells for both operands.
    assert result.max_pmf_error("md") < 0.05
    assert result.max_pmf_error("mr") < 0.05
    print()
    print(result.render())
