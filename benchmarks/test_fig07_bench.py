"""Fig. 7 bench: seven-year BTI critical-path trend (16x16 CB / RB)."""

from conftest import run_once

from repro.experiments import fig07_aging_trend


def test_fig07_aging_trend(benchmark, ctx):
    result = run_once(benchmark, fig07_aging_trend.run, ctx)
    # Paper: ~13% critical-path increase over 7 years.
    assert abs(result.drift_at_7y["column"] - 0.13) < 0.02
    assert abs(result.drift_at_7y["row"] - 0.13) < 0.02
    print()
    print(result.render())
