"""Fig. 27 bench: 32x32 lifetime latency / power / EDP."""

from conftest import run_once

from repro.experiments import fig26_27_lifetime


def test_fig27_lifetime_32(benchmark, ctx):
    result = run_once(
        benchmark,
        fig26_27_lifetime.run_fig27,
        ctx,
        num_patterns=800,
        years=(0.0, 2.0, 7.0),
    )
    assert result.latency_growth("flcb") > 0.10
    assert result.latency_growth("a-vlcb") < 0.05
    # Paper: the 32x32 A-VLCB ends with the best average EDP vs the AM.
    assert result.mean_edp_reduction_vs_am("a-vlcb") > 0.0
    print()
    print(result.render())
