"""Reliability-service benchmark: cold vs warm latency, coalescing,
and both degraded paths.

Wraps :func:`repro.service.bench.run_service_bench` -- the same harness
``python -m repro.service bench`` runs -- against a private server, and
records the result in ``benchmarks/results/BENCH_service.json``.

Gates (also returned as ``invariant_failures`` by the harness):

* warm (hot-LRU) queries >= ``MIN_WARM_SPEEDUP`` x faster than the
  cold build;
* N identical concurrent cold queries trigger exactly ONE backend
  build (single-flight coalescing);
* a missed deadline and a killed backend worker both degrade to typed
  responses (stale-if-available, error record otherwise) and the
  service recovers afterwards.
"""

import json
import os

from repro.service.bench import MIN_WARM_SPEEDUP, run_service_bench

RESULTS = os.path.join(os.path.dirname(__file__), "results")

_RECORD = {}


def test_service_cold_warm_and_degraded(benchmark):
    record, failures = benchmark.pedantic(
        run_service_bench,
        kwargs={"characterize_patterns": 300},
        rounds=1,
        iterations=1,
    )

    _RECORD["service"] = record
    _flush()
    print()
    print(
        "service: cold %.1fms | warm %.3fms (%.0fx) | %d dups -> %d build"
        % (
            record["cold_ms"],
            record["warm_mean_ms"],
            record["warm_speedup"],
            record["duplicates"],
            record["duplicate_backend_builds"],
        )
    )

    assert failures == [], "\n".join(failures)
    assert record["warm_speedup"] >= MIN_WARM_SPEEDUP
    assert record["duplicate_backend_builds"] == 1
    assert record["deadline_status"] == "degraded"
    assert record["crash_status"] == "degraded"
    assert record["error_type_without_stale"] == "BackendCrashError"
    assert record["recovered_after_crash"] is True


def _flush():
    os.makedirs(RESULTS, exist_ok=True)
    with open(os.path.join(RESULTS, "BENCH_service.json"), "w") as fh:
        json.dump(_RECORD, fh, indent=2, sort_keys=True)
        fh.write("\n")
