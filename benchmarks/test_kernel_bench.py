"""Levelized SoA kernel + unique-stimulus folding benchmarks.

Two gates, both on the 16x16 column-bypass multiplier:

* **Lifetime sweep** (the PR 3 engine's flagship path): value plane +
  batched 12-corner arrival replay over a zero-heavy FIR operand stream
  -- the workload class the paper's lifetime experiments run (pause
  frames / silent samples, Figs. 9-10 zero distributions).  The PR 3
  baseline is the per-cell kernel end to end; the new default stack is
  fold -> SoA value plane -> sparse SoA replay, exactly what
  ``AgingAwareMultiplier.run_lifetime`` now does.  Must be >= 2x.
  The raw kernel (folding disabled) is timed and recorded too, with a
  looser anti-regression gate: its sparse replay only touches active
  (cell, pattern) entries, which is where bypassed columns pay off.
* **DSP single-pass** (fig09/10 workload): one full engine run on a
  long sparse FIR stream, per-cell baseline vs ``run(fold=True)``.
  Folding collapses the stream to its unique transitions, so this must
  be >= 5x.

A third gate covers the **numba JIT backend** (``kernel="numba"``):
when numba is importable, the compiled value-pass + arrival-replay
kernels must beat the interpreted SoA stack by >= 3x on the same
lifetime-sweep workload (bit-identity asserted first); without numba
the test still runs, asserting the silent fallback to SoA is
byte-identical, and records ``numba_available: false`` so the results
file says why no speedup figure exists.

Every comparison asserts bit-identical outputs and delays before
timing claims are recorded in ``benchmarks/results/BENCH_kernel.json``.
"""

import json
import os
import time

import numpy as np

from repro.aging.degradation import AgedCircuitFactory
from repro.arith import column_bypass_multiplier
from repro.timing import ArrivalReplay, CompiledCircuit, build_value_plane
from repro.timing import jit
from repro.timing.fold import fold_stimulus, unfold_stream
from repro.workloads import sparse_fir_stream

SWEEP_PATTERNS = 6_000
DSP_PATTERNS = 20_000
TIMESTEPS = 12
LIFETIME_YEARS = 7.0
RESULTS = os.path.join(os.path.dirname(__file__), "results")
#: The default stack (fold + SoA kernel) vs the PR 3 per-cell engine.
MIN_SPEEDUP_SWEEP = 2.0
#: Anti-regression canary for the raw kernel with folding disabled.
MIN_SPEEDUP_KERNEL = 1.1
#: Folding gate on the fig09/10 DSP workload.
MIN_SPEEDUP_DSP = 5.0
#: Compiled numba kernels vs the interpreted SoA stack (only enforced
#: when numba is importable; the fallback path is identity-gated).
MIN_SPEEDUP_NUMBA = 3.0

_RECORD = {}


def _two_plane_sweep(netlist, technology, stimulus, scales, kernel):
    """Time (value plane, replay) for one kernel; returns streams too."""
    circuit = CompiledCircuit(netlist, technology, kernel=kernel)
    t0 = time.perf_counter()
    plane = build_value_plane(circuit, stimulus)
    value_s = time.perf_counter() - t0
    replayer = ArrivalReplay(circuit, plane)
    rounds = []
    result = None
    for _ in range(2):
        t0 = time.perf_counter()
        result = replayer.replay(scales)
        rounds.append(time.perf_counter() - t0)
    return value_s, min(rounds), result


def test_lifetime_sweep_kernel_speedup(benchmark):
    netlist = column_bypass_multiplier(16)
    factory = AgedCircuitFactory.characterize(netlist, num_patterns=400)
    md, mr = sparse_fir_stream(16, SWEEP_PATTERNS, seed=1)
    stimulus = {"md": md, "mr": mr}
    years = [
        LIFETIME_YEARS * i / (TIMESTEPS - 1) for i in range(TIMESTEPS)
    ]
    scales = factory.lifetime_delay_scales(years)
    technology = factory.technology

    # PR 3 baseline: per-cell value pass + per-cell pooled replay.
    pc_value, pc_replay, pc_result = _two_plane_sweep(
        netlist, technology, stimulus, scales, "percell"
    )
    # Raw levelized kernel, folding disabled.
    soa_value, soa_replay, soa_result = _two_plane_sweep(
        netlist, technology, stimulus, scales, "soa"
    )

    # The new default stack (what run_lifetime does): fold the stream,
    # plane + replay the unique transitions, scatter every corner back.
    circuit = CompiledCircuit(netlist, technology)
    timings = {}

    def folded_sweep():
        t0 = time.perf_counter()
        plan = fold_stimulus(stimulus)
        plane = build_value_plane(circuit, plan.folded)
        replayed = ArrivalReplay(circuit, plane).replay(scales)
        streams = [
            unfold_stream(replayed.stream_result(j), plan)
            for j in range(len(years))
        ]
        timings["stack"] = time.perf_counter() - t0
        timings["fold_factor"] = plan.fold_factor
        return streams

    folded = benchmark.pedantic(folded_sweep, rounds=1, iterations=1)

    for j in range(len(years)):
        want = pc_result.stream_result(j)
        for got in (soa_result.stream_result(j), folded[j]):
            assert np.array_equal(got.delays, want.delays)
            assert np.array_equal(got.outputs["p"], want.outputs["p"])

    pr3_s = pc_value + pc_replay
    kernel_s = soa_value + soa_replay
    stack_s = timings["stack"]
    kernel_speedup = pr3_s / kernel_s
    stack_speedup = pr3_s / stack_s
    _RECORD["sweep"] = {
        "experiment": (
            "16x16 column-bypass lifetime sweep, zero-heavy FIR stream"
        ),
        "num_patterns": SWEEP_PATTERNS,
        "timesteps": TIMESTEPS,
        "lifetime_years": LIFETIME_YEARS,
        "bit_identical": True,
        "percell_value_seconds": round(pc_value, 4),
        "percell_replay_seconds": round(pc_replay, 4),
        "percell_seconds": round(pr3_s, 4),
        "soa_value_seconds": round(soa_value, 4),
        "soa_replay_seconds": round(soa_replay, 4),
        "soa_seconds": round(kernel_s, 4),
        "stack_seconds": round(stack_s, 4),
        "fold_factor": round(timings["fold_factor"], 2),
        "kernel_speedup": round(kernel_speedup, 2),
        "stack_speedup": round(stack_speedup, 2),
    }
    _flush()
    print()
    print(
        "sweep: pr3 %.3fs | soa %.3fs (%.2fx) | fold+soa %.3fs (%.2fx)"
        % (pr3_s, kernel_s, kernel_speedup, stack_s, stack_speedup)
    )
    assert kernel_speedup >= MIN_SPEEDUP_KERNEL, (
        "raw SoA kernel regressed to %.2fx of the per-cell baseline"
        % kernel_speedup
    )
    assert stack_speedup >= MIN_SPEEDUP_SWEEP, (
        "fold+SoA lifetime sweep only %.2fx faster than the PR 3 engine"
        % stack_speedup
    )


def test_numba_backend_speedup(benchmark):
    """JIT backend gate: >= 3x over interpreted SoA with numba, exact
    fallback identity without it (both recorded to the results file)."""
    netlist = column_bypass_multiplier(16)
    factory = AgedCircuitFactory.characterize(netlist, num_patterns=400)
    md, mr = sparse_fir_stream(16, SWEEP_PATTERNS, seed=1)
    stimulus = {"md": md, "mr": mr}
    years = [
        LIFETIME_YEARS * i / (TIMESTEPS - 1) for i in range(TIMESTEPS)
    ]
    scales = factory.lifetime_delay_scales(years)
    technology = factory.technology

    numba_available = jit.warmup()

    soa_value, soa_replay, soa_result = _two_plane_sweep(
        netlist, technology, stimulus, scales, "soa"
    )

    timings = {}

    def numba_sweep():
        value_s, replay_s, result = _two_plane_sweep(
            netlist, technology, stimulus, scales, "numba"
        )
        timings["value"] = value_s
        timings["replay"] = replay_s
        return result

    numba_result = benchmark.pedantic(numba_sweep, rounds=1, iterations=1)

    for j in range(len(years)):
        want = soa_result.stream_result(j)
        got = numba_result.stream_result(j)
        assert np.array_equal(got.delays, want.delays)
        assert np.array_equal(got.outputs["p"], want.outputs["p"])

    soa_s = soa_value + soa_replay
    numba_s = timings["value"] + timings["replay"]
    speedup = soa_s / numba_s
    _RECORD["numba"] = {
        "experiment": (
            "16x16 column-bypass lifetime sweep, numba JIT backend"
        ),
        "num_patterns": SWEEP_PATTERNS,
        "timesteps": TIMESTEPS,
        "numba_available": bool(numba_available),
        "bit_identical": True,
        "soa_seconds": round(soa_s, 4),
        "numba_value_seconds": round(timings["value"], 4),
        "numba_replay_seconds": round(timings["replay"], 4),
        "numba_seconds": round(numba_s, 4),
        "numba_speedup": round(speedup, 2),
    }
    _flush()
    print()
    print(
        "numba(%s): soa %.3fs | numba %.3fs = %.2fx"
        % (
            "jit" if numba_available else "fallback",
            soa_s,
            numba_s,
            speedup,
        )
    )
    if numba_available:
        assert speedup >= MIN_SPEEDUP_NUMBA, (
            "numba backend only %.2fx faster than interpreted SoA"
            % speedup
        )


def test_dsp_fold_speedup(benchmark):
    netlist = column_bypass_multiplier(16)
    circuit_pc = CompiledCircuit(netlist, kernel="percell")
    circuit_soa = CompiledCircuit(netlist)
    md, mr = sparse_fir_stream(16, DSP_PATTERNS, seed=5)
    stimulus = {"md": md, "mr": mr}

    t0 = time.perf_counter()
    want = circuit_pc.run(stimulus)
    percell_s = time.perf_counter() - t0

    timings = {}

    def folded_run():
        rounds = []
        out = None
        for _ in range(2):
            t0 = time.perf_counter()
            out = circuit_soa.run(stimulus, fold=True)
            rounds.append(time.perf_counter() - t0)
        timings["fold"] = min(rounds)
        return out

    got = benchmark.pedantic(folded_run, rounds=1, iterations=1)
    fold_s = timings["fold"]

    assert np.array_equal(got.outputs["p"], want.outputs["p"])
    assert np.array_equal(got.delays, want.delays)

    speedup = percell_s / fold_s
    plan = fold_stimulus(stimulus)
    _RECORD["dsp"] = {
        "experiment": "fig09/10 sparse FIR stream, single-pass run",
        "num_patterns": DSP_PATTERNS,
        "unique_transitions": int(plan.num_unique),
        "fold_factor": round(plan.fold_factor, 2),
        "bit_identical": True,
        "percell_seconds": round(percell_s, 4),
        "fold_soa_seconds": round(fold_s, 4),
        "fold_speedup": round(speedup, 2),
    }
    _flush()
    print()
    print(
        "dsp: percell %.3fs | fold+soa %.3fs = %.2fx (fold factor %.1f)"
        % (percell_s, fold_s, speedup, plan.fold_factor)
    )
    assert speedup >= MIN_SPEEDUP_DSP, (
        "folded DSP run only %.2fx faster than the per-cell baseline"
        % speedup
    )


def _flush():
    os.makedirs(RESULTS, exist_ok=True)
    with open(os.path.join(RESULTS, "BENCH_kernel.json"), "w") as fh:
        json.dump(_RECORD, fh, indent=2, sort_keys=True)
        fh.write("\n")
