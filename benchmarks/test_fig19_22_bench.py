"""Figs. 19-22 bench: traditional vs adaptive error counts, aged.

Fig. 19: 16x16 column.  Fig. 20: 32x32 column.
Fig. 21: 16x16 row.     Fig. 22: 32x32 row.
"""

from conftest import run_once

from repro.experiments import fig19_22_adaptive_errors


def test_fig19_errors_16_column(benchmark, ctx):
    result = run_once(
        benchmark, fig19_22_adaptive_errors.run_fig19, ctx,
        num_patterns=1500,
    )
    assert result.adaptive_never_worse(slack=2)
    print()
    print(result.render())


def test_fig20_errors_32_column(benchmark, ctx):
    result = run_once(
        benchmark, fig19_22_adaptive_errors.run_fig20, ctx,
        num_patterns=500,
    )
    assert result.adaptive_never_worse(slack=2)


def test_fig21_errors_16_row(benchmark, ctx):
    result = run_once(
        benchmark, fig19_22_adaptive_errors.run_fig21, ctx,
        num_patterns=1500,
    )
    assert result.adaptive_never_worse(slack=2)


def test_fig22_errors_32_row(benchmark, ctx):
    result = run_once(
        benchmark, fig19_22_adaptive_errors.run_fig22, ctx,
        num_patterns=500,
    )
    assert result.adaptive_never_worse(slack=2)
