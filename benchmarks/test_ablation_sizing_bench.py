"""Ablation bench: gate sizing vs the aging guard-band (Section IV-A).

Compares three ways to survive 7-year BTI on the fixed-latency CB host:

* guard-band: clock at the aged critical path (the paper's baseline),
* uniform overdesign: upsize *everything* 1.5x (the area-hungry
  traditional fix the introduction criticizes),
* targeted sizing: upsize only near-critical cells.

And shows the adaptive architecture beats all three without any sizing.
"""

from conftest import run_once

from repro.nets.sizing import uniform_sizing, upsize_critical_paths
from repro.timing import StaticTiming


def test_sizing_vs_adaptive(benchmark, ctx):
    netlist = ctx.netlist(16, "column")
    factory = ctx.factory(16, "column")

    def evaluate():
        aged_scale = factory.delay_scale(7.0)
        guard_band = StaticTiming(
            netlist, ctx.technology, aged_scale
        ).critical_delay

        uniform = uniform_sizing(netlist, 1.5)
        uniform_aged = StaticTiming(
            netlist, ctx.technology,
            aged_scale * uniform.delay_scale(),
        ).critical_delay

        targeted = upsize_critical_paths(netlist, factor=1.5,
                                         slack_fraction=0.93)
        targeted_aged = StaticTiming(
            netlist, ctx.technology,
            aged_scale * targeted.delay_scale(),
        ).critical_delay

        arch = ctx.variable_design(16, "column", 7, 0.9)
        adaptive = arch.run_random(2000, seed=3, years=7.0)
        return {
            "guard_band_ns": guard_band,
            "uniform_ns": uniform_aged,
            "uniform_extra_t": uniform.extra_transistors(netlist),
            "targeted_ns": targeted_aged,
            "targeted_extra_t": targeted.extra_transistors(netlist),
            "adaptive_ns": adaptive.report.average_latency_ns,
        }

    result = run_once(benchmark, evaluate)
    # Sizing compresses the aged cycle; targeted costs less area.
    assert result["uniform_ns"] < result["guard_band_ns"]
    assert result["targeted_ns"] < result["guard_band_ns"]
    assert result["targeted_extra_t"] < result["uniform_extra_t"]
    # The adaptive architecture beats every sized fixed design with
    # zero sizing area.
    assert result["adaptive_ns"] < result["targeted_ns"]
    for key, value in result.items():
        print("%s: %s" % (key, value))
