"""Clients for the reliability service.

Two flavors over the same JSON-lines protocol:

* :class:`ServiceClient` -- synchronous, one socket, strict
  request/response turns.  This is what CI scripts and ordinary tools
  use.
* :class:`AsyncServiceClient` -- asyncio streams, one request at a
  time per instance; open several instances and ``gather`` to exercise
  the server's coalescing (the acceptance soak does exactly that).
"""

from __future__ import annotations

import asyncio
import itertools
import socket
from typing import Dict, List, Optional, Sequence, Union

from ..errors import ServiceError
from .protocol import decode, encode


def _query_request(
    request_id,
    width: int,
    kind: str,
    years: Union[float, Sequence[float]],
    num_patterns: int = 1000,
    seed: int = 1,
    cycle_ns: Optional[float] = None,
    deadline_ms: Optional[float] = None,
    inject: Optional[str] = None,
) -> Dict:
    request = {
        "op": "query",
        "id": request_id,
        "width": width,
        "kind": kind,
        "years": list(years)
        if isinstance(years, (list, tuple))
        else years,
        "num_patterns": num_patterns,
        "seed": seed,
    }
    if cycle_ns is not None:
        request["cycle_ns"] = cycle_ns
    if deadline_ms is not None:
        request["deadline_ms"] = deadline_ms
    if inject is not None:
        request["inject"] = inject
    return request


class ServiceClient:
    """Blocking JSON-lines client (lazy connect, context manager)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout_s: float = 60.0,
    ):
        self.host = host
        self.port = int(port)
        self.timeout_s = timeout_s
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._ids = itertools.count(1)

    def connect(self) -> "ServiceClient":
        if self._sock is None:
            try:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout_s
                )
            except OSError as exc:
                raise ServiceError(
                    "cannot connect to service at %s:%d: %s"
                    % (self.host, self.port, exc)
                ) from exc
            self._sock = sock
            self._file = sock.makefile("rb")
        return self

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------

    def request(self, message: Dict) -> Dict:
        """One request/response turn (raises on transport failure)."""
        self.connect()
        self._sock.sendall(encode(message))
        line = self._file.readline()
        if not line:
            raise ServiceError(
                "service at %s:%d closed the connection"
                % (self.host, self.port)
            )
        return decode(line)

    def query(
        self,
        width: int,
        kind: str,
        years: Union[float, Sequence[float]],
        **options,
    ) -> Dict:
        """A reliability query; returns the full typed response."""
        return self.request(
            _query_request(next(self._ids), width, kind, years, **options)
        )

    def results(
        self,
        width: int,
        kind: str,
        years: Union[float, Sequence[float]],
        **options,
    ) -> List[Dict]:
        """Query and return just the per-year records; raises
        :class:`~repro.errors.ServiceError` on a non-``ok`` status."""
        response = self.query(width, kind, years, **options)
        if response.get("status") != "ok":
            raise ServiceError(
                "query degraded to %r: %s"
                % (
                    response.get("status"),
                    response.get("error") or response.get("degraded"),
                )
            )
        return response["results"]

    def ping(self) -> bool:
        return (
            self.request({"op": "ping", "id": next(self._ids)}).get(
                "status"
            )
            == "ok"
        )

    def stats(self) -> Dict:
        response = self.request({"op": "stats", "id": next(self._ids)})
        return response["results"][0]

    def shutdown(self) -> None:
        self.request({"op": "shutdown", "id": next(self._ids)})


class AsyncServiceClient:
    """Asyncio JSON-lines client (one in-flight request per instance)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0):
        self.host = host
        self.port = int(port)
        self._reader = None
        self._writer = None
        self._ids = itertools.count(1)
        self._turn = asyncio.Lock()

    async def connect(self) -> "AsyncServiceClient":
        if self._writer is None:
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )
        return self

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None
            self._reader = None

    async def request(self, message: Dict) -> Dict:
        await self.connect()
        async with self._turn:
            self._writer.write(encode(message))
            await self._writer.drain()
            line = await self._reader.readline()
        if not line:
            raise ServiceError(
                "service at %s:%d closed the connection"
                % (self.host, self.port)
            )
        return decode(line)

    async def query(
        self,
        width: int,
        kind: str,
        years: Union[float, Sequence[float]],
        **options,
    ) -> Dict:
        return await self.request(
            _query_request(next(self._ids), width, kind, years, **options)
        )


async def gather_queries(
    port: int,
    requests: Sequence[Dict],
    host: str = "127.0.0.1",
) -> List[Dict]:
    """Fire ``requests`` (kwargs for :meth:`AsyncServiceClient.query`)
    concurrently, one connection each -- the coalescing soak helper."""
    clients = [AsyncServiceClient(host, port) for _ in requests]

    async def _one(client: AsyncServiceClient, kwargs: Dict) -> Dict:
        try:
            return await client.query(**kwargs)
        finally:
            await client.close()

    return list(
        await asyncio.gather(
            *(
                _one(client, dict(kwargs))
                for client, kwargs in zip(clients, requests)
            )
        )
    )


def run_concurrent_queries(
    port: int, requests: Sequence[Dict], host: str = "127.0.0.1"
) -> List[Dict]:
    """Synchronous wrapper around :func:`gather_queries` (spins a
    private event loop; usable from tests and the CLI bench)."""
    return asyncio.run(gather_queries(port, requests, host=host))
