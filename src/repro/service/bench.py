"""Service benchmark + invariant harness.

One function, two callers: ``python -m repro.service bench`` and
``benchmarks/test_service_bench.py`` both run this end-to-end pass
against a private server and record the same JSON
(``benchmarks/results/BENCH_service.json``):

* **cold** -- first query of a design (backend characterizes + builds);
* **warm** -- repeated identical queries (hot LRU tier);
* **coalescing** -- N identical concurrent cold queries must trigger
  exactly ONE backend build;
* **degraded paths** -- a deadline miss and a killed backend worker
  must both come back as *typed* responses (stale-if-available,
  error record otherwise), never connection failures.

Invariant violations are returned as a list of strings (the CLI exits
3 on any; the pytest wrapper asserts the list is empty).
"""

from __future__ import annotations

import tempfile
import time
from typing import Dict, List, Optional, Tuple

from .client import ServiceClient, run_concurrent_queries
from .server import ServiceConfig, serve_in_background

#: Warm queries must beat the cold build by at least this factor.
MIN_WARM_SPEEDUP = 5.0


def run_service_bench(
    store_dir: Optional[str] = None,
    characterize_patterns: int = 300,
    width: int = 8,
    kind: str = "column",
    num_patterns: int = 200,
    warm_repeats: int = 20,
    duplicates: int = 8,
) -> Tuple[Dict, List[str]]:
    """Run the bench pass; returns ``(record, invariant_failures)``."""
    failures: List[str] = []
    temp = None
    if store_dir is None:
        temp = tempfile.TemporaryDirectory(prefix="repro-service-bench-")
        store_dir = temp.name
    config = ServiceConfig(
        port=0,
        store_dir=store_dir,
        workers=1,
        characterize_patterns=characterize_patterns,
        testing_hooks=True,
    )
    base = {
        "width": width,
        "kind": kind,
        "num_patterns": num_patterns,
        "cycle_ns": 8.0,
    }
    try:
        with serve_in_background(config) as handle:
            client = ServiceClient(port=handle.port)
            with client:
                record = _run_pass(
                    client, handle, base, warm_repeats, duplicates,
                    failures,
                )
    finally:
        if temp is not None:
            temp.cleanup()
    record["invariant_failures"] = list(failures)
    return record, failures


def _timed_query(client: ServiceClient, base: Dict, **kwargs):
    t0 = time.perf_counter()
    response = client.query(
        base["width"], base["kind"], kwargs.pop("years"),
        num_patterns=base["num_patterns"],
        cycle_ns=base["cycle_ns"],
        **kwargs,
    )
    return response, (time.perf_counter() - t0) * 1e3


def _run_pass(
    client: ServiceClient,
    handle,
    base: Dict,
    warm_repeats: int,
    duplicates: int,
    failures: List[str],
) -> Dict:
    # -- cold: characterize + first build ------------------------------
    cold, cold_ms = _timed_query(client, base, years=0.0)
    if cold.get("status") != "ok":
        failures.append("cold query not ok: %r" % (cold.get("status"),))

    # -- warm: hot LRU tier --------------------------------------------
    warm_ms = []
    for _ in range(warm_repeats):
        warm, ms = _timed_query(client, base, years=0.0)
        warm_ms.append(ms)
        if warm.get("source") != "lru":
            failures.append(
                "warm query served from %r, expected lru"
                % (warm.get("source"),)
            )
            break
    warm_mean_ms = sum(warm_ms) / max(1, len(warm_ms))
    warm_speedup = cold_ms / warm_mean_ms if warm_mean_ms else 0.0
    if warm_speedup < MIN_WARM_SPEEDUP:
        failures.append(
            "warm queries only %.1fx faster than cold (need >= %.1fx)"
            % (warm_speedup, MIN_WARM_SPEEDUP)
        )

    # -- coalescing: N identical concurrent cold queries ---------------
    before = client.stats()["counters"]
    request = dict(base, years=7.0, seed=1)
    responses = run_concurrent_queries(
        handle.port, [request] * duplicates
    )
    after = client.stats()["counters"]
    builds = after["backend_calls"] - before["backend_calls"]
    coalesced = after["coalesced"] - before["coalesced"]
    shared_hits = coalesced + (after["lru_hits"] - before["lru_hits"])
    if builds != 1:
        failures.append(
            "%d identical concurrent cold queries triggered %d backend"
            " builds (expected exactly 1)" % (duplicates, builds)
        )
    if shared_hits != duplicates - 1:
        failures.append(
            "coalesced+lru served %d of %d duplicate queries"
            " (expected %d)"
            % (shared_hits, duplicates, duplicates - 1)
        )
    bad = [r for r in responses if r.get("status") != "ok"]
    if bad:
        failures.append(
            "%d duplicate queries degraded: %r"
            % (len(bad), bad[0].get("status"))
        )

    # -- degraded: deadline (stale available) --------------------------
    deadline, _ = _timed_query(
        client, base, years=11.0, inject="sleep:1.0", deadline_ms=150,
    )
    if deadline.get("status") != "degraded" or (
        deadline.get("degraded", {}).get("reason") != "deadline"
    ):
        failures.append(
            "deadline miss returned %r, expected degraded/deadline"
            % (deadline.get("status"),)
        )
    if not deadline.get("results"):
        failures.append("deadline degradation served no stale results")

    # -- degraded: killed backend worker (stale available) -------------
    crash, _ = _timed_query(client, base, years=13.0, inject="crash")
    if crash.get("status") != "degraded" or (
        crash.get("degraded", {}).get("reason") != "backend-crash"
    ):
        failures.append(
            "worker crash returned %r, expected degraded/backend-crash"
            % (crash.get("status"),)
        )

    # -- typed error record when nothing stale exists ------------------
    fresh = dict(base, num_patterns=base["num_patterns"] + 1)
    t0 = time.perf_counter()
    error = client.query(
        fresh["width"], fresh["kind"], 0.0,
        num_patterns=fresh["num_patterns"],
        cycle_ns=fresh["cycle_ns"],
        inject="crash",
    )
    error_ms = (time.perf_counter() - t0) * 1e3
    if error.get("status") != "error" or (
        error.get("error", {}).get("type") != "BackendCrashError"
    ):
        failures.append(
            "crash without stale data returned %r, expected typed"
            " error record" % (error.get("status"),)
        )

    # -- recovery: the pool was rebuilt, normal service resumed --------
    recovered, _ = _timed_query(client, base, years=3.0)
    if recovered.get("status") != "ok":
        failures.append(
            "service did not recover after worker crash: %r"
            % (recovered.get("status"),)
        )

    stats = client.stats()
    return {
        "experiment": "reliability service: %dx%d %s, %d patterns"
        % (base["width"], base["width"], base["kind"],
           base["num_patterns"]),
        "cold_ms": round(cold_ms, 3),
        "warm_mean_ms": round(warm_mean_ms, 3),
        "warm_speedup": round(warm_speedup, 2),
        "min_warm_speedup": MIN_WARM_SPEEDUP,
        "duplicates": duplicates,
        "duplicate_backend_builds": builds,
        "duplicate_coalesced": coalesced,
        "deadline_status": deadline.get("status"),
        "deadline_reason": deadline.get("degraded", {}).get("reason"),
        "crash_status": crash.get("status"),
        "crash_reason": crash.get("degraded", {}).get("reason"),
        "error_type_without_stale": error.get("error", {}).get("type"),
        "error_response_ms": round(error_ms, 3),
        "recovered_after_crash": recovered.get("status") == "ok",
        "counters": stats["counters"],
    }
