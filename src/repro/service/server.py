"""Asyncio serving layer: LRU tier, coalescing, deadlines, degradation.

The ROADMAP's "reliability-as-a-service" oracle: clients ask
"design X, workload Y, year t" and get latency / error-rate /
switching stats.  Three tiers answer a query:

1. **Hot LRU** -- an in-memory map of ``(design, workload, year)`` to
   result records, bounded by ``lru_size`` (evictions fall through to
   the stale tier, which only ever serves degraded responses).
2. **On-disk store** -- backend workers run store-backed experiment
   contexts, so anything ever priced by this or a previous server
   process is a cheap disk hit.
3. **Backend build** -- a single-flight, batched dispatch: concurrent
   misses on the same ``(spec, year)`` share ONE in-flight future, and
   a multi-year query prices all its missing years in one batched
   arrival replay.

Failure is data, not disconnection: a missed deadline or a crashed
backend worker produces a typed ``degraded`` response (stale data when
any is available) or a typed ``error`` record.  The TCP connection --
and the server -- always survive; counters make every degradation
observable via the ``stats`` op.
"""

from __future__ import annotations

import asyncio
import dataclasses
import threading
import time
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from ..errors import BackendCrashError, ReproError, ServiceError
from .backend import Backend
from .protocol import (
    QuerySpec,
    decode,
    degraded_response,
    encode,
    error_response,
    ok_response,
)

#: Counter names exposed by the ``stats`` op (all start at zero).
COUNTERS = (
    "connections",
    "requests",
    "queries",
    "lru_hits",
    "coalesced",
    "backend_calls",
    "backend_builds",
    "deadline_exceeded",
    "degraded_stale",
    "backend_crashes",
    "error_responses",
    "protocol_errors",
)


@dataclasses.dataclass
class ServiceConfig:
    """Tunables of one :class:`ReliabilityService` instance."""

    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port (read it back from ``service.port``).
    port: int = 0
    store_dir: Optional[str] = None
    lru_size: int = 1024
    stale_size: int = 4096
    workers: int = 1
    characterize_patterns: int = 2000
    #: Applied when a request carries no ``deadline_ms`` (None: wait).
    default_deadline_ms: Optional[float] = None
    #: Enables the ``inject`` request field (deterministic crash/sleep
    #: used by tests and the CI degraded-path checks).
    testing_hooks: bool = False
    #: Execution kernel of every backend worker (``soa`` / ``percell``
    #: / ``numba``); kernels agree on every served field except the
    #: float-association noise in ``mean_switched_cap``.
    kernel: str = "soa"


class ReliabilityService:
    """The asyncio TCP JSON-lines reliability oracle."""

    def __init__(self, config: ServiceConfig):
        self.config = config
        self.backend = Backend(
            store_dir=config.store_dir,
            workers=config.workers,
            characterize_patterns=config.characterize_patterns,
            testing_hooks=config.testing_hooks,
            kernel=config.kernel,
        )
        self.counters: Dict[str, int] = {name: 0 for name in COUNTERS}
        self._lru: "OrderedDict[Tuple, Dict]" = OrderedDict()
        self._stale: "OrderedDict[Tuple, Dict]" = OrderedDict()
        self._inflight: Dict[Tuple, asyncio.Future] = {}
        #: Strong refs to in-flight build tasks (asyncio only keeps
        #: weak ones; an unreferenced task can be collected mid-build).
        self._build_tasks: set = set()
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopped: Optional[asyncio.Event] = None
        self.port: Optional[int] = None

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.backend.close()
        if self._stopped is not None:
            self._stopped.set()

    async def serve_until_stopped(self) -> None:
        """Block until :meth:`stop` (or a ``shutdown`` op) is called."""
        await self._stopped.wait()

    # -- connection handling --------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        self.counters["connections"] += 1
        write_lock = asyncio.Lock()
        tasks = []
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.ensure_future(
                    self._serve_line(line, writer, write_lock)
                )
                tasks.append(task)
                tasks = [t for t in tasks if not t.done()]
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            for task in tasks:
                if not task.done():
                    task.cancel()
            try:
                writer.close()
            except Exception:
                pass

    async def _serve_line(self, line, writer, write_lock) -> None:
        self.counters["requests"] += 1
        request_id = None
        try:
            request = decode(line)
            request_id = request.get("id")
            response = await self._dispatch_op(request)
        except ServiceError as exc:
            self.counters["protocol_errors"] += 1
            response = error_response(
                request_id, "backend-error", type(exc).__name__, str(exc)
            )
        except Exception as exc:  # never let a request kill the server
            self.counters["error_responses"] += 1
            response = error_response(
                request_id, "backend-error", type(exc).__name__, str(exc)
            )
        async with write_lock:
            writer.write(encode(response))
            try:
                await writer.drain()
            except ConnectionError:
                pass

    async def _dispatch_op(self, request: Dict) -> Dict:
        op = request.get("op")
        request_id = request.get("id")
        if op == "ping":
            return ok_response(request_id, [], "service", 0.0)
        if op == "stats":
            return ok_response(
                request_id, [self.stats()], "service", 0.0
            )
        if op == "shutdown":
            asyncio.get_running_loop().call_soon(
                lambda: asyncio.ensure_future(self.stop())
            )
            return ok_response(request_id, [], "service", 0.0)
        if op == "query":
            return await self._serve_query(request)
        raise ServiceError(
            "unknown op %r (known: query, ping, stats, shutdown)" % (op,)
        )

    def stats(self) -> Dict:
        counters = dict(self.counters)
        counters["backend_pool_crashes"] = self.backend.crashes
        return {
            "counters": counters,
            "lru_entries": len(self._lru),
            "stale_entries": len(self._stale),
            "inflight": len(self._inflight),
        }

    # -- the query path -------------------------------------------------

    async def _serve_query(self, request: Dict) -> Dict:
        start = time.perf_counter()
        request_id = request.get("id")
        spec = QuerySpec.from_request(request)
        inject = (
            request.get("inject") if self.config.testing_hooks else None
        )
        self.counters["queries"] += 1
        deadline_ms = request.get(
            "deadline_ms", self.config.default_deadline_ms
        )
        timeout = None if deadline_ms is None else float(deadline_ms) / 1e3
        try:
            results, source = await asyncio.wait_for(
                self._results_for(spec, inject), timeout
            )
            return ok_response(
                request_id,
                results,
                source,
                (time.perf_counter() - start) * 1e3,
            )
        except asyncio.TimeoutError:
            self.counters["deadline_exceeded"] += 1
            return self._degrade(
                request_id, spec, "deadline", start,
                "deadline of %.1f ms exceeded" % float(deadline_ms),
            )
        except BackendCrashError as exc:
            self.counters["backend_crashes"] += 1
            return self._degrade(
                request_id, spec, "backend-crash", start, str(exc)
            )
        except ReproError as exc:
            self.counters["error_responses"] += 1
            return error_response(
                request_id,
                "backend-error",
                type(exc).__name__,
                str(exc),
                (time.perf_counter() - start) * 1e3,
            )

    async def _results_for(
        self, spec: QuerySpec, inject: Optional[str]
    ) -> Tuple[List[Dict], str]:
        """The per-year records for ``spec`` -- LRU hits, coalesced
        waits and at most one backend dispatch for the missing years."""
        keys = [spec.cache_key(year) for year in spec.years]
        ready: Dict[Tuple, Dict] = {}
        waiting: Dict[Tuple, asyncio.Future] = {}
        build_years: List[float] = []
        for year, key in zip(spec.years, keys):
            if key in ready or key in waiting:
                continue
            cached = None if inject else self._lru_get(key)
            if cached is not None:
                self.counters["lru_hits"] += 1
                ready[key] = cached
            elif key in self._inflight:
                self.counters["coalesced"] += 1
                waiting[key] = self._inflight[key]
            else:
                future = asyncio.get_running_loop().create_future()
                # Mark handled so an abandoned future (every waiter
                # timed out) never logs "exception was never retrieved".
                future.add_done_callback(
                    lambda f: f.cancelled() or f.exception()
                )
                self._inflight[key] = future
                waiting[key] = future
                build_years.append(year)
        if build_years:
            self.counters["backend_calls"] += 1
            self.counters["backend_builds"] += len(build_years)
            task = asyncio.ensure_future(
                self._build(spec.with_years(build_years), inject)
            )
            self._build_tasks.add(task)
            task.add_done_callback(self._build_tasks.discard)
        for key, future in waiting.items():
            # shield: a deadline cancels THIS waiter, not the shared
            # in-flight computation other clients are waiting on.
            ready[key] = await asyncio.shield(future)
        source = "backend" if build_years else (
            "coalesced" if waiting else "lru"
        )
        return [ready[key] for key in keys], source

    async def _build(
        self, spec: QuerySpec, inject: Optional[str]
    ) -> None:
        """Run one backend dispatch and settle its in-flight futures."""
        keys = [spec.cache_key(year) for year in spec.years]
        try:
            records = await self.backend.run(spec, inject)
        except Exception as exc:
            for key in keys:
                future = self._inflight.pop(key, None)
                if future is not None and not future.done():
                    future.set_exception(exc)
            return
        for key, record in zip(keys, records):
            self._lru_put(key, record)
            future = self._inflight.pop(key, None)
            if future is not None and not future.done():
                future.set_result(record)

    # -- degradation ----------------------------------------------------

    def _degrade(
        self, request_id, spec: QuerySpec, reason: str, start: float,
        message: str,
    ) -> Dict:
        """Stale-if-available, typed error record otherwise."""
        stale, stale_years = self._stale_lookup(spec)
        elapsed_ms = (time.perf_counter() - start) * 1e3
        if stale:
            self.counters["degraded_stale"] += 1
            return degraded_response(
                request_id, reason, stale, stale_years, elapsed_ms
            )
        self.counters["error_responses"] += 1
        return error_response(
            request_id,
            reason,
            "DeadlineExceededError"
            if reason == "deadline"
            else "BackendCrashError",
            message,
            elapsed_ms,
        )

    def _stale_lookup(
        self, spec: QuerySpec
    ) -> Tuple[List[Dict], List[float]]:
        """Freshest previously computed records for ``spec``: exact
        ``(group, year)`` matches first, else the nearest year priced
        for the same group."""
        stale: List[Dict] = []
        stale_years: List[float] = []
        group = spec.group_key()
        available = [
            (key[-1], record)
            for key, record in self._stale.items()
            if key[:-1] == group
        ]
        if not available:
            return [], []
        for year in spec.years:
            exact = self._stale.get(spec.cache_key(year))
            if exact is not None:
                stale.append(exact)
                stale_years.append(float(year))
                continue
            nearest_year, record = min(
                available, key=lambda pair: abs(pair[0] - year)
            )
            stale.append(record)
            stale_years.append(float(nearest_year))
        return stale, stale_years

    # -- cache tiers ----------------------------------------------------

    def _lru_get(self, key: Tuple) -> Optional[Dict]:
        record = self._lru.get(key)
        if record is not None:
            self._lru.move_to_end(key)
        return record

    def _lru_put(self, key: Tuple, record: Dict) -> None:
        self._lru[key] = record
        self._lru.move_to_end(key)
        while len(self._lru) > self.config.lru_size:
            self._lru.popitem(last=False)
        self._stale[key] = record
        self._stale.move_to_end(key)
        while len(self._stale) > self.config.stale_size:
            self._stale.popitem(last=False)


# ----------------------------------------------------------------------
# Background serving (tests, the bench harness, the CLI).
# ----------------------------------------------------------------------


class ServiceHandle:
    """A service running on a daemon thread with its own event loop."""

    def __init__(self, service: ReliabilityService, thread, loop):
        self.service = service
        self.port: int = service.port
        self._thread = thread
        self._loop = loop

    def stop(self, timeout_s: float = 10.0) -> None:
        if self._thread.is_alive():
            asyncio.run_coroutine_threadsafe(
                self.service.stop(), self._loop
            )
            self._thread.join(timeout_s)

    def __enter__(self) -> "ServiceHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def serve_in_background(
    config: ServiceConfig, startup_timeout_s: float = 30.0
) -> ServiceHandle:
    """Start a :class:`ReliabilityService` on a daemon thread and wait
    until it is accepting connections.  The handle is a context
    manager; ``stop()`` shuts the loop down cleanly."""
    service = ReliabilityService(config)
    started = threading.Event()
    box: Dict[str, object] = {}

    def _run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        box["loop"] = loop

        async def _main() -> None:
            await service.start()
            started.set()
            await service.serve_until_stopped()

        try:
            loop.run_until_complete(_main())
        finally:
            # Idle connection handlers may still be parked on readline;
            # cancel and drain them so loop.close() is clean.
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.close()

    thread = threading.Thread(
        target=_run, name="repro-service", daemon=True
    )
    thread.start()
    if not started.wait(startup_timeout_s):
        raise ServiceError(
            "service did not start within %.1f s" % startup_timeout_s
        )
    return ServiceHandle(service, thread, box["loop"])
