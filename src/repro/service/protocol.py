"""Wire protocol of the reliability query service.

The service speaks newline-delimited JSON over a stream: every request
is one JSON object on one line, every response one JSON object on one
line carrying the request's ``id``.  The protocol is deliberately
boring -- any language with sockets and a JSON parser is a client.

Request (``op: "query"``)::

    {"op": "query", "id": 1, "width": 16, "kind": "column",
     "years": [0.0, 10.0], "num_patterns": 2000, "seed": 1,
     "cycle_ns": 6.5, "deadline_ms": 250}

Other ops: ``ping`` (liveness), ``stats`` (service counters),
``shutdown`` (stop serving; used by CI and the bench harness).

Response statuses form the degradation matrix (DESIGN.md section 13):

* ``ok`` -- fresh results, one record per requested year;
* ``degraded`` -- the backend missed the deadline or crashed, but a
  previously computed (possibly different-year) result was available:
  ``results`` carries that stale data and ``degraded`` says why;
* ``error`` -- a typed error record (no stale data available, or the
  request itself was invalid).  The connection always survives.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ServiceError

#: Protocol tag + version stamped into every response.
PROTOCOL = "repro-reliability"
PROTOCOL_VERSION = 1

#: Operations a request may carry.
OPS = ("query", "ping", "stats", "shutdown")

#: Designs the service accepts (mirrors the experiment registry).
KNOWN_KINDS = ("am", "column", "row")

#: Degradation reasons a ``degraded``/``error`` response may carry.
REASONS = ("deadline", "backend-crash", "backend-error")


def encode(message: Dict) -> bytes:
    """One canonical JSON line (sorted keys, compact separators)."""
    return (
        json.dumps(message, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def decode(line: bytes) -> Dict:
    """Parse one request line; malformed input raises ServiceError."""
    try:
        message = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ServiceError("request is not valid JSON: %s" % exc) from None
    if not isinstance(message, dict):
        raise ServiceError("request must be a JSON object")
    return message


@dataclasses.dataclass(frozen=True)
class QuerySpec:
    """A validated reliability query (the service's cache unit is one
    ``(spec, year)`` pair; one spec may ask for many years so a single
    batched arrival replay prices them together).

    Attributes:
        width: Multiplier operand width.
        kind: Design kind (``am`` / ``column`` / ``row``).
        years: Aging points to price (ascending not required).
        num_patterns: Operand-stream length.
        seed: Operand-stream seed.
        cycle_ns: Optional clock budget; enables the error-rate stat.
    """

    width: int
    kind: str
    years: Tuple[float, ...]
    num_patterns: int
    seed: int
    cycle_ns: Optional[float]

    @classmethod
    def from_request(cls, request: Dict) -> "QuerySpec":
        width = request.get("width")
        if not isinstance(width, int) or not 2 <= width <= 64:
            raise ServiceError(
                "query width must be an int in [2, 64], got %r" % (width,)
            )
        kind = request.get("kind")
        if kind not in KNOWN_KINDS:
            raise ServiceError(
                "query kind must be one of %s, got %r"
                % (list(KNOWN_KINDS), kind)
            )
        years = request.get("years", 0.0)
        if isinstance(years, (int, float)):
            years = [years]
        if (
            not isinstance(years, list)
            or not years
            or not all(
                isinstance(y, (int, float)) and 0 <= y <= 100
                for y in years
            )
        ):
            raise ServiceError(
                "query years must be a number or non-empty list of"
                " numbers in [0, 100], got %r" % (years,)
            )
        num_patterns = request.get("num_patterns", 1000)
        if not isinstance(num_patterns, int) or not (
            1 <= num_patterns <= 1_000_000
        ):
            raise ServiceError(
                "query num_patterns must be an int in [1, 1e6], got %r"
                % (num_patterns,)
            )
        seed = request.get("seed", 1)
        if not isinstance(seed, int):
            raise ServiceError("query seed must be an int")
        cycle_ns = request.get("cycle_ns")
        if cycle_ns is not None and (
            not isinstance(cycle_ns, (int, float)) or cycle_ns <= 0
        ):
            raise ServiceError("query cycle_ns must be a positive number")
        return cls(
            width=width,
            kind=str(kind),
            years=tuple(float(y) for y in years),
            num_patterns=num_patterns,
            seed=seed,
            cycle_ns=None if cycle_ns is None else float(cycle_ns),
        )

    def group_key(self) -> Tuple:
        """Everything but the year -- queries sharing a group fold into
        one batched replay."""
        return (
            self.width,
            self.kind,
            self.num_patterns,
            self.seed,
            self.cycle_ns,
        )

    def cache_key(self, year: float) -> Tuple:
        return self.group_key() + (float(year),)

    def with_years(self, years: Sequence[float]) -> "QuerySpec":
        return dataclasses.replace(self, years=tuple(years))

    def to_payload(self) -> Dict:
        """A picklable dict shipped to backend workers."""
        return {
            "width": self.width,
            "kind": self.kind,
            "years": list(self.years),
            "num_patterns": self.num_patterns,
            "seed": self.seed,
            "cycle_ns": self.cycle_ns,
        }


def ok_response(
    request_id, results: List[Dict], source: str, elapsed_ms: float
) -> Dict:
    return {
        "protocol": PROTOCOL,
        "version": PROTOCOL_VERSION,
        "id": request_id,
        "status": "ok",
        "source": source,
        "elapsed_ms": round(elapsed_ms, 3),
        "results": results,
    }


def degraded_response(
    request_id,
    reason: str,
    results: List[Dict],
    stale_years: List[float],
    elapsed_ms: float,
) -> Dict:
    """Stale-if-available degradation: ``results`` holds the freshest
    previously computed records (their true years in ``stale_years``)."""
    return {
        "protocol": PROTOCOL,
        "version": PROTOCOL_VERSION,
        "id": request_id,
        "status": "degraded",
        "degraded": {
            "reason": reason,
            "stale": True,
            "stale_years": stale_years,
        },
        "elapsed_ms": round(elapsed_ms, 3),
        "results": results,
    }


def error_response(
    request_id, reason: str, error_type: str, message: str,
    elapsed_ms: float = 0.0,
) -> Dict:
    return {
        "protocol": PROTOCOL,
        "version": PROTOCOL_VERSION,
        "id": request_id,
        "status": "error",
        "error": {
            "reason": reason,
            "type": error_type,
            "message": message,
        },
        "elapsed_ms": round(elapsed_ms, 3),
        "results": [],
    }
