"""Reliability-service command line.

Usage::

    python -m repro.service serve --store .repro-store --port 7753
    python -m repro.service query --port 7753 --width 16 --kind column \\
        --years 0,5,10 --patterns 2000 --cycle-ns 6.5
    python -m repro.service direct --store .repro-store --width 16 \\
        --kind column --years 0,5,10 --patterns 2000 --cycle-ns 6.5
    python -m repro.service bench --json BENCH_service.json

``query`` talks to a running server; ``direct`` computes the identical
records in-process (the identity oracle CI ``cmp``'s served responses
against).  ``bench`` spins a private server and measures cold / warm /
coalesced latency plus both degraded paths, writing a JSON record.

Exit status: 0 on success, 2 on configuration/usage errors, 3 when a
bench invariant fails.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from ..errors import ReproError
from .backend import compute_direct
from .client import ServiceClient, run_concurrent_queries
from .protocol import QuerySpec
from .server import ServiceConfig, serve_in_background


def _canonical(data) -> str:
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def _kernel_arg(text: str) -> str:
    from ..timing.engine import normalize_kernel

    try:
        return normalize_kernel(text)
    except ReproError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _years(text: str):
    return [float(part) for part in text.split(",") if part]


def _add_query_args(parser, with_store: bool) -> None:
    parser.add_argument("--width", type=int, default=16)
    parser.add_argument("--kind", default="column",
                        choices=("am", "column", "row"))
    parser.add_argument("--years", default="0", metavar="Y1,Y2,...")
    parser.add_argument("--patterns", type=int, default=1000)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--cycle-ns", type=float, default=None)
    parser.add_argument(
        "--json", metavar="PATH",
        help="write the per-year result records (canonical JSON)",
    )
    if with_store:
        parser.add_argument("--store", metavar="DIR", default=None)
        parser.add_argument(
            "--characterize-patterns", type=int, default=2000
        )
        parser.add_argument(
            "--kernel", type=_kernel_arg, default="soa",
            help="execution kernel (soa, percell, numba); records agree"
            " across kernels except switched-cap float association",
        )


def _spec_from_args(args) -> QuerySpec:
    return QuerySpec(
        width=args.width,
        kind=args.kind,
        years=tuple(_years(args.years)),
        num_patterns=args.patterns,
        seed=args.seed,
        cycle_ns=args.cycle_ns,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Aging-aware reliability query service.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the asyncio server")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7753)
    serve.add_argument("--store", metavar="DIR", default=None)
    serve.add_argument("--workers", type=int, default=1)
    serve.add_argument("--lru-size", type=int, default=1024)
    serve.add_argument("--characterize-patterns", type=int, default=2000)
    serve.add_argument(
        "--kernel", type=_kernel_arg, default="soa",
        help="execution kernel of the backend workers (soa, percell,"
        " numba); records agree across kernels except switched-cap"
        " float association",
    )
    serve.add_argument(
        "--testing-hooks", action="store_true",
        help="honor the 'inject' request field (CI degraded-path checks)",
    )
    serve.add_argument(
        "--port-file", metavar="PATH",
        help="write the bound port (use with --port 0)",
    )

    query = sub.add_parser("query", help="query a running server")
    query.add_argument("--host", default="127.0.0.1")
    query.add_argument("--port", type=int, default=7753)
    query.add_argument("--deadline-ms", type=float, default=None)
    _add_query_args(query, with_store=False)

    direct = sub.add_parser(
        "direct", help="compute the same records without a server"
    )
    _add_query_args(direct, with_store=True)

    bench = sub.add_parser(
        "bench", help="cold/warm/coalesced latency + degraded paths"
    )
    bench.add_argument("--store", metavar="DIR", default=None)
    bench.add_argument("--characterize-patterns", type=int, default=300)
    bench.add_argument("--width", type=int, default=8)
    bench.add_argument("--kind", default="column")
    bench.add_argument("--patterns", type=int, default=200)
    bench.add_argument("--warm-repeats", type=int, default=20)
    bench.add_argument("--duplicates", type=int, default=8)
    bench.add_argument("--json", metavar="PATH", default=None)

    args = parser.parse_args(argv)
    try:
        return {
            "serve": _cmd_serve,
            "query": _cmd_query,
            "direct": _cmd_direct,
            "bench": _cmd_bench,
        }[args.command](args)
    except ReproError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2


def _cmd_serve(args) -> int:
    handle = serve_in_background(
        ServiceConfig(
            host=args.host,
            port=args.port,
            store_dir=args.store,
            workers=args.workers,
            lru_size=args.lru_size,
            characterize_patterns=args.characterize_patterns,
            testing_hooks=args.testing_hooks,
            kernel=args.kernel,
        )
    )
    print(
        "serving on %s:%d (store: %s)"
        % (args.host, handle.port, args.store or "none"),
        flush=True,
    )
    if args.port_file:
        with open(args.port_file, "w", encoding="utf-8") as fp:
            fp.write("%d\n" % handle.port)
    try:
        # The server owns a daemon thread; park until it stops
        # (shutdown op) or we are interrupted.
        while handle._thread.is_alive():
            handle._thread.join(0.5)
    except KeyboardInterrupt:
        pass
    finally:
        handle.stop()
    return 0


def _write_records(path, records) -> None:
    with open(path, "w", encoding="utf-8") as fp:
        fp.write(_canonical(records) + "\n")


def _cmd_query(args) -> int:
    with ServiceClient(args.host, args.port) as client:
        response = client.query(
            args.width,
            args.kind,
            _years(args.years),
            num_patterns=args.patterns,
            seed=args.seed,
            cycle_ns=args.cycle_ns,
            deadline_ms=args.deadline_ms,
        )
    print(json.dumps(response, sort_keys=True, indent=2))
    if args.json:
        if response.get("status") != "ok":
            print(
                "error: non-ok response, not writing %s" % args.json,
                file=sys.stderr,
            )
            return 3
        _write_records(args.json, response["results"])
    return 0


def _cmd_direct(args) -> int:
    records = compute_direct(
        _spec_from_args(args),
        store_dir=args.store,
        characterize_patterns=args.characterize_patterns,
        kernel=args.kernel,
    )
    print(json.dumps(records, sort_keys=True, indent=2))
    if args.json:
        _write_records(args.json, records)
    return 0


def _cmd_bench(args) -> int:
    from .bench import run_service_bench

    record, failures = run_service_bench(
        store_dir=args.store,
        characterize_patterns=args.characterize_patterns,
        width=args.width,
        kind=args.kind,
        num_patterns=args.patterns,
        warm_repeats=args.warm_repeats,
        duplicates=args.duplicates,
    )
    print(json.dumps(record, sort_keys=True, indent=2))
    if args.json:
        directory = os.path.dirname(args.json)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(args.json, "w", encoding="utf-8") as fp:
            json.dump({"service": record}, fp, indent=2, sort_keys=True)
            fp.write("\n")
        print("wrote %s" % args.json)
    for failure in failures:
        print("BENCH INVARIANT FAILED: %s" % failure, file=sys.stderr)
    return 3 if failures else 0


if __name__ == "__main__":
    print(
        "note: 'python -m repro.service' is deprecated; use"
        " 'python -m repro service' (same arguments)",
        file=sys.stderr,
    )
    sys.exit(main())
