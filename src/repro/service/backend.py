"""Compute backend of the reliability service.

A query "design X, workload Y, year t" bottoms out in the same
machinery the experiment suite uses: an
:class:`~repro.experiments.context.ExperimentContext` (store-backed,
so netlists / stress profiles / stream results persist across queries
*and* server restarts) whose ``stream_results`` prices every requested
aging point of one design in a single batched arrival replay.

The backend runs those computations in a ``ProcessPoolExecutor`` --
the same one-context-per-worker idiom as the suite scheduler -- so a
crashing worker kills a process, not the server.  A broken pool is
detected, rebuilt, and surfaced to the serving layer as a typed
:class:`~repro.errors.BackendCrashError`; the serving layer turns that
into a degraded response instead of a dropped connection.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional

import numpy as np

from ..config import DEFAULT_SIM_CONFIG, DEFAULT_TECHNOLOGY
from ..errors import BackendCrashError, ServiceError
from ..experiments.context import ExperimentContext
from ..experiments.store import ArtifactStore
from .protocol import QuerySpec

#: Delay percentiles reported per aging point.
PERCENTILES = (50.0, 99.0)


def compute_batch(context: ExperimentContext, spec: QuerySpec) -> List[Dict]:
    """Price one query spec: one record per requested year.

    Every year shares a single value plane; the arrival replay prices
    all years in one vectorized pass (the two-plane engine), so a
    coalesced multi-year build costs barely more than a single year.
    """
    results = context.stream_results(
        spec.width,
        spec.kind,
        list(spec.years),
        spec.num_patterns,
        seed=spec.seed,
    )
    records = []
    for year, result in zip(spec.years, results):
        delays = result.delays
        p50, p99 = (
            float(np.percentile(delays, q)) for q in PERCENTILES
        )
        record = {
            "width": spec.width,
            "kind": spec.kind,
            "year": float(year),
            "num_patterns": spec.num_patterns,
            "seed": spec.seed,
            "cycle_ns": spec.cycle_ns,
            "mean_delay_ns": float(np.mean(delays)),
            "max_delay_ns": float(np.max(delays)),
            "p50_delay_ns": p50,
            "p99_delay_ns": p99,
            "mean_switched_cap": float(np.mean(result.switched_caps)),
            "error_rate": (
                None
                if spec.cycle_ns is None
                else float(np.mean(delays > spec.cycle_ns))
            ),
        }
        records.append(record)
    return records


def build_context(
    store_dir: Optional[str],
    characterize_patterns: int = 2000,
    technology=DEFAULT_TECHNOLOGY,
    config=DEFAULT_SIM_CONFIG,
    kernel: str = "soa",
) -> ExperimentContext:
    """A service-flavored experiment context (store-backed when a
    store directory is configured).  ``kernel`` selects the execution
    backend for every circuit the context compiles; kernels agree on
    every record field except the float-association noise in
    ``mean_switched_cap`` (the documented summation-order exception)."""
    return ExperimentContext(
        technology=technology,
        config=config,
        characterize_patterns=characterize_patterns,
        store=None if store_dir is None else ArtifactStore(store_dir),
        kernel=kernel,
    )


def compute_direct(
    spec: QuerySpec,
    store_dir: Optional[str] = None,
    characterize_patterns: int = 2000,
    context: Optional[ExperimentContext] = None,
    kernel: str = "soa",
) -> List[Dict]:
    """The exact records the service would serve, computed in-process.

    This is the identity oracle: CI compares served responses byte-wise
    against this function's output (``python -m repro.service direct``).
    """
    ctx = context or build_context(
        store_dir, characterize_patterns, kernel=kernel
    )
    return compute_batch(ctx, spec)


# ----------------------------------------------------------------------
# Worker-process side (ships once through the pool initializer).
# ----------------------------------------------------------------------

_WORKER_CONTEXT: Optional[ExperimentContext] = None
_WORKER_TESTING = False


def _init_backend_worker(
    technology, config, characterize_patterns, store_dir, testing_hooks,
    kernel="soa",
) -> None:
    global _WORKER_CONTEXT, _WORKER_TESTING
    _WORKER_CONTEXT = build_context(
        store_dir,
        characterize_patterns,
        technology=technology,
        config=config,
        kernel=kernel,
    )
    _WORKER_TESTING = bool(testing_hooks)


def _apply_inject(inject: Optional[str]) -> None:
    """Deterministic failure injection for tests/CI -- honored only in
    workers started with ``testing_hooks=True``."""
    if not inject or not _WORKER_TESTING:
        return
    if inject == "crash":
        os._exit(3)
    if inject.startswith("sleep:"):
        time.sleep(float(inject.split(":", 1)[1]))


def _backend_batch(payload: Dict) -> List[Dict]:
    _apply_inject(payload.get("inject"))
    spec = QuerySpec(
        width=payload["width"],
        kind=payload["kind"],
        years=tuple(payload["years"]),
        num_patterns=payload["num_patterns"],
        seed=payload["seed"],
        cycle_ns=payload["cycle_ns"],
    )
    return compute_batch(_WORKER_CONTEXT, spec)


class Backend:
    """Process-pool wrapper with crash detection and rebuild.

    Attributes:
        crashes: Broken-pool incidents survived so far (each one
            rebuilt the pool).
    """

    def __init__(
        self,
        store_dir: Optional[str] = None,
        workers: int = 1,
        characterize_patterns: int = 2000,
        technology=DEFAULT_TECHNOLOGY,
        config=DEFAULT_SIM_CONFIG,
        testing_hooks: bool = False,
        kernel: str = "soa",
    ):
        self.store_dir = store_dir
        self.workers = max(1, int(workers))
        self.characterize_patterns = characterize_patterns
        self.technology = technology
        self.config = config
        self.testing_hooks = testing_hooks
        from ..timing.engine import normalize_kernel

        self.kernel = normalize_kernel(kernel)
        self.crashes = 0
        self._pool: Optional[ProcessPoolExecutor] = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_backend_worker,
                initargs=(
                    self.technology,
                    self.config,
                    self.characterize_patterns,
                    self.store_dir,
                    self.testing_hooks,
                    self.kernel,
                ),
            )
        return self._pool

    def reset(self) -> None:
        """Tear down a (possibly broken) pool; the next call rebuilds."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        self.reset()

    async def run(
        self, spec: QuerySpec, inject: Optional[str] = None
    ) -> List[Dict]:
        """Price ``spec`` in a worker; typed errors on pool death.

        Raises:
            BackendCrashError: A worker died (killed / segfault); the
                pool has been rebuilt for subsequent queries.
            ServiceError: The computation itself raised.
        """
        import asyncio

        payload = spec.to_payload()
        payload["inject"] = inject
        pool = self._ensure_pool()
        loop = asyncio.get_running_loop()
        try:
            return await loop.run_in_executor(
                pool, _backend_batch, payload
            )
        except BrokenProcessPool as exc:
            self.crashes += 1
            self.reset()
            raise BackendCrashError(
                "backend worker died pricing %s (pool rebuilt): %s"
                % (spec.group_key(), exc)
            ) from exc
        except Exception as exc:
            raise ServiceError(
                "backend failed pricing %s: %s" % (spec.group_key(), exc)
            ) from exc
