"""Reliability-as-a-service: an async query layer over the artifact
store and experiment machinery.

Clients ask "design X, workload Y, year t" and receive latency /
error-rate / switching statistics as typed JSON records, served from a
hot in-memory LRU tier, the on-disk
:class:`~repro.experiments.store.ArtifactStore`, or a single-flight
batched backend build -- with per-request deadlines and graceful
degradation instead of connection failures.

Run it::

    python -m repro.service serve --store .repro-store
    python -m repro.service query --width 16 --kind column --years 0,10

See DESIGN.md section 13 for the architecture and the degradation
matrix.
"""

from .backend import Backend, compute_batch, compute_direct
from .client import (
    AsyncServiceClient,
    ServiceClient,
    run_concurrent_queries,
)
from .protocol import QuerySpec
from .server import (
    ReliabilityService,
    ServiceConfig,
    ServiceHandle,
    serve_in_background,
)

__all__ = [
    "AsyncServiceClient",
    "Backend",
    "QuerySpec",
    "ReliabilityService",
    "ServiceClient",
    "ServiceConfig",
    "ServiceHandle",
    "compute_batch",
    "compute_direct",
    "run_concurrent_queries",
    "serve_in_background",
]
