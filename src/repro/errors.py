"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch the whole family with a single
``except`` clause while still distinguishing the precise failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class NetlistError(ReproError):
    """Structural problem in a netlist (bad net id, dangling pin, ...)."""


class CombinationalLoopError(NetlistError):
    """The netlist contains a combinational cycle and cannot be levelized."""

    def __init__(self, cycle_members):
        self.cycle_members = list(cycle_members)
        super().__init__(
            "combinational loop through cells: %s" % (self.cycle_members,)
        )


class UnknownCellError(NetlistError):
    """A cell type name is not present in the cell library."""


class SimulationError(ReproError):
    """A simulation was configured or driven inconsistently."""


class FaultError(SimulationError):
    """Invalid fault specification or injection target (bad net/cell id,
    out-of-range rate, conflicting faults on one site, ...)."""


class DeltaError(SimulationError):
    """A netlist delta cannot be diffed, patched or replayed
    incrementally (misaligned parent/child structure, unsupported cell
    change, patched-plan precondition violated, ...).  Callers fall
    back to a from-scratch compile + run."""


class CheckpointError(FaultError):
    """A campaign checkpoint file cannot be used (fingerprint mismatch,
    mid-file corruption, unsupported version, ...)."""


class CampaignInterrupted(SimulationError):
    """A fault-injection campaign was interrupted before completion.

    Raised by :meth:`repro.faults.InjectionCampaign.run` when a SIGINT /
    :class:`KeyboardInterrupt` lands mid-sweep.  The checkpoint (when one
    is configured) has already been flushed; :attr:`partial` carries the
    reports completed so far so callers can still print coverage.

    Attributes:
        partial: The partial :class:`~repro.faults.CampaignResult`.
        completed: Sites finished before the interrupt.
        total: Sites the campaign was asked to run.
    """

    def __init__(self, message, partial=None, completed=0, total=0):
        self.partial = partial
        self.completed = completed
        self.total = total
        super().__init__(message)


class RecoveryExhaustedError(SimulationError):
    """A timing overrun the active recovery policy refuses to absorb.

    Raised by the ``strict`` policy when an operation overruns the shadow
    window (undetectable violation) or needs more fallback cycles than
    :attr:`repro.config.SimulationConfig.max_fallback_cycles` allows.
    The ``degrade`` and ``detect-only`` policies record such events in
    the run statistics instead of raising.
    """

    def __init__(self, message, op_index=None, delay_ns=None):
        self.op_index = op_index
        self.delay_ns = delay_ns
        super().__init__(message)


class RetryExhaustedError(ReproError):
    """A retried operation ran out of attempts or time budget.

    Raised by :func:`repro.util.retry.retry_call` when every attempt of
    the wrapped callable failed within the configured budget.  The last
    underlying exception is chained as ``__cause__``.

    Attributes:
        attempts: Attempts made before giving up.
        elapsed_s: Wall-clock seconds spent across all attempts.
    """

    def __init__(self, message, attempts=0, elapsed_s=0.0):
        self.attempts = attempts
        self.elapsed_s = elapsed_s
        super().__init__(message)


class LockTimeoutError(RetryExhaustedError):
    """An advisory file lock could not be acquired within its timeout.

    Raised by :class:`repro.util.locking.FileLock`; carries the lock
    path so contention diagnostics can name the resource.
    """

    def __init__(self, message, path=None, attempts=0, elapsed_s=0.0):
        self.path = path
        super().__init__(message, attempts=attempts, elapsed_s=elapsed_s)


class ServiceError(ReproError):
    """A reliability-service request could not be served normally."""


class BackendCrashError(ServiceError):
    """The service's compute backend died (killed worker / broken
    process pool).  The pool is rebuilt; in-flight queries receive a
    typed degraded response instead of a dropped connection."""


class DeadlineExceededError(ServiceError):
    """A query's deadline elapsed before its result was ready."""


class CalibrationError(ReproError):
    """A calibration target could not be met."""


class ConfigError(ReproError):
    """Invalid configuration value."""


class WorkloadError(ReproError):
    """Invalid workload specification (bad width, zero count, ...)."""


class DistribError(ReproError):
    """A distributed worker-pool operation failed (unreachable worker,
    malformed response, job raised remotely, ...)."""


class ManifestPending(DistribError):
    """Manifest-pool jobs are written but their results are not all
    present yet.

    Not a failure: the driver has staged the request files; run
    ``python -m repro distrib exec --manifest DIR`` on any number of
    hosts sharing the directory, then re-run the original command to
    merge the finished results.
    """

    def __init__(self, message, directory=None, missing=0):
        self.directory = directory
        self.missing = missing
        super().__init__(message)
