"""The ac reaction-diffusion BTI model (paper Eqs. 1-2).

Threshold-voltage drift of a stressed transistor::

    dVth(t) ~= alpha(S, f) * K_DC * t^n                      (Eq. 1)

    K_DC = A * T_OX * sqrt(C_OX * (V_GS - V_th))
         * (1 - V_DS / (alpha * (V_GS - V_th)))
         * exp(E_OX / E_0) * exp(-E_a / kT)                  (Eq. 2)

with ``n = 1/6`` (H2 diffusion), ``E_a = 0.12 eV`` and ``E_0 = 1.9-2.0
MV/cm`` exactly as the paper states.  Following the paper we drop the
frequency dependence of ``alpha`` and keep only the signal-probability
(duty-cycle) dependence, modelled as ``alpha(S) = S^n`` -- the standard
ac/dc degradation ratio of the cited RD literature [24]-[26]: zero duty
means no stress, full duty recovers the dc model.

The prefactor ``A`` folds the unpublished technology constants; it is
calibrated once (see :mod:`repro.experiments.calibration`) so that a
16x16 column-bypassing multiplier's critical path degrades by the
paper's ~13% over seven years at 125 degC (Fig. 7), and the calibrated
value ships as :attr:`repro.config.Technology.bti_prefactor`.

PBTI on nMOS uses the same functional form scaled by
:attr:`~repro.config.Technology.pbti_ratio`: the paper targets 32-nm
high-k metal gates, where PBTI is comparable to NBTI [2]-[4].
"""

from __future__ import annotations

import dataclasses
import math
from typing import Union

import numpy as np

from ..config import DEFAULT_TECHNOLOGY, SECONDS_PER_YEAR, Technology
from ..errors import ConfigError

#: Permittivity of SiO2 in F/m (3.9 * eps0).
EPS_OXIDE = 3.9 * 8.8541878128e-12

Number = Union[float, np.ndarray]


@dataclasses.dataclass(frozen=True)
class BTIModel:
    """Evaluates NBTI (pMOS) and PBTI (nMOS) threshold drift.

    Args:
        technology: Device constants and the calibrated prefactor.
    """

    technology: Technology = DEFAULT_TECHNOLOGY

    def k_dc(self, kind: str = "nbti") -> float:
        """The dc reaction-diffusion constant of Eq. 2, in volts/s^n."""
        tech = self.technology
        if kind == "nbti":
            overdrive = tech.gate_overdrive_p
            scale = 1.0
        elif kind == "pbti":
            overdrive = tech.gate_overdrive_n
            scale = tech.pbti_ratio
        else:
            raise ConfigError("kind must be 'nbti' or 'pbti', got %r" % kind)
        cox = EPS_OXIDE / tech.tox
        oxide_field = overdrive / tech.tox
        vds_term = 1.0 - tech.vds_ratio
        return (
            scale
            * tech.bti_prefactor
            * tech.tox
            * math.sqrt(cox * overdrive)
            * vds_term
            * math.exp(oxide_field / tech.e0)
            * tech.thermal_factor()
        )

    def alpha(self, stress_probability: Number) -> Number:
        """The ac degradation factor ``alpha(S)`` of Eq. 1.

        ``S`` is the fraction of time the transistor spends under stress
        (pMOS gate low for NBTI, nMOS gate high for PBTI).
        """
        s = np.clip(np.asarray(stress_probability, dtype=float), 0.0, 1.0)
        return s ** self.technology.n_exponent

    def delta_vth(
        self,
        years: float,
        stress_probability: Number,
        kind: str = "nbti",
    ) -> Number:
        """Threshold drift in volts after ``years`` of operation (Eq. 1)."""
        if years < 0:
            raise ConfigError("years must be non-negative")
        if years == 0:
            return np.zeros_like(np.asarray(stress_probability, dtype=float))
        seconds = years * SECONDS_PER_YEAR
        drift = (
            self.alpha(stress_probability)
            * self.k_dc(kind)
            * seconds ** self.technology.n_exponent
        )
        # Drift cannot consume the whole overdrive: clamp to 60% of it so
        # pathological calibrations degrade gracefully instead of
        # producing negative drive.
        tech = self.technology
        limit = 0.6 * (
            tech.gate_overdrive_p if kind == "nbti" else tech.gate_overdrive_n
        )
        return np.minimum(drift, limit)

    def static_drift(self, years: float, kind: str = "nbti") -> float:
        """Worst-case (static stress, S=1) drift in volts."""
        return float(self.delta_vth(years, 1.0, kind))
