"""NBTI/PBTI aging substrate (paper Section II-D).

Pipeline: a workload simulation yields per-net signal probabilities
(:mod:`repro.timing`); :mod:`repro.aging.stress` converts them into
per-cell pMOS/nMOS stress duty factors; :mod:`repro.aging.bti` evaluates
the ac reaction-diffusion model ``dVth = alpha(S) * K_DC * t^n`` (paper
Eqs. 1-2); :mod:`repro.aging.degradation` maps the threshold drift into
per-cell delay-scale factors through the alpha-power law, ready to feed
:class:`repro.timing.CompiledCircuit`.
"""

from .bti import BTIModel
from .stress import StressProfile, extract_stress
from .degradation import AgedCircuitFactory, aging_delay_scale, delay_scale_factor
from .electromigration import (
    ElectromigrationModel,
    cell_toggle_rates,
    combined_delay_scale,
)

__all__ = [
    "AgedCircuitFactory",
    "BTIModel",
    "ElectromigrationModel",
    "StressProfile",
    "aging_delay_scale",
    "cell_toggle_rates",
    "combined_delay_scale",
    "delay_scale_factor",
    "extract_stress",
]
