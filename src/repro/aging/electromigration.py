"""Interconnect electromigration aging (paper Section V).

The conclusion discusses a second aging mechanism: electromigration (EM)
-- metal ions drift with the electron flow, wires thin, resistance and
wire delay grow, and the effect compounds with BTI.  The paper argues
its variable-latency multipliers tolerate the combined degradation
better than worst-case-clocked designs; the extension experiment
``ext_em`` quantifies that claim.

Model: a cell's output wire carries a current proportional to its
switching activity (each transition charges the wire).  Black's equation
gives the EM time-to-degradation scaling ``MTTF ~ J^-n_em *
exp(Ea_em/kT)``; we use its inverse as a resistance-growth law::

    dR/R (t) = em_coefficient * (J / J_ref)^n_em
               * exp(-Ea_em / kT) / exp(-Ea_em / kT_ref)
               * (t / t_ref)^em_time_exponent

with the activity-derived current density ``J ~ toggle rate``.  The
added wire resistance stretches the cell's delay proportionally to the
wire's share of the stage delay (``wire_delay_fraction``).  Constants
are chosen so a continuously switching wire gains ~10% delay over ten
years at 125 degC -- the magnitude EM budgeting guides use; like the
BTI prefactor they are knobs, and the *claims* tested are comparative.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional

import numpy as np

from ..config import BOLTZMANN_EV, DEFAULT_TECHNOLOGY, Technology
from ..errors import ConfigError, SimulationError
from ..nets.netlist import Netlist


@dataclasses.dataclass(frozen=True)
class ElectromigrationModel:
    """Activity-driven interconnect delay degradation.

    Args:
        technology: Supplies the junction temperature.
        em_coefficient: Resistance growth of a reference wire (toggle
            rate 1.0) after ``reference_years`` at the reference
            temperature.
        current_exponent: Black's-equation current-density exponent
            (1-2 in practice).
        time_exponent: Resistance-growth time exponent.
        activation_ev: EM activation energy (Cu: ~0.9 eV).
        reference_years: Time at which ``em_coefficient`` is defined.
        wire_delay_fraction: Share of a stage delay attributable to the
            wire RC (the part EM stretches).
    """

    technology: Technology = DEFAULT_TECHNOLOGY
    em_coefficient: float = 0.25
    current_exponent: float = 1.5
    time_exponent: float = 0.5
    activation_ev: float = 0.9
    reference_years: float = 10.0
    reference_temperature: float = 398.15
    wire_delay_fraction: float = 0.4

    def __post_init__(self):
        if self.em_coefficient < 0:
            raise ConfigError("em_coefficient must be non-negative")
        if self.reference_years <= 0:
            raise ConfigError("reference_years must be positive")
        if not 0 <= self.wire_delay_fraction <= 1:
            raise ConfigError("wire_delay_fraction must lie in [0, 1]")

    def thermal_acceleration(self) -> float:
        """Arrhenius acceleration vs the reference temperature."""
        kt = BOLTZMANN_EV * self.technology.temperature
        kt_ref = BOLTZMANN_EV * self.reference_temperature
        return math.exp(-self.activation_ev / kt) / math.exp(
            -self.activation_ev / kt_ref
        )

    def resistance_growth(
        self, toggle_rate: np.ndarray, years: float
    ) -> np.ndarray:
        """Fractional wire-resistance increase after ``years``."""
        if years < 0:
            raise ConfigError("years must be non-negative")
        rate = np.clip(np.asarray(toggle_rate, dtype=float), 0.0, None)
        if years == 0:
            return np.zeros_like(rate)
        return (
            self.em_coefficient
            * rate**self.current_exponent
            * self.thermal_acceleration()
            * (years / self.reference_years) ** self.time_exponent
        )

    def delay_scale(
        self,
        netlist: Netlist,
        toggle_rate: np.ndarray,
        years: float,
    ) -> np.ndarray:
        """Per-cell delay factors from per-cell output toggle rates."""
        cells = netlist.cells
        rate = np.asarray(toggle_rate, dtype=float)
        if rate.shape != (len(cells),):
            raise SimulationError(
                "toggle_rate must have one entry per cell (%d), got %r"
                % (len(cells), rate.shape)
            )
        growth = self.resistance_growth(rate, years)
        return 1.0 + self.wire_delay_fraction * growth


def cell_toggle_rates(
    netlist: Netlist,
    toggle_counts: Optional[np.ndarray],
    num_patterns: int,
) -> np.ndarray:
    """Per-cell output toggle rates from per-net toggle totals.

    ``toggle_counts`` comes from a :class:`~repro.timing.engine
    .StreamResult` with ``collect_net_stats=True``.
    """
    if num_patterns < 1:
        raise SimulationError("num_patterns must be >= 1")
    if toggle_counts is None:
        raise SimulationError(
            "toggle_counts missing: run with collect_net_stats=True"
        )
    counts = np.asarray(toggle_counts, dtype=float)
    if counts.shape[0] < netlist.num_nets:
        raise SimulationError("toggle_counts shorter than the net table")
    return np.array(
        [counts[cell.output] / num_patterns for cell in netlist.cells]
    )


def combined_delay_scale(
    bti_scale: np.ndarray, em_scale: np.ndarray
) -> np.ndarray:
    """Compose BTI and EM degradation (independent mechanisms)."""
    bti = np.asarray(bti_scale, dtype=float)
    em = np.asarray(em_scale, dtype=float)
    if bti.shape != em.shape:
        raise SimulationError("scale arrays must be equally shaped")
    return bti * em
