"""Per-cell stress extraction from workload signal probabilities.

A pMOS transistor is under NBTI stress while its gate is low
(``V_gs = -V_dd``); an nMOS transistor is under PBTI stress while its
gate is high.  For a static-CMOS cell the gates of the pull-up/pull-down
transistors are the cell's *inputs*, so we approximate the cell-level
stress duty factors by averaging over its input nets:

    S_pmos(cell) = mean_i P(input_i = 0)
    S_nmos(cell) = mean_i P(input_i = 1)

Signal probabilities come straight from the vectorized logic simulation
of the target workload (``collect_net_stats=True``), so a bypassing
multiplier's mostly-idle cells genuinely accumulate different stress
than its always-active mux spines.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from ..errors import SimulationError
from ..nets.netlist import Netlist


@dataclasses.dataclass(frozen=True)
class StressProfile:
    """Per-cell stress duty factors, index-aligned with netlist cells."""

    netlist_name: str
    pmos_stress: np.ndarray
    nmos_stress: np.ndarray

    def __post_init__(self):
        if self.pmos_stress.shape != self.nmos_stress.shape:
            raise SimulationError("stress arrays must be equally shaped")

    @property
    def num_cells(self) -> int:
        return self.pmos_stress.shape[0]

    def mean_pmos(self) -> float:
        return float(self.pmos_stress.mean()) if self.num_cells else 0.0

    def mean_nmos(self) -> float:
        return float(self.nmos_stress.mean()) if self.num_cells else 0.0


def extract_stress(
    netlist: Netlist,
    signal_prob: Optional[np.ndarray],
) -> StressProfile:
    """Build a :class:`StressProfile` from per-net one-probabilities.

    Args:
        netlist: The design the probabilities were measured on.
        signal_prob: Per-net P(net = 1), as produced by
            :meth:`repro.timing.CompiledCircuit.run` with
            ``collect_net_stats=True``.  ``None`` falls back to the
            random-input default P = 0.5 everywhere.
    """
    cells = netlist.cells
    if signal_prob is None:
        half = np.full(len(cells), 0.5)
        return StressProfile(netlist.name, half, half.copy())
    probs = np.asarray(signal_prob, dtype=float)
    if probs.shape[0] < netlist.num_nets:
        raise SimulationError(
            "signal_prob covers %d nets, netlist has %d"
            % (probs.shape[0], netlist.num_nets)
        )
    if np.any(probs < -1e-9) or np.any(probs > 1 + 1e-9):
        raise SimulationError("signal probabilities must lie in [0, 1]")
    pmos = np.empty(len(cells))
    nmos = np.empty(len(cells))
    for k, cell in enumerate(cells):
        ones = float(np.mean([probs[net] for net in cell.inputs]))
        pmos[k] = 1.0 - ones
        nmos[k] = ones
    return StressProfile(netlist.name, pmos, nmos)
