"""Mapping BTI threshold drift to gate-delay degradation.

The alpha-power law ties a transistor's drive current -- and thus a
gate's delay -- to its overdrive: ``delay ~ V_dd / (V_dd - V_th)^a``
with ``a = alpha_sat ~ 1.3`` at 32 nm.  A cell's delay-scale factor
after ``t`` years is a mix of the pull-up (NBTI) and pull-down (PBTI)
slowdowns, weighted by the cell type's ``pmos_fraction``::

    scale = f_p * ((Vdd - Vthp0) / (Vdd - Vthp0 - dVthp))^a
          + f_n * ((Vdd - Vthn0) / (Vdd - Vthn0 - dVthn))^a

These per-cell factors feed straight into
:class:`repro.timing.CompiledCircuit`, giving the aged per-pattern delay
distributions behind Figs. 7 and 19-27.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..config import DEFAULT_TECHNOLOGY, Technology
from ..errors import SimulationError
from ..nets.netlist import Netlist
from ..timing.engine import CompiledCircuit, StreamResult
from ..timing.fold import fold_stimulus, unfold_stream
from ..timing.replay import ArrivalReplay
from ..timing.value_cache import ValuePlaneCache
from .bti import BTIModel
from .stress import StressProfile, extract_stress


def delay_scale_factor(
    delta_vth: np.ndarray,
    overdrive: float,
    alpha_sat: float,
) -> np.ndarray:
    """Alpha-power delay ratio for a threshold drift ``delta_vth``."""
    drift = np.asarray(delta_vth, dtype=float)
    if np.any(drift < 0):
        raise SimulationError("threshold drift must be non-negative")
    remaining = overdrive - drift
    if np.any(remaining <= 0):
        raise SimulationError("threshold drift exceeds gate overdrive")
    return (overdrive / remaining) ** alpha_sat


def aging_delay_scale(
    netlist: Netlist,
    stress: StressProfile,
    years: float,
    technology: Technology = DEFAULT_TECHNOLOGY,
) -> np.ndarray:
    """Per-cell delay-scale factors after ``years`` of the given stress."""
    cells = netlist.cells
    if stress.num_cells != len(cells):
        raise SimulationError(
            "stress profile has %d cells, netlist has %d"
            % (stress.num_cells, len(cells))
        )
    model = BTIModel(technology)
    dvth_p = model.delta_vth(years, stress.pmos_stress, "nbti")
    dvth_n = model.delta_vth(years, stress.nmos_stress, "pbti")
    scale_p = delay_scale_factor(
        dvth_p, technology.gate_overdrive_p, technology.alpha_sat
    )
    scale_n = delay_scale_factor(
        dvth_n, technology.gate_overdrive_n, technology.alpha_sat
    )
    pmos_fraction = np.array(
        [cell.cell_type.pmos_fraction for cell in cells]
    )
    return pmos_fraction * scale_p + (1.0 - pmos_fraction) * scale_n


def vth_shifted_delay_scale(
    netlist: Netlist,
    stress: StressProfile,
    years: float,
    vth_shift: np.ndarray,
    technology: Technology = DEFAULT_TECHNOLOGY,
) -> np.ndarray:
    """Per-cell delay scales when process variation co-models with aging.

    A die's per-cell Vth shift does not just rescale the fresh delay --
    it moves the operating point the BTI drift eats into, so a slow
    (high-Vth) die also *ages* faster in delay terms.  Both effects fall
    out of evaluating the alpha-power law at the shifted overdrive::

        scale = f_p * (ODp / (ODp - dVth_p(t) - v))^a
              + f_n * (ODn / (ODn - dVth_n(t) - v))^a

    where ``v`` is the die's signed per-cell shift (volts).  With
    ``v = 0`` this reproduces :func:`aging_delay_scale` bit for bit.

    Args:
        vth_shift: ``(num_cells,)`` or ``(dies, num_cells)`` signed
            shifts in volts (negative = fast corner).

    Returns:
        Delay-scale factors with the same leading shape as
        ``vth_shift``.
    """
    cells = netlist.cells
    if stress.num_cells != len(cells):
        raise SimulationError(
            "stress profile has %d cells, netlist has %d"
            % (stress.num_cells, len(cells))
        )
    shift = np.asarray(vth_shift, dtype=float)
    squeeze = shift.ndim == 1
    shift = np.atleast_2d(shift)
    if shift.shape[1] != len(cells):
        raise SimulationError(
            "vth_shift has %d cells, netlist has %d"
            % (shift.shape[1], len(cells))
        )
    model = BTIModel(technology)
    dvth_p = model.delta_vth(years, stress.pmos_stress, "nbti")
    dvth_n = model.delta_vth(years, stress.nmos_stress, "pbti")
    remaining_p = technology.gate_overdrive_p - dvth_p - shift
    remaining_n = technology.gate_overdrive_n - dvth_n - shift
    if np.any(remaining_p <= 0) or np.any(remaining_n <= 0):
        raise SimulationError(
            "Vth shift plus aging drift exceeds the gate overdrive; "
            "tighten the sampler sigmas or max_shift_v"
        )
    alpha = technology.alpha_sat
    scale_p = (technology.gate_overdrive_p / remaining_p) ** alpha
    scale_n = (technology.gate_overdrive_n / remaining_n) ** alpha
    pmos_fraction = np.array(
        [cell.cell_type.pmos_fraction for cell in cells]
    )
    scales = pmos_fraction * scale_p + (1.0 - pmos_fraction) * scale_n
    return scales[0] if squeeze else scales


def characterization_stimulus(
    input_ports: Dict[str, "object"],
    num_patterns: int,
    seed: int,
) -> Dict[str, np.ndarray]:
    """The random characterization workload for a set of input ports.

    Ports up to 63 bits draw uniformly from ``[0, 2**width)``.  Wider
    ports draw the full uint64 range ``[0, 2**64)`` -- every simulated
    bit lane toggles.  (Drawing from ``[0, 2**63)``, as an earlier
    revision did, never exercises bit 63, which biases the measured
    signal probabilities -- and hence the BTI stress -- of everything
    fed by the top operand bit.)
    """
    rng = np.random.default_rng(seed)
    stimulus = {}
    for name, port in input_ports.items():
        high = (1 << port.width) if port.width < 64 else (1 << 64)
        stimulus[name] = rng.integers(
            0, high, num_patterns, dtype=np.uint64
        )
    return stimulus


@dataclasses.dataclass
class AgedCircuitFactory:
    """Produces compiled circuits for any point in a design's lifetime.

    Usage::

        factory = AgedCircuitFactory.characterize(netlist, seed=7)
        fresh = factory.circuit(years=0)
        aged = factory.circuit(years=7)

    ``characterize`` runs a random workload once to measure signal
    probabilities; ``circuit(years)`` then compiles the netlist with the
    matching per-cell delay-scale factors.  Compiled circuits are cached
    per year.
    """

    netlist: Netlist
    stress: StressProfile
    technology: Technology = DEFAULT_TECHNOLOGY
    #: Execution backend every compiled circuit uses (``"numba"`` falls
    #: back to ``"soa"`` when numba is absent; results are identical).
    kernel: str = "soa"

    def __post_init__(self):
        self._cache: Dict[float, CompiledCircuit] = {}
        self._model = BTIModel(self.technology)
        self._planes = ValuePlaneCache()

    @classmethod
    def characterize(
        cls,
        netlist: Netlist,
        technology: Technology = DEFAULT_TECHNOLOGY,
        num_patterns: int = 2000,
        seed: int = 2014,
        stimulus: Optional[Dict[str, np.ndarray]] = None,
        kernel: str = "soa",
    ) -> "AgedCircuitFactory":
        """Measure stress on a random (or supplied) workload."""
        stress = cls.characterize_stress(
            netlist,
            technology,
            num_patterns=num_patterns,
            seed=seed,
            stimulus=stimulus,
        )
        return cls(netlist, stress, technology, kernel)

    @staticmethod
    def characterize_stress(
        netlist: Netlist,
        technology: Technology = DEFAULT_TECHNOLOGY,
        num_patterns: int = 2000,
        seed: int = 2014,
        stimulus: Optional[Dict[str, np.ndarray]] = None,
    ) -> StressProfile:
        """Just the characterization measurement, without building a
        factory -- what persistent stores cache and restore."""
        circuit = CompiledCircuit(netlist, technology)
        if stimulus is None:
            stimulus = characterization_stimulus(
                netlist.input_ports, num_patterns, seed
            )
        result = circuit.run(stimulus, collect_net_stats=True)
        return extract_stress(netlist, result.signal_prob)

    def use_plane_cache(self, cache: ValuePlaneCache) -> None:
        """Swap in a shared (e.g. store-backed, on-disk) plane cache."""
        self._planes = cache

    def delay_scale(self, years: float) -> np.ndarray:
        """Per-cell delay factors after ``years``."""
        return aging_delay_scale(
            self.netlist, self.stress, years, self.technology
        )

    def circuit(self, years: float = 0.0) -> CompiledCircuit:
        """Compiled circuit aged by ``years`` (cached)."""
        key = float(years)
        if key not in self._cache:
            if years == 0:
                self._cache[key] = CompiledCircuit(
                    self.netlist, self.technology, kernel=self.kernel
                )
            else:
                self._cache[key] = CompiledCircuit(
                    self.netlist, self.technology,
                    self.delay_scale(years), kernel=self.kernel,
                )
        return self._cache[key]

    def vth_shifted_scales(
        self, years: float, vth_shift: np.ndarray
    ) -> np.ndarray:
        """Delay scales for one aging point under per-cell Vth shifts
        (see :func:`vth_shifted_delay_scale`); ``vth_shift`` may carry a
        leading die axis."""
        return vth_shifted_delay_scale(
            self.netlist, self.stress, years, vth_shift, self.technology
        )

    def lifetime_delay_scales(self, years: "Sequence[float]") -> np.ndarray:
        """Stacked ``(k, num_cells)`` delay-scale matrix, one row per
        timestep (year 0 is exactly all-ones, like ``circuit(0)``)."""
        num_cells = len(self.netlist.cells)
        rows = [
            np.ones(num_cells) if year == 0 else self.delay_scale(year)
            for year in years
        ]
        return np.vstack(rows) if rows else np.empty((0, num_cells))

    def value_plane(
        self,
        stimulus: Dict[str, np.ndarray],
        collect_net_stats: bool = False,
    ):
        """The (cached) delay-independent value plane of ``stimulus``
        through the fresh circuit -- valid at *every* aging timestep."""
        return self._planes.get_or_build(
            self.circuit(0.0),
            stimulus,
            collect_net_stats=collect_net_stats,
        )

    def stream_results(
        self,
        years: "Sequence[float]",
        stimulus: Dict[str, np.ndarray],
        collect_bit_arrivals: bool = False,
        collect_net_stats: bool = False,
        fold: bool = True,
    ) -> "List[StreamResult]":
        """Stream results for many aging timesteps via one value pass.

        Bit-identical to ``[self.circuit(y).run(stimulus, ...) for y in
        years]`` but the levelized value loop runs once and the aged
        corners are batch-replayed (see :mod:`repro.timing.replay`).

        ``fold`` (default on) additionally deduplicates repeated
        operand transitions before the value pass: the *folded* plane
        is what the :class:`ValuePlaneCache` keys and the replay
        prices, and every corner's result is scattered back to stream
        order (see :mod:`repro.timing.fold`) -- still bit-identical.
        Folding is bypassed when net stats are requested (they need
        per-pattern multiplicity) or when the stream barely repeats.
        """
        years = list(years)
        if not years:
            return []
        return self.replay_scales(
            self.lifetime_delay_scales(years),
            stimulus,
            collect_bit_arrivals=collect_bit_arrivals,
            collect_net_stats=collect_net_stats,
            fold=fold,
        )

    def replay_scales(
        self,
        scales: np.ndarray,
        stimulus: Dict[str, np.ndarray],
        collect_bit_arrivals: bool = False,
        collect_net_stats: bool = False,
        fold: bool = True,
    ) -> "List[StreamResult]":
        """Stream results for arbitrary ``(k, num_cells)`` delay-scale
        rows -- aging timesteps, EM-compounded corners, variation dies --
        through one shared (cached) value pass.  Each row's result is
        bit-identical to ``CompiledCircuit(netlist, technology,
        row).run(stimulus, ...)`` (a row of ones matches the fresh
        circuit)."""
        scales = np.atleast_2d(np.asarray(scales, dtype=float))
        if scales.shape[0] == 0:
            return []
        plan = None
        if (
            fold
            and not collect_net_stats
            and not self.circuit(0.0).fault_hooks
        ):
            plan = fold_stimulus(stimulus)
            if not plan.profitable:
                plan = None
        if plan is not None:
            plane = self.value_plane(plan.folded)
            replayer = ArrivalReplay(self.circuit(0.0), plane)
            result = replayer.replay(
                scales,
                collect_bit_arrivals=collect_bit_arrivals,
            )
            return [
                unfold_stream(result.stream_result(j), plan)
                for j in range(scales.shape[0])
            ]
        plane = self.value_plane(
            stimulus, collect_net_stats=collect_net_stats
        )
        replayer = ArrivalReplay(self.circuit(0.0), plane)
        result = replayer.replay(
            scales,
            collect_bit_arrivals=collect_bit_arrivals,
        )
        return result.stream_results()

    def stream_result(
        self,
        years: float,
        stimulus: Dict[str, np.ndarray],
        collect_bit_arrivals: bool = False,
        collect_net_stats: bool = False,
        fold: bool = True,
    ) -> StreamResult:
        """One aged stream result through the replay fast path."""
        return self.stream_results(
            [years],
            stimulus,
            collect_bit_arrivals=collect_bit_arrivals,
            collect_net_stats=collect_net_stats,
            fold=fold,
        )[0]

    def mean_delta_vth(self, years: float) -> float:
        """Workload-average threshold drift (volts), for leakage scaling."""
        if years == 0:
            return 0.0
        dvth_p = self._model.delta_vth(years, self.stress.pmos_stress, "nbti")
        dvth_n = self._model.delta_vth(years, self.stress.nmos_stress, "pbti")
        if self.stress.num_cells == 0:
            return 0.0
        return float((dvth_p.mean() + dvth_n.mean()) / 2.0)
