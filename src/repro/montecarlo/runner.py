"""End-to-end Monte Carlo driver: sample, price, analyze, persist.

:func:`run_montecarlo` is the one entry point behind both the
``python -m repro mc`` CLI and the registered ``mc_*`` experiments.  It
wires the subsystem into the existing scale-out fabric:

* the :class:`~repro.experiments.context.ExperimentContext` supplies
  the (store-cached) netlist and characterized factory;
* priced populations and derived surfaces persist in the
  :class:`~repro.experiments.store.ArtifactStore` under keys that embed
  the :meth:`~repro.montecarlo.spec.MonteCarloSpec.fingerprint`, so a
  warm run replays nothing and byte-identically reproduces the cold
  run's report;
* ``jobs > 1`` shards the die axis over a ``ProcessPoolExecutor``
  (contiguous :func:`~repro.experiments.scheduler.shard_ranges`,
  state shipped once per worker through the pool initializer -- the
  scheduler/faults idiom).  Per-die substreams and per-row replay make
  the merged result **bit-identical** for every job count, which the
  acceptance gate (`--jobs 4` vs serial) checks end to end.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Optional, Tuple

import numpy as np

from ..arith.reference import count_zeros
from ..config import (
    DEFAULT_SIM_CONFIG,
    DEFAULT_TECHNOLOGY,
    SimulationConfig,
    Technology,
)
from ..errors import ConfigError
from ..timing.replay import ArrivalReplay
from ..timing.value_cache import netlist_fingerprint
from ..workloads.generators import uniform_operands
from .analytics import MonteCarloResult, analyze_population
from .population import PopulationReductions, price_population
from .sampler import CorrelatedVthSampler
from .spec import MonteCarloSpec

_KINDS = ("am", "column", "row")


def _judged_operand(kind: str, md: np.ndarray, mr: np.ndarray):
    """The operand the AHL judges (mirrors ``AgingAwareMultiplier
    .judged_operand``): md for column bypass, mr otherwise."""
    return md if kind == "column" else mr


def _resolve_skip(width: int, skip: Optional[int]) -> int:
    if skip is None:
        skip = width // 2 - 1
    if not 0 <= skip < width:
        raise ConfigError(
            "skip=%r out of the AHL-legal range [0, %d)" % (skip, width)
        )
    return skip


# ----------------------------------------------------------------------
# Worker-process side (state ships once through the pool initializer).
# ----------------------------------------------------------------------

_MC_WORKER: Optional[Dict] = None


def _init_mc_worker(
    netlist, stress, technology, spec, stimulus, zeros, width, skip,
    clock_ns, config, kernel="soa",
) -> None:
    from ..aging.degradation import AgedCircuitFactory

    global _MC_WORKER
    factory = AgedCircuitFactory(netlist, stress, technology, kernel)
    _MC_WORKER = {
        "factory": factory,
        "sampler": CorrelatedVthSampler(len(netlist.cells), spec),
        "spec": spec,
        "stimulus": stimulus,
        "zeros": zeros,
        "width": width,
        "skip": skip,
        "clock_ns": clock_ns,
        "config": config,
    }


def _price_shard(die_range: Tuple[int, int]) -> PopulationReductions:
    w = _MC_WORKER
    return price_population(
        w["factory"],
        w["sampler"],
        w["spec"],
        w["stimulus"],
        w["zeros"],
        w["width"],
        w["skip"],
        w["clock_ns"],
        config=w["config"],
        die_range=die_range,
    )


# ----------------------------------------------------------------------


def population_key(
    spec: MonteCarloSpec,
    width: int,
    kind: str,
    skip: int,
    netlist_fp: str,
    technology_fp: str,
    config_fp: str,
    characterize_patterns: int,
) -> Dict:
    """Store key of a priced population: sampler-config fingerprint x
    design x characterization x simulation config."""
    from ..experiments.context import CHARACTERIZE_SEED

    return {
        "netlist": netlist_fp,
        "technology": technology_fp,
        "sim_config": config_fp,
        "characterize_patterns": characterize_patterns,
        "characterize_seed": CHARACTERIZE_SEED,
        "width": width,
        "kind": kind,
        "skip": skip,
        "spec": spec.fingerprint(),
    }


def _pricing_inputs(spec: MonteCarloSpec, width: int, kind: str, context):
    """Shared deterministic pricing setup: factory, stimulus, zero
    counts and the clock grid derived from the fresh critical path."""
    factory = context.factory(width, kind)
    netlist = factory.netlist
    md, mr = uniform_operands(width, spec.num_patterns, spec.stream_seed)
    stimulus = {"md": md, "mr": mr}
    zeros = count_zeros(_judged_operand(kind, md, mr), width)
    plane = factory.value_plane(stimulus)
    replayer = ArrivalReplay(factory.circuit(0.0), plane)
    fresh = replayer.replay(np.ones((1, len(netlist.cells))))
    base_period_ns = float(fresh.delays.max())
    clock_ns = tuple(
        float(f) * base_period_ns for f in spec.clock_fractions
    )
    return factory, netlist, stimulus, zeros, clock_ns, base_period_ns


def mc_job_spec(
    spec: MonteCarloSpec,
    width: int,
    kind: str,
    skip: Optional[int],
    characterize_patterns: int = 2000,
    kernel: str = "soa",
) -> Dict:
    """The JSON-able job dict remote shard workers (and ``mc merge``)
    rebuild the pricing problem from -- default technology/config only,
    since those cannot travel as JSON."""
    return {
        "spec": spec.fingerprint(),
        "width": int(width),
        "kind": kind,
        "skip": _resolve_skip(width, skip),
        "characterize_patterns": int(characterize_patterns),
        "kernel": kernel,
    }


def _shard_fingerprint(job: Dict) -> Dict:
    """Shard-compatibility identity: everything that shapes the priced
    numbers.  The kernel is excluded (backends are bit-identical), so
    shards priced on different backends merge freely."""
    return {
        "spec": dict(job["spec"]),
        "width": int(job["width"]),
        "kind": job["kind"],
        "skip": int(job["skip"]),
        "characterize_patterns": int(job["characterize_patterns"]),
    }


def run_mc_shard(job: Dict, die_range) -> Dict:
    """Price one contiguous die range from a JSON job spec.

    Returns a JSON-safe shard payload (``fingerprint`` + ``die_range``
    + the :meth:`PopulationReductions.to_payload` planes as lists);
    :func:`merge_mc_shards` fuses the shards back into the exact
    single-host result.
    """
    from ..experiments.context import ExperimentContext

    spec = MonteCarloSpec.from_overrides(**dict(job.get("spec") or {}))
    width = int(job.get("width", 8))
    kind = job.get("kind", "column")
    skip = _resolve_skip(width, job.get("skip"))
    context = ExperimentContext(
        characterize_patterns=int(job.get("characterize_patterns", 2000)),
        kernel=job.get("kernel", "soa"),
    )
    factory, netlist, stimulus, zeros, clock_ns, _ = _pricing_inputs(
        spec, width, kind, context
    )
    lo, hi = int(die_range[0]), int(die_range[1])
    if not 0 <= lo <= hi <= spec.num_dies:
        raise ConfigError(
            "die_range (%d, %d) outside [0, %d]" % (lo, hi, spec.num_dies)
        )
    sampler = CorrelatedVthSampler(len(netlist.cells), spec)
    reductions = price_population(
        factory, sampler, spec, stimulus, zeros, width, skip, clock_ns,
        config=context.config, die_range=(lo, hi),
    )
    payload = reductions.to_payload()
    job = dict(job)
    job.setdefault("skip", skip)
    return {
        "fingerprint": _shard_fingerprint(job),
        "die_range": [lo, hi],
        "meta": payload["meta"],
        "arrays": {
            name: np.asarray(array).tolist()
            for name, array in payload["arrays"].items()
        },
    }


def merge_mc_shards(
    job: Dict, shards, num_bins: int = 32
) -> MonteCarloResult:
    """Fuse per-host shard payloads into the single-host result.

    Shards must share this job's fingerprint and their die ranges must
    tile ``[0, num_dies)`` contiguously; the merged analysis is then
    byte-identical (as rendered text and sorted JSON) to a serial
    :func:`run_montecarlo` with the same parameters.
    """
    from ..experiments.context import ExperimentContext

    spec = MonteCarloSpec.from_overrides(**dict(job.get("spec") or {}))
    width = int(job.get("width", 8))
    kind = job.get("kind", "column")
    skip = _resolve_skip(width, job.get("skip"))
    job = dict(job)
    job.setdefault("skip", skip)
    want_fp = _shard_fingerprint(job)
    if not shards:
        raise ConfigError("no shards to merge")
    for shard in shards:
        if shard.get("fingerprint") != want_fp:
            raise ConfigError(
                "shard was priced under a different configuration"
                " (fingerprint mismatch); refusing to merge"
            )
    shards = sorted(shards, key=lambda s: int(s["die_range"][0]))
    cursor = 0
    for shard in shards:
        lo, hi = (int(v) for v in shard["die_range"])
        if lo != cursor:
            raise ConfigError(
                "shard die ranges do not tile [0, %d) contiguously:"
                " expected a shard starting at die %d, got (%d, %d)"
                % (spec.num_dies, cursor, lo, hi)
            )
        cursor = hi
    if cursor != spec.num_dies:
        raise ConfigError(
            "shards cover %d of %d dies; refusing to merge a partial"
            " population" % (cursor, spec.num_dies)
        )
    parts = [
        PopulationReductions.from_payload(
            {"meta": shard["meta"], "arrays": shard["arrays"]}
        )
        for shard in shards
    ]
    reductions = PopulationReductions.concat(parts)
    context = ExperimentContext(
        characterize_patterns=int(job.get("characterize_patterns", 2000)),
        kernel=job.get("kernel", "soa"),
    )
    _, netlist, _, _, _, base_period_ns = _pricing_inputs(
        spec, width, kind, context
    )
    design = {
        "width": width,
        "kind": kind,
        "num_cells": len(netlist.cells),
        "characterize_patterns": int(
            job.get("characterize_patterns", 2000)
        ),
    }
    return analyze_population(
        reductions,
        spec,
        base_period_ns,
        design=design,
        config=context.config,
        num_bins=num_bins,
    )


def run_montecarlo(
    spec: MonteCarloSpec,
    width: int = 8,
    kind: str = "column",
    skip: Optional[int] = None,
    jobs: int = 1,
    store=None,
    context=None,
    technology: Technology = DEFAULT_TECHNOLOGY,
    config: SimulationConfig = DEFAULT_SIM_CONFIG,
    characterize_patterns: int = 2000,
    num_bins: int = 32,
    kernel: str = "soa",
    pool=None,
) -> MonteCarloResult:
    """Sample, price and analyze one die population.

    Args:
        spec: The population configuration (validated, frozen).
        width / kind: Target multiplier design.
        skip: AHL Skip-n the latency/yield surfaces assume (default
            ``width // 2 - 1``, the architecture's default).
        jobs: Die-axis worker processes (1 = serial in-process; any
            value yields bit-identical results).
        store: Optional persistent artifact store; priced populations
            and surfaces are fingerprint-keyed there.
        context: Optional shared experiment context (its store wins
            over ``store``; its technology/config win too).

    Returns:
        The population's :class:`~repro.montecarlo.analytics
        .MonteCarloResult`.
    """
    # Local imports: repro.experiments imports this package back via
    # the registered mc_* experiments, so the edge must stay lazy.
    from ..experiments.context import ExperimentContext
    from ..experiments.scheduler import shard_ranges
    from ..experiments.store import (
        ArtifactStore,
        config_fingerprint,
        technology_fingerprint,
    )

    if kind not in _KINDS:
        raise ConfigError(
            "unknown multiplier kind %r (known: %s)" % (kind, _KINDS)
        )
    if jobs < 1:
        raise ConfigError("jobs must be >= 1, got %r" % (jobs,))
    skip = _resolve_skip(width, skip)
    if isinstance(store, str):
        store = ArtifactStore(store)
    if context is None:
        context = ExperimentContext(
            technology=technology,
            config=config,
            characterize_patterns=characterize_patterns,
            store=store,
            kernel=kernel,
        )
    else:
        technology = context.technology
        config = context.config
        characterize_patterns = context.characterize_patterns
        store = context.store
        kernel = context.kernel
    if pool is not None and (
        technology is not DEFAULT_TECHNOLOGY
        or config is not DEFAULT_SIM_CONFIG
    ):
        raise ConfigError(
            "distributed MC shards rebuild state from a JSON job spec,"
            " which only carries the default technology/config"
        )

    # Base clock period inputs: the population-free fresh critical path
    # over this stimulus (a ones-row replay on the shared value plane).
    factory, netlist, stimulus, zeros, clock_ns, base_period_ns = (
        _pricing_inputs(spec, width, kind, context)
    )

    key = None
    reductions = None
    if store is not None:
        key = population_key(
            spec,
            width,
            kind,
            skip,
            netlist_fingerprint(netlist),
            technology_fingerprint(technology),
            config_fingerprint(config),
            characterize_patterns,
        )
        payload = store.load("population", key)
        if payload is not None:
            reductions = PopulationReductions.from_payload(payload)

    if reductions is None:
        sampler = CorrelatedVthSampler(len(netlist.cells), spec)
        if pool is not None and spec.num_dies > 1:
            from ..distrib.pool import run_mc_pooled

            job = mc_job_spec(
                spec, width, kind, skip, characterize_patterns, kernel
            )
            payloads = run_mc_pooled(
                pool, job, shard_ranges(spec.num_dies, pool.size)
            )
            reductions = PopulationReductions.concat([
                PopulationReductions.from_payload(
                    {"meta": p["meta"], "arrays": p["arrays"]}
                )
                for p in payloads
            ])
        elif jobs == 1 or spec.num_dies == 1:
            reductions = price_population(
                factory,
                sampler,
                spec,
                stimulus,
                zeros,
                width,
                skip,
                clock_ns,
                config=config,
            )
        else:
            ranges = shard_ranges(spec.num_dies, jobs)
            with ProcessPoolExecutor(
                max_workers=len(ranges),
                initializer=_init_mc_worker,
                initargs=(
                    netlist, factory.stress, technology, spec, stimulus,
                    zeros, width, skip, clock_ns, config, kernel,
                ),
            ) as executor:
                shards = list(executor.map(_price_shard, ranges))
            reductions = PopulationReductions.concat(shards)
        if store is not None:
            store.save("population", key, reductions.to_payload())

    design = {
        "width": width,
        "kind": kind,
        "num_cells": len(netlist.cells),
        "characterize_patterns": characterize_patterns,
    }
    result = analyze_population(
        reductions,
        spec,
        base_period_ns,
        design=design,
        config=config,
        num_bins=num_bins,
    )
    if store is not None:
        surface_key = dict(key)
        surface_key["num_bins"] = int(num_bins)
        store.get_or_build(
            "surface", surface_key, lambda: result.to_dict()
        )
    return result
