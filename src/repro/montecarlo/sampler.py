"""Correlated per-cell Vth sampling with per-die substreams.

Process variation decomposes per cell into three components (Heidary &
Joardar's co-modeling premise, PAPERS.md):

* a **global** inter-die shift every cell of a die shares (fast/slow
  chips);
* a **spatially-correlated** intra-die field: nearby cells on the die
  drift together (across-die gradients, lithography stripes), realized
  as independent Gaussians on a coarse patch grid of spacing
  ``correlation_length`` bilinearly interpolated at each cell's
  floorplan coordinate -- O(cells) per die instead of an O(cells^2)
  covariance factorization, while still giving an exponential-like
  correlation falloff;
* a **random** per-cell term (random dopant fluctuation).

Cells are laid out on a synthetic square floorplan in levelized index
order (the netlist carries no placement, and the correlation model only
needs *a* consistent geometry).

Determinism contract: die ``d`` draws from its own
``numpy.random.SeedSequence(seed, spawn_key=(d,))`` substream, so the
sampled population is **bit-identical for any shard decomposition** --
sampling dies ``[0, 10)`` in one process equals sampling ``[0, 3)`` and
``[3, 10)`` in two.  ``tests/test_montecarlo.py`` asserts this.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from ..errors import ConfigError
from .spec import MonteCarloSpec


class CorrelatedVthSampler:
    """Samples signed per-cell Vth shifts (volts) for a die population.

    Args:
        num_cells: Cells in the target netlist (the length of every
            sampled shift vector).
        spec: The population configuration (sigma split, correlation
            length, clip, master seed).
    """

    def __init__(self, num_cells: int, spec: MonteCarloSpec):
        if num_cells < 1:
            raise ConfigError("num_cells must be >= 1")
        self.num_cells = num_cells
        self.spec = spec
        # Synthetic floorplan: cell i sits at (i % side, i // side).
        side = max(1, int(math.ceil(math.sqrt(num_cells))))
        self.side = side
        idx = np.arange(num_cells)
        x = (idx % side).astype(float)
        y = (idx // side).astype(float)
        # Patch-grid bilinear interpolation weights, precomputed once.
        length = spec.correlation_length
        u = x / length
        v = y / length
        self._ix = u.astype(np.int64)
        self._iy = v.astype(np.int64)
        self._fx = u - self._ix
        self._fy = v - self._iy
        self.patch_shape: Tuple[int, int] = (
            int(self._iy.max()) + 2,
            int(self._ix.max()) + 2,
        )

    # ------------------------------------------------------------------

    def _die_rng(self, die_index: int) -> np.random.Generator:
        seq = np.random.SeedSequence(
            self.spec.seed, spawn_key=(int(die_index),)
        )
        return np.random.Generator(np.random.PCG64(seq))

    def _interpolate(self, patches: np.ndarray) -> np.ndarray:
        """Bilinear patch-grid value at every cell coordinate."""
        ix, iy, fx, fy = self._ix, self._iy, self._fx, self._fy
        p00 = patches[iy, ix]
        p01 = patches[iy, ix + 1]
        p10 = patches[iy + 1, ix]
        p11 = patches[iy + 1, ix + 1]
        top = p00 * (1.0 - fx) + p01 * fx
        bottom = p10 * (1.0 - fx) + p11 * fx
        return top * (1.0 - fy) + bottom * fy

    def sample_die(self, die_index: int) -> np.ndarray:
        """One die's ``(num_cells,)`` signed Vth shift vector (volts).

        Draw order within the substream is fixed (global, patches,
        random), so the result depends only on ``(spec, die_index)``.
        """
        if die_index < 0:
            raise ConfigError("die_index must be non-negative")
        spec = self.spec
        rng = self._die_rng(die_index)
        shift = rng.standard_normal() * spec.sigma_global_v
        patches = rng.standard_normal(self.patch_shape)
        shift = shift + self._interpolate(patches) * spec.sigma_spatial_v
        shift = shift + (
            rng.standard_normal(self.num_cells) * spec.sigma_random_v
        )
        return np.clip(shift, -spec.max_shift_v, spec.max_shift_v)

    def sample(self, lo: int, hi: int) -> np.ndarray:
        """Dies ``[lo, hi)`` stacked as a ``(hi - lo, num_cells)``
        matrix -- equal to concatenating any sub-range split."""
        if not 0 <= lo <= hi:
            raise ConfigError("need 0 <= lo <= hi, got [%d, %d)" % (lo, hi))
        out = np.empty((hi - lo, self.num_cells))
        for row, die in enumerate(range(lo, hi)):
            out[row] = self.sample_die(die)
        return out
