"""Population analytics: yield/latency surfaces and guard-band tuning.

Everything here is a cheap post-pass over the compact
:class:`~repro.montecarlo.population.PopulationReductions` -- no replay,
no netlists.  Three products:

* **Timing-yield surface** over (year, clock period): the fraction of
  dies running *error-free* -- every judged-one-cycle pattern completes
  within the cycle period (no Razor violations) and the critical path
  fits the two-cycle envelope.
* **Latency surface**: mean cycles (and ns) per operation from the
  architecture's cycle accounting -- 1 for clean one-cycle patterns,
  ``1 + razor_penalty_cycles`` for recoverable violations, 2 for
  two-cycle patterns, ``razor_penalty_cycles + min(ceil(d / T),
  max_fallback_cycles)`` for operations beyond the two-cycle budget
  (the degrade-to-multicycle policy).
* **Guard-band tuning**: for every (year, clock) point the smallest
  AHL Skip-n whose timing yield meets ``spec.target_yield``.  Because
  the reductions keep the max delay per judged-operand zero count,
  one suffix-max gives the worst one-cycle delay for *every* skip at
  once -- tuning over all candidates costs O(dies x skips), not another
  Monte Carlo.

The derived :class:`MonteCarloResult` holds plain Python lists only and
implements the ``summary()`` / ``to_dict()`` protocol of
:mod:`repro.analysis.serialize`, so the ``mc`` CLI's JSON output is
byte-stable across runs, shard counts and store temperature.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

import numpy as np

from ..config import DEFAULT_SIM_CONFIG, SimulationConfig
from ..core.ahl import skip_candidates
from ..errors import ConfigError
from .population import PopulationReductions
from .spec import MonteCarloSpec


def suffix_max(bucket_max_ns: np.ndarray) -> np.ndarray:
    """``out[..., s] = max(bucket_max_ns[..., s:])`` -- the worst delay
    among patterns a Skip-``s`` block judges one-cycle."""
    flipped = np.flip(bucket_max_ns, axis=-1)
    return np.flip(np.maximum.accumulate(flipped, axis=-1), axis=-1)


def _feasible(
    worst_one: np.ndarray,
    crit: np.ndarray,
    clock_ns: np.ndarray,
) -> np.ndarray:
    """``(D, Y, C)`` die-passes-timing flags.

    A die passes at (year, T) when it runs *error-free*: every pattern
    its judging block declares one-cycle truly completes within one
    cycle (``worst_one <= T`` -- no Razor violations), and the critical
    path fits the two-cycle envelope (``crit <= 2T`` -- two-cycle and
    recovery timing always safe).  Raising the skip shrinks the
    one-cycle set, so a slow or aged die can be brought back above a
    yield target by trading latency -- exactly the guard-band knob
    :func:`tune_guardband` turns.
    """
    return (worst_one[:, :, None] <= clock_ns[None, None, :]) & (
        crit[:, :, None] <= 2.0 * clock_ns[None, None, :]
    )


def yield_for_skip(
    reductions: PopulationReductions,
    skip: int,
) -> np.ndarray:
    """Timing-yield surface ``(Y, C)`` if the AHL ran Skip-``skip``."""
    if not 0 <= skip <= reductions.width:
        raise ConfigError(
            "skip=%d out of range for width %d"
            % (skip, reductions.width)
        )
    worst_one = suffix_max(reductions.bucket_max_ns)[:, :, skip]
    clock = np.asarray(reductions.clock_ns)
    feasible = _feasible(worst_one, reductions.crit_ns, clock)
    return feasible.mean(axis=0)


def tune_guardband(
    reductions: PopulationReductions,
    target_yield: float,
) -> "tuple[np.ndarray, np.ndarray]":
    """Smallest Skip-n meeting ``target_yield`` per (year, clock).

    Returns ``(skip_grid, yield_grid)``: ``skip_grid[y, c]`` is the
    smallest AHL-legal skip whose population timing yield reaches the
    target (-1 when even the strictest skip falls short), and
    ``yield_grid[y, c]`` the yield that skip achieves (for -1: the
    strictest candidate's yield).  Raising the skip only shrinks the
    one-cycle set, so yield is monotone in skip and the scan stops at
    the first hit.
    """
    suffix = suffix_max(reductions.bucket_max_ns)
    clock = np.asarray(reductions.clock_ns)
    candidates = list(skip_candidates(reductions.width))
    num_years = reductions.crit_ns.shape[1]
    num_clocks = clock.shape[0]
    skip_grid = np.full((num_years, num_clocks), -1, dtype=np.int64)
    yield_grid = np.zeros((num_years, num_clocks))
    undecided = np.ones((num_years, num_clocks), dtype=bool)
    for skip in candidates:
        surface = _feasible(
            suffix[:, :, skip], reductions.crit_ns, clock
        ).mean(axis=0)
        hit = undecided & (surface >= target_yield)
        skip_grid[hit] = skip
        yield_grid[hit] = surface[hit]
        undecided &= ~hit
        if skip == candidates[-1]:
            # Record the strictest achievable yield for unmet points.
            yield_grid[undecided] = surface[undecided]
        if not undecided.any():
            break
    return skip_grid, yield_grid


def latency_surfaces(
    reductions: PopulationReductions,
    config: SimulationConfig = DEFAULT_SIM_CONFIG,
) -> "tuple[np.ndarray, np.ndarray]":
    """Population-mean ``(cycles, latency_ns)`` surfaces ``(Y, C)`` at
    the reductions' configured skip, from the architecture's cycle
    accounting (see module docstring)."""
    red = reductions
    total_patterns = float(red.num_patterns)
    one_viol = red.one_violations.astype(float)
    one_deep = red.one_deep.astype(float)
    deep_ops = red.deep_ops.astype(float)
    two_deep = deep_ops - one_deep
    one_clean = float(red.num_one) - one_viol - one_deep
    two_clean = float(red.num_patterns - red.num_one) - two_deep
    penalty = float(config.razor_penalty_cycles)
    total_cycles = (
        one_clean
        + one_viol * (1.0 + penalty)
        + two_clean * 2.0
        + deep_ops * penalty
        + red.deep_cycles
    )
    cycles = (total_cycles / total_patterns).mean(axis=0)
    clock = np.asarray(red.clock_ns)
    return cycles, cycles * clock[None, :]


def critical_path_histogram(
    reductions: PopulationReductions, num_bins: int = 32
) -> "tuple[np.ndarray, np.ndarray]":
    """Per-year critical-path histogram over the die population.

    Returns ``(edges, counts)`` with shared ``(num_bins + 1,)`` edges
    spanning the population's full range and ``(Y, num_bins)`` counts.
    """
    if num_bins < 1:
        raise ConfigError("num_bins must be >= 1")
    crit = reductions.crit_ns
    lo = float(crit.min())
    hi = float(crit.max())
    if hi <= lo:
        hi = lo + 1.0
    edges = np.linspace(lo, hi, num_bins + 1)
    counts = np.stack(
        [
            np.histogram(crit[:, j], bins=edges)[0]
            for j in range(crit.shape[1])
        ]
    )
    return edges, counts


# ----------------------------------------------------------------------


@dataclasses.dataclass
class MonteCarloResult:
    """Analytics of one priced die population (plain-Python payload).

    All grids are nested lists indexed ``[year][clock]`` (ints/floats
    only), so :func:`~repro.analysis.serialize.to_json` output is
    byte-stable -- the property the CI smoke job's ``cmp`` check and the
    ``--jobs`` reproducibility gate rest on.
    """

    spec: Dict
    design: Dict
    width: int
    skip: int
    num_dies: int
    num_patterns: int
    num_one: int
    target_yield: float
    base_period_ns: float
    years: List[float]
    clock_ns: List[float]
    yield_surface: List[List[float]]
    mean_cycles: List[List[float]]
    mean_latency_ns: List[List[float]]
    guardband_skip: List[List[int]]
    guardband_yield: List[List[float]]
    crit_mean_ns: List[float]
    crit_min_ns: List[float]
    crit_max_ns: List[float]
    hist_edges_ns: List[float]
    hist_counts: List[List[int]]

    # -- serialization protocol ----------------------------------------

    def to_dict(self) -> Dict:
        return dataclasses.asdict(self)

    @staticmethod
    def from_dict(data: Dict) -> "MonteCarloResult":
        names = {f.name for f in dataclasses.fields(MonteCarloResult)}
        unknown = set(data) - names
        if unknown:
            raise ConfigError(
                "MonteCarloResult payload has unknown fields: %s"
                % sorted(unknown)
            )
        return MonteCarloResult(**{name: data[name] for name in names})

    def _base_clock_index(self) -> int:
        target = self.base_period_ns
        diffs = [abs(t - target) for t in self.clock_ns]
        return diffs.index(min(diffs))

    def summary(self) -> Dict:
        """Flat JSON-ready scalars (base clock = grid point nearest the
        fresh critical path)."""
        ci = self._base_clock_index()
        first, last = 0, len(self.years) - 1
        return {
            "experiment": "mc",
            "width": self.width,
            "kind": self.design.get("kind"),
            "skip": self.skip,
            "num_dies": self.num_dies,
            "num_years": len(self.years),
            "num_clocks": len(self.clock_ns),
            "base_period_ns": self.base_period_ns,
            "yield_fresh_base": self.yield_surface[first][ci],
            "yield_final_base": self.yield_surface[last][ci],
            "latency_fresh_base_ns": self.mean_latency_ns[first][ci],
            "latency_final_base_ns": self.mean_latency_ns[last][ci],
            "guardband_skip_fresh_base": self.guardband_skip[first][ci],
            "guardband_skip_final_base": self.guardband_skip[last][ci],
            "crit_mean_fresh_ns": self.crit_mean_ns[first],
            "crit_mean_final_ns": self.crit_mean_ns[last],
        }

    def render(self) -> str:
        """Human-readable table: per year, the base-clock yield, tuned
        skip and mean latency."""
        ci = self._base_clock_index()
        lines = [
            "Monte Carlo population: %d dies, %dx%d %s multiplier, "
            "Skip-%d, base period %.4f ns"
            % (
                self.num_dies,
                self.width,
                self.width,
                self.design.get("kind", "?"),
                self.skip,
                self.base_period_ns,
            ),
            "target timing yield: %.3f" % self.target_yield,
            "%8s %12s %14s %16s %12s"
            % ("year", "yield@base", "guard skip", "latency ns", "crit ns"),
        ]
        for j, year in enumerate(self.years):
            skip = self.guardband_skip[j][ci]
            lines.append(
                "%8.1f %12.4f %14s %16.5f %12.5f"
                % (
                    year,
                    self.yield_surface[j][ci],
                    str(skip) if skip >= 0 else "unmet",
                    self.mean_latency_ns[j][ci],
                    self.crit_mean_ns[j],
                )
            )
        return "\n".join(lines)


def analyze_population(
    reductions: PopulationReductions,
    spec: MonteCarloSpec,
    base_period_ns: float,
    design: Optional[Dict] = None,
    config: SimulationConfig = DEFAULT_SIM_CONFIG,
    num_bins: int = 32,
) -> MonteCarloResult:
    """Reduce a priced population to its :class:`MonteCarloResult`."""
    red = reductions
    yield_surface = yield_for_skip(red, red.skip)
    cycles, latency = latency_surfaces(red, config)
    skip_grid, yield_grid = tune_guardband(red, spec.target_yield)
    edges, counts = critical_path_histogram(red, num_bins)
    return MonteCarloResult(
        spec=spec.fingerprint(),
        design=dict(design or {}),
        width=red.width,
        skip=red.skip,
        num_dies=red.num_dies,
        num_patterns=red.num_patterns,
        num_one=red.num_one,
        target_yield=spec.target_yield,
        base_period_ns=float(base_period_ns),
        years=[float(y) for y in red.years],
        clock_ns=[float(t) for t in red.clock_ns],
        yield_surface=yield_surface.tolist(),
        mean_cycles=cycles.tolist(),
        mean_latency_ns=latency.tolist(),
        guardband_skip=skip_grid.tolist(),
        guardband_yield=yield_grid.tolist(),
        crit_mean_ns=red.crit_ns.mean(axis=0).tolist(),
        crit_min_ns=red.crit_ns.min(axis=0).tolist(),
        crit_max_ns=red.crit_ns.max(axis=0).tolist(),
        hist_edges_ns=edges.tolist(),
        hist_counts=counts.tolist(),
    )
