"""Correlated process-variation x aging Monte Carlo at population scale.

The subsystem grows :func:`repro.timing.variation.yield_analysis`'s
dies-as-corners sketch into a real Monte Carlo (ROADMAP item; Heidary &
Joardar's co-modeling premise, see PAPERS.md):

* :mod:`~repro.montecarlo.spec` -- the frozen, validated
  :class:`MonteCarloSpec` every sampled population is keyed on;
* :mod:`~repro.montecarlo.sampler` -- correlated per-cell Vth sampling
  (global + spatial + random), one RNG substream per die;
* :mod:`~repro.montecarlo.population` -- the die-population compiler
  batching dies x years through :class:`~repro.timing.replay
  .ArrivalReplay` and reducing to compact per-die statistics;
* :mod:`~repro.montecarlo.analytics` -- yield/latency surfaces,
  critical-path histograms and AHL Skip-n guard-band tuning;
* :mod:`~repro.montecarlo.runner` -- the sharded, store-backed driver
  behind ``python -m repro mc`` and the ``mc_*`` experiments.
"""

from .analytics import (
    MonteCarloResult,
    analyze_population,
    critical_path_histogram,
    latency_surfaces,
    suffix_max,
    tune_guardband,
    yield_for_skip,
)
from .population import (
    PopulationReductions,
    price_population,
    price_population_naive,
)
from .runner import population_key, run_montecarlo
from .sampler import CorrelatedVthSampler
from .spec import MonteCarloSpec

__all__ = [
    "CorrelatedVthSampler",
    "MonteCarloResult",
    "MonteCarloSpec",
    "PopulationReductions",
    "analyze_population",
    "critical_path_histogram",
    "latency_surfaces",
    "population_key",
    "price_population",
    "price_population_naive",
    "run_montecarlo",
    "suffix_max",
    "tune_guardband",
    "yield_for_skip",
]
