"""The ``mc`` subcommand of the unified ``python -m repro`` CLI.

Usage::

    python -m repro mc --dies 200 --years 0,5,10 --width 8
    python -m repro mc --dies 10000 --jobs 8 --store .repro-store \\
        --json mc.json

    # distributed: price die shards on any hosts...
    python -m repro mc --dies 10000 --shard 1/2 --shard-json a.json
    python -m repro mc --dies 10000 --shard 2/2 --shard-json b.json
    # ...then fuse them, byte-identical to the single-host run
    python -m repro mc merge --dies 10000 --shards a.json b.json

    # or dispatch shards through a worker pool (local / tcp / manifest)
    python -m repro mc --dies 10000 --pool tcp:hostA:9100,hostB:9100

Per-die RNG substreams and per-row batched replay make the report (and
the ``--json`` artifact) byte-identical for every ``--jobs`` value,
for cold vs store-warm runs, for every ``--kernel`` backend and for
any sharding -- the surface the CI smoke jobs ``cmp``.

Exit status: 0 on success, 2 on configuration errors (unknown spec
fields come with a did-you-mean suggestion).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from ..analysis.serialize import to_json
from ..errors import ReproError
from .runner import (
    mc_job_spec,
    merge_mc_shards,
    run_mc_shard,
    run_montecarlo,
)
from .spec import MonteCarloSpec


def _floats(text: str):
    return tuple(float(part) for part in text.split(",") if part)


def _kernel_arg(text: str) -> str:
    from ..timing.engine import normalize_kernel

    try:
        return normalize_kernel(text)
    except ReproError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _shard_arg(text: str):
    index, sep, count = text.partition("/")
    try:
        pair = (int(index), int(count)) if sep else None
    except ValueError:
        pair = None
    if pair is None or not 1 <= pair[0] <= pair[1]:
        raise argparse.ArgumentTypeError(
            "shard must be I/N with 1 <= I <= N, got %r" % (text,)
        )
    return pair


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro mc",
        description="Correlated process-variation x aging Monte Carlo.",
    )
    parser.add_argument("--dies", type=int, metavar="N",
                        help="dies to sample (default %d)"
                        % MonteCarloSpec.num_dies)
    parser.add_argument("--width", type=int, default=8,
                        help="multiplier operand width (default 8)")
    parser.add_argument("--kind", default="column",
                        choices=("am", "column", "row"),
                        help="multiplier design (default column)")
    parser.add_argument("--skip", type=int, default=None,
                        help="AHL Skip-n (default width//2 - 1)")
    parser.add_argument("--years", type=_floats, metavar="Y0,Y1,...",
                        help="ascending aging grid in years")
    parser.add_argument("--clocks", type=_floats, metavar="F0,F1,...",
                        help="ascending clock periods as fractions of"
                        " the fresh critical path")
    parser.add_argument("--patterns", type=int, metavar="N",
                        help="operand patterns in the workload stream")
    parser.add_argument("--seed", type=int, help="master seed")
    parser.add_argument("--sigma-global", type=float, metavar="V",
                        help="inter-die Vth sigma (volts)")
    parser.add_argument("--sigma-spatial", type=float, metavar="V",
                        help="correlated intra-die Vth sigma (volts)")
    parser.add_argument("--sigma-random", type=float, metavar="V",
                        help="per-cell random Vth sigma (volts)")
    parser.add_argument("--corr-length", type=float, metavar="CELLS",
                        help="spatial correlation length (cell units)")
    parser.add_argument("--target-yield", type=float, metavar="F",
                        help="timing-yield floor for guard-band tuning")
    parser.add_argument("--die-chunk", type=int, metavar="N",
                        help="dies per batched replay slab")
    parser.add_argument("--bins", type=int, default=32,
                        help="critical-path histogram bins (default 32)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="die-axis worker processes (default 1;"
                        " results are bit-identical for any N)")
    parser.add_argument("--characterize-patterns", type=int, default=2000,
                        metavar="N",
                        help="BTI characterization workload length"
                        " (default 2000)")
    parser.add_argument("--kernel", type=_kernel_arg, default="soa",
                        help="gate-kernel backend: soa, percell or numba"
                        " (all bit-identical; numba falls back to soa"
                        " when unavailable)")
    parser.add_argument("--shard", type=_shard_arg, metavar="I/N",
                        default=None,
                        help="price only die shard I of N and write its"
                        " payload to --shard-json (fuse with 'merge')")
    parser.add_argument("--shard-json", metavar="PATH", default=None,
                        help="shard payload output path (with --shard)")
    parser.add_argument("--pool", metavar="SPEC", default=None,
                        help="worker pool: local:N, tcp:host:port,... or"
                        " manifest:DIR (see 'python -m repro distrib')")
    parser.add_argument("--store", metavar="PATH",
                        help="persistent artifact store directory"
                        " (priced populations are reused when warm)")
    parser.add_argument("--json", metavar="PATH",
                        help="write the full result as sorted JSON")
    return parser


def _spec_from_args(args) -> MonteCarloSpec:
    overrides = {
        "num_dies": args.dies,
        "years": args.years,
        "clock_fractions": args.clocks,
        "num_patterns": args.patterns,
        "seed": args.seed,
        "sigma_global_v": args.sigma_global,
        "sigma_spatial_v": args.sigma_spatial,
        "sigma_random_v": args.sigma_random,
        "correlation_length": args.corr_length,
        "target_yield": args.target_yield,
        "die_chunk": args.die_chunk,
    }
    return MonteCarloSpec.from_overrides(
        **{k: v for k, v in overrides.items() if v is not None}
    )


def _job_from_args(args, spec: MonteCarloSpec):
    return mc_job_spec(
        spec,
        args.width,
        args.kind,
        args.skip,
        characterize_patterns=args.characterize_patterns,
        kernel=args.kernel,
    )


def _emit(result, json_path) -> None:
    print(result.render())
    if json_path:
        directory = os.path.dirname(json_path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(json_path, "w", encoding="utf-8") as fp:
            fp.write(to_json(result, indent=2))
            fp.write("\n")
        print("wrote %s" % json_path)


def _main_shard(args) -> int:
    if args.shard_json is None:
        raise ReproError("--shard needs --shard-json PATH for the payload")
    from ..experiments.scheduler import shard_ranges

    spec = _spec_from_args(args)
    index, count = args.shard
    ranges = shard_ranges(spec.num_dies, count)
    die_range = ranges[index - 1] if index <= len(ranges) else (0, 0)
    payload = run_mc_shard(_job_from_args(args, spec), die_range)
    with open(args.shard_json, "w", encoding="utf-8") as fp:
        json.dump(payload, fp, sort_keys=True)
        fp.write("\n")
    print(
        "wrote %s (dies [%d, %d) of %d)"
        % (args.shard_json, die_range[0], die_range[1], spec.num_dies)
    )
    return 0


def _main_merge(argv) -> int:
    parser = make_parser()
    parser.prog = "python -m repro mc merge"
    parser.add_argument("--shards", metavar="PATH", nargs="+",
                        required=True,
                        help="the --shard-json payload files (any order)")
    args = parser.parse_args(argv)
    try:
        shards = []
        for path in args.shards:
            with open(path, "r", encoding="utf-8") as fp:
                shards.append(json.load(fp))
        result = merge_mc_shards(
            _job_from_args(args, _spec_from_args(args)),
            shards,
            num_bins=args.bins,
        )
    except ReproError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    _emit(result, args.json)
    return 0


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "merge":
        return _main_merge(argv[1:])
    args = make_parser().parse_args(argv)
    pool = None
    try:
        if args.shard is not None:
            return _main_shard(args)
        if args.pool is not None:
            from ..distrib.pool import parse_pool_spec

            pool = parse_pool_spec(args.pool)
        result = run_montecarlo(
            _spec_from_args(args),
            width=args.width,
            kind=args.kind,
            skip=args.skip,
            jobs=args.jobs,
            store=args.store,
            characterize_patterns=args.characterize_patterns,
            num_bins=args.bins,
            kernel=args.kernel,
            pool=pool,
        )
    except ReproError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    finally:
        if pool is not None:
            pool.close()
    _emit(result, args.json)
    return 0


if __name__ == "__main__":
    sys.exit(main())
