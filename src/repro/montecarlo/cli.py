"""The ``mc`` subcommand of the unified ``python -m repro`` CLI.

Usage::

    python -m repro mc --dies 200 --years 0,5,10 --width 8
    python -m repro mc --dies 10000 --jobs 8 --store .repro-store \\
        --json mc.json

Per-die RNG substreams and per-row batched replay make the report (and
the ``--json`` artifact) byte-identical for every ``--jobs`` value and
for cold vs store-warm runs -- the surface the CI smoke job ``cmp``'s.

Exit status: 0 on success, 2 on configuration errors (unknown spec
fields come with a did-you-mean suggestion).
"""

from __future__ import annotations

import argparse
import os
import sys

from ..analysis.serialize import to_json
from ..errors import ReproError
from .runner import run_montecarlo
from .spec import MonteCarloSpec


def _floats(text: str):
    return tuple(float(part) for part in text.split(",") if part)


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro mc",
        description="Correlated process-variation x aging Monte Carlo.",
    )
    parser.add_argument("--dies", type=int, metavar="N",
                        help="dies to sample (default %d)"
                        % MonteCarloSpec.num_dies)
    parser.add_argument("--width", type=int, default=8,
                        help="multiplier operand width (default 8)")
    parser.add_argument("--kind", default="column",
                        choices=("am", "column", "row"),
                        help="multiplier design (default column)")
    parser.add_argument("--skip", type=int, default=None,
                        help="AHL Skip-n (default width//2 - 1)")
    parser.add_argument("--years", type=_floats, metavar="Y0,Y1,...",
                        help="ascending aging grid in years")
    parser.add_argument("--clocks", type=_floats, metavar="F0,F1,...",
                        help="ascending clock periods as fractions of"
                        " the fresh critical path")
    parser.add_argument("--patterns", type=int, metavar="N",
                        help="operand patterns in the workload stream")
    parser.add_argument("--seed", type=int, help="master seed")
    parser.add_argument("--sigma-global", type=float, metavar="V",
                        help="inter-die Vth sigma (volts)")
    parser.add_argument("--sigma-spatial", type=float, metavar="V",
                        help="correlated intra-die Vth sigma (volts)")
    parser.add_argument("--sigma-random", type=float, metavar="V",
                        help="per-cell random Vth sigma (volts)")
    parser.add_argument("--corr-length", type=float, metavar="CELLS",
                        help="spatial correlation length (cell units)")
    parser.add_argument("--target-yield", type=float, metavar="F",
                        help="timing-yield floor for guard-band tuning")
    parser.add_argument("--die-chunk", type=int, metavar="N",
                        help="dies per batched replay slab")
    parser.add_argument("--bins", type=int, default=32,
                        help="critical-path histogram bins (default 32)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="die-axis worker processes (default 1;"
                        " results are bit-identical for any N)")
    parser.add_argument("--store", metavar="PATH",
                        help="persistent artifact store directory"
                        " (priced populations are reused when warm)")
    parser.add_argument("--json", metavar="PATH",
                        help="write the full result as sorted JSON")
    return parser


def _spec_from_args(args) -> MonteCarloSpec:
    overrides = {
        "num_dies": args.dies,
        "years": args.years,
        "clock_fractions": args.clocks,
        "num_patterns": args.patterns,
        "seed": args.seed,
        "sigma_global_v": args.sigma_global,
        "sigma_spatial_v": args.sigma_spatial,
        "sigma_random_v": args.sigma_random,
        "correlation_length": args.corr_length,
        "target_yield": args.target_yield,
        "die_chunk": args.die_chunk,
    }
    return MonteCarloSpec.from_overrides(
        **{k: v for k, v in overrides.items() if v is not None}
    )


def main(argv=None) -> int:
    args = make_parser().parse_args(argv)
    try:
        result = run_montecarlo(
            _spec_from_args(args),
            width=args.width,
            kind=args.kind,
            skip=args.skip,
            jobs=args.jobs,
            store=args.store,
            num_bins=args.bins,
        )
    except ReproError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    print(result.render())
    if args.json:
        directory = os.path.dirname(args.json)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(args.json, "w", encoding="utf-8") as fp:
            fp.write(to_json(result, indent=2))
            fp.write("\n")
        print("wrote %s" % args.json)
    return 0


if __name__ == "__main__":
    sys.exit(main())
