"""Die-population compiler: dies x years -> batched replay -> reductions.

The compiler turns ``num_dies`` sampled Vth-shift vectors and the
aging-year grid into stacked ``(die_chunk * num_years, num_cells)``
delay-scale matrices and prices each slab in **one**
:class:`~repro.timing.replay.ArrivalReplay` pass over the shared value
plane -- the same batched substrate the lifetime sweeps use, now with
the die axis folded into the corner axis.  Row ``i * num_years + j`` of
a slab is die ``lo + i`` at year ``years[j]``, so every per-row
reduction reshapes straight back to ``(dies, years)``.

Per (die, year) row the compiler keeps only compact reductions (the
full ``(dies * years, patterns)`` delay matrix never materializes
across slabs):

* ``crit_ns`` -- the row's critical path (max delay over patterns);
* ``bucket_max_ns`` -- max delay per judged-operand zero count, whose
  suffix maxima give the worst *one-cycle* delay for **every** Skip-n
  threshold at once (guard-band tuning reads this, see
  :mod:`repro.montecarlo.analytics`);
* per clock-period counters at the architecture's configured skip:
  recoverable one-cycle Razor violations, one-cycle deep misses,
  beyond-two-cycle operations and their degrade-policy cycle charges.

Every reduction is an elementwise / per-row operation, so the arrays
are bit-identical no matter how the die axis is chunked or sharded --
and bit-identical to :func:`price_population_naive`, the reference loop
that compiles and runs one full :class:`~repro.timing.engine
.CompiledCircuit` per (die, year).  ``tests/test_montecarlo.py``
asserts both identities; ``benchmarks/test_mc_bench.py`` gates the
speedup.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..aging.degradation import AgedCircuitFactory, vth_shifted_delay_scale
from ..config import DEFAULT_SIM_CONFIG, SimulationConfig
from ..errors import ConfigError, SimulationError
from ..timing.engine import CompiledCircuit
from ..timing.replay import ArrivalReplay
from .sampler import CorrelatedVthSampler
from .spec import MonteCarloSpec


@dataclasses.dataclass
class PopulationReductions:
    """Per-(die, year) reductions of one priced population slice.

    Shapes: ``D`` dies, ``Y`` years, ``C`` clock periods, ``W`` operand
    width.

    Attributes:
        years: The aging grid (years).
        clock_ns: The clock-period grid (ns).
        width / skip: Judged-operand width and the configured Skip-n.
        num_patterns / num_one: Stream length and how many patterns the
            configured skip judges one-cycle (stream-wide, die-free).
        crit_ns: ``(D, Y)`` per-row critical path (ns).
        bucket_max_ns: ``(D, Y, W + 1)`` max delay among patterns whose
            judged operand has exactly ``z`` zeros (0.0 = empty bucket).
        one_violations: ``(D, Y, C)`` one-cycle patterns with
            ``T < delay <= 2T`` (recoverable Razor errors).
        one_deep: ``(D, Y, C)`` one-cycle patterns beyond ``2T``.
        deep_ops: ``(D, Y, C)`` patterns (any judgment) beyond ``2T``.
        deep_cycles: ``(D, Y, C)`` summed fallback-cycle charges
            ``min(ceil(delay / T), max_fallback)`` over those patterns.
    """

    years: Tuple[float, ...]
    clock_ns: Tuple[float, ...]
    width: int
    skip: int
    num_patterns: int
    num_one: int
    crit_ns: np.ndarray
    bucket_max_ns: np.ndarray
    one_violations: np.ndarray
    one_deep: np.ndarray
    deep_ops: np.ndarray
    deep_cycles: np.ndarray

    @property
    def num_dies(self) -> int:
        return self.crit_ns.shape[0]

    def _meta(self) -> Tuple:
        return (
            self.years,
            self.clock_ns,
            self.width,
            self.skip,
            self.num_patterns,
            self.num_one,
        )

    @staticmethod
    def concat(
        parts: "Sequence[PopulationReductions]",
    ) -> "PopulationReductions":
        """Stitch contiguous die-range shards back together (die order =
        argument order)."""
        if not parts:
            raise ConfigError("cannot concat zero population shards")
        head = parts[0]
        for part in parts[1:]:
            if part._meta() != head._meta():
                raise ConfigError(
                    "population shards disagree on their pricing grid"
                )
        return PopulationReductions(
            years=head.years,
            clock_ns=head.clock_ns,
            width=head.width,
            skip=head.skip,
            num_patterns=head.num_patterns,
            num_one=head.num_one,
            crit_ns=np.concatenate([p.crit_ns for p in parts]),
            bucket_max_ns=np.concatenate([p.bucket_max_ns for p in parts]),
            one_violations=np.concatenate(
                [p.one_violations for p in parts]
            ),
            one_deep=np.concatenate([p.one_deep for p in parts]),
            deep_ops=np.concatenate([p.deep_ops for p in parts]),
            deep_cycles=np.concatenate([p.deep_cycles for p in parts]),
        )

    # -- store round-trip ----------------------------------------------

    def to_payload(self) -> Dict:
        """``{"meta", "arrays"}`` payload for the artifact store."""
        return {
            "meta": {
                "years": list(self.years),
                "clock_ns": list(self.clock_ns),
                "width": self.width,
                "skip": self.skip,
                "num_patterns": self.num_patterns,
                "num_one": self.num_one,
            },
            "arrays": {
                "crit_ns": self.crit_ns,
                "bucket_max_ns": self.bucket_max_ns,
                "one_violations": self.one_violations,
                "one_deep": self.one_deep,
                "deep_ops": self.deep_ops,
                "deep_cycles": self.deep_cycles,
            },
        }

    @staticmethod
    def from_payload(payload: Dict) -> "PopulationReductions":
        meta = payload["meta"]
        arrays = payload["arrays"]
        return PopulationReductions(
            years=tuple(meta["years"]),
            clock_ns=tuple(meta["clock_ns"]),
            width=int(meta["width"]),
            skip=int(meta["skip"]),
            num_patterns=int(meta["num_patterns"]),
            num_one=int(meta["num_one"]),
            crit_ns=np.asarray(arrays["crit_ns"]),
            bucket_max_ns=np.asarray(arrays["bucket_max_ns"]),
            one_violations=np.asarray(arrays["one_violations"]),
            one_deep=np.asarray(arrays["one_deep"]),
            deep_ops=np.asarray(arrays["deep_ops"]),
            deep_cycles=np.asarray(arrays["deep_cycles"]),
        )


def _reduce_rows(
    delays: np.ndarray,
    zeros: np.ndarray,
    width: int,
    skip: int,
    clock_ns: Sequence[float],
    max_fallback: int,
):
    """The shared per-row reduction kernel (rows = die x year corners).

    Works identically on a ``(k, n)`` batched matrix and a ``(1, n)``
    naive row; every operation is elementwise or a per-row reduction, so
    batched and naive outputs are bit-identical.
    """
    k = delays.shape[0]
    crit = delays.max(axis=1)
    bucket = np.zeros((k, width + 1))
    for z in range(width + 1):
        mask = zeros == z
        if mask.any():
            bucket[:, z] = delays[:, mask].max(axis=1)
    one_mask = zeros >= skip
    d_one = delays[:, one_mask]
    num_clocks = len(clock_ns)
    one_viol = np.zeros((k, num_clocks), dtype=np.int64)
    one_deep = np.zeros((k, num_clocks), dtype=np.int64)
    deep_ops = np.zeros((k, num_clocks), dtype=np.int64)
    deep_cycles = np.zeros((k, num_clocks))
    for ci, period in enumerate(clock_ns):
        budget = 2.0 * period
        one_viol[:, ci] = (
            (d_one > period) & (d_one <= budget)
        ).sum(axis=1)
        one_deep[:, ci] = (d_one > budget).sum(axis=1)
        over = delays > budget
        deep_ops[:, ci] = over.sum(axis=1)
        charge = np.minimum(
            np.ceil(delays / period), float(max_fallback)
        )
        deep_cycles[:, ci] = np.where(over, charge, 0.0).sum(axis=1)
    return crit, bucket, one_viol, one_deep, deep_ops, deep_cycles


def _stacked_scales(
    factory: AgedCircuitFactory,
    years: Sequence[float],
    shifts: np.ndarray,
) -> np.ndarray:
    """``(dies * len(years), num_cells)`` scale rows, die-major: row
    ``i * len(years) + j`` is die ``i`` at ``years[j]``."""
    dies, num_cells = shifts.shape
    num_years = len(years)
    rows = np.empty((dies * num_years, num_cells))
    for j, year in enumerate(years):
        rows[j::num_years] = factory.vth_shifted_scales(year, shifts)
    return rows


def price_population(
    factory: AgedCircuitFactory,
    sampler: CorrelatedVthSampler,
    spec: MonteCarloSpec,
    stimulus: Dict[str, np.ndarray],
    zeros: np.ndarray,
    width: int,
    skip: int,
    clock_ns: Sequence[float],
    config: SimulationConfig = DEFAULT_SIM_CONFIG,
    die_range: Optional[Tuple[int, int]] = None,
) -> PopulationReductions:
    """Price dies ``die_range`` (default: all) through the batched path.

    One cached value pass serves the whole population; each
    ``die_chunk`` slab prices ``die_chunk * num_years`` delay-scale
    rows in a single :meth:`~repro.timing.replay.ArrivalReplay.replay`
    call and is immediately reduced, so peak memory stays bounded by
    the slab, not the population.
    """
    lo, hi = die_range if die_range is not None else (0, spec.num_dies)
    if not 0 <= lo <= hi <= spec.num_dies:
        raise ConfigError(
            "die_range [%d, %d) outside population of %d"
            % (lo, hi, spec.num_dies)
        )
    num_years = spec.num_years
    plane = factory.value_plane(stimulus)
    replayer = ArrivalReplay(factory.circuit(0.0), plane)
    parts: List[PopulationReductions] = []
    for start in range(lo, hi, spec.die_chunk):
        stop = min(start + spec.die_chunk, hi)
        shifts = sampler.sample(start, stop)
        rows = _stacked_scales(factory, spec.years, shifts)
        delays = replayer.replay(rows).delays
        crit, bucket, one_viol, one_deep, deep_ops, deep_cycles = (
            _reduce_rows(
                delays, zeros, width, skip, clock_ns,
                config.max_fallback_cycles,
            )
        )
        dies = stop - start
        parts.append(
            PopulationReductions(
                years=tuple(spec.years),
                clock_ns=tuple(float(t) for t in clock_ns),
                width=width,
                skip=skip,
                num_patterns=int(zeros.shape[0]),
                num_one=int((zeros >= skip).sum()),
                crit_ns=crit.reshape(dies, num_years),
                bucket_max_ns=bucket.reshape(dies, num_years, width + 1),
                one_violations=one_viol.reshape(dies, num_years, -1),
                one_deep=one_deep.reshape(dies, num_years, -1),
                deep_ops=deep_ops.reshape(dies, num_years, -1),
                deep_cycles=deep_cycles.reshape(dies, num_years, -1),
            )
        )
    return PopulationReductions.concat(parts)


def price_population_naive(
    factory: AgedCircuitFactory,
    sampler: CorrelatedVthSampler,
    spec: MonteCarloSpec,
    stimulus: Dict[str, np.ndarray],
    zeros: np.ndarray,
    width: int,
    skip: int,
    clock_ns: Sequence[float],
    config: SimulationConfig = DEFAULT_SIM_CONFIG,
    die_range: Optional[Tuple[int, int]] = None,
) -> PopulationReductions:
    """Reference per-die loop: compile and fully simulate one
    :class:`CompiledCircuit` per (die, year) -- what pricing a
    population costs without the two-plane batched replay.  Reductions
    are computed by the same kernel, so the output is bit-identical to
    :func:`price_population` (asserted in tests); only the wall clock
    differs.  The benchmark extrapolates this loop from a die subset.
    """
    lo, hi = die_range if die_range is not None else (0, spec.num_dies)
    if not 0 <= lo <= hi <= spec.num_dies:
        raise ConfigError(
            "die_range [%d, %d) outside population of %d"
            % (lo, hi, spec.num_dies)
        )
    netlist = factory.netlist
    technology = factory.technology
    num_years = spec.num_years
    parts: List[PopulationReductions] = []
    for die in range(lo, hi):
        shift = sampler.sample_die(die)
        crit = np.empty((1, num_years))
        bucket = np.empty((1, num_years, width + 1))
        shape = (1, num_years, len(clock_ns))
        one_viol = np.empty(shape, dtype=np.int64)
        one_deep = np.empty(shape, dtype=np.int64)
        deep_ops = np.empty(shape, dtype=np.int64)
        deep_cycles = np.empty(shape)
        for j, year in enumerate(spec.years):
            scale = vth_shifted_delay_scale(
                netlist, factory.stress, year, shift, technology
            )
            circuit = CompiledCircuit(netlist, technology, scale)
            result = circuit.run(stimulus)
            row = result.delays[None, :]
            c, b, v, od, dp, dc = _reduce_rows(
                row, zeros, width, skip, clock_ns,
                config.max_fallback_cycles,
            )
            crit[0, j] = c[0]
            bucket[0, j] = b[0]
            one_viol[0, j] = v[0]
            one_deep[0, j] = od[0]
            deep_ops[0, j] = dp[0]
            deep_cycles[0, j] = dc[0]
        parts.append(
            PopulationReductions(
                years=tuple(spec.years),
                clock_ns=tuple(float(t) for t in clock_ns),
                width=width,
                skip=skip,
                num_patterns=int(zeros.shape[0]),
                num_one=int((zeros >= skip).sum()),
                crit_ns=crit,
                bucket_max_ns=bucket,
                one_violations=one_viol,
                one_deep=one_deep,
                deep_ops=deep_ops,
                deep_cycles=deep_cycles,
            )
        )
    return PopulationReductions.concat(parts)
