"""Typed configuration of a process-variation x aging Monte Carlo.

One frozen :class:`MonteCarloSpec` captures everything that determines a
sampled die population and its pricing grid -- die count, the three-way
Vth sigma split (global / spatially-correlated / random), the spatial
correlation length, the aging-year grid, the clock-period grid (as
fractions of the design's fresh critical path), the pattern stream and
the master seed.  Two runs with equal specs produce bit-identical
populations regardless of process-pool shard count (the sampler derives
one substream per die from ``(seed, die_index)``), which is what lets
the :class:`~repro.experiments.store.ArtifactStore` key priced
populations on the spec fingerprint alone.

Override construction is validated the way
:class:`~repro.experiments.registry.ExperimentSpec` validates runner
overrides: unknown field names raise
:class:`~repro.errors.ConfigError` with a difflib did-you-mean
suggestion instead of a late ``TypeError``.
"""

from __future__ import annotations

import dataclasses
import difflib
from typing import Dict, Tuple

from ..errors import ConfigError

#: Offset separating the operand stream from the sampler streams, so a
#: spec's ``seed`` never reuses draws between dies and stimulus.
STREAM_SEED_OFFSET = 104_729


def _suggestion(name: str, known) -> str:
    close = difflib.get_close_matches(name, sorted(known), n=1)
    return " -- did you mean %r?" % close[0] if close else ""


@dataclasses.dataclass(frozen=True)
class MonteCarloSpec:
    """Frozen configuration of one Monte Carlo population.

    Attributes:
        num_dies: Dies to sample.
        sigma_global_v: Inter-die (chip-wide) Vth sigma in volts --
            every cell of a die shares this draw.
        sigma_spatial_v: Intra-die spatially-correlated Vth sigma in
            volts (systematic across-die gradients and lithography
            stripes), realized as a coarse Gaussian patch grid
            bilinearly interpolated over the synthetic floorplan.
        sigma_random_v: Per-cell independent Vth sigma in volts (random
            dopant fluctuation).
        correlation_length: Patch spacing of the spatial component in
            floorplan cell units (larger = smoother gradients).
        max_shift_v: Symmetric clip on the summed per-cell shift, so a
            pathological tail cannot consume the whole gate overdrive.
        years: Ascending aging-year grid (year 0 = fresh).
        clock_fractions: Ascending clock-period grid as fractions of
            the fresh critical path delay.
        num_patterns: Operand patterns in the shared workload stream.
        seed: Master seed: die ``d`` samples from substream
            ``(seed, d)``; the operand stream draws from
            ``seed + STREAM_SEED_OFFSET``.
        die_chunk: Dies per batched replay slab (``die_chunk *
            len(years)`` delay-scale rows priced per
            :class:`~repro.timing.replay.ArrivalReplay` call).
        target_yield: Timing-yield floor the guard-band tuner must meet
            when picking the smallest Skip-n per (year, clock) point.
    """

    num_dies: int = 1000
    sigma_global_v: float = 0.015
    sigma_spatial_v: float = 0.012
    sigma_random_v: float = 0.008
    correlation_length: float = 4.0
    max_shift_v: float = 0.12
    years: Tuple[float, ...] = (0.0, 2.0, 4.0, 6.0, 8.0, 10.0)
    clock_fractions: Tuple[float, ...] = (
        0.55, 0.62, 0.69, 0.76, 0.83, 0.90, 0.97, 1.04, 1.11, 1.18, 1.25,
    )
    num_patterns: int = 512
    seed: int = 2025
    die_chunk: int = 384
    target_yield: float = 0.99

    def __post_init__(self):
        if not isinstance(self.num_dies, int) or self.num_dies < 1:
            raise ConfigError(
                "num_dies must be a positive int, got %r" % (self.num_dies,)
            )
        for name in ("sigma_global_v", "sigma_spatial_v", "sigma_random_v"):
            if getattr(self, name) < 0:
                raise ConfigError("%s must be non-negative" % name)
        if self.correlation_length <= 0:
            raise ConfigError("correlation_length must be positive")
        if self.max_shift_v <= 0:
            raise ConfigError("max_shift_v must be positive")
        object.__setattr__(self, "years", tuple(float(y) for y in self.years))
        if not self.years:
            raise ConfigError("years grid must be non-empty")
        if any(y < 0 for y in self.years):
            raise ConfigError("years must be non-negative")
        if list(self.years) != sorted(set(self.years)):
            raise ConfigError("years must be strictly ascending")
        object.__setattr__(
            self,
            "clock_fractions",
            tuple(float(f) for f in self.clock_fractions),
        )
        if not self.clock_fractions:
            raise ConfigError("clock_fractions must be non-empty")
        if any(f <= 0 for f in self.clock_fractions):
            raise ConfigError("clock_fractions must be positive")
        if list(self.clock_fractions) != sorted(set(self.clock_fractions)):
            raise ConfigError("clock_fractions must be strictly ascending")
        if not isinstance(self.num_patterns, int) or self.num_patterns < 1:
            raise ConfigError("num_patterns must be a positive int")
        if not isinstance(self.seed, int):
            raise ConfigError("seed must be an int, got %r" % (self.seed,))
        if not isinstance(self.die_chunk, int) or self.die_chunk < 1:
            raise ConfigError("die_chunk must be a positive int")
        if not 0.0 < self.target_yield <= 1.0:
            raise ConfigError("target_yield must lie in (0, 1]")

    # ------------------------------------------------------------------

    @classmethod
    def field_names(cls) -> Tuple[str, ...]:
        return tuple(f.name for f in dataclasses.fields(cls))

    @classmethod
    def from_overrides(cls, **overrides) -> "MonteCarloSpec":
        """Build a spec from keyword overrides, rejecting unknown names
        with a did-you-mean :class:`~repro.errors.ConfigError`."""
        known = cls.field_names()
        for name in overrides:
            if name not in known:
                raise ConfigError(
                    "MonteCarloSpec does not accept %r%s (accepted: %s)"
                    % (name, _suggestion(name, known), ", ".join(known))
                )
        return cls(**overrides)

    def replace(self, **overrides) -> "MonteCarloSpec":
        """A sibling spec with validated overrides applied."""
        known = self.field_names()
        for name in overrides:
            if name not in known:
                raise ConfigError(
                    "MonteCarloSpec does not accept %r%s (accepted: %s)"
                    % (name, _suggestion(name, known), ", ".join(known))
                )
        return dataclasses.replace(self, **overrides)

    def fingerprint(self) -> Dict:
        """JSON-ready key dict -- the sampler-config part of every
        population / surface artifact key."""
        data = dataclasses.asdict(self)
        data["years"] = list(self.years)
        data["clock_fractions"] = list(self.clock_fractions)
        # die_chunk only batches work; it cannot change any result, so
        # it must not invalidate stored populations.
        data.pop("die_chunk")
        return data

    @property
    def stream_seed(self) -> int:
        return self.seed + STREAM_SEED_OFFSET

    @property
    def num_years(self) -> int:
        return len(self.years)
