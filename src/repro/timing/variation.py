"""Process variation: Monte-Carlo die sampling (related work [19]).

The paper's related work motivates input-based elastic clocking as a
*process-variation* tolerance technique before it is an aging one; this
module lets the architecture be evaluated across sampled process
corners.  Per die:

* a **global** (inter-die) lognormal factor shifts every cell together
  (fast/slow corners);
* a **local** (intra-die) lognormal factor perturbs each cell
  independently (random dopant fluctuation and friends).

The per-cell factors compose with aging factors, so a die can be both
slow-corner and aged.  :func:`sample_dies` yields reproducible
per-die delay-scale arrays; ``ext`` users combine them with
:class:`~repro.timing.CompiledCircuit` directly.
"""

from __future__ import annotations

import dataclasses
import difflib
import math
import warnings
from typing import Dict, Iterator, Optional

import numpy as np

from ..errors import ConfigError
from ..nets.netlist import Netlist


@dataclasses.dataclass(frozen=True)
class ProcessVariation:
    """Lognormal inter-/intra-die delay variation.

    Args:
        sigma_global: Standard deviation of the shared log-factor
            (0.05 ~= a +-10% 2-sigma corner spread).
        sigma_local: Standard deviation of the per-cell log-factor.
    """

    sigma_global: float = 0.05
    sigma_local: float = 0.03

    def __post_init__(self):
        if self.sigma_global < 0 or self.sigma_local < 0:
            raise ConfigError("sigmas must be non-negative")

    @classmethod
    def from_spec(cls, spec, technology=None) -> "ProcessVariation":
        """Map a :class:`~repro.montecarlo.spec.MonteCarloSpec`'s
        Vth-space sigma split onto this legacy lognormal delay model.

        Linearizing the alpha-power law around zero shift,
        ``d(log delay)/dVth = alpha_sat / overdrive``, so each volt
        sigma maps to a log-delay sigma of ``alpha_sat * sigma_v /
        overdrive`` (mean p/n overdrive).  The spatial and random
        intra-die components fold into one independent per-cell sigma
        (this model carries no floorplan; the full correlated treatment
        lives in :mod:`repro.montecarlo.sampler`).
        """
        if technology is None:
            from ..config import DEFAULT_TECHNOLOGY

            technology = DEFAULT_TECHNOLOGY
        overdrive = 0.5 * (
            technology.gate_overdrive_p + technology.gate_overdrive_n
        )
        slope = technology.alpha_sat / overdrive
        local_v = math.sqrt(
            spec.sigma_spatial_v ** 2 + spec.sigma_random_v ** 2
        )
        return cls(
            sigma_global=slope * spec.sigma_global_v,
            sigma_local=slope * local_v,
        )

    def sample_die(
        self, netlist: Netlist, rng: np.random.Generator
    ) -> np.ndarray:
        """One die's per-cell delay factors (mean ~1)."""
        num_cells = len(netlist.cells)
        global_factor = float(
            np.exp(rng.normal(0.0, self.sigma_global))
        )
        local = np.exp(rng.normal(0.0, self.sigma_local, num_cells))
        return global_factor * local


def sample_dies(
    netlist: Netlist,
    variation: ProcessVariation,
    num_dies: int,
    seed: int = 7,
) -> Iterator[np.ndarray]:
    """Reproducible stream of per-die delay-scale arrays."""
    if num_dies < 1:
        raise ConfigError("num_dies must be >= 1")
    rng = np.random.default_rng(seed)
    for _ in range(num_dies):
        yield variation.sample_die(netlist, rng)


@dataclasses.dataclass
class YieldReport:
    """Cross-die statistics of one design point."""

    num_dies: int
    latencies_ns: np.ndarray
    error_rates: np.ndarray
    feasible: np.ndarray

    @property
    def yield_fraction(self) -> float:
        """Fraction of dies with no beyond-budget operations."""
        return float(self.feasible.mean()) if self.num_dies else 0.0

    @property
    def worst_latency_ns(self) -> float:
        return float(self.latencies_ns.max()) if self.num_dies else 0.0

    @property
    def mean_latency_ns(self) -> float:
        return float(self.latencies_ns.mean()) if self.num_dies else 0.0

    @property
    def latency_spread(self) -> float:
        """(max - min) / mean across dies -- the variation exposure."""
        if self.num_dies == 0:
            return 0.0
        spread = self.latencies_ns.max() - self.latencies_ns.min()
        return float(spread / self.latencies_ns.mean())

    # -- serialization protocol (repro.analysis.serialize) -------------

    def summary(self) -> Dict:
        """Flat JSON-ready scalars."""
        mean_error = (
            float(self.error_rates.mean()) if self.num_dies else 0.0
        )
        return {
            "num_dies": self.num_dies,
            "yield_fraction": self.yield_fraction,
            "mean_latency_ns": self.mean_latency_ns,
            "worst_latency_ns": self.worst_latency_ns,
            "latency_spread": self.latency_spread,
            "mean_error_rate": mean_error,
        }

    def to_dict(self) -> Dict:
        """Full JSON-ready round-trip payload."""
        return {
            "num_dies": self.num_dies,
            "latencies_ns": self.latencies_ns.tolist(),
            "error_rates": self.error_rates.tolist(),
            "feasible": [bool(f) for f in self.feasible],
        }

    @staticmethod
    def from_dict(data: Dict) -> "YieldReport":
        return YieldReport(
            num_dies=int(data["num_dies"]),
            latencies_ns=np.asarray(data["latencies_ns"], dtype=float),
            error_rates=np.asarray(data["error_rates"], dtype=float),
            feasible=np.asarray(data["feasible"], dtype=bool),
        )


#: Legacy keyword defaults of :func:`yield_analysis` (pre-spec API).
_LEGACY_DEFAULTS = {
    "num_dies": 25,
    "num_patterns": 2000,
    "variation": None,
    "seed": 11,
}


def yield_analysis(
    architecture,
    spec=None,
    years: float = 0.0,
    **legacy,
) -> YieldReport:
    """Monte-Carlo the architecture across sampled dies.

    Preferred calling convention: pass a :class:`~repro.montecarlo.spec
    .MonteCarloSpec` -- its die count, pattern count, seed and sigma
    split (via :meth:`ProcessVariation.from_spec`) configure the sweep;
    ``years`` selects the single aging point this report evaluates.
    The legacy keywords (``num_dies``, ``num_patterns``, ``variation``,
    ``seed``) still work for one release behind a
    ``DeprecationWarning``.

    Every die shares the workload; a die is *feasible* when no operation
    blew the two-cycle budget (the Razor safety envelope held).

    All dies share the value plane (process corners only rescale
    delays), so the sweep is one value pass plus one batched
    :class:`~repro.timing.replay.ArrivalReplay` over the ``num_dies``
    corner axis -- bit-identical to compiling and running each die.
    """
    if isinstance(spec, int):
        # Positional legacy call: yield_analysis(arch, 25, ...).
        legacy.setdefault("num_dies", spec)
        spec = None
    unknown = set(legacy) - set(_LEGACY_DEFAULTS)
    if unknown:
        name = sorted(unknown)[0]
        close = difflib.get_close_matches(
            name, sorted(_LEGACY_DEFAULTS), n=1
        )
        raise ConfigError(
            "yield_analysis() got unexpected keyword(s): %s%s"
            % (
                sorted(unknown),
                " -- did you mean %r?" % close[0] if close else "",
            )
        )
    if spec is not None:
        if legacy:
            raise ConfigError(
                "pass either a MonteCarloSpec or the legacy keywords"
                " (%s), not both" % sorted(legacy)
            )
        num_dies = spec.num_dies
        num_patterns = spec.num_patterns
        seed = spec.seed
        variation = ProcessVariation.from_spec(
            spec, architecture.technology
        )
    else:
        if legacy:
            warnings.warn(
                "yield_analysis(num_dies=..., num_patterns=...,"
                " variation=..., seed=...) is deprecated; pass a"
                " repro.MonteCarloSpec instead",
                DeprecationWarning,
                stacklevel=2,
            )
        merged = dict(_LEGACY_DEFAULTS)
        merged.update(legacy)
        num_dies = merged["num_dies"]
        num_patterns = merged["num_patterns"]
        seed = merged["seed"]
        variation = merged["variation"] or ProcessVariation()
    netlist = architecture.netlist
    rng = np.random.default_rng(seed)
    high = 1 << architecture.width
    md = rng.integers(0, high, num_patterns, dtype=np.uint64)
    mr = rng.integers(0, high, num_patterns, dtype=np.uint64)

    aging_scale = (
        architecture.factory.delay_scale(years) if years else None
    )
    die_scales = np.vstack(
        list(sample_dies(netlist, variation, num_dies, seed=seed + 1))
    )
    scales = (
        die_scales if aging_scale is None else die_scales * aging_scale
    )
    # Local import: repro.timing.replay imports this package's engine.
    from .replay import ArrivalReplay

    circuit = architecture.factory.circuit(0.0)
    plane = architecture.factory.value_plane({"md": md, "mr": mr})
    replayed = ArrivalReplay(circuit, plane).replay(scales)

    latencies = np.empty(num_dies)
    error_rates = np.empty(num_dies)
    feasible = np.empty(num_dies, dtype=bool)
    for k in range(num_dies):
        report = architecture.run_patterns(
            md, mr, years=0.0, stream=replayed.stream_result(k)
        ).report
        latencies[k] = report.average_latency_ns
        error_rates[k] = report.error_rate
        feasible[k] = report.deep_retry_ops == 0
    return YieldReport(
        num_dies=num_dies,
        latencies_ns=latencies,
        error_rates=error_rates,
        feasible=feasible,
    )
