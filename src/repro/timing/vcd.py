"""VCD (value change dump) waveform export.

Turns a traced :class:`~repro.timing.event.EventResult` into a standard
VCD file viewable in GTKWave & friends -- the debugging view the
authors' Verilog flow gets for free.  Port bits are emitted under their
port names (``p[5]``); internal nets under their netlist names.

Usage::

    sim = EventSimulator(netlist)
    result = sim.run_pair(prev, new, record_trace=True)
    write_vcd(result, netlist, "pattern.vcd")
"""

from __future__ import annotations

import io
from typing import Dict, Iterable, Optional

from ..errors import SimulationError
from ..nets.netlist import CONST0, CONST1, Netlist
from .event import EventResult

#: Timescale used in emitted files: one unit = 1 ps.
TIMESCALE_PS = 1


def _identifier(index: int) -> str:
    """Compact printable VCD identifier for the index-th variable."""
    alphabet = [chr(c) for c in range(33, 127)]
    if index < 0:
        raise SimulationError("identifier index must be non-negative")
    chars = []
    index += 1
    while index:
        index, rem = divmod(index - 1, len(alphabet))
        chars.append(alphabet[rem])
    return "".join(reversed(chars))


def render_vcd(
    result: EventResult,
    netlist: Netlist,
    nets: Optional[Iterable[int]] = None,
    date: str = "reproduction run",
) -> str:
    """Render a traced event result as VCD text.

    Args:
        result: An :class:`EventResult` produced with
            ``record_trace=True``.
        netlist: The simulated design (for names and port structure).
        nets: Optional subset of net ids to dump; defaults to all port
            bits plus every net that changed.
    """
    if result.trace is None or result.initial_values is None:
        raise SimulationError(
            "event result has no trace: run_pair(record_trace=True)"
        )

    wanted = set()
    for port in list(netlist.input_ports.values()) + list(
        netlist.output_ports.values()
    ):
        wanted.update(port.nets)
    wanted.update(net for _, net, _ in result.trace)
    if nets is not None:
        wanted &= set(nets)
    wanted -= {CONST0, CONST1}
    ordered = sorted(wanted)
    identifiers: Dict[int, str] = {
        net: _identifier(k) for k, net in enumerate(ordered)
    }

    out = io.StringIO()
    out.write("$date %s $end\n" % date)
    out.write("$version repro gate-level event simulator $end\n")
    out.write("$timescale %dps $end\n" % TIMESCALE_PS)
    out.write("$scope module %s $end\n" % netlist.name.replace(" ", "_"))
    for net in ordered:
        out.write(
            "$var wire 1 %s %s $end\n"
            % (identifiers[net], netlist.net_name(net).replace(" ", "_"))
        )
    out.write("$upscope $end\n$enddefinitions $end\n")

    out.write("$dumpvars\n")
    for net in ordered:
        value = result.initial_values.get(net, 0)
        out.write("%d%s\n" % (value, identifiers[net]))
    out.write("$end\n")

    last_time = None
    for time_ns, net, value in result.trace:
        if net not in identifiers:
            continue
        ticks = int(round(time_ns * 1000.0 / TIMESCALE_PS))
        if ticks != last_time:
            out.write("#%d\n" % ticks)
            last_time = ticks
        out.write("%d%s\n" % (value, identifiers[net]))
    return out.getvalue()


def write_vcd(
    result: EventResult,
    netlist: Netlist,
    path: str,
    nets: Optional[Iterable[int]] = None,
) -> None:
    """Write the rendered VCD to ``path``."""
    text = render_vcd(result, netlist, nets=nets)
    with open(path, "w") as handle:
        handle.write(text)
