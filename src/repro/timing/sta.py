"""Static timing analysis (value-independent worst case).

The fixed-latency designs of the paper clock at the critical-path delay;
:class:`StaticTiming` computes that delay by propagating worst-case
arrival times topologically, ignoring logic values (every input can be
late, every path can be sensitized).  It also extracts the critical path
itself, which the aging experiments use to report which cells dominate
degradation.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..config import DEFAULT_TECHNOLOGY, Technology
from ..errors import SimulationError
from ..nets.netlist import Cell, Netlist


@dataclasses.dataclass
class StaticTiming:
    """Worst-case arrival analysis of one netlist."""

    netlist: Netlist
    technology: Technology = DEFAULT_TECHNOLOGY
    delay_scale: Optional[np.ndarray] = None

    def __post_init__(self):
        self.netlist.validate()
        scale = self.delay_scale
        cells = self.netlist.cells
        if scale is None:
            scale = np.ones(len(cells))
        else:
            scale = np.asarray(scale, dtype=float)
            if scale.shape != (len(cells),):
                raise SimulationError(
                    "delay_scale must have one entry per cell"
                )
        unit = self.technology.time_unit_ns
        self._arrival: Dict[int, float] = {}
        self._through: Dict[int, Cell] = {}
        for cell in self.netlist.levelize():
            delay = cell.cell_type.delay_units * unit * float(scale[cell.index])
            worst_in = 0.0
            for net in cell.inputs:
                worst_in = max(worst_in, self._arrival.get(net, 0.0))
            self._arrival[cell.output] = worst_in + delay
            self._through[cell.output] = cell

    def arrival(self, net: int) -> float:
        """Worst-case arrival time of ``net`` in ns (0 for inputs)."""
        return self._arrival.get(net, 0.0)

    @property
    def critical_delay(self) -> float:
        """Worst-case delay to any primary output, in ns."""
        worst = 0.0
        for port in self.netlist.output_ports.values():
            for net in port.nets:
                worst = max(worst, self.arrival(net))
        return worst

    def critical_path(self) -> List[Cell]:
        """Cells along the worst path, input side first."""
        worst_net = None
        worst = -1.0
        for port in self.netlist.output_ports.values():
            for net in port.nets:
                if self.arrival(net) > worst:
                    worst = self.arrival(net)
                    worst_net = net
        path: List[Cell] = []
        net = worst_net
        while net is not None and net in self._through:
            cell = self._through[net]
            path.append(cell)
            # Step back through the latest-arriving input.
            net = max(
                cell.inputs, key=lambda n: self._arrival.get(n, 0.0), default=None
            )
            if net is not None and self._arrival.get(net, 0.0) == 0.0:
                net = None
        path.reverse()
        return path


def critical_path(
    netlist: Netlist,
    technology: Technology = DEFAULT_TECHNOLOGY,
    delay_scale: Optional[np.ndarray] = None,
) -> Tuple[float, List[Cell]]:
    """Convenience wrapper: (critical delay ns, cells along the path)."""
    sta = StaticTiming(netlist, technology, delay_scale)
    return sta.critical_delay, sta.critical_path()


def critical_delays(
    netlist: Netlist,
    technology: Technology = DEFAULT_TECHNOLOGY,
    delay_scales: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Critical-path delays for many delay-scale corners at once.

    ``delay_scales`` is ``(k, num_cells)`` (or ``(num_cells,)`` for a
    single corner); the result is ``(k,)`` ns.  One topological sweep
    with the corner axis vectorized -- entry ``j`` is bit-identical to
    ``StaticTiming(netlist, technology, delay_scales[j]).critical_delay``
    (same float op order per corner), which is what the aging-trend
    sweeps (Fig. 7) rely on.
    """
    netlist.validate()
    cells = netlist.cells
    if delay_scales is None:
        scales = np.ones((1, len(cells)))
    else:
        scales = np.asarray(delay_scales, dtype=float)
        if scales.ndim == 1:
            scales = scales[None, :]
        if scales.ndim != 2 or scales.shape[1] != len(cells):
            raise SimulationError(
                "delay_scales must be (k, num_cells) with num_cells=%d, "
                "got %r" % (len(cells), np.shape(delay_scales))
            )
    unit = technology.time_unit_ns
    k = scales.shape[0]
    zeros = np.zeros(k)
    arrival: Dict[int, np.ndarray] = {}
    for cell in netlist.levelize():
        fresh = cell.cell_type.delay_units * unit
        delay = fresh * scales[:, cell.index]
        worst_in = zeros
        for net in cell.inputs:
            got = arrival.get(net)
            if got is not None:
                worst_in = np.maximum(worst_in, got)
        arrival[cell.output] = worst_in + delay
    worst = zeros
    for port in netlist.output_ports.values():
        for net in port.nets:
            got = arrival.get(net)
            if got is not None:
                worst = np.maximum(worst, got)
    return worst
