"""Two-plane stream simulation: value plane + batched arrival replay.

Aging (NBTI/PBTI drift) and process variation only rescale per-cell
*delays*: the settled values, toggle streams, bypass-group holds and
signal probabilities of a pattern stream are bit-identical at every
aging timestep and variation corner.  This module exploits that split:

* :func:`build_value_plane` runs the levelized cell loop **once** per
  stimulus (delay-free), recording everything the arrival rules consume
  -- per-net may-change flags and per-cell value-derived aux masks
  (controlling-input hits, mux selects, tri-state enables), bit-packed
  via :func:`repro.timing.logic.pack_bits` semantics -- plus all the
  delay-independent :class:`~repro.timing.engine.StreamResult` fields
  (outputs, switched capacitance, optional net stats).

* :class:`ArrivalReplay` then recomputes per-pattern path delays for one
  or *many* per-cell delay-scale vectors.  ``replay(scales)`` with a
  ``(k, num_cells)`` matrix evaluates all ``k`` aging timesteps /
  variation corners in a single numpy pass per cell: every cell's
  arrival update broadcasts over a leading corner axis, so an
  O(timesteps x full-sim) lifetime sweep becomes O(1 value pass +
  timesteps x cheap replay).

Bit-identity contract: for any scale vector ``s``,
``ArrivalReplay(circuit, plane).replay(s)`` reproduces
``CompiledCircuit(netlist, tech, s, mode, hooks).run(stimulus)`` bit for
bit -- same float op sequence through the shared
:func:`repro.timing.logic.arrival_masks` kernel, same quiet-zero
invariant, regardless of how the plane build was chunked.  This is
asserted by ``tests/test_replay.py``.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import SimulationError
from ..nets.netlist import CONST0, CONST1
from . import logic
from .engine import CompiledCircuit, StreamResult


def _aux_count(opcode: int, num_inputs: int) -> int:
    """How many aux masks :func:`logic.aux_masks` yields for a cell."""
    if logic.CONTROLLING_VALUE.get(opcode) is not None:
        return num_inputs
    if opcode in (logic.OP_MUX2, logic.OP_TRIBUF):
        return 1
    return 0


#: Peak-memory target for the SoA replay's dense ``(num_nets, k, c)``
#: per-chunk arrival matrix.
REPLAY_CHUNK_TARGET_BYTES = 128 * 1024 * 1024


def _replay_chunk_size(num_nets: int, k: int) -> int:
    """Patterns per replay chunk: a multiple of 8 (byte-aligned plane
    unpacking), at least 8, sized to the replay memory target."""
    per_pattern = max(1, num_nets) * max(1, k) * 8
    chunk = REPLAY_CHUNK_TARGET_BYTES // per_pattern
    return max(8, chunk - chunk % 8)


@dataclasses.dataclass
class ValuePlane:
    """Delay-independent record of one stimulus through one circuit.

    All boolean streams are bit-packed (8 patterns per byte, big-endian
    bit order, matching :func:`numpy.packbits`); a 16x16 multiplier's
    plane for 10k patterns is a few MB.

    Attributes:
        num_patterns: Reported stream length ``n``.
        num_nets: Net count of the owning netlist.
        num_cells: Compiled (levelized) cell count.
        mode: Delay semantics the may-masks encode (``inertial`` /
            ``floating``).
        may_packed: ``(num_nets, ceil(n / 8))`` packed per-net may-change
            masks (settled-change flags in inertial mode, may-glitch
            masks in floating mode).
        aux_packed: Packed aux-mask rows for all cells, concatenated.
        aux_offsets: ``(num_cells + 1,)`` row ranges into ``aux_packed``
            per cell position.
        outputs / switched_caps / signal_prob / toggle_counts: The
            delay-independent :class:`StreamResult` fields, shared by
            every replayed corner.
        key: Optional cache key (see :mod:`repro.timing.value_cache`).
    """

    num_patterns: int
    num_nets: int
    num_cells: int
    mode: str
    may_packed: np.ndarray
    aux_packed: np.ndarray
    aux_offsets: np.ndarray
    outputs: Dict[str, np.ndarray]
    switched_caps: np.ndarray
    signal_prob: Optional[np.ndarray] = None
    toggle_counts: Optional[np.ndarray] = None
    key: Optional[str] = None

    def may(self, net: int) -> np.ndarray:
        """Unpacked boolean may-change mask for one net."""
        return np.unpackbits(
            self.may_packed[net], count=self.num_patterns
        ).view(bool)

    def aux(self, position: int) -> "tuple[np.ndarray, ...]":
        """Unpacked aux masks for the cell at levelized ``position``."""
        lo, hi = self.aux_offsets[position], self.aux_offsets[position + 1]
        return tuple(
            np.unpackbits(self.aux_packed[row], count=self.num_patterns)
            .view(bool)
            for row in range(lo, hi)
        )

    @property
    def nbytes(self) -> int:
        """Approximate in-memory footprint of the packed planes."""
        total = self.may_packed.nbytes + self.aux_packed.nbytes
        total += self.switched_caps.nbytes
        total += sum(arr.nbytes for arr in self.outputs.values())
        return total


class _PlaneRecorder:
    """Engine-side hook capturing the value plane during ``run``.

    The engine calls :meth:`begin` once per chunk with the chunk's first
    *reported* pattern index (always a multiple of 8 -- ``run`` enforces
    byte-aligned chunk sizes when recording), then :meth:`net_may` /
    :meth:`cell` once per net/cell; masks are packed straight into their
    byte range, so chunked and unchunked builds produce identical
    planes.
    """

    def __init__(self, circuit: CompiledCircuit, num_patterns: int):
        nbytes = (num_patterns + 7) // 8
        self.may = np.zeros((circuit.num_nets, nbytes), dtype=np.uint8)
        counts = [
            _aux_count(c.opcode, len(c.inputs)) for c in circuit._cells
        ]
        self.aux_offsets = np.zeros(len(counts) + 1, dtype=np.int64)
        np.cumsum(counts, out=self.aux_offsets[1:])
        self.aux = np.zeros(
            (int(self.aux_offsets[-1]), nbytes), dtype=np.uint8
        )
        self._byte = 0
        self._lo = 0

    def begin(self, reported_start: int, lo: int) -> None:
        self._byte = reported_start // 8
        self._lo = lo

    def _pack_into(self, row: np.ndarray, mask: np.ndarray) -> None:
        packed = np.packbits(mask[self._lo:])
        row[self._byte:self._byte + packed.shape[0]] = packed

    def net_may(self, net: int, flags: np.ndarray) -> None:
        self._pack_into(self.may[net], flags)

    def cell(self, position, net, out_may, aux) -> None:
        self._pack_into(self.may[net], out_may)
        offset = int(self.aux_offsets[position])
        for lane, mask in enumerate(aux):
            self._pack_into(self.aux[offset + lane], mask)

    def cell_bucket(self, positions, nets, out_may, aux) -> None:
        """Batched :meth:`cell` for one SoA bucket: ``out_may`` is
        ``(B, n)`` and each aux mask ``(B, n)``; rows pack straight into
        their byte ranges exactly like the scalar path."""
        packed = np.packbits(out_may[:, self._lo:], axis=1)
        width = packed.shape[1]
        self.may[nets, self._byte:self._byte + width] = packed
        if aux:
            rows = self.aux_offsets[positions]
            for lane, mask in enumerate(aux):
                packed = np.packbits(mask[:, self._lo:], axis=1)
                self.aux[rows + lane, self._byte:self._byte + width] = (
                    packed
                )


def build_value_plane(
    circuit: CompiledCircuit,
    stimulus: Dict[str, Sequence[int]],
    initial: Optional[Dict[str, int]] = None,
    collect_net_stats: bool = False,
    chunk_size: "Optional[int | str]" = "auto",
    key: Optional[str] = None,
) -> ValuePlane:
    """Run the value pass once and capture a :class:`ValuePlane`.

    The circuit's fault hooks (if any) apply during the pass, so the
    recorded values and masks are the *faulted* stream -- a plane is
    specific to its hook set exactly like a full run is.  ``chunk_size``
    bounds peak memory as in :meth:`CompiledCircuit.run`; integer sizes
    are rounded up to a multiple of 8 so packed chunks stay
    byte-aligned.
    """
    lengths = {np.asarray(v).shape[0] for v in stimulus.values()}
    if len(lengths) != 1:
        raise SimulationError("stimulus arrays must be equally long")
    (n,) = lengths
    if isinstance(chunk_size, int) and chunk_size % 8:
        chunk_size += 8 - chunk_size % 8
    recorder = _PlaneRecorder(circuit, n)
    result = circuit.run(
        stimulus,
        initial=initial,
        collect_net_stats=collect_net_stats,
        chunk_size=chunk_size,
        _recorder=recorder,
    )
    return ValuePlane(
        num_patterns=result.num_patterns,
        num_nets=circuit.num_nets,
        num_cells=len(circuit._cells),
        mode=circuit.mode,
        may_packed=recorder.may,
        aux_packed=recorder.aux,
        aux_offsets=recorder.aux_offsets,
        outputs=result.outputs,
        switched_caps=result.switched_caps,
        signal_prob=result.signal_prob,
        toggle_counts=result.toggle_counts,
        key=key,
    )


@dataclasses.dataclass
class ReplayResult:
    """Arrivals for ``k`` delay corners replayed over one value plane.

    Attributes:
        plane: The value plane all corners share.
        delay_scales: The ``(k, num_cells)`` scale matrix replayed.
        delays: ``(k, n)`` per-corner, per-pattern path delays (ns).
        bit_arrivals: Optional port -> ``(width, k, n)`` per-bit arrival
            matrices.
    """

    plane: ValuePlane
    delay_scales: np.ndarray
    delays: np.ndarray
    bit_arrivals: Optional[Dict[str, np.ndarray]] = None

    @property
    def num_corners(self) -> int:
        return self.delays.shape[0]

    def max_delays(self) -> np.ndarray:
        """Per-corner worst path delay (ns), shape ``(k,)``."""
        return self.delays.max(axis=1)

    def stream_result(self, corner: int = 0) -> StreamResult:
        """One corner as a :class:`StreamResult`, bit-identical to the
        full engine run at that corner's delay scale."""
        bit_arrivals = None
        if self.bit_arrivals is not None:
            bit_arrivals = {
                name: matrix[:, corner, :]
                for name, matrix in self.bit_arrivals.items()
            }
        return StreamResult(
            outputs=self.plane.outputs,
            delays=self.delays[corner],
            switched_caps=self.plane.switched_caps,
            num_patterns=self.plane.num_patterns,
            bit_arrivals=bit_arrivals,
            signal_prob=self.plane.signal_prob,
            toggle_counts=self.plane.toggle_counts,
        )

    def stream_results(self) -> List[StreamResult]:
        """All corners as :class:`StreamResult` s, in scale-row order."""
        return [self.stream_result(k) for k in range(self.num_corners)]


class ArrivalReplay:
    """Replays the arrival plane of a circuit over a value plane.

    ``delay_scales`` rows are *absolute* per-cell scale vectors relative
    to the fresh (unaged) library delays -- exactly the ``delay_scale``
    argument of :class:`CompiledCircuit` -- independent of whatever
    scale the bound circuit itself was compiled with (only its
    structure, mode and hooks matter; values are delay-free).
    """

    def __init__(self, circuit: CompiledCircuit, plane: ValuePlane):
        if plane.num_nets != circuit.num_nets:
            raise SimulationError(
                "value plane has %d nets, circuit has %d"
                % (plane.num_nets, circuit.num_nets)
            )
        if plane.num_cells != len(circuit._cells):
            raise SimulationError(
                "value plane has %d cells, circuit has %d"
                % (plane.num_cells, len(circuit._cells))
            )
        if plane.mode != circuit.mode:
            raise SimulationError(
                "value plane was built in %r mode, circuit is %r"
                % (plane.mode, circuit.mode)
            )
        self.circuit = circuit
        self.plane = plane
        self.num_cells = len(circuit.netlist.cells)

    def replay(
        self,
        delay_scales: np.ndarray,
        collect_bit_arrivals: bool = False,
    ) -> ReplayResult:
        """Compute path delays for one or many delay-scale vectors.

        Args:
            delay_scales: ``(num_cells,)`` for a single corner or
                ``(k, num_cells)`` for a batch; entries must be
                positive.  Rows are indexed by netlist cell index (the
                :class:`CompiledCircuit` ``delay_scale`` axis).
            collect_bit_arrivals: Keep port -> ``(width, k, n)`` per-bit
                arrival matrices.
        """
        circuit = self.circuit
        plane = self.plane
        scales = np.asarray(delay_scales, dtype=float)
        if scales.ndim == 1:
            scales = scales[None, :]
        if scales.ndim != 2 or scales.shape[1] != self.num_cells:
            raise SimulationError(
                "delay_scales must be (num_cells,) or (k, num_cells) "
                "with num_cells=%d, got %r"
                % (self.num_cells, np.shape(delay_scales))
            )
        if np.any(scales <= 0):
            raise SimulationError("delay_scale entries must be positive")
        k = scales.shape[0]
        n = plane.num_patterns
        if circuit.kernel == "numba":
            from . import jit

            if jit.jit_enabled():
                delays, bit_arrivals = jit.replay(
                    self, scales, k, n, collect_bit_arrivals
                )
            else:
                # numba absent: fall back to the SoA replay, which is
                # bit-identical (same arithmetic, different looping).
                delays, bit_arrivals = self._replay_soa(
                    scales, k, n, collect_bit_arrivals
                )
        elif circuit.kernel != "percell":
            delays, bit_arrivals = self._replay_soa(
                scales, k, n, collect_bit_arrivals
            )
        else:
            delays, bit_arrivals = self._replay_percell(
                scales, k, n, collect_bit_arrivals
            )
        return ReplayResult(
            plane=plane,
            delay_scales=scales,
            delays=delays,
            bit_arrivals=bit_arrivals,
        )

    def _replay_soa(
        self,
        scales: np.ndarray,
        k: int,
        n: int,
        collect_bit_arrivals: bool,
    ):
        """Bucketed sparse replay: every (level, opcode) bucket prices
        all ``k`` corners at once, touching only *active* entries.

        The chunk is laid out ``(num_nets, c, k)`` so a bucket's
        ``(B, c)`` may-mask indexes (cell, pattern) entries directly:
        arrivals are computed as a flat ``(nnz, k)`` workspace over the
        entries whose output may change and scattered into the
        pre-zeroed chunk.  Inactive entries are exactly the
        ``where(may, .., 0.0)`` zeros of the reference kernel, so the
        result stays bit-identical while arithmetic and memory traffic
        scale with the active fraction (~1/3 on a bypass multiplier
        under uniform operands, since bypassed columns sit quiet).

        The pattern axis is chunked (multiples of 8, so the bit-packed
        plane unpacks byte-aligned) to bound the dense
        ``(num_nets, c, k)`` arrival matrix; replay carries no
        cross-pattern state, so chunking is exact.
        """
        circuit = self.circuit
        plane = self.plane
        plan = circuit.soa_replay_plan()
        num_nets = circuit.num_nets
        chunk = _replay_chunk_size(num_nets, k)
        delays = np.zeros((k, n))
        ports = circuit.netlist.output_ports
        bit_arrivals: Optional[Dict[str, np.ndarray]] = None
        if collect_bit_arrivals:
            bit_arrivals = {
                name: np.zeros((port.width, k, n))
                for name, port in ports.items()
            }
        arr = np.zeros((num_nets, min(chunk, n), k))
        for start in range(0, n, chunk):
            stop = min(start + chunk, n)
            c = stop - start
            sub = arr[:, :c, :]
            if start:
                sub[...] = 0.0  # quiet entries / input rails stay 0
            byte0 = start // 8
            byte1 = (stop + 7) // 8
            for bucket_list in plan.levels:
                for bucket in bucket_list:
                    outs = bucket.outputs
                    pins = bucket.pins
                    may = np.unpackbits(
                        plane.may_packed[outs, byte0:byte1],
                        axis=1,
                        count=c,
                    ).view(bool)
                    rows, cols = np.nonzero(may)
                    if not rows.size:
                        continue
                    count = _aux_count(bucket.opcode, pins.shape[0])
                    if count:
                        aux_rows = plane.aux_offsets[bucket.positions]
                        aux = tuple(
                            np.unpackbits(
                                plane.aux_packed[
                                    aux_rows + lane, byte0:byte1
                                ],
                                axis=1,
                                count=c,
                            ).view(bool)[rows, cols]
                            for lane in range(count)
                        )
                    else:
                        aux = ()
                    arrs = [
                        sub[pins[j][rows], cols]
                        for j in range(pins.shape[0])
                    ]
                    # fresh_delay_ns * scale per (cell, corner), exactly
                    # the engine's per-cell delay at every corner.
                    delay = (
                        bucket.fresh_delays[:, None]
                        * scales[:, bucket.cell_indices].T
                    )
                    out = _active_arrival(
                        bucket.opcode, aux, arrs, delay[rows]
                    )
                    sub[outs[rows], cols] = out
            for name, port in ports.items():
                port_arr = sub[list(port.nets)]
                if collect_bit_arrivals:
                    bit_arrivals[name][:, :, start:stop] = (
                        port_arr.transpose(0, 2, 1)
                    )
                delays[:, start:stop] = np.maximum(
                    delays[:, start:stop], port_arr.max(axis=0).T
                )
        return delays, bit_arrivals

    def _replay_percell(
        self,
        scales: np.ndarray,
        k: int,
        n: int,
        collect_bit_arrivals: bool,
    ):
        """Reference per-cell replay (the pre-SoA interpreter)."""
        circuit = self.circuit
        plane = self.plane
        zeros_f = np.zeros(n)
        arrs: Dict[int, np.ndarray] = {CONST0: zeros_f, CONST1: zeros_f}
        for port in circuit.netlist.input_ports.values():
            for net in port.nets:
                arrs[net] = zeros_f

        # Freed (k, n) arrival buffers are pooled and reused, so the
        # replay loop settles into zero allocator traffic.
        pool: List[np.ndarray] = []

        def alloc() -> np.ndarray:
            return pool.pop() if pool else np.empty((k, n))

        protected = circuit._protected
        last_use = circuit._last_use
        for compiled in circuit._cells:
            in_arrs = [arrs[net] for net in compiled.inputs]
            out_may = plane.may(compiled.output)
            aux = plane.aux(compiled.position)
            # Matches the engine's per-cell delay bit for bit:
            # fresh_delay_ns * scale, broadcast down the corner axis.
            delay = compiled.fresh_delay_ns * scales[:, compiled.index]
            arrs[compiled.output] = _arrival_into(
                compiled.opcode,
                aux,
                in_arrs,
                delay[:, None],
                out_may,
                alloc,
                pool,
                zeros_f,
            )
            for used in compiled.inputs:
                if (
                    used not in protected
                    and last_use.get(used) == compiled.position
                ):
                    dead = arrs.pop(used, None)
                    if dead is not None and dead.shape == (k, n):
                        pool.append(dead)

        delays = np.zeros((k, n))
        bit_arrivals: Optional[Dict[str, np.ndarray]] = (
            {} if collect_bit_arrivals else None
        )
        for name, port in circuit.netlist.output_ports.items():
            port_arr = np.stack(
                [np.broadcast_to(arrs[net], (k, n)) for net in port.nets]
            )
            if collect_bit_arrivals:
                bit_arrivals[name] = port_arr
            delays = np.maximum(delays, port_arr.max(axis=0))

        return delays, bit_arrivals

    def stream(
        self,
        delay_scale: Optional[np.ndarray] = None,
        collect_bit_arrivals: bool = False,
    ) -> StreamResult:
        """Single-corner convenience: a :class:`StreamResult` for one
        scale vector (fresh delays when ``delay_scale`` is None)."""
        if delay_scale is None:
            delay_scale = np.ones(self.num_cells)
        return self.replay(
            delay_scale, collect_bit_arrivals=collect_bit_arrivals
        ).stream_result(0)


def _cols(arr: np.ndarray, idx: np.ndarray) -> np.ndarray:
    """Pattern-axis gather that tolerates (n,) and (k, n) operands."""
    return arr[idx] if arr.ndim == 1 else arr[:, idx]


def _active_arrival(opcode, aux, arrs, delay):
    """Arrival kernel over flat *active* entries.

    Operands are ``(nnz, k)`` arrays (one row per (cell, pattern) entry
    whose output may change, all corners side by side) with ``(nnz,)``
    aux masks.  Bit-identical to :func:`repro.timing.logic
    .arrival_masks` restricted to those entries -- the elementwise
    identities are the same ones :func:`_arrival_into` uses, minus the
    quiet-zero pass (callers scatter into pre-zeroed storage, which IS
    the ``where(may, .., 0.0)`` branch).
    """
    if opcode in (logic.OP_BUF, logic.OP_INV):
        return arrs[0] + delay
    if opcode in (logic.OP_XOR2, logic.OP_XNOR2):
        out = np.maximum(arrs[0], arrs[1])
        out += delay
        return out
    if (
        logic.CONTROLLING_VALUE.get(opcode) is not None
        and len(arrs) == 2
    ):
        c0, c1 = aux
        a0, a1 = arrs
        out = np.maximum(a0, a1)
        both = np.nonzero(c0 & c1)[0]
        if both.size:
            out[both] = np.minimum(a0[both], a1[both])
        only0 = np.nonzero(c0 & ~c1)[0]
        if only0.size:
            out[only0] = a0[only0]
        only1 = np.nonzero(c1 & ~c0)[0]
        if only1.size:
            out[only1] = a1[only1]
        out += delay
        return out
    if opcode == logic.OP_MUX2:
        (sel,) = aux
        out = arrs[0].copy()
        chosen = np.nonzero(sel)[0]
        if chosen.size:
            out[chosen] = arrs[1][chosen]
        np.maximum(out, arrs[2], out=out)
        out += delay
        return out
    if opcode == logic.OP_TRIBUF:
        (enabled,) = aux
        out = arrs[0].copy()
        disabled = np.nonzero(~enabled)[0]
        if disabled.size:
            out[disabled] = 0.0
        np.maximum(out, arrs[1], out=out)
        out += delay
        return out
    # Rare shapes (3-input controlled gates): generic reference kernel
    # with an all-True may -- every row here is active by construction.
    out_may = np.ones(arrs[0].shape, dtype=bool)
    return logic.arrival_masks(
        opcode, tuple(a[:, None] for a in aux), arrs, delay, out_may
    )


def _arrival_into(opcode, aux, arrs, delay, out_may, alloc, pool, zeros_f):
    """Replay-optimized arrival kernel, bit-identical to
    :func:`repro.timing.logic.arrival_masks`.

    Works in place on pooled ``(k, n)`` buffers and replaces the generic
    ``np.where`` chains with integer-indexed partial writes: the
    selection masks depend only on values, so one ``(n,)`` index vector
    serves all ``k`` corners and the write cost scales with how often a
    case actually occurs.  Every identity used is float-exact (arrivals
    are always >= 0.0, min/max/select never round), which the
    equivalence suite asserts against full engine runs.
    """
    if not out_may.any():
        # Quiet everywhere: the engine's where(may, ..., 0) yields all
        # zeros; share the (n,) zero rail (broadcasts downstream).
        return zeros_f

    if opcode in (logic.OP_BUF, logic.OP_INV):
        out = alloc()
        np.add(arrs[0], delay, out=out)
    elif opcode in (logic.OP_XOR2, logic.OP_XNOR2):
        out = alloc()
        np.maximum(arrs[0], arrs[1], out=out)
        out += delay
    elif (
        logic.CONTROLLING_VALUE.get(opcode) is not None
        and len(arrs) == 2
    ):
        # 2-input controlled gate: base is max(a0, a1) (no controlling
        # input), a0 / a1 (one controlling input: earliest-controller
        # cap), or min(a0, a1) (both controlling).
        c0, c1 = aux
        a0, a1 = arrs
        out = alloc()
        np.maximum(a0, a1, out=out)
        both = np.nonzero(c0 & c1)[0]
        if both.size:
            out[:, both] = np.minimum(_cols(a0, both), _cols(a1, both))
        only0 = np.nonzero(c0 & ~c1)[0]
        if only0.size:
            out[:, only0] = _cols(a0, only0)
        only1 = np.nonzero(c1 & ~c0)[0]
        if only1.size:
            out[:, only1] = _cols(a1, only1)
        out += delay
    elif opcode == logic.OP_MUX2:
        (sel,) = aux
        out = alloc()
        out[:] = arrs[0]
        chosen1 = np.nonzero(sel)[0]
        if chosen1.size:
            out[:, chosen1] = _cols(arrs[1], chosen1)
        np.maximum(out, arrs[2], out=out)
        out += delay
    elif opcode == logic.OP_TRIBUF:
        (enabled,) = aux
        out = alloc()
        out[:] = arrs[0]
        disabled = np.nonzero(~enabled)[0]
        if disabled.size:
            out[:, disabled] = 0.0
        np.maximum(out, arrs[1], out=out)
        out += delay
    else:
        # Rare shapes (3-input controlled gates): generic reference
        # kernel.  delay is (k, 1), so this is a fresh (k, n) array.
        return logic.arrival_masks(opcode, aux, arrs, delay, out_may)

    quiet = np.nonzero(~out_may)[0]
    if quiet.size:
        out[:, quiet] = 0.0
    return out
