"""Keyed in-memory + on-disk cache of value planes.

A :class:`~repro.timing.replay.ValuePlane` is a pure function of

* the netlist **structure** (cells, wiring, ports, bypass groups),
* the **stimulus** (and optional ``initial`` settling state),
* the delay-semantics **mode** (may-masks differ between ``inertial``
  and ``floating``),
* the technology's ``glitch_damping`` (switched-capacitance stream),
* the **fault hooks** compiled into the circuit (hooks rewrite the
  value streams, so a faulty plane is a different plane).

:func:`plane_cache_key` folds all of those into one sha256 hex digest.
Fault hooks are opaque callables, so a hook participates only if it
carries a ``cache_key`` attribute (the fault injector attaches the
fault's ``site_id()``, see :func:`repro.faults.injector
.build_fault_hooks`); any hook without one makes the circuit uncacheable
and :meth:`ValuePlaneCache.get_or_build` silently bypasses the cache --
correctness never depends on hook authors opting in.

On-disk entries follow the fingerprint-guard idiom of
:mod:`repro.faults.store`: each entry is a single ``.npz`` written
atomically (tmp + rename) whose embedded key must match the requested
key exactly -- a stale or corrupt file is ignored and rebuilt, never
trusted.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, Optional, Sequence

import numpy as np

from ..nets.netlist import Netlist
from .engine import CompiledCircuit
from .replay import ValuePlane, build_value_plane

#: Format tag embedded in every cache entry.
FORMAT = "repro-value-plane"
#: Current plane cache schema version.  Version 2: planes are produced
#: by the levelized SoA kernel, whose cross-cell switched-capacitance
#: accumulation order differs from the version-1 per-cell interpreter
#: (same values to float association); keying the version keeps the two
#: provenances from mixing through the on-disk cache.
VERSION = 2

#: Environment variable naming a default on-disk cache directory.
CACHE_DIR_ENV = "REPRO_VALUE_PLANE_DIR"


def netlist_fingerprint(netlist: Netlist) -> str:
    """Structural sha256 of a netlist (wiring, ports, groups -- no
    delays: planes are delay-independent by construction).

    Memoized on the netlist instance keyed by its mutation counter
    (``Netlist.version``), so a netlist grown after fingerprinting is
    re-hashed.
    """
    cached = getattr(netlist, "_structural_fp", None)
    if cached is not None and cached[0] == netlist.version:
        return cached[1]
    h = hashlib.sha256()
    h.update(repr((netlist.name, netlist.num_nets)).encode())
    for cell in netlist.cells:
        h.update(
            repr(
                (
                    cell.cell_type.name,
                    cell.inputs,
                    cell.output,
                    cell.group,
                )
            ).encode()
        )
    for ports in (netlist.input_ports, netlist.output_ports):
        for name, port in ports.items():
            h.update(repr((name, port.nets, port.is_input)).encode())
    h.update(repr(sorted(netlist.group_enables.items())).encode())
    digest = h.hexdigest()
    netlist._structural_fp = (netlist.version, digest)
    return digest


def stimulus_digest(stimulus: Dict[str, Sequence[int]]) -> str:
    """sha256 over the stimulus arrays (order-independent)."""
    h = hashlib.sha256()
    for name in sorted(stimulus):
        arr = np.ascontiguousarray(
            np.asarray(stimulus[name], dtype=np.uint64)
        )
        h.update(name.encode())
        h.update(arr.tobytes())
    return h.hexdigest()


def hooks_cache_key(fault_hooks: Dict[int, object]) -> Optional[str]:
    """Stable key for a fault-hook set, or None if any hook is opaque
    (no ``cache_key`` attribute) -- None means *bypass the cache*."""
    parts = []
    for net in sorted(fault_hooks):
        key = getattr(fault_hooks[net], "cache_key", None)
        if key is None:
            return None
        parts.append("%d=%s" % (net, key))
    return ";".join(parts)


def plane_cache_key(
    circuit: CompiledCircuit,
    stimulus: Dict[str, Sequence[int]],
    initial: Optional[Dict[str, int]] = None,
    collect_net_stats: bool = False,
) -> Optional[str]:
    """The cache key for a plane build, or None when uncacheable."""
    hooks = hooks_cache_key(circuit.fault_hooks)
    if hooks is None and circuit.fault_hooks:
        return None
    h = hashlib.sha256()
    h.update(
        json.dumps(
            {
                "format": FORMAT,
                "version": VERSION,
                "netlist": netlist_fingerprint(circuit.netlist),
                "mode": circuit.mode,
                "glitch_damping": circuit.technology.glitch_damping,
                "stimulus": stimulus_digest(stimulus),
                "initial": sorted((initial or {}).items()),
                "net_stats": bool(collect_net_stats),
                "hooks": hooks or "",
                # Patched circuits (repro.timing.delta.patch_compiled)
                # share the child's structural fingerprint with a
                # from-scratch compile, but their plans were derived
                # through a delta chain; the lineage keeps a patched
                # plan's plane from ever colliding with its parent's
                # (or an unrelated chain's) cached entry.
                "lineage": list(
                    getattr(circuit, "delta_lineage", ())
                ),
            },
            sort_keys=True,
        ).encode()
    )
    return h.hexdigest()


def save_plane(plane: ValuePlane, path: str) -> None:
    """Atomically persist a plane as one ``.npz`` file."""
    meta = {
        "format": FORMAT,
        "version": VERSION,
        "num_patterns": plane.num_patterns,
        "num_nets": plane.num_nets,
        "num_cells": plane.num_cells,
        "mode": plane.mode,
        "key": plane.key,
        "outputs": list(plane.outputs),
        "has_stats": plane.signal_prob is not None,
    }
    arrays = {
        "meta": np.frombuffer(
            json.dumps(meta).encode(), dtype=np.uint8
        ).copy(),
        "may_packed": plane.may_packed,
        "aux_packed": plane.aux_packed,
        "aux_offsets": plane.aux_offsets,
        "switched_caps": plane.switched_caps,
    }
    for name, arr in plane.outputs.items():
        arrays["out__" + name] = arr
    if plane.signal_prob is not None:
        arrays["signal_prob"] = plane.signal_prob
        arrays["toggle_counts"] = plane.toggle_counts
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    tmp = path + ".tmp"
    with open(tmp, "wb") as fp:
        np.savez(fp, **arrays)
    os.replace(tmp, path)


def load_plane(path: str) -> ValuePlane:
    """Load a plane written by :func:`save_plane` (raises on mismatch)."""
    with np.load(path) as data:
        meta = json.loads(bytes(data["meta"]).decode())
        if meta.get("format") != FORMAT or meta.get("version") != VERSION:
            raise ValueError(
                "%s is not a version-%d value-plane file" % (path, VERSION)
            )
        return ValuePlane(
            num_patterns=int(meta["num_patterns"]),
            num_nets=int(meta["num_nets"]),
            num_cells=int(meta["num_cells"]),
            mode=meta["mode"],
            may_packed=data["may_packed"],
            aux_packed=data["aux_packed"],
            aux_offsets=data["aux_offsets"],
            outputs={
                name: data["out__" + name] for name in meta["outputs"]
            },
            switched_caps=data["switched_caps"],
            signal_prob=(
                data["signal_prob"] if meta["has_stats"] else None
            ),
            toggle_counts=(
                data["toggle_counts"] if meta["has_stats"] else None
            ),
            key=meta["key"],
        )


class ValuePlaneCache:
    """LRU in-memory + optional on-disk value-plane cache.

    Args:
        directory: On-disk cache directory.  Defaults to the
            ``REPRO_VALUE_PLANE_DIR`` environment variable; None (and
            the variable unset) keeps the cache memory-only.
        max_entries: In-memory LRU capacity (planes are a few MB each).
    """

    def __init__(
        self,
        directory: Optional[str] = None,
        max_entries: int = 8,
    ):
        if directory is None:
            directory = os.environ.get(CACHE_DIR_ENV) or None
        self.directory = directory
        self.max_entries = max_entries
        self._memory: "Dict[str, ValuePlane]" = {}
        self.hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.bypasses = 0

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, "plane-%s.npz" % key[:32])

    def counters(self) -> Dict[str, int]:
        """Snapshot of the hit/miss accounting (suite observability)."""
        return {
            "hits": self.hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "bypasses": self.bypasses,
        }

    def get_or_build(
        self,
        circuit: CompiledCircuit,
        stimulus: Dict[str, Sequence[int]],
        initial: Optional[Dict[str, int]] = None,
        collect_net_stats: bool = False,
        chunk_size="auto",
    ) -> ValuePlane:
        """Return the plane for (circuit, stimulus), building at most
        once per key.  Uncacheable circuits (opaque fault hooks) always
        build fresh."""
        key = plane_cache_key(
            circuit, stimulus, initial, collect_net_stats
        )
        if key is None:
            self.bypasses += 1
            return build_value_plane(
                circuit,
                stimulus,
                initial=initial,
                collect_net_stats=collect_net_stats,
                chunk_size=chunk_size,
            )
        plane = self._memory.pop(key, None)
        if plane is not None:
            self._memory[key] = plane  # refresh LRU position
            self.hits += 1
            return plane
        if self.directory is not None:
            path = self._path(key)
            if os.path.exists(path):
                try:
                    plane = load_plane(path)
                except Exception:
                    plane = None  # corrupt/stale: rebuild below
                if plane is not None and plane.key == key:
                    self.disk_hits += 1
                    self._remember(key, plane)
                    return plane
        self.misses += 1
        plane = build_value_plane(
            circuit,
            stimulus,
            initial=initial,
            collect_net_stats=collect_net_stats,
            chunk_size=chunk_size,
            key=key,
        )
        self._remember(key, plane)
        if self.directory is not None:
            save_plane(plane, self._path(key))
        return plane

    def _remember(self, key: str, plane: ValuePlane) -> None:
        self._memory[key] = plane
        while len(self._memory) > self.max_entries:
            self._memory.pop(next(iter(self._memory)))

    def clear(self) -> None:
        """Drop the in-memory entries (disk files are left in place)."""
        self._memory.clear()
