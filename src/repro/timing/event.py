"""Event-driven transport-delay reference simulator.

This simulator is the ground truth the vectorized floating-mode engine is
validated against: it plays one pattern pair (previous -> current) through
the netlist with per-cell transport delays and an event heap, recording
every net's last transition time.

Exactness: at time ``t`` all net values reflect every event at or before
``t``; an input change at ``t`` schedules a recompute of each consumer at
``t + d``, which evaluates the cell on the inputs as of ``t``.  That is
precisely transport-delay semantics, so the final settle time is the true
per-pattern path delay under this delay model.  The floating-mode engine
is provably no earlier (it is an upper bound), which the property tests in
``tests/test_engine_vs_event.py`` exercise.

Tri-state buffers are stateful here: a disabled buffer holds its output,
and no events propagate through it -- matching the bypassing multipliers'
power-saving freeze.
"""

from __future__ import annotations

import dataclasses
import heapq
from typing import Dict, List, Optional

import numpy as np

from ..config import DEFAULT_TECHNOLOGY, Technology
from ..errors import SimulationError
from ..nets.cells import OP_TRIBUF
from ..nets.netlist import CONST0, CONST1, Netlist, bits_to_int
from . import logic


@dataclasses.dataclass
class EventResult:
    """Result of one :meth:`EventSimulator.run_pair` call."""

    outputs: Dict[str, int]
    #: Last transition time (ns) per output port bit, LSB first.
    bit_last_change: Dict[str, List[float]]
    #: Max last-transition time over all output bits (ns).
    settle_time: float
    #: Total number of value-changing events processed.
    num_events: int
    #: Final value of every net.
    net_values: Dict[int, int]
    #: Optional full event trace [(time_ns, net, value)], time-ordered
    #: (populated when ``record_trace=True``); the VCD exporter feeds
    #: from this.
    trace: Optional[List] = None
    #: Net values at t=0 (the settled previous pattern), when tracing.
    initial_values: Optional[Dict[int, int]] = None


class EventSimulator:
    """Transport-delay event simulator over a combinational netlist."""

    def __init__(
        self,
        netlist: Netlist,
        technology: Technology = DEFAULT_TECHNOLOGY,
        delay_scale: Optional[np.ndarray] = None,
    ):
        netlist.validate()
        self.netlist = netlist
        self.technology = technology
        self._order = netlist.levelize()
        if delay_scale is None:
            scale = np.ones(len(netlist.cells))
        else:
            scale = np.asarray(delay_scale, dtype=float)
            if scale.shape != (len(netlist.cells),):
                raise SimulationError(
                    "delay_scale must have one entry per cell"
                )
        unit = technology.time_unit_ns
        self._delay = {
            cell.index: cell.cell_type.delay_units * unit * float(scale[cell.index])
            for cell in netlist.cells
        }
        # net -> consumer cells
        self._consumers: Dict[int, List] = {}
        for cell in netlist.cells:
            for net in cell.inputs:
                self._consumers.setdefault(net, []).append(cell)
        self._state: Optional[Dict[int, int]] = None

    # ------------------------------------------------------------------

    def _expand(self, words: Dict[str, int]) -> Dict[int, int]:
        ports = self.netlist.input_ports
        missing = set(ports) - set(words)
        if missing:
            raise SimulationError("missing stimulus ports: %s" % sorted(missing))
        bits: Dict[int, int] = {CONST0: 0, CONST1: 1}
        for name, port in ports.items():
            value = int(words[name])
            if value < 0 or (port.width < 64 and value >> port.width):
                raise SimulationError(
                    "value %d does not fit port %r (%d bits)"
                    % (value, name, port.width)
                )
            for lane, net in enumerate(port.nets):
                bits[net] = (value >> lane) & 1
        return bits

    def settle(self, words: Dict[str, int]) -> Dict[int, int]:
        """Zero-delay settle on ``words``; initializes tri-state holds.

        Tri-state buffers are treated transparently on the first settle
        (as if they had been enabled in the indefinite past), then hold
        across subsequent :meth:`run_pair` calls.
        """
        state = self._expand(words)
        previous = self._state
        for cell in self._order:
            ins = [state[net] for net in cell.inputs]
            if cell.cell_type.opcode == OP_TRIBUF:
                if previous is not None and cell.output in previous:
                    held = previous[cell.output]
                else:
                    held = ins[0]
                state[cell.output] = logic.eval_tribuf_scalar(
                    ins[0], ins[1], held
                )
            else:
                state[cell.output] = logic.eval_scalar(
                    cell.cell_type.opcode, ins
                )
        self._state = state
        return dict(state)

    def run_pair(
        self,
        prev_words: Dict[str, int],
        new_words: Dict[str, int],
        record_trace: bool = False,
    ) -> EventResult:
        """Settle on ``prev_words``, then switch to ``new_words`` at t=0.

        With ``record_trace=True`` the result carries the full ordered
        event list plus the initial net values, ready for
        :func:`repro.timing.vcd.write_vcd`.
        """
        self._state = None
        self.settle(prev_words)
        state = self._state
        initial_values = dict(state) if record_trace else None
        trace: Optional[List] = [] if record_trace else None
        new_bits = self._expand(new_words)

        last_change: Dict[int, float] = {}
        counter = 0
        heap: List = []
        for net, value in new_bits.items():
            if state.get(net) != value:
                heapq.heappush(heap, (0.0, counter, net, value))
                counter += 1

        num_events = 0
        while heap:
            # Apply every event sharing the earliest timestamp before
            # re-evaluating consumers: simultaneous input edges (e.g. a
            # tri-state's data and enable both flipping at t=0) must be
            # seen atomically.
            now = heap[0][0]
            touched = []
            while heap and heap[0][0] == now:
                _, _, net, value = heapq.heappop(heap)
                if state.get(net) != value:
                    state[net] = value
                    last_change[net] = now
                    num_events += 1
                    touched.append(net)
                    if trace is not None:
                        trace.append((now, net, value))
            consumers = {}
            for net in touched:
                for cell in self._consumers.get(net, ()):
                    consumers[cell.index] = cell
            for cell in consumers.values():
                ins = [state[n] for n in cell.inputs]
                opcode = cell.cell_type.opcode
                if opcode == OP_TRIBUF:
                    din, enable = ins
                    if not enable:
                        continue  # disabled: output holds, no event
                    out_value = din
                else:
                    out_value = logic.eval_scalar(opcode, ins)
                heapq.heappush(
                    heap,
                    (
                        now + self._delay[cell.index],
                        counter,
                        cell.output,
                        out_value,
                    ),
                )
                counter += 1

        outputs: Dict[str, int] = {}
        bit_last_change: Dict[str, List[float]] = {}
        settle_time = 0.0
        for name, port in self.netlist.output_ports.items():
            bits = [state[net] for net in port.nets]
            outputs[name] = bits_to_int(bits)
            times = [last_change.get(net, 0.0) for net in port.nets]
            bit_last_change[name] = times
            if times:
                settle_time = max(settle_time, max(times))
        return EventResult(
            outputs=outputs,
            bit_last_change=bit_last_change,
            settle_time=settle_time,
            num_events=num_events,
            net_values=dict(state),
            trace=trace,
            initial_values=initial_values,
        )
