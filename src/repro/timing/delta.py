"""Incremental cone-delta evaluation for near-identical netlist variants.

Design-space exploration loops (approximate-cell swaps, column
truncation, per-cell delay nudges) evaluate thousands of *mutants* of
one parent design.  A full evaluation pays, per mutant, a netlist
compile (:class:`~repro.timing.engine.CompiledCircuit` +
:func:`~repro.timing.soa.build_soa_plan`), a full value pass and a full
arrival replay -- even when a handful of cells changed.  This module
makes the *delta* the unit of work:

* :func:`diff_netlists` structurally diffs a parent/child pair that is
  cell-slot aligned (same nets, ports, cell count -- what
  :func:`repro.nets.mutate.apply_mutations` produces), yielding a
  :class:`NetlistDelta` with the changed cells and their forward output
  cone (the same reverse-reachability notion as
  :meth:`CompiledCircuit.output_reach_mask`, walked forward);

* :func:`patch_compiled` patches the parent's levelized SoA plan in
  place of a full ``build_soa_plan``: only the levels containing
  changed cells are re-bucketed, every other level list is shared;

* :class:`DeltaBase` + :func:`replay_delta` re-simulate **only the
  cone**: values, may/aux masks and arrivals outside the cone are
  reused from the parent's recorded plane and arrival tensor, cone
  cells are re-evaluated through the exact same
  :mod:`repro.timing.logic` kernels the engine uses.

Byte-identity contract (asserted by ``tests/test_delta.py`` and the CI
``delta-smoke`` job): ``replay_delta`` reproduces, bit for bit, the
``outputs``, ``delays`` and ``bit_arrivals`` of a from-scratch
:func:`evaluate_full` on the child netlist -- for both delay modes and
any positive ``(k, num_cells)`` scale matrix.  ``switched_caps`` is
*excluded* from the delta surface: transition densities propagate
globally and are already the documented float-association exception
between kernels (see DESIGN.md section 16).

Base planes must be built with ``initial=None`` (settling pattern ==
pattern 0), which makes every recorded may-mask equal to
``changed_matrix(values, None)`` on the reported stream -- the identity
the cone value pass relies on to reproduce recorded flags exactly.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import DeltaError
from ..nets.netlist import CONST0, CONST1, Netlist
from . import logic
from .engine import CompiledCircuit, _CompiledCell
from .replay import ArrivalReplay, ValuePlane, _PlaneRecorder
from .replay import _active_arrival, _aux_count, build_value_plane
from .soa import LevelBucket, SoAPlan
from .value_cache import netlist_fingerprint

__all__ = [
    "DeltaBase",
    "DeltaPlane",
    "DeltaResult",
    "NetlistDelta",
    "build_delta_plane",
    "diff_netlists",
    "evaluate_full",
    "patch_compiled",
    "replay_delta",
]


# ----------------------------------------------------------------------
# Structural diffing
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class NetlistDelta:
    """Structural difference between an aligned parent/child pair.

    Attributes:
        parent_fingerprint / child_fingerprint: Structural hashes (see
            :func:`repro.timing.value_cache.netlist_fingerprint`).
        changed_cells: Cell indices whose (type, pins, group) differ.
        cone_cells: Forward closure of the changed cells -- every cell
            whose value stream can differ between parent and child.
        affected_nets: Output nets of the cone cells.
        num_cells / num_nets: Shared sizes of the aligned pair.
    """

    parent_fingerprint: str
    child_fingerprint: str
    changed_cells: Tuple[int, ...]
    cone_cells: Tuple[int, ...]
    affected_nets: frozenset
    num_cells: int
    num_nets: int

    @property
    def is_empty(self) -> bool:
        return not self.changed_cells

    @property
    def cone_fraction(self) -> float:
        """Cone size relative to the whole netlist (0.0 when empty)."""
        if not self.num_cells:
            return 0.0
        return len(self.cone_cells) / self.num_cells

    def fingerprint(self) -> str:
        """Deterministic identity of this structural step, used for
        value-plane cache-key lineage (see
        :func:`repro.timing.value_cache.plane_cache_key`)."""
        digest = hashlib.sha256()
        digest.update(self.parent_fingerprint.encode("ascii"))
        digest.update(b"->")
        digest.update(self.child_fingerprint.encode("ascii"))
        return digest.hexdigest()


def _forward_cone(
    netlist: Netlist, seed_cells: Sequence[int]
) -> Tuple[List[int], frozenset]:
    """Forward closure of ``seed_cells``: every cell reachable through
    driver -> consumer edges, plus the set of their output nets."""
    consumers: Dict[int, List[int]] = {}
    for cell in netlist.cells:
        for net in cell.inputs:
            consumers.setdefault(net, []).append(cell.index)
    cone = set(int(index) for index in seed_cells)
    queue = list(cone)
    while queue:
        index = queue.pop()
        for consumer in consumers.get(netlist.cells[index].output, ()):
            if consumer not in cone:
                cone.add(consumer)
                queue.append(consumer)
    affected = frozenset(netlist.cells[index].output for index in cone)
    return sorted(cone), affected


def diff_netlists(parent: Netlist, child: Netlist) -> NetlistDelta:
    """Structurally diff an aligned parent/child netlist pair.

    Alignment (same net numbering, same cell slots with identical
    output nets, same ports and group enables) is required: it is what
    lets parent artifacts -- value planes, arrival tensors, stress
    profiles -- be indexed by child net/cell ids directly.
    :func:`repro.nets.mutate.apply_mutations` produces aligned children
    by construction.

    Raises:
        DeltaError: The pair is not aligned.
    """
    if parent.num_nets != child.num_nets:
        raise DeltaError(
            "netlists are not aligned: parent has %d nets, child %d"
            % (parent.num_nets, child.num_nets)
        )
    if len(parent.cells) != len(child.cells):
        raise DeltaError(
            "netlists are not aligned: parent has %d cells, child %d"
            % (len(parent.cells), len(child.cells))
        )
    for name, ports in (
        ("input", (parent.input_ports, child.input_ports)),
        ("output", (parent.output_ports, child.output_ports)),
    ):
        ours, theirs = ports
        if list(ours) != list(theirs) or any(
            ours[p].nets != theirs[p].nets for p in ours
        ):
            raise DeltaError(
                "netlists are not aligned: %s ports differ" % name
            )
    if parent.group_enables != child.group_enables:
        raise DeltaError(
            "netlists are not aligned: group enables differ"
        )

    parent_fp = netlist_fingerprint(parent)
    child_fp = netlist_fingerprint(child)
    changed: List[int] = []
    if parent_fp != child_fp:
        for old, new in zip(parent.cells, child.cells):
            if old.output != new.output:
                raise DeltaError(
                    "netlists are not aligned: cell %d drives net %d in"
                    " the parent but net %d in the child"
                    % (old.index, old.output, new.output)
                )
            if (
                old.cell_type.name != new.cell_type.name
                or old.inputs != new.inputs
                or old.group != new.group
            ):
                changed.append(old.index)
    if changed:
        cone, affected = _forward_cone(child, changed)
    else:
        cone, affected = [], frozenset()
    return NetlistDelta(
        parent_fingerprint=parent_fp,
        child_fingerprint=child_fp,
        changed_cells=tuple(changed),
        cone_cells=tuple(cone),
        affected_nets=affected,
        num_cells=len(parent.cells),
        num_nets=parent.num_nets,
    )


# ----------------------------------------------------------------------
# Incremental plan patching
# ----------------------------------------------------------------------


def _plan_levels(plan: SoAPlan, num_cells: int) -> np.ndarray:
    """Per-position topological level, recovered from a bucketed plan."""
    levels = np.zeros(num_cells, dtype=np.intp)
    for depth, bucket_list in enumerate(plan.levels):
        for bucket in bucket_list:
            levels[bucket.positions] = depth
    for depth, scalars in enumerate(plan.scalar_levels):
        for compiled in scalars:
            levels[compiled.position] = depth
    return levels


def _rebuild_level(members) -> List[LevelBucket]:
    """Re-bucket one level's compiled cells, replicating
    :func:`~repro.timing.soa.build_soa_plan` exactly (first-seen opcode
    bucket order, members in levelized position order)."""
    per_opcode: Dict[int, List] = {}
    for compiled in members:
        per_opcode.setdefault(compiled.opcode, []).append(compiled)
    packed = []
    for opcode, group in per_opcode.items():
        pins = np.array(
            [c.inputs for c in group], dtype=np.intp
        ).T.copy()
        packed.append(
            LevelBucket(
                opcode=opcode,
                positions=np.array(
                    [c.position for c in group], dtype=np.intp
                ),
                pins=pins,
                outputs=np.array(
                    [c.output for c in group], dtype=np.intp
                ),
                cell_indices=np.array(
                    [c.index for c in group], dtype=np.intp
                ),
                fresh_delays=np.array(
                    [c.fresh_delay_ns for c in group], dtype=float
                ),
                delays=np.array(
                    [c.delay_ns for c in group], dtype=float
                ),
                caps=np.array([c.cap for c in group], dtype=float),
            )
        )
    return packed


def patch_compiled(
    parent_circuit: CompiledCircuit,
    child: Netlist,
    delta: Optional[NetlistDelta] = None,
) -> CompiledCircuit:
    """A compiled child circuit obtained by patching the parent's plan.

    Changed cells keep their parent levelized position and topological
    level; only the levels containing a changed cell are re-bucketed,
    every other level's bucket list is shared with the parent plan.
    This is valid because per-net engine results are independent of
    bucketing order (an asserted repo property) -- a cell only needs
    every driver evaluated at a *strictly lower* level, which is
    checked per changed input pin.

    The patched circuit carries a ``delta_lineage`` tuple (the parent's
    lineage plus this delta's fingerprint) that
    :func:`~repro.timing.value_cache.plane_cache_key` folds into cache
    keys, so a patched plan can never collide with its parent's cached
    plane.

    Raises:
        DeltaError: The parent carries fault hooks, the pair is not
            aligned, or a rewired pin is produced at (or above) the
            changed cell's kept level -- fall back to a from-scratch
            :class:`CompiledCircuit` in that case.
    """
    parent = parent_circuit.netlist
    if parent_circuit.fault_hooks:
        raise DeltaError(
            "cannot patch a hooked circuit; compile the child with its"
            " fault hooks from scratch"
        )
    if delta is None:
        delta = diff_netlists(parent, child)
    else:
        child_fp = netlist_fingerprint(child)
        if (
            delta.parent_fingerprint != netlist_fingerprint(parent)
            or delta.child_fingerprint != child_fp
        ):
            raise DeltaError(
                "delta does not connect this parent/child pair"
            )
    child.validate()
    plan = parent_circuit.soa_value_plan()
    cells = list(parent_circuit._cells)
    num_cells = len(cells)
    levels = _plan_levels(plan, num_cells)
    pos_by_index = {c.index: c.position for c in cells}
    driver_pos = {c.output: c.position for c in cells}
    unit = parent_circuit.technology.time_unit_ns
    scale = parent_circuit.delay_scale
    input_nets = parent._input_nets

    touched_levels = set()
    for index in delta.changed_cells:
        position = pos_by_index[index]
        level = int(levels[position])
        new_cell = child.cells[index]
        for pin in new_cell.inputs:
            if pin in (CONST0, CONST1) or pin in input_nets:
                continue
            producer = driver_pos.get(pin)
            if producer is None or int(levels[producer]) >= level:
                raise DeltaError(
                    "cell %d rewired to net %d produced at level >= its"
                    " kept level %d; patching would break levelization"
                    % (index, pin, level)
                )
        fresh = new_cell.cell_type.delay_units * unit
        cells[position] = _CompiledCell(
            position=position,
            opcode=new_cell.cell_type.opcode,
            inputs=new_cell.inputs,
            output=new_cell.output,
            delay_ns=fresh * float(scale[index]),
            cap=new_cell.cell_type.load_caps,
            group=new_cell.group,
            index=index,
            fresh_delay_ns=fresh,
        )
        touched_levels.add(level)

    new_levels = list(plan.levels)
    for level in touched_levels:
        positions = sorted(
            int(p)
            for bucket in plan.levels[level]
            for p in bucket.positions
        )
        new_levels[level] = _rebuild_level(
            [cells[p] for p in positions]
        )

    patched = CompiledCircuit.__new__(CompiledCircuit)
    # The JIT backend compiles its own plan caches; a patched circuit
    # runs on the (bit-identical) SoA kernel instead.
    patched.kernel = (
        "soa" if parent_circuit.kernel == "numba"
        else parent_circuit.kernel
    )
    patched.netlist = child
    patched.technology = parent_circuit.technology
    patched.mode = parent_circuit.mode
    patched.fault_hooks = {}
    patched.delay_scale = scale
    patched._cells = cells
    patched._protected = set(parent_circuit._protected)
    patched._last_use = {}
    for compiled in cells:
        for net in compiled.inputs:
            patched._last_use[net] = compiled.position
    patched.num_nets = child.num_nets
    patched._reach_masks = None
    patched._cell_delays = None
    plan = SoAPlan(
        levels=new_levels,
        scalar_levels=plan.scalar_levels,
        grouped=plan.grouped,
        num_levels=plan.num_levels,
        num_bucketed=plan.num_bucketed,
        num_scalar=plan.num_scalar,
    )
    patched._soa_value_plan = plan
    patched._soa_replay_plan = plan
    patched._jit_plan = None
    patched.delta_lineage = getattr(
        parent_circuit, "delta_lineage", ()
    ) + (delta.fingerprint(),)
    return patched


# ----------------------------------------------------------------------
# Value planes with captured values
# ----------------------------------------------------------------------


@dataclasses.dataclass
class DeltaPlane(ValuePlane):
    """A :class:`ValuePlane` that additionally records every net's
    settled-value stream, so a cone re-evaluation can read boundary
    values without re-running the parent.

    ``val_packed`` rows mirror ``may_packed``; constant rails are never
    recorded (:meth:`value` special-cases them)."""

    val_packed: Optional[np.ndarray] = None

    def value(self, net: int) -> np.ndarray:
        """Unpacked settled-value stream (uint8 0/1) for one net."""
        if net == CONST0:
            return np.zeros(self.num_patterns, dtype=np.uint8)
        if net == CONST1:
            return np.ones(self.num_patterns, dtype=np.uint8)
        return np.unpackbits(
            self.val_packed[net], count=self.num_patterns
        )


class _DeltaRecorder(_PlaneRecorder):
    """Plane recorder that also captures per-net value streams.

    ``wants_values`` opts into the engine's guarded ``net_values`` /
    ``bucket_values`` callbacks (plain plane builds skip the capture
    entirely)."""

    wants_values = True

    def __init__(self, circuit: CompiledCircuit, num_patterns: int):
        super().__init__(circuit, num_patterns)
        nbytes = (num_patterns + 7) // 8
        self.values = np.zeros(
            (circuit.num_nets, nbytes), dtype=np.uint8
        )

    def net_values(self, net: int, vals: np.ndarray) -> None:
        self._pack_into(self.values[net], vals)

    def bucket_values(self, nets, vals: np.ndarray) -> None:
        packed = np.packbits(vals[:, self._lo:], axis=1)
        width = packed.shape[1]
        self.values[nets, self._byte:self._byte + width] = packed


def build_delta_plane(
    circuit: CompiledCircuit,
    stimulus: Dict[str, Sequence[int]],
    collect_net_stats: bool = False,
    chunk_size: "Optional[int | str]" = "auto",
    key: Optional[str] = None,
) -> DeltaPlane:
    """One value pass capturing a replayable-and-diffable
    :class:`DeltaPlane`.

    ``initial`` is pinned to None (settling pattern == pattern 0): the
    cone value pass reproduces recorded may-masks via
    ``changed_matrix(values, None)``, which only holds under that
    settling convention.

    Raises:
        DeltaError: The circuit carries fault hooks (faulted planes are
            hook-specific; delta bases must be pristine) or runs on an
            active numba JIT kernel (the fused kernels do not capture
            values -- use ``kernel="soa"`` or ``"percell"``).
    """
    if circuit.fault_hooks:
        raise DeltaError(
            "delta base planes require a hook-free circuit"
        )
    if circuit.kernel == "numba":
        from . import jit

        if jit.jit_enabled():
            raise DeltaError(
                "delta base planes cannot be captured by the numba JIT"
                " kernel; build the base with kernel='soa' or 'percell'"
            )
    lengths = {np.asarray(v).shape[0] for v in stimulus.values()}
    if len(lengths) != 1:
        raise DeltaError("stimulus arrays must be equally long")
    (n,) = lengths
    if isinstance(chunk_size, int) and chunk_size % 8:
        chunk_size += 8 - chunk_size % 8
    recorder = _DeltaRecorder(circuit, n)
    result = circuit.run(
        stimulus,
        initial=None,
        collect_net_stats=collect_net_stats,
        chunk_size=chunk_size,
        _recorder=recorder,
    )
    return DeltaPlane(
        num_patterns=result.num_patterns,
        num_nets=circuit.num_nets,
        num_cells=len(circuit._cells),
        mode=circuit.mode,
        may_packed=recorder.may,
        aux_packed=recorder.aux,
        aux_offsets=recorder.aux_offsets,
        outputs=result.outputs,
        switched_caps=result.switched_caps,
        signal_prob=result.signal_prob,
        toggle_counts=result.toggle_counts,
        key=key,
        val_packed=recorder.values,
    )


# ----------------------------------------------------------------------
# Full-arrival tensor (the reusable base)
# ----------------------------------------------------------------------


def _replay_all_arrivals(
    circuit: CompiledCircuit, plane: ValuePlane, scales: np.ndarray
) -> np.ndarray:
    """Dense ``(num_nets, n, k)`` arrival tensor for every net.

    The same bucketed sparse pass as
    :meth:`~repro.timing.replay.ArrivalReplay._replay_soa`, but keeping
    *all* per-net rows instead of harvesting only output ports: rows of
    quiet entries, primary inputs and constant rails stay exactly 0.0
    (the quiet-zero invariant), so a cone replay can gather any
    boundary net's arrivals with no special-casing.  All arithmetic is
    elementwise per (cell, pattern, corner) entry, so the tensor is
    bit-identical to the chunked port replay.  Callers size ``n * k``
    (the tensor is the product, ~``num_nets * n * k * 8`` bytes).
    """
    plan = circuit.soa_replay_plan()
    n = plane.num_patterns
    k = scales.shape[0]
    full = np.zeros((circuit.num_nets, n, k))
    for bucket_list in plan.levels:
        for bucket in bucket_list:
            outs = bucket.outputs
            pins = bucket.pins
            may = np.unpackbits(
                plane.may_packed[outs], axis=1, count=n
            ).view(bool)
            rows, cols = np.nonzero(may)
            if not rows.size:
                continue
            count = _aux_count(bucket.opcode, pins.shape[0])
            if count:
                aux_rows = plane.aux_offsets[bucket.positions]
                aux = tuple(
                    np.unpackbits(
                        plane.aux_packed[aux_rows + lane],
                        axis=1,
                        count=n,
                    ).view(bool)[rows, cols]
                    for lane in range(count)
                )
            else:
                aux = ()
            arrs = [
                full[pins[j][rows], cols] for j in range(pins.shape[0])
            ]
            delay = (
                bucket.fresh_delays[:, None]
                * scales[:, bucket.cell_indices].T
            )
            out = _active_arrival(bucket.opcode, aux, arrs, delay[rows])
            full[outs[rows], cols] = out
    return full


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------


@dataclasses.dataclass
class DeltaResult:
    """Outputs and per-corner delays of one variant evaluation.

    The byte-identity surface of the delta machinery: ``outputs``,
    ``delays`` and ``bit_arrivals`` are bit-identical however the
    variant was evaluated (``method`` records which path ran --
    ``"base"``: unchanged, parent result; ``"delta"``: cone replay;
    ``"full"``: from-scratch fallback).  Switched capacitance is
    deliberately absent (see the module docstring).

    Attributes:
        outputs: Output port name -> uint64 settled values, ``(n,)``.
        delays: ``(k, n)`` per-corner per-pattern path delays (ns).
        delay_scales: The ``(k, num_cells)`` scale matrix priced.
        num_patterns: Stream length ``n``.
        bit_arrivals: Optional port -> ``(width, k, n)`` matrices.
        delta: The structural delta (None on ``"full"`` evaluations of
            an unrelated netlist).
        value_cone_cells / arrival_cone_cells: Cells re-simulated by
            the value / arrival pass (empty on ``"base"``/``"full"``).
        method: ``"base"``, ``"delta"`` or ``"full"``.
    """

    outputs: Dict[str, np.ndarray]
    delays: np.ndarray
    delay_scales: np.ndarray
    num_patterns: int
    method: str
    bit_arrivals: Optional[Dict[str, np.ndarray]] = None
    delta: Optional[NetlistDelta] = None
    value_cone_cells: Tuple[int, ...] = ()
    arrival_cone_cells: Tuple[int, ...] = ()

    @property
    def num_corners(self) -> int:
        return self.delays.shape[0]

    def max_delays(self) -> np.ndarray:
        """Per-corner worst path delay (ns), shape ``(k,)``."""
        return self.delays.max(axis=1)

    def mean_delays(self) -> np.ndarray:
        """Per-corner mean path delay (ns), shape ``(k,)``."""
        return self.delays.mean(axis=1)


def evaluate_full(
    child: Netlist,
    stimulus: Dict[str, Sequence[int]],
    delay_scales: np.ndarray,
    technology=None,
    mode: str = "inertial",
    kernel: str = "soa",
    collect_bit_arrivals: bool = False,
    chunk_size: "Optional[int | str]" = "auto",
) -> DeltaResult:
    """From-scratch comparator: compile + value pass + arrival replay.

    This is the reference the delta path must match byte for byte --
    the benchmark baseline, the CI ``cmp`` oracle and the
    ``max_cone_fraction`` fallback all run through here.
    """
    from ..config import DEFAULT_TECHNOLOGY

    circuit = CompiledCircuit(
        child,
        technology if technology is not None else DEFAULT_TECHNOLOGY,
        mode=mode,
        kernel=kernel,
    )
    plane = build_value_plane(
        circuit, stimulus, initial=None, chunk_size=chunk_size
    )
    replayed = ArrivalReplay(circuit, plane).replay(
        delay_scales, collect_bit_arrivals=collect_bit_arrivals
    )
    return DeltaResult(
        outputs=plane.outputs,
        delays=replayed.delays,
        delay_scales=replayed.delay_scales,
        num_patterns=plane.num_patterns,
        method="full",
        bit_arrivals=replayed.bit_arrivals,
    )


# ----------------------------------------------------------------------
# The reusable base + cone replay
# ----------------------------------------------------------------------


class DeltaBase:
    """Everything of a parent evaluation a cone replay can reuse.

    One value pass (with value capture) plus one all-nets arrival
    replay at the base ``(k, num_cells)`` scale matrix.  Against this
    base, :func:`replay_delta` prices an aligned child netlist --
    and/or a perturbed scale matrix -- touching only the affected cone.
    """

    def __init__(
        self,
        circuit: CompiledCircuit,
        stimulus: Dict[str, Sequence[int]],
        delay_scales: np.ndarray,
        chunk_size: "Optional[int | str]" = "auto",
    ):
        scales = np.asarray(delay_scales, dtype=float)
        if scales.ndim == 1:
            scales = scales[None, :]
        num_cells = len(circuit.netlist.cells)
        if scales.ndim != 2 or scales.shape[1] != num_cells:
            raise DeltaError(
                "delay_scales must be (num_cells,) or (k, num_cells)"
                " with num_cells=%d, got %r"
                % (num_cells, np.shape(delay_scales))
            )
        if np.any(scales <= 0):
            raise DeltaError("delay_scale entries must be positive")
        self.circuit = circuit
        self.stimulus = {
            name: np.asarray(values, dtype=np.uint64)
            for name, values in stimulus.items()
        }
        self.scales = scales
        self.plane = build_delta_plane(
            circuit, self.stimulus, chunk_size=chunk_size
        )
        self.arrivals = _replay_all_arrivals(
            circuit, self.plane, scales
        )
        self.num_patterns = self.plane.num_patterns
        self.num_cells = num_cells
        self.num_nets = circuit.num_nets
        self.delays = np.zeros((scales.shape[0], self.num_patterns))
        for port in circuit.netlist.output_ports.values():
            for net in port.nets:
                np.maximum(
                    self.delays, self.arrivals[net].T, out=self.delays
                )
        plan = circuit.soa_value_plan()
        self.level_of_position = _plan_levels(plan, num_cells)
        self.pos_by_index = {
            c.index: c.position for c in circuit._cells
        }

    @property
    def nbytes(self) -> int:
        """Approximate footprint (dominated by the arrival tensor)."""
        return self.arrivals.nbytes + self.plane.nbytes

    def result(self, collect_bit_arrivals: bool = False) -> DeltaResult:
        """The base evaluation itself as a :class:`DeltaResult`."""
        bit_arrivals = None
        if collect_bit_arrivals:
            bit_arrivals = {
                name: self.arrivals[list(port.nets)].transpose(0, 2, 1)
                for name, port in (
                    self.circuit.netlist.output_ports.items()
                )
            }
        return DeltaResult(
            outputs=self.plane.outputs,
            delays=self.delays,
            delay_scales=self.scales,
            num_patterns=self.num_patterns,
            method="base",
            bit_arrivals=bit_arrivals,
        )


def replay_delta(
    base: DeltaBase,
    child: Netlist,
    delay_scales: Optional[np.ndarray] = None,
    delta: Optional[NetlistDelta] = None,
    collect_bit_arrivals: bool = False,
    max_cone_fraction: Optional[float] = None,
) -> DeltaResult:
    """Price an aligned child netlist against a parent base.

    Re-simulates only the affected cone: the *value cone* (forward
    closure of structurally changed cells) is re-evaluated through
    :func:`logic.eval_vector` / :func:`logic.aux_masks` /
    :func:`logic.changed_matrix`; the *arrival cone* (forward closure
    of changed plus scale-perturbed cells, a superset) is re-timed
    through :func:`logic.arrival_masks` with ``(k, 1)`` delay columns.
    Everything outside a cone is gathered from the base plane / arrival
    tensor.  Bit-identical to :func:`evaluate_full` on the child.

    Args:
        delay_scales: Optional replacement scale matrix; must match the
            base's ``(k, num_cells)`` shape (None: the base scales).
        delta: Optional precomputed diff (skips re-hashing).
        max_cone_fraction: When set and the arrival cone exceeds this
            fraction of all cells, evaluate from scratch instead
            (``method="full"``) -- same bytes, different cost profile.

    Raises:
        DeltaError: Misaligned pair, mismatched scale shape, or an
            unpatchable rewire (see :func:`patch_compiled`).
    """
    parent_circuit = base.circuit
    if delay_scales is None:
        scales = base.scales
    else:
        scales = np.asarray(delay_scales, dtype=float)
        if scales.ndim == 1:
            scales = scales[None, :]
        if scales.shape != base.scales.shape:
            raise DeltaError(
                "delta replay needs the base's scale shape %r, got %r"
                % (base.scales.shape, scales.shape)
            )
        if np.any(scales <= 0):
            raise DeltaError("delay_scale entries must be positive")
    if delta is None:
        delta = diff_netlists(parent_circuit.netlist, child)
    scale_changed = np.nonzero(
        (scales != base.scales).any(axis=0)
    )[0]

    if delta.is_empty and not scale_changed.size:
        result = base.result(collect_bit_arrivals=collect_bit_arrivals)
        return dataclasses.replace(result, delta=delta)

    if delta.is_empty:
        patched = parent_circuit
    else:
        patched = patch_compiled(parent_circuit, child, delta)

    seeds = sorted(
        set(delta.changed_cells)
        | set(int(index) for index in scale_changed)
    )
    arrival_cone, _ = _forward_cone(child, seeds)
    if (
        max_cone_fraction is not None
        and len(arrival_cone) > max_cone_fraction * base.num_cells
    ):
        result = evaluate_full(
            child,
            base.stimulus,
            scales,
            technology=parent_circuit.technology,
            mode=parent_circuit.mode,
            collect_bit_arrivals=collect_bit_arrivals,
            kernel=patched.kernel,
        )
        return dataclasses.replace(result, delta=delta)

    plane = base.plane
    n = base.num_patterns
    cells = patched._cells
    pos_by_index = base.pos_by_index
    levels = base.level_of_position
    inertial = parent_circuit.mode == "inertial"

    def cone_order(indices):
        return sorted(
            (pos_by_index[index] for index in indices),
            key=lambda position: (int(levels[position]), position),
        )

    # -- value cone: settled values, may masks, aux masks --------------
    new_vals: Dict[int, np.ndarray] = {}
    new_mays: Dict[int, np.ndarray] = {}
    new_aux: Dict[int, tuple] = {}
    boundary_vals: Dict[int, np.ndarray] = {}
    boundary_mays: Dict[int, np.ndarray] = {}

    def value_row(net: int) -> np.ndarray:
        row = new_vals.get(net)
        if row is None:
            row = boundary_vals.get(net)
            if row is None:
                row = plane.value(net)
                boundary_vals[net] = row
        return row

    def may_row(net: int) -> np.ndarray:
        row = new_mays.get(net)
        if row is None:
            row = boundary_mays.get(net)
            if row is None:
                if net in (CONST0, CONST1):
                    row = np.zeros(n, dtype=bool)
                else:
                    row = plane.may(net)
                boundary_mays[net] = row
        return row

    for position in cone_order(delta.cone_cells):
        compiled = cells[position]
        in_vals = [value_row(pin) for pin in compiled.inputs]
        out_val = logic.eval_vector(compiled.opcode, in_vals)
        aux = logic.aux_masks(compiled.opcode, in_vals)
        if inertial:
            out_may = logic.changed_matrix(out_val, None)
        else:
            in_mays = [may_row(pin) for pin in compiled.inputs]
            out_may = logic.may_vector(
                compiled.opcode, in_vals, in_mays, aux
            )
        new_vals[compiled.output] = out_val
        new_mays[compiled.output] = out_may
        new_aux[position] = aux

    # -- arrival cone: re-time changed + scale-perturbed closure -------
    new_arr: Dict[int, np.ndarray] = {}

    def arrival_row(net: int) -> np.ndarray:
        row = new_arr.get(net)
        # (n, k) -> (k, n) view; boundary rows include PIs, constant
        # rails and quiet nets (all exactly 0.0 in the base tensor).
        return base.arrivals[net].T if row is None else row

    for position in cone_order(arrival_cone):
        compiled = cells[position]
        in_arrs = [arrival_row(pin) for pin in compiled.inputs]
        aux = new_aux.get(position)
        if aux is None:
            aux = plane.aux(position)
        out_may = new_mays.get(compiled.output)
        if out_may is None:
            out_may = plane.may(compiled.output)
        delay = (
            compiled.fresh_delay_ns * scales[:, compiled.index]
        )[:, None]
        new_arr[compiled.output] = logic.arrival_masks(
            compiled.opcode, aux, in_arrs, delay, out_may
        )

    # -- assemble: splice outputs, re-reduce port delays ---------------
    ports = child.output_ports
    outputs: Dict[str, np.ndarray] = {}
    for name, port in ports.items():
        if any(net in new_vals for net in port.nets):
            bits = logic.unpack_bits(plane.outputs[name], port.width)
            for lane, net in enumerate(port.nets):
                row = new_vals.get(net)
                if row is not None:
                    bits[lane] = row
            outputs[name] = logic.pack_bits(bits)
        else:
            outputs[name] = plane.outputs[name]

    delays = np.zeros_like(base.delays)
    bit_arrivals: Optional[Dict[str, np.ndarray]] = (
        {} if collect_bit_arrivals else None
    )
    for name, port in ports.items():
        rows = [arrival_row(net) for net in port.nets]
        for row in rows:
            np.maximum(delays, row, out=delays)
        if collect_bit_arrivals:
            bit_arrivals[name] = np.stack(
                [np.ascontiguousarray(row) for row in rows]
            )

    return DeltaResult(
        outputs=outputs,
        delays=delays,
        delay_scales=scales,
        num_patterns=n,
        method="delta",
        bit_arrivals=bit_arrivals,
        delta=delta,
        value_cone_cells=tuple(delta.cone_cells),
        arrival_cone_cells=tuple(arrival_cone),
    )
