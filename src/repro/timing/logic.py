"""Cell logic semantics shared by all simulators.

Two views of the same truth tables:

* :func:`eval_scalar` -- plain-Python evaluation of one cell on integer
  bits, used by the event-driven reference simulator and by tests;
* the ``CONTROLLING_VALUE`` table plus :func:`eval_vector` -- the
  numpy-vectorized evaluation used by the levelized stream engine.

Tri-state buffers are *transparent* here (output follows the data input
regardless of enable).  This is a deliberate modelling decision, documented
in DESIGN.md: in the bypassing multipliers every tri-state output is
consumed only by logic that is masked away when the buffer is disabled, so
transparency never changes a primary output; the power model separately
freezes switching inside disabled groups, and the timing model treats a
stably-disabled buffer as a quiet net.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..errors import SimulationError
from ..nets.cells import (
    OP_AND2,
    OP_AND3,
    OP_BUF,
    OP_INV,
    OP_MUX2,
    OP_NAND2,
    OP_NOR2,
    OP_OR2,
    OP_OR3,
    OP_TRIBUF,
    OP_XNOR2,
    OP_XOR2,
)

#: For simple gates: the input value that forces the output on its own
#: (0 for AND/NAND, 1 for OR/NOR).  XOR-family and complex cells have no
#: controlling value and are handled separately.
CONTROLLING_VALUE = {
    OP_AND2: 0,
    OP_AND3: 0,
    OP_NAND2: 0,
    OP_OR2: 1,
    OP_OR3: 1,
    OP_NOR2: 1,
}

#: Whether the simple gate inverts (affects the output value only).
INVERTING = {OP_NAND2, OP_NOR2, OP_INV, OP_XNOR2}


def eval_scalar(opcode: int, inputs: Sequence[int]) -> int:
    """Evaluate one cell on scalar bits.  ``TRIBUF`` is transparent."""
    if opcode == OP_BUF:
        return inputs[0]
    if opcode == OP_INV:
        return 1 - inputs[0]
    if opcode == OP_AND2:
        return inputs[0] & inputs[1]
    if opcode == OP_OR2:
        return inputs[0] | inputs[1]
    if opcode == OP_NAND2:
        return 1 - (inputs[0] & inputs[1])
    if opcode == OP_NOR2:
        return 1 - (inputs[0] | inputs[1])
    if opcode == OP_XOR2:
        return inputs[0] ^ inputs[1]
    if opcode == OP_XNOR2:
        return 1 - (inputs[0] ^ inputs[1])
    if opcode == OP_MUX2:
        d0, d1, select = inputs
        return d1 if select else d0
    if opcode == OP_TRIBUF:
        return inputs[0]
    if opcode == OP_AND3:
        return inputs[0] & inputs[1] & inputs[2]
    if opcode == OP_OR3:
        return inputs[0] | inputs[1] | inputs[2]
    raise SimulationError("unknown opcode %r" % (opcode,))


def eval_tribuf_scalar(din: int, enable: int, held: int) -> int:
    """Stateful scalar tri-state: drive ``din`` when enabled, else hold."""
    return din if enable else held


def eval_vector(opcode: int, values: Sequence[np.ndarray]) -> np.ndarray:
    """Vectorized settled-value evaluation (transparent ``TRIBUF``)."""
    if opcode == OP_BUF or opcode == OP_TRIBUF:
        return values[0]
    if opcode == OP_INV:
        return values[0] ^ 1
    if opcode == OP_AND2:
        return values[0] & values[1]
    if opcode == OP_OR2:
        return values[0] | values[1]
    if opcode == OP_NAND2:
        return (values[0] & values[1]) ^ 1
    if opcode == OP_NOR2:
        return (values[0] | values[1]) ^ 1
    if opcode == OP_XOR2:
        return values[0] ^ values[1]
    if opcode == OP_XNOR2:
        return (values[0] ^ values[1]) ^ 1
    if opcode == OP_MUX2:
        d0, d1, select = values
        return np.where(select.astype(bool), d1, d0).astype(np.uint8)
    if opcode == OP_AND3:
        return values[0] & values[1] & values[2]
    if opcode == OP_OR3:
        return values[0] | values[1] | values[2]
    raise SimulationError("unknown opcode %r" % (opcode,))


def aux_masks(
    opcode: int, values: Sequence[np.ndarray]
) -> "tuple[np.ndarray, ...]":
    """The value-derived masks the arrival rules of a cell consume.

    These are the *only* facts about logic values that timing needs:

    * simple gates with a controlling value: per-input ``value == ctrl``;
    * MUX2: the boolean select stream;
    * TRIBUF: the boolean enable stream;
    * BUF/INV/XOR/XNOR: nothing (pure delay propagation).

    Because they depend on values but never on delays, a value-plane
    pass can compute them once and replay arrivals for arbitrarily many
    per-cell delay vectors (see :mod:`repro.timing.replay`).
    """
    ctrl = CONTROLLING_VALUE.get(opcode)
    if ctrl is not None:
        return tuple(value == ctrl for value in values)
    if opcode == OP_MUX2:
        return (values[2].astype(bool),)
    if opcode == OP_TRIBUF:
        return (values[1].astype(bool),)
    if opcode in (OP_BUF, OP_INV, OP_XOR2, OP_XNOR2):
        return ()
    raise SimulationError("no arrival rule for opcode %r" % (opcode,))


def may_vector(
    opcode: int,
    values: Sequence[np.ndarray],
    mays: Sequence[np.ndarray],
    aux: Optional["tuple[np.ndarray, ...]"] = None,
) -> np.ndarray:
    """Floating-mode may-change propagation (value- and may-dependent,
    delay-independent).  ``aux`` may carry precomputed
    :func:`aux_masks` output for the same cell."""
    if opcode in (OP_BUF, OP_INV):
        return mays[0]
    if opcode in (OP_XOR2, OP_XNOR2):
        return mays[0] | mays[1]
    if aux is None:
        aux = aux_masks(opcode, values)
    if CONTROLLING_VALUE.get(opcode) is not None:
        stable_ctrl = np.zeros_like(mays[0])
        any_may = np.zeros_like(mays[0])
        for may, c in zip(mays, aux):
            stable_ctrl |= c & ~may
            any_may |= may
        return any_may & ~stable_ctrl
    if opcode == OP_MUX2:
        v0, v1, _ = values
        may0, may1, may_s = mays
        (sel,) = aux
        # If both data inputs are quiet and equal, the output is pinned
        # even while the select moves.
        pinned = ~may0 & ~may1 & (v0 == v1)
        chosen_may = np.where(sel, may1, may0)
        return (may_s & ~pinned) | chosen_may
    if opcode == OP_TRIBUF:
        may_d, may_e = mays
        (enabled,) = aux
        # Enable stable: acts as a wire when on, frozen when off.
        return np.where(may_e, True, enabled & may_d)
    raise SimulationError("no arrival rule for opcode %r" % (opcode,))


def arrival_masks(
    opcode: int,
    aux: "tuple[np.ndarray, ...]",
    arrivals: Sequence[np.ndarray],
    delay,
    out_may: np.ndarray,
) -> np.ndarray:
    """Arrival propagation from precomputed masks (the arrival plane).

    ``arrivals`` must satisfy the engine's quiet-zero invariant: an
    arrival entry is exactly ``0.0`` wherever its net's may-mask is
    False (every array produced by this function, and every primary
    input / constant rail, satisfies it).  Under that invariant the
    historical ``np.where(may, arr, 0.0)`` re-masking is the identity,
    so it is omitted here -- results are bit-identical and the kernel is
    what makes k-corner batched replay cheap.

    ``delay`` may be a scalar (one delay vector -- the streaming engine)
    or a ``(k, 1)`` column (k aging timesteps / variation corners at
    once); all other arrays broadcast along the leading corner axis.
    """
    if opcode in (OP_BUF, OP_INV):
        return np.where(out_may, arrivals[0] + delay, 0.0)

    if opcode in (OP_XOR2, OP_XNOR2):
        last = np.maximum(arrivals[0], arrivals[1])
        return np.where(out_may, last + delay, 0.0)

    if CONTROLLING_VALUE.get(opcode) is not None:
        # A quiet controlling input pins the output; a moving controlling
        # input caps the arrival at the earliest controlling settle time.
        shape = np.broadcast_shapes(*(np.shape(arr) for arr in arrivals))
        inf = np.float64(np.inf)
        ctrl_arr = np.full(shape, inf)
        last_arr = np.zeros(shape)
        has_ctrl = np.zeros_like(aux[0])
        for arr, c in zip(arrivals, aux):
            ctrl_arr = np.where(c, np.minimum(ctrl_arr, arr), ctrl_arr)
            has_ctrl |= c
            last_arr = np.maximum(last_arr, arr)
        base = np.where(has_ctrl, ctrl_arr, last_arr)
        return np.where(out_may, base + delay, 0.0)

    if opcode == OP_MUX2:
        # The settled select isolates the unselected data input: the
        # bypassed full adder behind the unselected pin can keep wiggling
        # without stretching the mux output.
        (sel,) = aux
        chosen_eff = np.where(sel, arrivals[1], arrivals[0])
        return np.where(
            out_may, np.maximum(arrivals[2], chosen_eff) + delay, 0.0
        )

    if opcode == OP_TRIBUF:
        # Quiet whenever it is stably disabled.
        (enabled,) = aux
        arr_moving = (
            np.maximum(arrivals[1], np.where(enabled, arrivals[0], 0.0))
            + delay
        )
        return np.where(out_may, arr_moving, 0.0)

    raise SimulationError("no arrival rule for opcode %r" % (opcode,))


def arrival_vector(
    opcode: int,
    values: Sequence[np.ndarray],
    mays: Sequence[np.ndarray],
    arrivals: Sequence[np.ndarray],
    delay: float,
    out_may: Optional[np.ndarray] = None,
) -> "tuple[np.ndarray, np.ndarray]":
    """Per-cell (may-change, arrival) over a pattern axis.

    Two modes, selected by ``out_may`` (see DESIGN.md section 5):

    * **floating** (``out_may=None``): ``may`` marks nets that can change
      *or glitch*; arrivals are a provable upper bound on the event-driven
      transport-delay settle time.
    * **inertial** (``out_may`` = "this net's settled value changed"):
      only actual value changes propagate -- the glitch-filtered "last
      transition" semantics a switch-level simulator such as Nanosim
      reports, and the mode the paper's delay distributions are built on.

    Arrival rules in both modes:

    * a quiet controlling input pins the output: quiet;
    * no input may change: quiet;
    * a (possibly late) controlling input caps the arrival at the
      earliest controlling input's settle time plus the cell delay;
    * otherwise the output settles one delay after the last moving input.

    ``arrivals`` must satisfy the quiet-zero invariant documented on
    :func:`arrival_masks` (engine-produced arrivals always do).  This is
    a thin composition of :func:`aux_masks`, :func:`may_vector` and
    :func:`arrival_masks` -- the value plane stores the first two, the
    arrival plane replays the third.

    Returns ``(may, arr)`` arrays.
    """
    aux = aux_masks(opcode, values)
    if out_may is None:
        out_may = may_vector(opcode, values, mays, aux)
    return out_may, arrival_masks(opcode, aux, arrivals, delay, out_may)


def transition_vector(
    opcode: int,
    values: Sequence[np.ndarray],
    transitions: Sequence[np.ndarray],
    changed: np.ndarray,
    damping: float = 1.0,
) -> np.ndarray:
    """Per-pattern expected transition counts (glitches included).

    Zero-delay toggle counting misses the dominant power term of deep
    arrays: glitch activity.  This propagates value-conditioned
    transition densities (Najm-style): each input transition produces an
    output transition when the other inputs currently sensitize it.
    Multipliers amplify this down their carry-save rows, which is why
    the plain array multiplier burns more power than the (larger)
    bypassing multipliers -- the effect Figs. 26-27(b) show.

    Tri-state buffers pass no transitions while disabled, so bypassed
    full adders are automatically quiet.  ``damping`` models inertial
    pulse filtering: a gate only propagates a fraction of the glitch
    trains arriving at its pins (narrow pulses die inside the gate), so
    activity stays bounded down deep arrays.  The result is floored at
    the functional toggle (``changed``) so power never drops below the
    zero-delay estimate.
    """
    if opcode in (OP_BUF, OP_INV):
        out = transitions[0]
    elif opcode in (OP_XOR2, OP_XNOR2):
        out = transitions[0] + transitions[1]
    elif opcode in (OP_AND2, OP_NAND2):
        a, b = values
        out = transitions[0] * (b != 0) + transitions[1] * (a != 0)
    elif opcode in (OP_OR2, OP_NOR2):
        a, b = values
        out = transitions[0] * (b == 0) + transitions[1] * (a == 0)
    elif opcode == OP_AND3:
        a, b, c = values
        out = (
            transitions[0] * ((b & c) != 0)
            + transitions[1] * ((a & c) != 0)
            + transitions[2] * ((a & b) != 0)
        )
    elif opcode == OP_OR3:
        a, b, c = values
        out = (
            transitions[0] * ((b | c) == 0)
            + transitions[1] * ((a | c) == 0)
            + transitions[2] * ((a | b) == 0)
        )
    elif opcode == OP_MUX2:
        d0, d1, select = values
        chosen = np.where(select.astype(bool), transitions[1], transitions[0])
        out = chosen + transitions[2] * (d0 != d1)
    elif opcode == OP_TRIBUF:
        din, enable = values
        # Disabled: quiet.  Enable flips contribute one output event.
        out = transitions[0] * (enable != 0) + transitions[1] * 0.5
    else:
        raise SimulationError("no transition rule for opcode %r" % (opcode,))
    return np.maximum(out * damping, changed)


def changed_matrix(
    values: np.ndarray, carry: "Optional[np.ndarray | int]" = None
) -> np.ndarray:
    """One-step value-change flags along the last (pattern) axis.

    ``carry`` supplies each row's value just before the first pattern
    (scalar for a single stream, ``(B,)`` for a stacked bucket); None
    marks a stream opening on its settling pattern, whose first flag is
    False by construction.  Equivalent per element to the engine's
    historical per-net ``changed_flags`` closure, for any batch shape.
    """
    flags = np.empty(values.shape, dtype=bool)
    if carry is None:
        flags[..., 0] = False
    else:
        flags[..., 0] = values[..., 0] != carry
    flags[..., 1:] = values[..., 1:] != values[..., :-1]
    return flags


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Combine a ``(width, n)`` LSB-first bit matrix into uint64 words."""
    width, _ = bits.shape
    if width > 64:
        raise SimulationError("cannot pack more than 64 bits per word")
    out = np.zeros(bits.shape[1], dtype=np.uint64)
    for i in range(width):
        out |= bits[i].astype(np.uint64) << np.uint64(i)
    return out


def unpack_bits(words: np.ndarray, width: int) -> np.ndarray:
    """Split uint64 words into a ``(width, n)`` LSB-first bit matrix."""
    words = np.asarray(words, dtype=np.uint64)
    if width < 1 or width > 64:
        raise SimulationError("width must lie in [1, 64]")
    if width < 64 and np.any(words >> np.uint64(width)):
        raise SimulationError("stimulus value does not fit in %d bits" % width)
    bits = np.empty((width, words.shape[0]), dtype=np.uint8)
    for i in range(width):
        bits[i] = (words >> np.uint64(i)).astype(np.uint64) & np.uint64(1)
    return bits


def tribuf_masked_toggles(
    values: np.ndarray,
    enables: np.ndarray,
    carry_value: Optional[int] = None,
) -> "tuple[np.ndarray, Optional[int]]":
    """Per-step toggle mask of a net that holds its value while disabled.

    ``values`` is the transparent value stream, ``enables`` the group's
    enable bit per step.  The *actual* net value is the transparent value
    at the most recent enabled step (the tri-state hold).  Returns a
    boolean per-step toggle mask and the held value after the last step
    (for exact chunked accumulation).
    """
    n = values.shape[0]
    if enables.shape[0] != n:
        raise SimulationError("values and enables must have equal length")
    en = enables.astype(bool)
    idx = np.where(en, np.arange(n), -1)
    last = np.maximum.accumulate(idx)
    held = np.where(last >= 0, values[np.maximum(last, 0)], 0).astype(np.int16)
    if carry_value is None:
        # Before the first enabled step the net floats at its first held
        # value: no observable toggle.
        first_val = held[np.argmax(last >= 0)] if np.any(last >= 0) else 0
        prev_first = first_val
    else:
        prev_first = carry_value
    held = np.where(last >= 0, held, prev_first)
    prev = np.empty_like(held)
    prev[0] = prev_first
    prev[1:] = held[:-1]
    toggles = held != prev
    final = int(held[-1]) if n else carry_value
    return toggles, final
