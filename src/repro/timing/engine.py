"""Levelized, numpy-vectorized two-vector stream simulator.

This is the reproduction's replacement for the paper's SPICE/Nanosim step:
it applies a *stream* of input patterns to a combinational netlist and, for
every pattern, computes

* the settled primary-output values (checked against golden models),
* the per-pattern **path delay** -- when the last primary-output
  transition lands, given the previous pattern (this is the quantity
  Figs. 5, 6 and 13-24 are built from),
* the switched capacitance (dynamic power), with switching inside
  *bypassed* full-adder groups frozen exactly as the tri-state gates do in
  the real circuit,
* per-net signal probabilities (inputs to the BTI stress model).

Two delay semantics are available (see :func:`repro.timing.logic
.arrival_vector`):

* ``mode="inertial"`` (default): only nets whose settled value changes
  propagate arrivals -- the glitch-filtered "last transition" a
  switch-level simulator reports; this is what the paper's per-pattern
  delay distributions correspond to;
* ``mode="floating"``: hazard-pessimistic; arrivals provably upper-bound
  the event-driven transport-delay settle time (cross-checked in tests).

All per-pattern quantities are vectorized across the pattern axis; the
Python-level loop runs once per cell, not once per pattern.  Memory stays
bounded because each net's arrays are freed as soon as its last consumer
has been evaluated; exactness across chunk boundaries is preserved by
carrying each net's final value and each bypass group's held value.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..config import DEFAULT_TECHNOLOGY, Technology
from ..errors import FaultError, SimulationError
from ..nets.netlist import CONST0, CONST1, Netlist
from . import logic
from .soa import build_soa_plan

#: A value-fault hook: maps a net's per-pattern bit stream to the faulted
#: stream.  ``start_index`` is the *global* index of the first element
#: (-1 for the prepended settling pattern), so hooks stay deterministic
#: across chunk boundaries.  Hooks must be pure functions of their
#: arguments.
FaultHook = Callable[[np.ndarray, int], np.ndarray]

#: Delay-semantics modes accepted by :class:`CompiledCircuit`.
MODES = ("inertial", "floating")

#: Evaluation kernels accepted by :class:`CompiledCircuit`.  ``"soa"``
#: (the default) evaluates whole (level, opcode) buckets with batched
#: gather/scatter over ``(num_nets, n)`` matrices; ``"percell"`` is the
#: original per-cell interpreter, kept as the benchmark baseline and
#: equivalence reference; ``"numba"`` runs the fused JIT kernels of
#: :mod:`repro.timing.jit` when numba is importable and silently falls
#: back to ``"soa"`` otherwise (the dependency is optional).  All
#: produce bit-identical per-net and per-pattern results (values,
#: delays, arrivals, toggles); only the cross-cell
#: switched-capacitance *sum* may differ by float association.
KERNELS = ("soa", "percell", "numba")


def normalize_kernel(name: str) -> str:
    """Validate a user-supplied kernel name (CLI surface).

    Returns the name unchanged when it is a member of :data:`KERNELS`;
    otherwise raises :class:`~repro.errors.ConfigError` with a
    did-you-mean hint, so every ``--kernel`` flag fails the same way.
    """
    if name in KERNELS:
        return name
    import difflib

    from ..errors import ConfigError

    close = difflib.get_close_matches(str(name), KERNELS, n=1)
    hint = " (did you mean %r?)" % close[0] if close else ""
    raise ConfigError(
        "unknown kernel %r (known: %s)%s"
        % (name, ", ".join(KERNELS), hint)
    )

#: Peak-memory target for ``chunk_size="auto"``: the streaming loop keeps
#: on the order of ``num_nets`` live per-pattern arrays (uint8 value,
#: bool may, float64 arrival, float64 transition density -- less after
#: dead-net freeing), so patterns-per-chunk is bounded by this budget
#: divided by ``num_nets * _AUTO_BYTES_PER_NET``.
AUTO_CHUNK_TARGET_BYTES = 256 * 1024 * 1024
_AUTO_BYTES_PER_NET = 32


#: JIT chunks are this many times larger: the fused kernels touch each
#: matrix once per pass (no per-bucket numpy temporaries), so the same
#: memory budget admits more patterns, and larger chunks amortize the
#: per-call dispatch and thread fork/join overhead better.
_JIT_CHUNK_FACTOR = 4


def auto_chunk_size(
    num_nets: int, num_patterns: int, kernel: str = "soa"
) -> int:
    """Patterns per chunk so a run stays near ``AUTO_CHUNK_TARGET_BYTES``.

    Returns a multiple of 8 (so value-plane bit-packing stays
    byte-aligned at chunk boundaries), at least 64, and possibly larger
    than ``num_patterns`` -- in which case the run is unchunked.

    ``kernel`` adapts the target to the active backend: when the JIT
    backend is both selected *and* runnable the budget grows by
    ``_JIT_CHUNK_FACTOR`` (chunking is exact, so results are unchanged
    either way); with numba absent the ``"numba"`` kernel executes on
    the SoA path and keeps the SoA chunk size.
    """
    target = AUTO_CHUNK_TARGET_BYTES
    if kernel == "numba":
        from . import jit

        if jit.jit_enabled():
            target *= _JIT_CHUNK_FACTOR
    per_pattern = max(1, num_nets) * _AUTO_BYTES_PER_NET
    chunk = target // per_pattern
    chunk = max(64, chunk - chunk % 8)
    return chunk


@dataclasses.dataclass
class StreamResult:
    """Results of one :meth:`CompiledCircuit.run` call.

    Attributes:
        outputs: Output port name -> uint64 settled values per pattern.
        delays: Per-pattern path delay in ns (max over all output bits;
            0 when no output changes).
        switched_caps: Per-pattern switched capacitance in unit caps.
        bit_arrivals: Optional port -> ``(width, n)`` per-bit arrival ns.
        signal_prob: Optional per-net probability of logic 1.
        toggle_counts: Optional per-net toggle totals.
        num_patterns: Stream length.
    """

    outputs: Dict[str, np.ndarray]
    delays: np.ndarray
    switched_caps: np.ndarray
    num_patterns: int
    bit_arrivals: Optional[Dict[str, np.ndarray]] = None
    signal_prob: Optional[np.ndarray] = None
    toggle_counts: Optional[np.ndarray] = None

    @property
    def max_delay(self) -> float:
        """Largest observed per-pattern delay (ns)."""
        return float(self.delays.max()) if self.num_patterns else 0.0

    @property
    def mean_delay(self) -> float:
        """Mean per-pattern delay (ns)."""
        return float(self.delays.mean()) if self.num_patterns else 0.0

    def mean_switched_caps(self) -> float:
        """Average switched capacitance per operation (unit caps)."""
        if not self.num_patterns:
            return 0.0
        return float(self.switched_caps.mean())


@dataclasses.dataclass(frozen=True)
class _CompiledCell:
    position: int
    opcode: int
    inputs: "tuple[int, ...]"
    output: int
    delay_ns: float
    cap: float
    group: Optional[str]
    #: Original netlist cell index (the ``delay_scale`` axis).
    index: int = 0
    #: Unscaled delay (``delay_units * time_unit_ns``); ``delay_ns`` is
    #: exactly ``fresh_delay_ns * delay_scale[index]``, and arrival
    #: replay recomputes it the same way for other scale vectors.
    fresh_delay_ns: float = 0.0


class CompiledCircuit:
    """A netlist compiled for vectorized stream simulation.

    Args:
        netlist: A validated combinational :class:`Netlist`.
        technology: Supplies the delay unit (ns per logical-effort unit).
        delay_scale: Optional per-cell multiplicative delay factors
            (indexed by cell index) -- this is how aging enters timing.
        mode: Delay semantics, ``"inertial"`` or ``"floating"``.
        fault_hooks: Optional net id -> :data:`FaultHook` mapping.  Each
            hook rewrites that net's settled-value stream *before* change
            detection, so arrivals, switching activity and downstream
            logic all see the faulted values (this is how stuck-at and
            transient value faults enter the simulation; delay faults
            enter through ``delay_scale``).  Constant rails cannot be
            hooked.
        kernel: Evaluation kernel, one of :data:`KERNELS`.  ``"soa"``
            runs the levelized bucketed kernel with scalar fallback for
            hooked cells; ``"percell"`` forces the per-cell reference
            path everywhere.
    """

    def __init__(
        self,
        netlist: Netlist,
        technology: Technology = DEFAULT_TECHNOLOGY,
        delay_scale: Optional[np.ndarray] = None,
        mode: str = "inertial",
        fault_hooks: Optional[Dict[int, FaultHook]] = None,
        kernel: str = "soa",
    ):
        if mode not in MODES:
            raise SimulationError(
                "mode must be one of %s, got %r" % (MODES, mode)
            )
        if kernel not in KERNELS:
            raise SimulationError(
                "kernel must be one of %s, got %r" % (KERNELS, kernel)
            )
        self.kernel = kernel
        netlist.validate()
        self.netlist = netlist
        self.technology = technology
        self.mode = mode
        self.fault_hooks: Dict[int, FaultHook] = dict(fault_hooks or {})
        for net in self.fault_hooks:
            if not isinstance(net, int) or isinstance(net, bool):
                raise FaultError("fault hook net id must be an int, got %r"
                                 % (net,))
            if net in (CONST0, CONST1):
                raise FaultError("cannot hook the constant rails")
            if not 0 <= net < netlist.num_nets:
                raise FaultError(
                    "fault hook net %d out of range (netlist has %d nets)"
                    % (net, netlist.num_nets)
                )
        order = netlist.levelize()
        if delay_scale is None:
            scale = np.ones(len(netlist.cells))
        else:
            scale = np.asarray(delay_scale, dtype=float)
            if scale.shape != (len(netlist.cells),):
                raise SimulationError(
                    "delay_scale must have one entry per cell (%d), got %r"
                    % (len(netlist.cells), scale.shape)
                )
            if np.any(scale <= 0):
                raise SimulationError("delay_scale entries must be positive")
        self.delay_scale = scale

        unit = technology.time_unit_ns
        self._cells: List[_CompiledCell] = []
        for position, cell in enumerate(order):
            fresh = cell.cell_type.delay_units * unit
            self._cells.append(
                _CompiledCell(
                    position=position,
                    opcode=cell.cell_type.opcode,
                    inputs=cell.inputs,
                    output=cell.output,
                    delay_ns=fresh * float(scale[cell.index]),
                    cap=cell.cell_type.load_caps,
                    group=cell.group,
                    index=cell.index,
                    fresh_delay_ns=fresh,
                )
            )

        # Net protection and lifetime analysis for array freeing.
        self._protected = {CONST0, CONST1}
        for port in netlist.input_ports.values():
            self._protected.update(port.nets)
        for port in netlist.output_ports.values():
            self._protected.update(port.nets)
        self._protected.update(netlist.group_enables.values())

        self._last_use: Dict[int, int] = {}
        for compiled in self._cells:
            for net in compiled.inputs:
                self._last_use[net] = compiled.position

        self.num_nets = netlist.num_nets
        self._reach_masks: Optional[List[int]] = None
        self._cell_delays: Optional[np.ndarray] = None
        self._soa_value_plan = None
        self._soa_replay_plan = None
        self._jit_plan = None

    # ------------------------------------------------------------------
    # Logic-cone reachability
    # ------------------------------------------------------------------

    def output_bit_labels(
        self, ports: Optional[Sequence[str]] = None
    ) -> "List[tuple]":
        """``(port name, bit index)`` labels, one per observed output bit.

        Bit ``k`` of the masks returned by :meth:`output_reach_mask`
        corresponds to entry ``k`` of this list.  ``ports`` restricts the
        observation to a subset of output ports (default: all of them).
        """
        if ports is None:
            names = list(self.netlist.output_ports)
        else:
            names = list(ports)
            for name in names:
                if name not in self.netlist.output_ports:
                    raise SimulationError(
                        "unknown output port %r (have: %s)"
                        % (name, sorted(self.netlist.output_ports))
                    )
        labels = []
        for name in names:
            port = self.netlist.output_ports[name]
            labels.extend((name, bit) for bit in range(port.width))
        return labels

    def output_reach_mask(
        self, ports: Optional[Sequence[str]] = None
    ) -> List[int]:
        """Per-net bitmask of the observed output bits its cone reaches.

        Entry ``net`` is an arbitrary-precision integer whose bit ``k``
        is set iff a directed path of cells leads from ``net`` to output
        bit ``k`` of :meth:`output_bit_labels` (a net that *is* an
        output bit reaches itself).  Computed by one reverse-topological
        sweep and cached for the default (all-ports) observation.

        A fault site whose mask is 0 cannot corrupt any observed product
        bit -- neither its value nor its arrival time propagates to an
        output -- which is the exact condition campaign logic-cone
        pruning relies on.
        """
        cache_ok = ports is None
        if cache_ok and self._reach_masks is not None:
            return self._reach_masks
        masks = [0] * self.num_nets
        for bit, (name, index) in enumerate(self.output_bit_labels(ports)):
            masks[self.netlist.output_ports[name].nets[index]] |= 1 << bit
        # Reverse-topological sweep: a cell's inputs reach everything its
        # output reaches.
        for compiled in reversed(self._cells):
            mask = masks[compiled.output]
            if mask:
                for net in compiled.inputs:
                    masks[net] |= mask
        if cache_ok:
            self._reach_masks = masks
        return masks

    def reaches_outputs(
        self, net: int, ports: Optional[Sequence[str]] = None
    ) -> bool:
        """Whether ``net``'s forward cone touches any observed output bit."""
        if not 0 <= net < self.num_nets:
            raise SimulationError(
                "net %d out of range (circuit has %d nets)"
                % (net, self.num_nets)
            )
        return bool(self.output_reach_mask(ports)[net])

    def with_delay_scale(self, delay_scale: np.ndarray) -> "CompiledCircuit":
        """Recompile with new per-cell delay factors (e.g. another year)."""
        return CompiledCircuit(
            self.netlist, self.technology, delay_scale, self.mode,
            self.fault_hooks, self.kernel,
        )

    def cell_delays_ns(self) -> np.ndarray:
        """Per-cell delays in topological order (ns).

        Cached (and returned read-only) -- campaign pruning and timing
        reports call this repeatedly on the same compiled circuit.
        """
        if self._cell_delays is None:
            delays = np.array([c.delay_ns for c in self._cells])
            delays.setflags(write=False)
            self._cell_delays = delays
        return self._cell_delays

    def soa_value_plan(self):
        """The bucketed :class:`~repro.timing.soa.SoAPlan` of the value
        pass: cells with hooked outputs fall into per-level scalar
        lists (built lazily, cached)."""
        if self._soa_value_plan is None:
            self._soa_value_plan = build_soa_plan(
                self._cells, self.netlist, frozenset(self.fault_hooks)
            )
        return self._soa_value_plan

    def soa_replay_plan(self):
        """The all-cells bucket plan used by arrival replay.  Replay
        consumes recorded (already-faulted) masks, so hooks need no
        scalar fallback there; hook-free circuits share the value plan.
        """
        if self._soa_replay_plan is None:
            if not self.fault_hooks:
                self._soa_replay_plan = self.soa_value_plan()
            else:
                self._soa_replay_plan = build_soa_plan(
                    self._cells, self.netlist, frozenset()
                )
        return self._soa_replay_plan

    # ------------------------------------------------------------------

    def run(
        self,
        stimulus: Dict[str, Sequence[int]],
        initial: Optional[Dict[str, int]] = None,
        collect_bit_arrivals: bool = False,
        collect_net_stats: bool = False,
        chunk_size: "Optional[int | str]" = None,
        fold: bool = False,
        _recorder=None,
    ) -> StreamResult:
        """Simulate a pattern stream.

        Args:
            stimulus: Port name -> integer pattern values (all input ports
                must be present, all arrays equally long).
            initial: Optional port values the circuit held *before* the
                first pattern.  Defaults to the first pattern itself, so
                pattern 0 arrives on a settled, quiet circuit and reports
                zero delay.  Names must be input ports.
            collect_bit_arrivals: Keep per-output-bit arrival matrices.
            collect_net_stats: Keep per-net signal probabilities and
                toggle counts (needed by the aging stress extractor).
            chunk_size: Process the stream in chunks of this many patterns
                to bound memory; results are exact regardless of chunking.
                ``"auto"`` picks a chunk from :func:`auto_chunk_size` so
                peak memory stays near ``AUTO_CHUNK_TARGET_BYTES``
                regardless of ``num_nets * n``.
            fold: Deduplicate repeated ``(previous, current)`` operand
                transitions and simulate only the unique pairs (see
                :mod:`repro.timing.fold`); results are bit-identical to
                the unfolded run.  Silently bypassed whenever folding
                cannot preserve semantics (fault hooks consume global
                pattern indices; net stats and value-plane recording
                aggregate with per-pattern multiplicity) or when the
                stream barely repeats.
            _recorder: Internal -- a value-plane recorder (see
                :mod:`repro.timing.replay`).  When set, arrival
                computation is skipped (the recorder captures the masks
                needed to replay it) and the returned ``delays`` /
                ``bit_arrivals`` are not meaningful.
        """
        ports = self.netlist.input_ports
        missing = set(ports) - set(stimulus)
        extra = set(stimulus) - set(ports)
        if missing or extra:
            raise SimulationError(
                "stimulus ports mismatch: missing=%s extra=%s"
                % (sorted(missing), sorted(extra))
            )
        if initial is not None:
            unknown = set(initial) - set(ports)
            if unknown:
                raise SimulationError(
                    "initial contains unknown input ports: %s (have: %s)"
                    % (sorted(unknown), sorted(ports))
                )
        arrays = {
            name: np.asarray(values, dtype=np.uint64)
            for name, values in stimulus.items()
        }
        lengths = {arr.shape[0] for arr in arrays.values()}
        if len(lengths) != 1:
            raise SimulationError("stimulus arrays must be equally long")
        (n,) = lengths
        if n == 0:
            raise SimulationError("stimulus must contain at least 1 pattern")

        if (
            fold
            and not self.fault_hooks
            and not collect_net_stats
            and _recorder is None
        ):
            from .fold import fold_stimulus, unfold_stream

            plan = fold_stimulus(arrays, initial)
            if plan.profitable:
                folded = self.run(
                    plan.folded,
                    collect_bit_arrivals=collect_bit_arrivals,
                    chunk_size=chunk_size,
                )
                return unfold_stream(folded, plan)

        if isinstance(chunk_size, str):
            if chunk_size != "auto":
                raise SimulationError(
                    'chunk_size must be an int, None or "auto", got %r'
                    % (chunk_size,)
                )
            chunk_size = auto_chunk_size(self.num_nets, n, self.kernel)

        # Prepend the settling pattern: the state the circuit held before
        # pattern 0.  Index 0 of the simulated stream is dropped from all
        # per-pattern results, so delays/toggles are exact two-vector
        # quantities for every reported pattern.
        prefixed = {}
        for name, arr in arrays.items():
            first = (
                np.uint64(initial[name])
                if initial is not None and name in initial
                else arr[0]
            )
            prefixed[name] = np.concatenate(([first], arr))

        if chunk_size is None or chunk_size >= n + 1:
            result, _, _ = self._run_chunk(
                prefixed,
                carry_values=None,
                carry_held={},
                collect_bit_arrivals=collect_bit_arrivals,
                collect_net_stats=collect_net_stats,
                drop_first=True,
                start_index=-1,
                recorder=_recorder,
            )
            return result

        if chunk_size < 1:
            raise SimulationError("chunk_size must be >= 1")
        if _recorder is not None and chunk_size % 8:
            raise SimulationError(
                "value-plane recording needs a chunk_size that is a "
                "multiple of 8 (byte-aligned bit packing), got %d"
                % chunk_size
            )
        pieces: List[StreamResult] = []
        carry_values: Optional[np.ndarray] = None
        carry_held: Dict[int, int] = {}
        total = n + 1
        start = 0
        first_chunk = True
        while start < total:
            stop = min(start + chunk_size + (1 if first_chunk else 0), total)
            chunk = {name: arr[start:stop] for name, arr in prefixed.items()}
            result, carry_values, carry_held = self._run_chunk(
                chunk,
                carry_values=carry_values,
                carry_held=carry_held,
                collect_bit_arrivals=collect_bit_arrivals,
                collect_net_stats=collect_net_stats,
                drop_first=first_chunk,
                start_index=start - 1,
                recorder=_recorder,
            )
            pieces.append(result)
            start = stop
            first_chunk = False
        return _concatenate_results(pieces, self.num_nets)

    def value_plane(
        self,
        stimulus: Dict[str, Sequence[int]],
        initial: Optional[Dict[str, int]] = None,
        collect_net_stats: bool = False,
        chunk_size: "Optional[int | str]" = "auto",
    ):
        """Run the value pass once and return a reusable
        :class:`~repro.timing.replay.ValuePlane` (see that module)."""
        from .replay import build_value_plane

        return build_value_plane(
            self,
            stimulus,
            initial=initial,
            collect_net_stats=collect_net_stats,
            chunk_size=chunk_size,
        )

    # ------------------------------------------------------------------

    def _run_chunk(
        self,
        arrays: Dict[str, np.ndarray],
        carry_values: Optional[np.ndarray],
        carry_held: Dict[int, int],
        collect_bit_arrivals: bool,
        collect_net_stats: bool,
        drop_first: bool,
        start_index: int = -1,
        recorder=None,
    ):
        """Simulate one chunk through the configured kernel.

        ``carry_values`` holds every net's settled value at the end of
        the previous chunk (None for the first chunk, which instead
        starts with the prepended settling pattern and ``drop_first``).
        ``start_index`` is the global pattern index of the chunk's first
        element (-1 for the settling pattern), forwarded to fault hooks.
        ``recorder``, when set, captures the value plane instead of
        computing arrivals.
        """
        if self.kernel == "percell":
            runner = self._run_chunk_percell
        elif self.kernel == "numba":
            from . import jit

            # Graceful fallback: without numba (or forced pure-python
            # mode) the SoA kernel runs instead, bit-identically.
            runner = (
                self._run_chunk_numba
                if jit.jit_enabled()
                else self._run_chunk_soa
            )
        else:
            runner = self._run_chunk_soa
        return runner(
            arrays,
            carry_values,
            carry_held,
            collect_bit_arrivals,
            collect_net_stats,
            drop_first,
            start_index=start_index,
            recorder=recorder,
        )

    def _run_chunk_soa(
        self,
        arrays: Dict[str, np.ndarray],
        carry_values: Optional[np.ndarray],
        carry_held: Dict[int, int],
        collect_bit_arrivals: bool,
        collect_net_stats: bool,
        drop_first: bool,
        start_index: int = -1,
        recorder=None,
    ):
        """Levelized SoA chunk runner.

        Holds dense ``(num_nets, n)`` value / may / transition (and,
        unless recording, arrival) matrices and evaluates one
        (level, opcode) bucket per batched kernel call; cells with
        hooked outputs run through the scalar fallback after their
        level's buckets so downstream buckets see the faulted rows.
        """
        fault_hooks = self.fault_hooks
        netlist = self.netlist
        plan = self.soa_value_plan()
        n = next(iter(arrays.values())).shape[0]
        num_nets = self.num_nets
        inertial = self.mode == "inertial"
        damping = self.technology.glitch_damping
        lo = 1 if drop_first else 0
        record_values = recorder is not None and getattr(
            recorder, "wants_values", False
        )
        if recorder is not None:
            recorder.begin(start_index + lo, lo)

        V = np.zeros((num_nets, n), dtype=np.uint8)
        V[CONST1] = 1
        M = np.zeros((num_nets, n), dtype=bool)
        T = np.zeros((num_nets, n))
        A = None if recorder is not None else np.zeros((num_nets, n))

        switched = np.zeros(n)
        sig_sum = np.zeros(num_nets) if collect_net_stats else None
        tog_sum = np.zeros(num_nets) if collect_net_stats else None
        if collect_net_stats:
            sig_sum[CONST1] = n
        new_held: Dict[int, int] = {}

        # Primary inputs: expand port words into per-net bit rows.
        for name, port in netlist.input_ports.items():
            bits = logic.unpack_bits(arrays[name], port.width)
            for lane, net in enumerate(port.nets):
                cur = bits[lane]
                if net in fault_hooks:
                    cur = np.asarray(
                        fault_hooks[net](cur, start_index), dtype=np.uint8
                    )
                flags = logic.changed_matrix(
                    cur,
                    None if carry_values is None else carry_values[net],
                )
                V[net] = cur
                M[net] = flags
                T[net] = flags
                if recorder is not None:
                    recorder.net_may(net, flags)
                    if record_values:
                        recorder.net_values(net, cur)
                if collect_net_stats:
                    sig_sum[net] = cur.sum()
                    tog_sum[net] = flags.sum()

        group_enable_net = netlist.group_enables

        for bucket_list, scalars in zip(plan.levels, plan.scalar_levels):
            for bucket in bucket_list:
                pins = bucket.pins
                outs = bucket.outputs
                in_vals = [V[pins[j]] for j in range(pins.shape[0])]
                out_val = logic.eval_vector(bucket.opcode, in_vals)
                changed = logic.changed_matrix(
                    out_val,
                    None if carry_values is None else carry_values[outs],
                )
                aux = logic.aux_masks(bucket.opcode, in_vals)
                if inertial:
                    out_may = changed
                else:
                    in_mays = [M[pins[j]] for j in range(pins.shape[0])]
                    out_may = logic.may_vector(
                        bucket.opcode, in_vals, in_mays, aux
                    )
                if recorder is None:
                    in_arrs = [A[pins[j]] for j in range(pins.shape[0])]
                    A[outs] = logic.arrival_masks(
                        bucket.opcode,
                        aux,
                        in_arrs,
                        bucket.delays[:, None],
                        out_may,
                    )
                else:
                    recorder.cell_bucket(
                        bucket.positions, outs, out_may, aux
                    )
                    if record_values:
                        recorder.bucket_values(outs, out_val)
                V[outs] = out_val
                M[outs] = out_may
                in_trans = [T[pins[j]] for j in range(pins.shape[0])]
                out_trans = logic.transition_vector(
                    bucket.opcode, in_vals, in_trans, changed,
                    damping=damping,
                )
                T[outs] = out_trans
                # Reduce over the cell axis with an explicit sum (not a
                # BLAS matvec): the pairwise accumulation then depends
                # only on the bucket size, so chunked and unchunked runs
                # produce bit-identical switched capacitance.
                switched += (bucket.caps[:, None] * out_trans).sum(axis=0)
                if collect_net_stats:
                    sig_sum[outs] = out_val.sum(axis=1)
                    tog_sum[outs] = changed.sum(axis=1)

            for compiled in scalars:
                ins = compiled.inputs
                in_vals = [V[p] for p in ins]
                out_val = logic.eval_vector(compiled.opcode, in_vals)
                net = compiled.output
                out_val = np.asarray(
                    fault_hooks[net](out_val, start_index), dtype=np.uint8
                )
                changed = logic.changed_matrix(
                    out_val,
                    None if carry_values is None else carry_values[net],
                )
                aux = logic.aux_masks(compiled.opcode, in_vals)
                if inertial:
                    out_may = changed
                else:
                    out_may = logic.may_vector(
                        compiled.opcode, in_vals, [M[p] for p in ins], aux
                    )
                if recorder is None:
                    A[net] = logic.arrival_masks(
                        compiled.opcode,
                        aux,
                        [A[p] for p in ins],
                        compiled.delay_ns,
                        out_may,
                    )
                else:
                    recorder.cell(compiled.position, net, out_may, aux)
                    if record_values:
                        recorder.net_values(net, out_val)
                V[net] = out_val
                M[net] = out_may
                out_trans = logic.transition_vector(
                    compiled.opcode,
                    in_vals,
                    [T[p] for p in ins],
                    changed,
                    damping=damping,
                )
                T[net] = out_trans
                switched += out_trans * compiled.cap
                if collect_net_stats:
                    if (
                        compiled.group is not None
                        and compiled.group in group_enable_net
                    ):
                        enable = V[group_enable_net[compiled.group]]
                        toggles, held_final = logic.tribuf_masked_toggles(
                            out_val, enable, carry_held.get(net)
                        )
                        new_held[net] = held_final
                        tog_sum[net] = toggles.sum()
                    else:
                        tog_sum[net] = changed.sum()
                    sig_sum[net] = out_val.sum()

        if collect_net_stats:
            # Bucketed bypass-group cells: replace the functional toggle
            # count with the tri-state-hold count (all values exist by
            # now, so the fixup is order-independent).
            for net, enable_net in plan.grouped:
                toggles, held_final = logic.tribuf_masked_toggles(
                    V[net], V[enable_net], carry_held.get(net)
                )
                new_held[net] = held_final
                tog_sum[net] = toggles.sum()

        final_values = V[:, -1].copy()
        final_values[CONST0] = 0
        final_values[CONST1] = 0

        outputs: Dict[str, np.ndarray] = {}
        bit_arrivals: Optional[Dict[str, np.ndarray]] = (
            {} if collect_bit_arrivals else None
        )
        delays = np.zeros(n)
        for name, port in netlist.output_ports.items():
            nets = list(port.nets)
            outputs[name] = logic.pack_bits(V[nets])[lo:]
            if recorder is None:
                port_arr = A[nets]
                if collect_bit_arrivals:
                    bit_arrivals[name] = port_arr[:, lo:]
                delays = np.maximum(delays, port_arr.max(axis=0))
            elif collect_bit_arrivals:
                bit_arrivals[name] = np.zeros((port.width, n - lo))

        reported = n - lo
        result = StreamResult(
            outputs=outputs,
            delays=delays[lo:],
            switched_caps=switched[lo:],
            num_patterns=reported,
            bit_arrivals=bit_arrivals,
            signal_prob=(sig_sum / n) if collect_net_stats else None,
            toggle_counts=tog_sum if collect_net_stats else None,
        )
        return result, final_values, new_held

    def _run_chunk_numba(
        self,
        arrays: Dict[str, np.ndarray],
        carry_values: Optional[np.ndarray],
        carry_held: Dict[int, int],
        collect_bit_arrivals: bool,
        collect_net_stats: bool,
        drop_first: bool,
        start_index: int = -1,
        recorder=None,
    ):
        """Fused JIT chunk runner (see :mod:`repro.timing.jit`)."""
        from . import jit

        return jit.run_chunk(
            self,
            arrays,
            carry_values,
            carry_held,
            collect_bit_arrivals,
            collect_net_stats,
            drop_first,
            start_index=start_index,
            recorder=recorder,
        )

    def _run_chunk_percell(
        self,
        arrays: Dict[str, np.ndarray],
        carry_values: Optional[np.ndarray],
        carry_held: Dict[int, int],
        collect_bit_arrivals: bool,
        collect_net_stats: bool,
        drop_first: bool,
        start_index: int = -1,
        recorder=None,
    ):
        """Reference per-cell chunk runner (the pre-SoA interpreter)."""
        fault_hooks = self.fault_hooks
        netlist = self.netlist
        n = next(iter(arrays.values())).shape[0]
        zeros_f = np.zeros(n)
        false_b = np.zeros(n, dtype=bool)
        inertial = self.mode == "inertial"
        lo = 1 if drop_first else 0
        record_values = recorder is not None and getattr(
            recorder, "wants_values", False
        )
        if recorder is not None:
            recorder.begin(start_index + lo, lo)

        values: Dict[int, np.ndarray] = {}
        mays: Dict[int, np.ndarray] = {}
        arrs: Dict[int, np.ndarray] = {}
        trans: Dict[int, np.ndarray] = {}

        values[CONST0] = np.zeros(n, dtype=np.uint8)
        values[CONST1] = np.ones(n, dtype=np.uint8)
        mays[CONST0] = mays[CONST1] = false_b
        arrs[CONST0] = arrs[CONST1] = zeros_f
        trans[CONST0] = trans[CONST1] = zeros_f

        switched = np.zeros(n)
        sig_sum = np.zeros(self.num_nets) if collect_net_stats else None
        tog_sum = np.zeros(self.num_nets) if collect_net_stats else None
        if collect_net_stats:
            sig_sum[CONST1] = n

        final_values = np.zeros(self.num_nets, dtype=np.uint8)
        new_held: Dict[int, int] = {}

        def changed_flags(net: int, vals: np.ndarray) -> np.ndarray:
            """Per-step value-change flags with exact chunk carry."""
            flags = np.empty(n, dtype=bool)
            if carry_values is None:
                flags[0] = False
            else:
                flags[0] = vals[0] != carry_values[net]
            flags[1:] = vals[1:] != vals[:-1]
            return flags

        # Primary inputs: expand port words into per-net bit streams.
        for name, port in netlist.input_ports.items():
            bits = logic.unpack_bits(arrays[name], port.width)
            for lane, net in enumerate(port.nets):
                cur = bits[lane]
                if net in fault_hooks:
                    cur = np.asarray(
                        fault_hooks[net](cur, start_index), dtype=np.uint8
                    )
                flags = changed_flags(net, cur)
                values[net] = cur
                mays[net] = flags
                arrs[net] = zeros_f
                trans[net] = flags.astype(float)
                final_values[net] = cur[-1]
                if recorder is not None:
                    recorder.net_may(net, flags)
                    if record_values:
                        recorder.net_values(net, cur)
                if collect_net_stats:
                    sig_sum[net] = cur.sum()
                    tog_sum[net] = flags.sum()

        group_enable_net = netlist.group_enables

        for compiled in self._cells:
            in_vals = [values[net] for net in compiled.inputs]
            in_mays = [mays[net] for net in compiled.inputs]
            out_val = logic.eval_vector(compiled.opcode, in_vals)
            net = compiled.output
            if net in fault_hooks:
                out_val = np.asarray(
                    fault_hooks[net](out_val, start_index), dtype=np.uint8
                )
            changed = changed_flags(net, out_val)
            aux = logic.aux_masks(compiled.opcode, in_vals)
            if inertial:
                out_may = changed
            else:
                out_may = logic.may_vector(
                    compiled.opcode, in_vals, in_mays, aux
                )
            if recorder is None:
                in_arrs = [arrs[net] for net in compiled.inputs]
                arrs[net] = logic.arrival_masks(
                    compiled.opcode, aux, in_arrs, compiled.delay_ns,
                    out_may,
                )
            else:
                # Value-plane pass: the recorder keeps the masks the
                # arrival rules consume; arrivals are replayed later for
                # arbitrarily many delay vectors.
                recorder.cell(compiled.position, net, out_may, aux)
                if record_values:
                    recorder.net_values(net, out_val)
            values[net] = out_val
            mays[net] = out_may
            final_values[net] = out_val[-1]

            # Switching activity: value-conditioned transition densities
            # (glitches included; disabled tri-state groups stay quiet).
            out_trans = logic.transition_vector(
                compiled.opcode,
                in_vals,
                [trans[used] for used in compiled.inputs],
                changed,
                damping=self.technology.glitch_damping,
            )
            trans[net] = out_trans
            switched += out_trans * compiled.cap

            if collect_net_stats:
                # Toggle stats use functional (zero-delay) changes, with
                # grouped cells held while their bypass enable is low.
                if (
                    compiled.group is not None
                    and compiled.group in group_enable_net
                ):
                    enable = values[group_enable_net[compiled.group]]
                    toggles, held_final = logic.tribuf_masked_toggles(
                        out_val, enable, carry_held.get(net)
                    )
                    new_held[net] = held_final
                else:
                    toggles = changed
                sig_sum[net] = out_val.sum()
                tog_sum[net] = toggles.sum()

            # Free nets whose last consumer has now run.
            for used in compiled.inputs:
                if (
                    used not in self._protected
                    and self._last_use.get(used) == compiled.position
                ):
                    values.pop(used, None)
                    mays.pop(used, None)
                    arrs.pop(used, None)
                    trans.pop(used, None)

        outputs: Dict[str, np.ndarray] = {}
        bit_arrivals: Optional[Dict[str, np.ndarray]] = (
            {} if collect_bit_arrivals else None
        )
        delays = np.zeros(n)
        for name, port in netlist.output_ports.items():
            bit_matrix = np.vstack([values[net] for net in port.nets])
            outputs[name] = logic.pack_bits(bit_matrix)[lo:]
            if recorder is None:
                port_arr = np.vstack([arrs[net] for net in port.nets])
                if collect_bit_arrivals:
                    bit_arrivals[name] = port_arr[:, lo:]
                delays = np.maximum(delays, port_arr.max(axis=0))
            elif collect_bit_arrivals:
                bit_arrivals[name] = np.zeros((port.width, n - lo))

        reported = n - lo
        result = StreamResult(
            outputs=outputs,
            delays=delays[lo:],
            switched_caps=switched[lo:],
            num_patterns=reported,
            bit_arrivals=bit_arrivals,
            signal_prob=(sig_sum / n) if collect_net_stats else None,
            toggle_counts=tog_sum if collect_net_stats else None,
        )
        return result, final_values, new_held


def _concatenate_results(
    pieces: List[StreamResult], num_nets: int
) -> StreamResult:
    """Stitch per-chunk results back into one stream-long result."""
    total = sum(piece.num_patterns for piece in pieces)
    outputs = {
        name: np.concatenate([piece.outputs[name] for piece in pieces])
        for name in pieces[0].outputs
    }
    bit_arrivals = None
    if pieces[0].bit_arrivals is not None:
        bit_arrivals = {
            name: np.concatenate(
                [piece.bit_arrivals[name] for piece in pieces], axis=1
            )
            for name in pieces[0].bit_arrivals
        }
    signal_prob = None
    toggle_counts = None
    if pieces[0].signal_prob is not None:
        signal_prob = np.zeros(num_nets)
        toggle_counts = np.zeros(num_nets)
        weight = 0
        for piece in pieces:
            # Chunk signal probabilities were averaged over the chunk's
            # simulated patterns (incl. the settling pattern of chunk 0);
            # re-weight by the simulated length.
            simulated = piece.num_patterns + (1 if weight == 0 else 0)
            signal_prob += piece.signal_prob * simulated
            toggle_counts += piece.toggle_counts
            weight += simulated
        signal_prob /= weight
    return StreamResult(
        outputs=outputs,
        delays=np.concatenate([piece.delays for piece in pieces]),
        switched_caps=np.concatenate(
            [piece.switched_caps for piece in pieces]
        ),
        num_patterns=total,
        bit_arrivals=bit_arrivals,
        signal_prob=signal_prob,
        toggle_counts=toggle_counts,
    )
