"""Numba-JIT gate kernels: the ``kernel="numba"`` backend.

The SoA kernel (:mod:`repro.timing.soa`) already turned the levelized
cell loop into a dense array program, but it still pays one numpy
dispatch per (level, opcode) bucket and materializes every intermediate
mask.  This module compiles the *same* levelized plan into two fused
``@njit(parallel=True, cache=True)`` kernels:

* :func:`_phase1_values` -- the settled-value pass, parallel over
  patterns (each pattern column walks the cells in topological order);
* :func:`_phase2_timing` -- change/may/aux/arrival/transition/switched
  computation, again parallel over pattern columns; and
* :func:`_replay_pass` -- the active-entry arrival replay over a
  recorded :class:`~repro.timing.replay.ValuePlane`, parallel over
  pattern columns with a per-block arrival workspace.

**Fallback semantics.**  numba is an optional dependency: when it is
not importable, ``kernel="numba"`` silently degrades to the SoA path
(:func:`jit_enabled` returns False and the engine dispatch falls
through), so circuits compiled with the flag stay runnable -- and
bit-identical, since both backends implement the same arithmetic.

**Pure-python validation mode.**  The kernel bodies are written in the
numba-compatible subset of Python, so they can also run *uncompiled*.
Setting the ``REPRO_JIT_PURE_PYTHON`` environment variable (or calling
:func:`force_python`) makes :func:`jit_enabled` true without numba and
routes the exact kernel code through the plain interpreter.  That is
how the equivalence suite exercises this backend's arithmetic on
machines without numba (tiny circuits only -- it is slow).

**Bit-identity contract** (asserted by ``tests/test_jit.py`` and the
cross-kernel fuzz): every per-net / per-pattern quantity -- values,
may-masks, aux masks, arrivals, transitions, delays, toggle and signal
statistics -- is bit-identical to the SoA and per-cell kernels.  The
per-element float sequences are the same IEEE ops in the same order;
only the cross-cell *sum* of switched capacitance may differ by float
association, exactly as between ``soa`` and ``percell``.

Fault hooks: cells whose output net carries a hook are evaluated on the
scalar numpy path between JIT segments (phase 1 stops at each hooked
cell so downstream cells see the faulted values); phase 2 is a pure
function of the completed value matrix, so it runs uniformly over all
cells.  Arrival replay ignores hooks entirely, like the SoA replay.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..nets.cells import (
    OP_AND2,
    OP_AND3,
    OP_BUF,
    OP_INV,
    OP_MUX2,
    OP_NAND2,
    OP_NOR2,
    OP_OR2,
    OP_OR3,
    OP_TRIBUF,
    OP_XNOR2,
    OP_XOR2,
)
from ..nets.netlist import CONST0, CONST1
from . import logic

try:  # pragma: no cover - exercised through both CI legs
    from numba import njit, prange

    HAVE_NUMBA = True
except Exception:  # pragma: no cover
    HAVE_NUMBA = False
    prange = range

    def njit(*args, **kwargs):  # type: ignore[misc]
        def wrap(fn):
            return fn

        return wrap


_FORCE_PYTHON = os.environ.get("REPRO_JIT_PURE_PYTHON", "") not in ("", "0")


def force_python(enabled: bool = True) -> bool:
    """Toggle the pure-python execution mode; returns the previous
    setting.  With it on, :func:`jit_enabled` is true even without
    numba and the kernel bodies run uncompiled."""
    global _FORCE_PYTHON
    previous = _FORCE_PYTHON
    _FORCE_PYTHON = bool(enabled)
    return previous


def jit_enabled() -> bool:
    """Whether the ``numba`` kernel path is runnable (numba importable,
    or pure-python mode forced).  When False the engine silently falls
    back to the SoA kernel."""
    return HAVE_NUMBA or _FORCE_PYTHON


def _fn(dispatcher):
    """Resolve a kernel: the compiled dispatcher, or its original
    Python function in pure-python mode."""
    if _FORCE_PYTHON and hasattr(dispatcher, "py_func"):
        return dispatcher.py_func
    return dispatcher


# Family codes for branch dispatch inside the kernels (numba cannot
# consult the opcode dicts of :mod:`repro.timing.logic`).
_FAM_BUF = 0
_FAM_INV = 1
_FAM_XOR = 2
_FAM_XNOR = 3
_FAM_CTRL = 4  # AND2/OR2/NAND2/NOR2/AND3/OR3 via (ctrl value, invert)
_FAM_MUX = 5
_FAM_TRI = 6

_FAMILY = {
    OP_BUF: _FAM_BUF,
    OP_INV: _FAM_INV,
    OP_XOR2: _FAM_XOR,
    OP_XNOR2: _FAM_XNOR,
    OP_AND2: _FAM_CTRL,
    OP_AND3: _FAM_CTRL,
    OP_NAND2: _FAM_CTRL,
    OP_OR2: _FAM_CTRL,
    OP_OR3: _FAM_CTRL,
    OP_NOR2: _FAM_CTRL,
    OP_MUX2: _FAM_MUX,
    OP_TRIBUF: _FAM_TRI,
}


class JitPlan:
    """Flat per-cell arrays of one compiled circuit, in levelized
    (topological) order -- the structure both JIT kernels walk."""

    __slots__ = (
        "fam",
        "ctrl",
        "invert",
        "npins",
        "pins",
        "outs",
        "delays",
        "fresh",
        "cell_index",
        "caps",
        "aux_offsets",
        "hooked_positions",
        "grouped",
        "src_nets",
        "num_cells",
        "num_aux",
    )

    def __init__(self, circuit):
        cells = circuit._cells
        count = len(cells)
        self.num_cells = count
        self.fam = np.zeros(count, dtype=np.int64)
        self.ctrl = np.zeros(count, dtype=np.uint8)
        self.invert = np.zeros(count, dtype=np.uint8)
        self.npins = np.zeros(count, dtype=np.int64)
        self.pins = np.full((count, 3), -1, dtype=np.int64)
        self.outs = np.zeros(count, dtype=np.int64)
        self.delays = np.zeros(count)
        self.fresh = np.zeros(count)
        self.cell_index = np.zeros(count, dtype=np.int64)
        self.caps = np.zeros(count)
        aux_counts = np.zeros(count, dtype=np.int64)
        hooked = []
        for i, compiled in enumerate(cells):
            fam = _FAMILY[compiled.opcode]
            self.fam[i] = fam
            if fam == _FAM_CTRL:
                self.ctrl[i] = logic.CONTROLLING_VALUE[compiled.opcode]
                aux_counts[i] = len(compiled.inputs)
            elif fam in (_FAM_MUX, _FAM_TRI):
                aux_counts[i] = 1
            if compiled.opcode in logic.INVERTING:
                self.invert[i] = 1
            self.npins[i] = len(compiled.inputs)
            for q, pin in enumerate(compiled.inputs):
                self.pins[i, q] = pin
            self.outs[i] = compiled.output
            self.delays[i] = compiled.delay_ns
            self.fresh[i] = compiled.fresh_delay_ns
            self.cell_index[i] = compiled.index
            self.caps[i] = compiled.cap
            if compiled.output in circuit.fault_hooks:
                hooked.append(i)
        self.aux_offsets = np.zeros(count + 1, dtype=np.int64)
        np.cumsum(aux_counts, out=self.aux_offsets[1:])
        self.num_aux = int(self.aux_offsets[-1])
        self.hooked_positions = hooked
        group_enable = circuit.netlist.group_enables
        self.grouped: List[Tuple[int, int]] = [
            (c.output, group_enable[c.group])
            for c in cells
            if c.group is not None and c.group in group_enable
        ]
        self.src_nets = np.array(
            [
                net
                for port in circuit.netlist.input_ports.values()
                for net in port.nets
            ],
            dtype=np.int64,
        )


def get_plan(circuit) -> JitPlan:
    """The circuit's cached :class:`JitPlan` (built on first use)."""
    plan = getattr(circuit, "_jit_plan", None)
    if plan is None:
        plan = JitPlan(circuit)
        circuit._jit_plan = plan
    return plan


# ----------------------------------------------------------------------
# Kernels.  All three are written in the numba-compatible Python subset
# and run either compiled (numba present) or interpreted (pure-python
# mode); the arithmetic per element is identical to the numpy kernels
# in repro.timing.logic / repro.timing.replay.
# ----------------------------------------------------------------------


@njit(parallel=True, cache=True)
def _phase1_values(VT, fam, ctrl, invert, npins, pins, outs, start, stop):
    """Settled values for cells ``[start, stop)``, all pattern columns.

    ``VT`` is the transposed ``(n, num_nets)`` uint8 value matrix --
    each column's working set is one contiguous row.  Patterns are
    independent, so the outer loop parallelizes over them; within a
    pattern, cells evaluate in topological order.
    """
    n = VT.shape[0]
    for j in prange(n):
        row = VT[j]
        for i in range(start, stop):
            f = fam[i]
            a = row[pins[i, 0]]
            if f == 0 or f == 6:  # BUF / transparent TRIBUF
                v = a
            elif f == 1:  # INV
                v = a ^ 1
            elif f == 2:  # XOR2
                v = a ^ row[pins[i, 1]]
            elif f == 3:  # XNOR2
                v = (a ^ row[pins[i, 1]]) ^ 1
            elif f == 4:  # controlled gate family
                if ctrl[i] == 0:
                    v = a & row[pins[i, 1]]
                    if npins[i] == 3:
                        v = v & row[pins[i, 2]]
                else:
                    v = a | row[pins[i, 1]]
                    if npins[i] == 3:
                        v = v | row[pins[i, 2]]
                if invert[i] == 1:
                    v = v ^ 1
            else:  # MUX2
                if row[pins[i, 2]] != 0:
                    v = row[pins[i, 1]]
                else:
                    v = a
            row[outs[i]] = np.uint8(v)


@njit(parallel=True, cache=True)
def _phase2_timing(
    VT,
    MT,
    CHT,
    AT,
    AUXT,
    carry,
    has_carry,
    inertial,
    record,
    damping,
    fam,
    ctrl,
    invert,
    npins,
    pins,
    outs,
    delays,
    caps,
    aux_off,
    src_nets,
    switched,
):
    """Change / may / aux / arrival / transition pass over the complete
    value matrix.

    Runs after (and independently of) the value pass: every quantity
    here is a pure function of settled values, so hooked cells need no
    special casing -- their rows of ``VT`` already hold faulted values.
    Each pattern column is independent; per column the cells walk in
    topological order with a local per-net transition-density vector.
    Elementwise arithmetic mirrors ``logic.may_vector`` /
    ``logic.arrival_masks`` / ``logic.transition_vector`` exactly.
    """
    n, num_nets = VT.shape
    num_cells = fam.shape[0]
    for j in prange(n):
        vrow = VT[j]
        mrow = MT[j]
        chrow = CHT[j]
        trans = np.zeros(num_nets)
        # Primary-input nets: change flags seed may/transition state.
        for s in range(src_nets.shape[0]):
            net = src_nets[s]
            if j == 0:
                ch = has_carry and vrow[net] != carry[net]
            else:
                ch = vrow[net] != VT[j - 1, net]
            chrow[net] = ch
            mrow[net] = ch
            if ch:
                trans[net] = 1.0
        sw = 0.0
        for i in range(num_cells):
            out = outs[i]
            f = fam[i]
            p0 = pins[i, 0]
            if j == 0:
                ch = has_carry and vrow[out] != carry[out]
            else:
                ch = vrow[out] != VT[j - 1, out]

            base = 0.0
            if f == 0 or f == 1:  # BUF / INV
                m = mrow[p0]
                if not record:
                    base = AT[j, p0]
                t = trans[p0]
            elif f == 2 or f == 3:  # XOR2 / XNOR2
                p1 = pins[i, 1]
                m = mrow[p0] or mrow[p1]
                if not record:
                    a0 = AT[j, p0]
                    a1 = AT[j, p1]
                    base = a0 if a0 >= a1 else a1
                t = trans[p0] + trans[p1]
            elif f == 4:  # controlled gate family
                cv = ctrl[i]
                stable_ctrl = False
                any_may = False
                has_ctrl = False
                ctrl_arr = np.inf
                last = 0.0
                for q in range(npins[i]):
                    pq = pins[i, q]
                    cq = vrow[pq] == cv
                    mq = mrow[pq]
                    if cq and not mq:
                        stable_ctrl = True
                    if mq:
                        any_may = True
                    if not record:
                        aq = AT[j, pq]
                        if cq:
                            has_ctrl = True
                            if aq < ctrl_arr:
                                ctrl_arr = aq
                        if aq > last:
                            last = aq
                m = any_may and not stable_ctrl
                if not record:
                    base = ctrl_arr if has_ctrl else last
                p1 = pins[i, 1]
                if npins[i] == 2:
                    if cv == 0:
                        s0 = 1.0 if vrow[p1] != 0 else 0.0
                        s1 = 1.0 if vrow[p0] != 0 else 0.0
                    else:
                        s0 = 1.0 if vrow[p1] == 0 else 0.0
                        s1 = 1.0 if vrow[p0] == 0 else 0.0
                    t = trans[p0] * s0 + trans[p1] * s1
                else:
                    p2 = pins[i, 2]
                    if cv == 0:
                        s0 = 1.0 if (vrow[p1] & vrow[p2]) != 0 else 0.0
                        s1 = 1.0 if (vrow[p0] & vrow[p2]) != 0 else 0.0
                        s2 = 1.0 if (vrow[p0] & vrow[p1]) != 0 else 0.0
                    else:
                        s0 = 1.0 if (vrow[p1] | vrow[p2]) == 0 else 0.0
                        s1 = 1.0 if (vrow[p0] | vrow[p2]) == 0 else 0.0
                        s2 = 1.0 if (vrow[p0] | vrow[p1]) == 0 else 0.0
                    t = (
                        trans[p0] * s0
                        + trans[p1] * s1
                        + trans[p2] * s2
                    )
            elif f == 5:  # MUX2
                p1 = pins[i, 1]
                p2 = pins[i, 2]
                sel = vrow[p2] != 0
                m0 = mrow[p0]
                m1 = mrow[p1]
                pinned = (
                    (not m0) and (not m1) and vrow[p0] == vrow[p1]
                )
                chosen_may = m1 if sel else m0
                m = (mrow[p2] and not pinned) or chosen_may
                if not record:
                    chosen = AT[j, p1] if sel else AT[j, p0]
                    a2 = AT[j, p2]
                    base = a2 if a2 >= chosen else chosen
                tsel = trans[p1] if sel else trans[p0]
                t = tsel + trans[p2] * (
                    1.0 if vrow[p0] != vrow[p1] else 0.0
                )
            else:  # TRIBUF
                p1 = pins[i, 1]
                en = vrow[p1] != 0
                if mrow[p1]:
                    m = True
                else:
                    m = en and mrow[p0]
                if not record:
                    a0 = AT[j, p0] if en else 0.0
                    a1 = AT[j, p1]
                    base = a1 if a1 >= a0 else a0
                t = (
                    trans[p0] * (1.0 if en else 0.0)
                    + trans[p1] * 0.5
                )

            chrow[out] = ch
            if inertial:
                m = ch
            mrow[out] = m
            if record:
                off = aux_off[i]
                if f == 4:
                    cv = ctrl[i]
                    for q in range(npins[i]):
                        AUXT[j, off + q] = (
                            1 if vrow[pins[i, q]] == ctrl[i] else 0
                        )
                elif f == 5:
                    AUXT[j, off] = 1 if vrow[pins[i, 2]] != 0 else 0
                elif f == 6:
                    AUXT[j, off] = 1 if vrow[pins[i, 1]] != 0 else 0
            else:
                AT[j, out] = base + delays[i] if m else 0.0
            ot = t * damping
            chf = 1.0 if ch else 0.0
            if ot < chf:
                ot = chf
            trans[out] = ot
            sw += ot * caps[i]
        switched[j] = sw


@njit(parallel=True, cache=True)
def _replay_pass(
    MAY,
    AUXM,
    scales,
    fam,
    npins,
    pins,
    outs,
    fresh,
    cell_index,
    aux_off,
    port_nets,
    dch,
    bch,
    collect_bits,
    num_nets,
    block,
):
    """Active-entry arrival replay for one pattern chunk, all corners.

    ``MAY`` / ``AUXM`` are the chunk's unpacked plane masks laid out
    ``(c, num_nets)`` / ``(c, num_aux)``.  Pattern columns are
    independent; blocks of columns share one ``(num_nets, k)`` arrival
    workspace whose written rows are re-zeroed after each column, so
    quiet entries stay exactly the reference kernel's
    ``where(may, .., 0.0)`` zeros.  Per active entry the delay is
    ``fresh * scale[corner, cell]`` -- the engine's per-cell delay at
    every corner, bit for bit.
    """
    c = MAY.shape[0]
    k = scales.shape[0]
    num_cells = fam.shape[0]
    nblocks = (c + block - 1) // block
    for blk in prange(nblocks):
        arr = np.zeros((num_nets, k))
        j0 = blk * block
        j1 = j0 + block
        if j1 > c:
            j1 = c
        for j in range(j0, j1):
            mayrow = MAY[j]
            for i in range(num_cells):
                out = outs[i]
                if not mayrow[out]:
                    continue
                f = fam[i]
                p0 = pins[i, 0]
                off = aux_off[i]
                for kk in range(k):
                    d = fresh[i] * scales[kk, cell_index[i]]
                    if f == 0 or f == 1:
                        base = arr[p0, kk]
                    elif f == 2 or f == 3:
                        a0 = arr[p0, kk]
                        a1 = arr[pins[i, 1], kk]
                        base = a0 if a0 >= a1 else a1
                    elif f == 4:
                        has_ctrl = False
                        ctrl_arr = np.inf
                        last = 0.0
                        for q in range(npins[i]):
                            aq = arr[pins[i, q], kk]
                            if AUXM[j, off + q]:
                                has_ctrl = True
                                if aq < ctrl_arr:
                                    ctrl_arr = aq
                            if aq > last:
                                last = aq
                        base = ctrl_arr if has_ctrl else last
                    elif f == 5:
                        if AUXM[j, off]:
                            chosen = arr[pins[i, 1], kk]
                        else:
                            chosen = arr[p0, kk]
                        a2 = arr[pins[i, 2], kk]
                        base = a2 if a2 >= chosen else chosen
                    else:
                        a0 = arr[p0, kk] if AUXM[j, off] else 0.0
                        a1 = arr[pins[i, 1], kk]
                        base = a1 if a1 >= a0 else a0
                    arr[out, kk] = base + d
            for b in range(port_nets.shape[0]):
                net = port_nets[b]
                for kk in range(k):
                    v = arr[net, kk]
                    if collect_bits:
                        bch[b, kk, j] = v
                    if v > dch[kk, j]:
                        dch[kk, j] = v
            # Targeted re-zero: only rows this column wrote.
            for i in range(num_cells):
                if mayrow[outs[i]]:
                    for kk in range(k):
                        arr[outs[i], kk] = 0.0


# ----------------------------------------------------------------------
# Engine-facing wrappers.
# ----------------------------------------------------------------------


def run_chunk(
    circuit,
    arrays: Dict[str, np.ndarray],
    carry_values: Optional[np.ndarray],
    carry_held: Dict[int, int],
    collect_bit_arrivals: bool,
    collect_net_stats: bool,
    drop_first: bool,
    start_index: int = -1,
    recorder=None,
):
    """JIT chunk runner: same contract (and results) as
    ``CompiledCircuit._run_chunk_soa``.

    The wrapper keeps everything the JIT subset cannot express on the
    numpy side: port unpacking, fault hooks (input-port hooks before
    phase 1, hooked cells as scalar segments inside it), value-plane
    recording, grouped tri-state toggle fixups, and result assembly.
    """
    from .engine import StreamResult

    plan = get_plan(circuit)
    fault_hooks = circuit.fault_hooks
    netlist = circuit.netlist
    n = next(iter(arrays.values())).shape[0]
    num_nets = circuit.num_nets
    inertial = circuit.mode == "inertial"
    damping = circuit.technology.glitch_damping
    lo = 1 if drop_first else 0
    if recorder is not None:
        recorder.begin(start_index + lo, lo)

    VT = np.zeros((n, num_nets), dtype=np.uint8)
    VT[:, CONST1] = 1

    # Primary inputs: expand port words into per-net bit columns (with
    # input-port hooks applied before any cell evaluates).
    for name, port in netlist.input_ports.items():
        bits = logic.unpack_bits(arrays[name], port.width)
        for lane, net in enumerate(port.nets):
            cur = bits[lane]
            if net in fault_hooks:
                cur = np.asarray(
                    fault_hooks[net](cur, start_index), dtype=np.uint8
                )
            VT[:, net] = cur

    # Phase 1: values.  Hooked cells split the topological walk into
    # JIT segments; each hooked cell evaluates on the scalar numpy path
    # and its hook rewrites the column before downstream segments run.
    phase1 = _fn(_phase1_values)
    pos = 0
    for h in plan.hooked_positions:
        if h > pos:
            phase1(
                VT, plan.fam, plan.ctrl, plan.invert, plan.npins,
                plan.pins, plan.outs, pos, h,
            )
        compiled = circuit._cells[h]
        out_val = logic.eval_vector(
            compiled.opcode, [VT[:, p] for p in compiled.inputs]
        )
        VT[:, compiled.output] = np.asarray(
            fault_hooks[compiled.output](out_val, start_index),
            dtype=np.uint8,
        )
        pos = h + 1
    if pos < plan.num_cells:
        phase1(
            VT, plan.fam, plan.ctrl, plan.invert, plan.npins,
            plan.pins, plan.outs, pos, plan.num_cells,
        )

    # Phase 2: timing.  A pure function of the completed value matrix,
    # so hooked cells run uniformly here.
    record = recorder is not None
    MT = np.zeros((n, num_nets), dtype=np.bool_)
    CHT = np.zeros((n, num_nets), dtype=np.bool_)
    AT = (
        np.zeros((1, 1)) if record else np.zeros((n, num_nets))
    )
    AUXT = (
        np.zeros((n, max(1, plan.num_aux)), dtype=np.uint8)
        if record
        else np.zeros((1, 1), dtype=np.uint8)
    )
    if carry_values is None:
        carry = np.zeros(num_nets, dtype=np.uint8)
        has_carry = False
    else:
        carry = np.asarray(carry_values, dtype=np.uint8)
        has_carry = True
    switched = np.zeros(n)
    _fn(_phase2_timing)(
        VT, MT, CHT, AT, AUXT, carry, has_carry, inertial, record,
        damping, plan.fam, plan.ctrl, plan.invert, plan.npins,
        plan.pins, plan.outs, plan.delays, plan.caps,
        plan.aux_offsets, plan.src_nets, switched,
    )

    if record:
        byte = recorder._byte
        packed = np.packbits(MT.T[:, lo:], axis=1)
        width = packed.shape[1]
        recorder.may[:, byte:byte + width] = packed
        if plan.num_aux:
            packed = np.packbits(AUXT.T[:plan.num_aux, lo:], axis=1)
            recorder.aux[:, byte:byte + width] = packed

    sig_sum = None
    tog_sum = None
    new_held: Dict[int, int] = {}
    if collect_net_stats:
        sig_sum = VT.sum(axis=0).astype(float)
        tog_sum = CHT.sum(axis=0).astype(float)
        # Bypass-group cells: replace the functional toggle count with
        # the tri-state-hold count (order-independent per-net fixup,
        # covering bucketed and hooked grouped cells alike).
        for net, enable_net in plan.grouped:
            toggles, held_final = logic.tribuf_masked_toggles(
                VT[:, net], VT[:, enable_net], carry_held.get(net)
            )
            new_held[net] = held_final
            tog_sum[net] = toggles.sum()

    final_values = VT[-1].copy()
    final_values[CONST0] = 0
    final_values[CONST1] = 0

    outputs: Dict[str, np.ndarray] = {}
    bit_arrivals: Optional[Dict[str, np.ndarray]] = (
        {} if collect_bit_arrivals else None
    )
    delays = np.zeros(n)
    for name, port in netlist.output_ports.items():
        nets = list(port.nets)
        outputs[name] = logic.pack_bits(VT[:, nets].T)[lo:]
        if recorder is None:
            port_arr = AT[:, nets].T
            if collect_bit_arrivals:
                bit_arrivals[name] = port_arr[:, lo:]
            delays = np.maximum(delays, port_arr.max(axis=0))
        elif collect_bit_arrivals:
            bit_arrivals[name] = np.zeros((port.width, n - lo))

    reported = n - lo
    result = StreamResult(
        outputs=outputs,
        delays=delays[lo:],
        switched_caps=switched[lo:],
        num_patterns=reported,
        bit_arrivals=bit_arrivals,
        signal_prob=(sig_sum / n) if collect_net_stats else None,
        toggle_counts=tog_sum if collect_net_stats else None,
    )
    return result, final_values, new_held


#: Pattern columns per replay workspace block (one ``(num_nets, k)``
#: arrival matrix is shared, with targeted re-zeroing, per block).
REPLAY_BLOCK = 64


def replay(replayer, scales: np.ndarray, k: int, n: int,
           collect_bit_arrivals: bool):
    """JIT arrival replay: same contract (and results) as
    ``ArrivalReplay._replay_soa``.  Chunks the pattern axis exactly
    like the SoA replay (replay carries no cross-pattern state, so
    chunking is exact) and unpacks the plane's packed masks per chunk.
    """
    from .replay import _replay_chunk_size

    circuit = replayer.circuit
    plane = replayer.plane
    plan = get_plan(circuit)
    num_nets = circuit.num_nets
    chunk = _replay_chunk_size(num_nets, k)
    ports = circuit.netlist.output_ports
    port_nets = np.array(
        [net for port in ports.values() for net in port.nets],
        dtype=np.int64,
    )
    delays = np.zeros((k, n))
    total_bits = int(port_nets.shape[0])
    bit_flat = (
        np.zeros((total_bits, k, n))
        if collect_bit_arrivals
        else np.zeros((1, 1, 1))
    )
    kernel = _fn(_replay_pass)
    for start in range(0, n, chunk):
        stop = min(start + chunk, n)
        c = stop - start
        byte0 = start // 8
        byte1 = (stop + 7) // 8
        may = np.ascontiguousarray(
            np.unpackbits(
                plane.may_packed[:, byte0:byte1], axis=1, count=c
            ).view(bool).T
        )
        if plan.num_aux:
            auxm = np.ascontiguousarray(
                np.unpackbits(
                    plane.aux_packed[:, byte0:byte1], axis=1, count=c
                ).view(bool).T
            )
        else:
            auxm = np.zeros((c, 1), dtype=np.bool_)
        dch = delays[:, start:stop]
        bch = (
            bit_flat[:, :, start:stop]
            if collect_bit_arrivals
            else bit_flat
        )
        kernel(
            may, auxm, scales, plan.fam, plan.npins, plan.pins,
            plan.outs, plan.fresh, plan.cell_index,
            plane.aux_offsets, port_nets, dch, bch,
            collect_bit_arrivals, num_nets, REPLAY_BLOCK,
        )

    bit_arrivals: Optional[Dict[str, np.ndarray]] = None
    if collect_bit_arrivals:
        bit_arrivals = {}
        b0 = 0
        for name, port in ports.items():
            bit_arrivals[name] = bit_flat[b0:b0 + port.width]
            b0 += port.width
    return delays, bit_arrivals


def warmup() -> bool:
    """Force-compile all three kernels on toy inputs (a no-op without
    numba).  ``cache=True`` persists the compilation across processes;
    benchmarks call this so timed sections never include compile time.
    Returns whether compiled kernels are in use."""
    if not HAVE_NUMBA or _FORCE_PYTHON:
        return False
    # Two cells -- an INV and an AND2 -- over 8 patterns and 5 nets,
    # enough to instantiate every kernel signature once.
    fam = np.array([1, 4], dtype=np.int64)
    ctrl = np.array([0, 0], dtype=np.uint8)
    invert = np.array([1, 0], dtype=np.uint8)
    npins = np.array([1, 2], dtype=np.int64)
    pins = np.array([[2, -1, -1], [2, 3, -1]], dtype=np.int64)
    outs = np.array([3, 4], dtype=np.int64)
    delays = np.ones(2)
    caps = np.ones(2)
    aux_off = np.array([0, 0, 2], dtype=np.int64)
    src = np.array([2], dtype=np.int64)
    VT = np.zeros((8, 5), dtype=np.uint8)
    VT[:, CONST1] = 1
    VT[::2, 2] = 1
    _phase1_values(VT, fam, ctrl, invert, npins, pins, outs, 0, 2)
    MT = np.zeros((8, 5), dtype=np.bool_)
    CHT = np.zeros((8, 5), dtype=np.bool_)
    AT = np.zeros((8, 5))
    AUXT = np.zeros((8, 2), dtype=np.uint8)
    carry = np.zeros(5, dtype=np.uint8)
    switched = np.zeros(8)
    _phase2_timing(
        VT, MT, CHT, AT, AUXT, carry, False, True, False, 1.0,
        fam, ctrl, invert, npins, pins, outs, delays, caps, aux_off,
        src, switched,
    )
    _phase2_timing(
        VT, MT, CHT, AT, AUXT, carry, False, True, True, 1.0,
        fam, ctrl, invert, npins, pins, outs, delays, caps, aux_off,
        src, switched,
    )
    may = np.ones((8, 5), dtype=np.bool_)
    auxm = np.ones((8, 2), dtype=np.bool_)
    scales = np.ones((2, 2))
    dch = np.zeros((2, 8))
    bch = np.zeros((1, 2, 8))
    port_nets = np.array([4], dtype=np.int64)
    _replay_pass(
        may, auxm, scales, fam, npins, pins, outs, delays,
        np.array([0, 1], dtype=np.int64), aux_off, port_nets,
        dch, bch, True, 5, REPLAY_BLOCK,
    )
    return True
