"""Levelized structure-of-arrays (SoA) execution plan.

The per-cell stream loop in :mod:`repro.timing.engine` pays a fixed
Python + numpy-dispatch cost per *cell*; for a 16x16 bypassing array
that is thousands of tiny allocations per chunk.  This module compiles
the levelized cell list into a **bucketed SoA plan** evaluated a whole
(level, opcode) bucket at a time:

* cells are grouped into topological **levels** (a cell's level is one
  more than the deepest level among its driver cells; primary inputs
  and constant rails sit below level 0), so every bucket's inputs were
  fully produced by earlier levels and all cells inside a bucket are
  independent;
* within a level, cells are **bucketed by opcode** into flat index
  arrays -- a ``(num_pins, B)`` input-net gather matrix, a ``(B,)``
  output-net scatter vector, and per-cell delay / capacitance / cell-
  index columns -- so one batched ``gather -> logic kernel -> scatter``
  evaluates all ``B`` cells against a single ``(num_nets, num_words)``
  value matrix.

All cells sharing an opcode have the same pin count (opcodes encode the
cell arity), which is what makes the rectangular gather matrix valid.

**Hook fallback rule**: a cell whose *output* net carries a fault hook
falls out of its bucket into a per-level scalar list; the engine runs
those cells through the original per-cell path (hooks are opaque
callables operating on one net's stream), interleaved at the right
level so downstream buckets observe the faulted values.  Input-port
hooks need no fallback -- they rewrite the port rows before any bucket
runs.  Arrival *replay* ignores hooks entirely (the recorded plane
already contains the faulted masks), so replay uses the plan built with
an empty hook set.

Bucket evaluation reuses the exact elementwise kernels of
:mod:`repro.timing.logic` on stacked ``(B, n)`` rows, so every per-cell
float/int op sequence is identical to the scalar path -- bucketing
changes the iteration order, not the arithmetic.  (The only aggregate
that sums *across* cells, switched capacitance, is accumulated
per-bucket and may therefore differ from the per-cell path by float
association; everything per-net/per-pattern is bit-identical.)
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

import numpy as np

__all__ = ["LevelBucket", "SoAPlan", "build_soa_plan"]


@dataclasses.dataclass
class LevelBucket:
    """All same-opcode cells of one topological level.

    Attributes:
        opcode: The shared cell opcode.
        positions: ``(B,)`` levelized cell positions (aux-offset axis).
        pins: ``(num_pins, B)`` input-net gather indices.
        outputs: ``(B,)`` output-net scatter indices (each net has one
            driver, so scatters never collide).
        cell_indices: ``(B,)`` netlist cell indices (delay-scale axis).
        fresh_delays: ``(B,)`` unscaled cell delays (ns).
        delays: ``(B,)`` compiled (delay-scaled) cell delays (ns).
        caps: ``(B,)`` per-cell load capacitances.
    """

    opcode: int
    positions: np.ndarray
    pins: np.ndarray
    outputs: np.ndarray
    cell_indices: np.ndarray
    fresh_delays: np.ndarray
    delays: np.ndarray
    caps: np.ndarray

    @property
    def size(self) -> int:
        return int(self.outputs.shape[0])


@dataclasses.dataclass
class SoAPlan:
    """Bucketed levels plus the scalar-fallback cells per level.

    ``levels[d]`` holds the opcode buckets of level ``d`` (insertion
    order: first-seen opcode first, cells inside a bucket in levelized
    order); ``scalar_levels[d]`` the hooked-output cells evaluated
    through the per-cell path after the level's buckets.  ``grouped``
    lists ``(output net, enable net)`` pairs of bucketed bypass-group
    cells, for the tri-state-hold toggle fixup (scalar cells handle
    their own group stats inline, exactly like the per-cell path).
    """

    levels: List[List[LevelBucket]]
    scalar_levels: List[List]
    grouped: List[Tuple[int, int]]
    num_levels: int
    num_bucketed: int
    num_scalar: int


def build_soa_plan(cells, netlist, hooked_nets) -> SoAPlan:
    """Compile levelized ``_CompiledCell`` s into an :class:`SoAPlan`.

    Args:
        cells: The circuit's levelized compiled cells (topological
            order -- every driver precedes its consumers).
        netlist: The owning netlist (supplies bypass-group enables).
        hooked_nets: Net ids carrying fault hooks; cells driving one of
            them become scalar-fallback cells.
    """
    level_of_net: Dict[int, int] = {}
    cell_levels = []
    num_levels = 0
    for compiled in cells:
        level = 0
        for pin in compiled.inputs:
            depth = level_of_net.get(pin, -1)
            if depth >= level:
                level = depth + 1
        level_of_net[compiled.output] = level
        cell_levels.append(level)
        if level + 1 > num_levels:
            num_levels = level + 1

    buckets: List[Dict[int, List]] = [{} for _ in range(num_levels)]
    scalar_levels: List[List] = [[] for _ in range(num_levels)]
    grouped: List[Tuple[int, int]] = []
    group_enable = netlist.group_enables
    num_scalar = 0
    for compiled, level in zip(cells, cell_levels):
        if compiled.output in hooked_nets:
            scalar_levels[level].append(compiled)
            num_scalar += 1
            continue
        buckets[level].setdefault(compiled.opcode, []).append(compiled)
        if compiled.group is not None and compiled.group in group_enable:
            grouped.append(
                (compiled.output, group_enable[compiled.group])
            )

    levels: List[List[LevelBucket]] = []
    for per_opcode in buckets:
        packed = []
        for opcode, members in per_opcode.items():
            pins = np.array(
                [c.inputs for c in members], dtype=np.intp
            ).T.copy()
            packed.append(
                LevelBucket(
                    opcode=opcode,
                    positions=np.array(
                        [c.position for c in members], dtype=np.intp
                    ),
                    pins=pins,
                    outputs=np.array(
                        [c.output for c in members], dtype=np.intp
                    ),
                    cell_indices=np.array(
                        [c.index for c in members], dtype=np.intp
                    ),
                    fresh_delays=np.array(
                        [c.fresh_delay_ns for c in members], dtype=float
                    ),
                    delays=np.array(
                        [c.delay_ns for c in members], dtype=float
                    ),
                    caps=np.array(
                        [c.cap for c in members], dtype=float
                    ),
                )
            )
        levels.append(packed)

    return SoAPlan(
        levels=levels,
        scalar_levels=scalar_levels,
        grouped=grouped,
        num_levels=num_levels,
        num_bucketed=len(cells) - num_scalar,
        num_scalar=num_scalar,
    )
