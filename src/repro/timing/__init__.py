"""Timing, logic and power analysis substrate.

Three engines share the cell semantics defined in
:mod:`repro.timing.logic`:

* :class:`repro.timing.engine.CompiledCircuit` -- the workhorse: a
  levelized, numpy-vectorized two-vector simulator that computes settled
  values, per-pattern floating-mode path delays, switching activity and
  signal probabilities for a whole pattern stream at once;
* :mod:`repro.timing.event` -- an event-driven transport-delay reference
  simulator used to cross-check the floating-mode engine;
* :mod:`repro.timing.sta` -- static (value-independent) worst-case timing
  and critical-path extraction.

:mod:`repro.timing.power` converts switching activity into the paper's
power / energy-delay-product metrics.
"""

from .engine import CompiledCircuit, StreamResult
from .event import EventSimulator, EventResult
from .sta import StaticTiming, critical_path
from .power import PowerReport, power_report
from .variation import ProcessVariation, YieldReport, yield_analysis
from .vcd import render_vcd, write_vcd

__all__ = [
    "CompiledCircuit",
    "StreamResult",
    "EventSimulator",
    "EventResult",
    "ProcessVariation",
    "StaticTiming",
    "YieldReport",
    "critical_path",
    "PowerReport",
    "power_report",
    "render_vcd",
    "write_vcd",
    "yield_analysis",
]
