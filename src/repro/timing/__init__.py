"""Timing, logic and power analysis substrate.

Three engines share the cell semantics defined in
:mod:`repro.timing.logic`:

* :class:`repro.timing.engine.CompiledCircuit` -- the workhorse: a
  levelized, numpy-vectorized two-vector simulator that computes settled
  values, per-pattern floating-mode path delays, switching activity and
  signal probabilities for a whole pattern stream at once;
* :mod:`repro.timing.event` -- an event-driven transport-delay reference
  simulator used to cross-check the floating-mode engine;
* :mod:`repro.timing.sta` -- static (value-independent) worst-case timing
  and critical-path extraction.

The stream engine additionally factors into two planes (see
:mod:`repro.timing.replay`): a delay-independent :class:`ValuePlane`
computed once per stimulus (cacheable across process runs via
:class:`repro.timing.value_cache.ValuePlaneCache`) and an
:class:`ArrivalReplay` pass that re-times it for one or many per-cell
delay-scale vectors at once -- the fast path under every lifetime /
variation sweep.

:mod:`repro.timing.power` converts switching activity into the paper's
power / energy-delay-product metrics.
"""

from .delta import (
    DeltaBase,
    DeltaPlane,
    DeltaResult,
    NetlistDelta,
    build_delta_plane,
    diff_netlists,
    evaluate_full,
    patch_compiled,
    replay_delta,
)
from .engine import (
    KERNELS,
    CompiledCircuit,
    StreamResult,
    auto_chunk_size,
    normalize_kernel,
)
from .event import EventSimulator, EventResult
from .fold import FoldPlan, fold_stimulus, unfold_stream
from .replay import (
    ArrivalReplay,
    ReplayResult,
    ValuePlane,
    build_value_plane,
)
from .soa import SoAPlan, build_soa_plan
from .sta import StaticTiming, critical_path
from .power import PowerReport, power_report
from .value_cache import ValuePlaneCache, plane_cache_key
from .variation import ProcessVariation, YieldReport, yield_analysis
from .vcd import render_vcd, write_vcd

__all__ = [
    "ArrivalReplay",
    "CompiledCircuit",
    "DeltaBase",
    "DeltaPlane",
    "DeltaResult",
    "KERNELS",
    "NetlistDelta",
    "normalize_kernel",
    "FoldPlan",
    "StreamResult",
    "EventSimulator",
    "EventResult",
    "ProcessVariation",
    "ReplayResult",
    "SoAPlan",
    "StaticTiming",
    "ValuePlane",
    "ValuePlaneCache",
    "YieldReport",
    "auto_chunk_size",
    "build_delta_plane",
    "build_soa_plan",
    "build_value_plane",
    "critical_path",
    "diff_netlists",
    "evaluate_full",
    "patch_compiled",
    "replay_delta",
    "fold_stimulus",
    "plane_cache_key",
    "unfold_stream",
    "PowerReport",
    "power_report",
    "render_vcd",
    "write_vcd",
    "yield_analysis",
]
