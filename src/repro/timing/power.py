"""Power and energy-delay-product model (paper Figs. 26-27, panels b/c).

Two components, both tied to the technology card:

* **dynamic**: ``E = 0.5 * Vdd^2 * C_unit * switched_caps`` per operation,
  with switching inside bypassed full-adder groups already frozen by the
  stream engine -- this is where the bypassing multipliers' power win over
  the plain array multiplier comes from;
* **leakage**: subthreshold current falls exponentially with the BTI
  threshold-voltage shift, which is why the paper's measured power
  *decreases* year over year while delay increases.

Sequential overhead (input flip-flops, Razor flip-flops at the outputs)
enters as per-cycle flip-flop energy so the comparison between plain and
adaptive designs is fair, exactly as Section IV-E describes.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional

from ..config import DEFAULT_TECHNOLOGY, Technology
from ..errors import SimulationError
from ..nets.area import transistor_count
from ..nets.cells import DFF_TRANSISTORS, RAZOR_FF_TRANSISTORS
from ..nets.netlist import Netlist
from .engine import StreamResult

#: Energy per clocked flip-flop bit per cycle, in unit caps switched
#: (clock load + internal nodes; a DFF toggles its clock network every
#: cycle regardless of data activity).
DFF_CAPS_PER_CYCLE = 1.6
#: Razor flip-flops add the shadow latch and comparator to the clock load.
RAZOR_CAPS_PER_CYCLE = 2.9


@dataclasses.dataclass(frozen=True)
class PowerReport:
    """Average power and energy figures for one design at one age."""

    name: str
    dynamic_watts: float
    leakage_watts: float
    sequential_watts: float
    energy_per_op_joules: float
    avg_latency_ns: float

    @property
    def total_watts(self) -> float:
        return self.dynamic_watts + self.leakage_watts + self.sequential_watts

    @property
    def edp_joule_ns(self) -> float:
        """Energy-delay product: energy per operation x average latency."""
        return self.energy_per_op_joules * self.avg_latency_ns


def power_report(
    netlist: Netlist,
    stream: StreamResult,
    avg_latency_ns: float,
    technology: Technology = DEFAULT_TECHNOLOGY,
    mean_delta_vth: float = 0.0,
    input_ff_bits: int = 0,
    output_ff_bits: int = 0,
    razor_bits: int = 0,
    cycles_per_op: float = 1.0,
    name: str = "",
) -> PowerReport:
    """Build a :class:`PowerReport` from a simulated stream.

    Args:
        netlist: The combinational design (supplies the leakage weight).
        stream: Simulation result carrying switched capacitance.
        avg_latency_ns: Average latency per operation (from the
            architecture simulation; sets the power averaging window).
        technology: Voltage/cap/leakage card.
        mean_delta_vth: Workload-average BTI threshold shift in volts
            (lowers leakage as the circuit ages).
        input_ff_bits / output_ff_bits / razor_bits: Sequential elements
            clocked every cycle around the combinational core.
        cycles_per_op: Average clock cycles per operation (variable-
            latency designs clock their flip-flops on every cycle, not
            every operation).
    """
    if avg_latency_ns <= 0:
        raise SimulationError("avg_latency_ns must be positive")
    if cycles_per_op <= 0:
        raise SimulationError("cycles_per_op must be positive")

    cap_unit_farads = technology.unit_cap_ff * 1e-15
    half_cvv = 0.5 * cap_unit_farads * technology.vdd**2

    dynamic_energy_per_op = half_cvv * stream.mean_switched_caps()

    seq_caps_per_cycle = (
        (input_ff_bits + output_ff_bits) * DFF_CAPS_PER_CYCLE
        + razor_bits * RAZOR_CAPS_PER_CYCLE
    )
    sequential_energy_per_op = half_cvv * seq_caps_per_cycle * cycles_per_op

    transistors = (
        transistor_count(netlist)
        + (input_ff_bits + output_ff_bits) * DFF_TRANSISTORS
        + razor_bits * RAZOR_FF_TRANSISTORS
    )
    leak_per_transistor = technology.leak_na * 1e-9
    leakage_watts = (
        transistors
        * leak_per_transistor
        * technology.vdd
        * math.exp(-mean_delta_vth / technology.subthreshold_swing)
    )

    seconds_per_op = avg_latency_ns * 1e-9
    dynamic_watts = dynamic_energy_per_op / seconds_per_op
    sequential_watts = sequential_energy_per_op / seconds_per_op
    energy_per_op = (
        dynamic_energy_per_op
        + sequential_energy_per_op
        + leakage_watts * seconds_per_op
    )
    return PowerReport(
        name=name or netlist.name,
        dynamic_watts=dynamic_watts,
        leakage_watts=leakage_watts,
        sequential_watts=sequential_watts,
        energy_per_op_joules=energy_per_op,
        avg_latency_ns=avg_latency_ns,
    )
