"""Unique-stimulus folding: simulate each distinct transition once.

The zero-heavy operand streams the paper's motivation rests on (Figs.
9-10: FIR coefficient reuse, silence-dominated samples) repeat the same
operand pairs constantly.  In a two-vector simulator *every* reported
per-pattern quantity -- settled outputs, path delay, switched
capacitance, per-bit arrivals -- is a pure elementwise function of the
``(previous, current)`` input-pattern pair at that index: the only
cross-pattern coupling in the engine is the one-step change detection.
So patterns whose transition pair repeats are redundant work.

:func:`fold_stimulus` deduplicates the stream over its packed
``(previous, current)`` input columns (``np.unique`` over one row per
pattern), yielding a folded stimulus that interleaves each unique pair
as ``[p_0, c_0, p_1, c_1, ...]``.  Simulating that stream, the engine's
prepended settling pattern makes every *odd* reported row the exact
two-vector result of its pair (the even rows are inter-pair transitions
and are discarded).  :func:`unfold_stream` then scatters the odd rows
back through the inverse index -- bit-identical to simulating the full
stream, at the cost of ``2 * num_unique`` simulated patterns.

Folding must be bypassed when per-pattern identity does not hold:

* fault hooks consume the *global* pattern index (transient flips are a
  function of it), so any hooked circuit simulates unfolded;
* per-net statistics (``signal_prob`` / ``toggle_counts``) and value-
  plane recording aggregate over the whole stream with multiplicity, so
  ``collect_net_stats`` and recorder runs simulate unfolded (the
  replay layer instead folds the plane itself and unfolds per corner).

:meth:`FoldPlan.profitable` additionally skips folding when the stream
barely repeats (``2 * num_unique`` close to ``num_patterns``) -- the
result is still exact either way, folding is purely an optimization.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence

import numpy as np

from ..errors import SimulationError

__all__ = ["FoldPlan", "fold_stimulus", "unfold_stream"]

#: Folding is applied when ``2 * num_unique <= FOLD_GAIN * n``.
FOLD_GAIN = 0.75
#: Streams shorter than this are never worth the dedup pass.
MIN_FOLD_PATTERNS = 64


@dataclasses.dataclass
class FoldPlan:
    """Dedup of a stimulus over its ``(previous, current)`` pairs.

    Attributes:
        folded: Port name -> ``(2 * num_unique,)`` interleaved
            ``[p_0, c_0, p_1, c_1, ...]`` stimulus covering each unique
            transition pair once.
        inverse: ``(num_patterns,)`` index of each original pattern's
            pair among the unique pairs.
        num_patterns: Original stream length.
        num_unique: Number of distinct transition pairs.
    """

    folded: Dict[str, np.ndarray]
    inverse: np.ndarray
    num_patterns: int
    num_unique: int

    @property
    def fold_factor(self) -> float:
        """Original patterns per simulated pattern (>= 0.5)."""
        return self.num_patterns / float(2 * self.num_unique)

    @property
    def profitable(self) -> bool:
        """Whether the folded run is meaningfully shorter."""
        return (
            self.num_patterns >= MIN_FOLD_PATTERNS
            and 2 * self.num_unique <= FOLD_GAIN * self.num_patterns
        )


def fold_stimulus(
    stimulus: Dict[str, Sequence[int]],
    initial: Optional[Dict[str, int]] = None,
) -> FoldPlan:
    """Build a :class:`FoldPlan` for a stimulus.

    ``initial`` is the optional pre-stream settling state (the same
    argument :meth:`CompiledCircuit.run` takes); it determines pattern
    0's *previous* vector and therefore participates in the dedup key.
    """
    names = sorted(stimulus)
    if not names:
        raise SimulationError("stimulus must contain at least one port")
    arrays = {
        name: np.asarray(stimulus[name], dtype=np.uint64)
        for name in names
    }
    lengths = {arr.shape[0] for arr in arrays.values()}
    if len(lengths) != 1:
        raise SimulationError("stimulus arrays must be equally long")
    (n,) = lengths
    if n == 0:
        raise SimulationError("stimulus must contain at least 1 pattern")

    columns = []
    for name in names:
        cur = arrays[name]
        prev = np.empty_like(cur)
        prev[0] = (
            np.uint64(initial[name])
            if initial is not None and name in initial
            else cur[0]
        )
        prev[1:] = cur[:-1]
        columns.append(prev)
        columns.append(cur)
    pairs = np.stack(columns, axis=1)
    unique, inverse = np.unique(pairs, axis=0, return_inverse=True)
    inverse = np.asarray(inverse, dtype=np.intp).ravel()

    folded = {}
    for j, name in enumerate(names):
        stream = np.empty(2 * unique.shape[0], dtype=np.uint64)
        stream[0::2] = unique[:, 2 * j]
        stream[1::2] = unique[:, 2 * j + 1]
        folded[name] = stream
    return FoldPlan(
        folded=folded,
        inverse=inverse,
        num_patterns=int(n),
        num_unique=int(unique.shape[0]),
    )


def unfold_stream(folded_result, plan: FoldPlan):
    """Scatter a folded :class:`StreamResult` back to stream order.

    The folded run reports ``2 * num_unique`` patterns; odd rows are
    the exact per-pair results (the settling prepend makes row ``2u``
    the inter-pair transition into pair ``u`` and row ``2u + 1`` the
    pair itself).  Returns a full-length result bit-identical to the
    unfolded run.
    """
    from .engine import StreamResult

    if folded_result.num_patterns != 2 * plan.num_unique:
        raise SimulationError(
            "folded result has %d patterns, plan expects %d"
            % (folded_result.num_patterns, 2 * plan.num_unique)
        )
    pick = plan.inverse
    outputs = {
        name: arr[1::2][pick]
        for name, arr in folded_result.outputs.items()
    }
    bit_arrivals = None
    if folded_result.bit_arrivals is not None:
        bit_arrivals = {
            name: matrix[..., 1::2][..., pick]
            for name, matrix in folded_result.bit_arrivals.items()
        }
    return StreamResult(
        outputs=outputs,
        delays=folded_result.delays[1::2][pick],
        switched_caps=folded_result.switched_caps[1::2][pick],
        num_patterns=plan.num_patterns,
        bit_arrivals=bit_arrivals,
        signal_prob=None,
        toggle_counts=None,
    )
