"""Structural netlist mutations for variant sweeps.

A :class:`Mutation` rewrites one existing cell of a parent netlist --
swap its type (same arity), rewire its input pins, or both -- while
keeping the net numbering, port map and cell indexing untouched.
:func:`apply_mutations` materializes a child :class:`Netlist` that is
*structurally aligned* with its parent: same ``num_nets``, same cell
count, same per-index output nets.  That alignment is exactly what
:func:`repro.timing.delta.diff_netlists` requires to compute a cone
delta, so mutants built here always take the incremental fast path.

Mutations deliberately cannot add or remove cells, nets or ports:
those edits renumber nets and invalidate every parent artifact
(value planes, arrival tensors, stress profiles), defeating the point
of incremental evaluation.  Build such variants from scratch instead.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence, Tuple

from ..errors import NetlistError
from .netlist import CONST0, CONST1, Cell, Netlist


@dataclasses.dataclass(frozen=True)
class Mutation:
    """Rewrite one cell in place.

    Attributes:
        cell_index: Index of the cell to rewrite.
        cell_type: Replacement library type name (arity must match the
            replacement pin list -- or the old pins when ``inputs`` is
            None).
        inputs: Replacement input net ids in pin order, or None to keep
            the cell's existing pins.
    """

    cell_index: int
    cell_type: str
    inputs: Optional[Tuple[int, ...]] = None

    def site_id(self) -> str:
        """Deterministic identity (mirrors fault-site ids) used for
        artifact-store keys and sweep records."""
        if self.inputs is None:
            return "retype:c%d:%s" % (self.cell_index, self.cell_type)
        pins = ",".join(str(net) for net in self.inputs)
        return "rewire:c%d:%s:%s" % (self.cell_index, self.cell_type, pins)


def retype(cell_index: int, type_name: str) -> Mutation:
    """Swap a cell's type, keeping its pins (e.g. ``AND2 -> OR2``)."""
    return Mutation(cell_index, type_name)


def tie_low(cell_index: int) -> Mutation:
    """Replace a cell with a buffer of the constant-0 rail (column /
    partial-product truncation in approximate-multiplier sweeps)."""
    return Mutation(cell_index, "BUF", (CONST0,))


def tie_high(cell_index: int) -> Mutation:
    """Replace a cell with a buffer of the constant-1 rail."""
    return Mutation(cell_index, "BUF", (CONST1,))


def apply_mutations(
    parent: Netlist, mutations: Sequence[Mutation]
) -> Netlist:
    """A child netlist with ``mutations`` applied to ``parent``.

    The child shares no mutable state with the parent but is
    structurally aligned with it (same nets, ports, cell slots).  The
    parent is never modified.

    Raises:
        NetlistError: Out-of-range cell index, unknown type, arity
            mismatch, invalid input net, or two mutations targeting the
            same cell.
    """
    by_index: Dict[int, Mutation] = {}
    for mutation in mutations:
        if not 0 <= mutation.cell_index < len(parent.cells):
            raise NetlistError(
                "mutation targets cell %d but netlist has %d cells"
                % (mutation.cell_index, len(parent.cells))
            )
        if mutation.cell_index in by_index:
            raise NetlistError(
                "two mutations target cell %d" % mutation.cell_index
            )
        by_index[mutation.cell_index] = mutation

    child = Netlist.__new__(Netlist)
    child.name = parent.name
    child.library = parent.library
    child._net_names = list(parent._net_names)
    child.cells = list(parent.cells)
    child.input_ports = parent.input_ports.__class__(parent.input_ports)
    child.output_ports = parent.output_ports.__class__(parent.output_ports)
    child._driver = dict(parent._driver)
    child._input_nets = set(parent._input_nets)
    child._levelized = None
    child._validated = False
    child.group_enables = dict(parent.group_enables)

    num_nets = len(parent._net_names)
    for index, mutation in by_index.items():
        old = parent.cells[index]
        cell_type = parent.library.get(mutation.cell_type)
        inputs = (
            old.inputs if mutation.inputs is None
            else tuple(int(net) for net in mutation.inputs)
        )
        if len(inputs) != cell_type.num_inputs:
            raise NetlistError(
                "%s takes %d inputs, mutation of cell %d supplies %d"
                % (cell_type.name, cell_type.num_inputs, index, len(inputs))
            )
        for net in inputs:
            if not 0 <= net < num_nets:
                raise NetlistError(
                    "mutation of cell %d uses invalid net %d" % (index, net)
                )
        child.cells[index] = Cell(
            index=old.index,
            cell_type=cell_type,
            inputs=inputs,
            output=old.output,
            name=old.name,
            group=old.group,
        )
    return child
