"""Gate-level netlist substrate.

This package provides the structural layer of the reproduction: a standard
cell library (:mod:`repro.nets.cells`), a netlist builder with ports,
validation and levelization (:mod:`repro.nets.netlist`), transistor-level
area accounting (:mod:`repro.nets.area`), structurally aligned variant
mutations (:mod:`repro.nets.mutate`) and a human-readable structural
dump (:mod:`repro.nets.export`).
"""

from .cells import (
    CellLibrary,
    CellType,
    STANDARD_LIBRARY,
    OP_AND2,
    OP_AND3,
    OP_BUF,
    OP_INV,
    OP_MUX2,
    OP_NAND2,
    OP_NOR2,
    OP_OR2,
    OP_OR3,
    OP_TRIBUF,
    OP_XNOR2,
    OP_XOR2,
)
from .netlist import Cell, Netlist, Port
from .area import AreaReport, area_report, transistor_count
from .mutate import Mutation, apply_mutations, retype, tie_high, tie_low

__all__ = [
    "AreaReport",
    "Cell",
    "CellLibrary",
    "CellType",
    "Mutation",
    "Netlist",
    "Port",
    "apply_mutations",
    "retype",
    "tie_high",
    "tie_low",
    "STANDARD_LIBRARY",
    "area_report",
    "transistor_count",
    "OP_AND2",
    "OP_AND3",
    "OP_BUF",
    "OP_INV",
    "OP_MUX2",
    "OP_NAND2",
    "OP_NOR2",
    "OP_OR2",
    "OP_OR3",
    "OP_TRIBUF",
    "OP_XNOR2",
    "OP_XOR2",
]
