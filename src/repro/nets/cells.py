"""Standard cell library.

Each :class:`CellType` bundles the static properties a gate needs for the
three analyses the paper performs:

* **timing** -- a logical-effort style intrinsic delay in *delay units*;
  the technology's calibrated ``time_unit_ns`` converts units to ns;
* **area**   -- a transistor count (Fig. 25 reports area in transistors);
* **power**  -- an output load in unit capacitances, and the transistor
  count doubles as the leakage weight.

The delay units follow the usual logical-effort ordering (inverter fastest;
XOR/MUX the slow complex gates).  Absolute values do not matter -- the
calibration in :mod:`repro.experiments.calibration` maps units to ns so the
16x16 array multiplier critical path equals the paper's 1.32 ns -- but the
*ratios* between cell types shape which paths are critical, so they are
chosen from standard logical-effort estimates for static CMOS.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, Tuple

from ..errors import ConfigError, UnknownCellError

# Opcode constants.  The timing engines dispatch on these small integers
# instead of strings; keep them stable, tests rely on the values only via
# these names.
OP_BUF = 0
OP_INV = 1
OP_AND2 = 2
OP_OR2 = 3
OP_NAND2 = 4
OP_NOR2 = 5
OP_XOR2 = 6
OP_XNOR2 = 7
OP_MUX2 = 8
OP_TRIBUF = 9
OP_AND3 = 10
OP_OR3 = 11


@dataclasses.dataclass(frozen=True)
class CellType:
    """Immutable description of one library cell.

    Attributes:
        name: Library name, e.g. ``"XOR2"``.
        opcode: Integer dispatch code (one of the ``OP_*`` constants).
        num_inputs: Number of input pins.
        delay_units: Intrinsic delay in logical-effort units.
        transistors: Transistor count (area + leakage weight).
        load_caps: Switched capacitance in unit caps when the output
            toggles (drives the dynamic power model).
        pmos_fraction: Fraction of the delay borne by pMOS pull-ups; used
            to weight NBTI (pMOS) vs PBTI (nMOS) degradation per cell.
    """

    name: str
    opcode: int
    num_inputs: int
    delay_units: float
    transistors: int
    load_caps: float
    pmos_fraction: float = 0.5

    def __post_init__(self):
        if self.num_inputs < 1:
            raise ConfigError("cell %s must have >= 1 input" % self.name)
        if self.delay_units <= 0:
            raise ConfigError("cell %s must have positive delay" % self.name)
        if self.transistors < 0:
            raise ConfigError("cell %s has negative transistor count" % self.name)
        if not 0.0 <= self.pmos_fraction <= 1.0:
            raise ConfigError("pmos_fraction must lie in [0, 1]")


class CellLibrary:
    """A named collection of :class:`CellType` entries.

    The library is append-only: once a cell type is registered its
    definition cannot change, which keeps compiled circuits consistent.
    """

    def __init__(self, name: str):
        self.name = name
        self._types: Dict[str, CellType] = {}

    def add(self, cell_type: CellType) -> CellType:
        """Register ``cell_type``; raises on duplicate names."""
        if cell_type.name in self._types:
            raise ConfigError(
                "cell type %r already registered in library %r"
                % (cell_type.name, self.name)
            )
        self._types[cell_type.name] = cell_type
        return cell_type

    def get(self, name: str) -> CellType:
        """Look up a cell type by name; raises :class:`UnknownCellError`."""
        try:
            return self._types[name]
        except KeyError:
            raise UnknownCellError(
                "unknown cell type %r in library %r (known: %s)"
                % (name, self.name, sorted(self._types))
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._types

    def __iter__(self) -> Iterator[CellType]:
        return iter(self._types.values())

    def __len__(self) -> int:
        return len(self._types)

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._types))


def _build_standard_library() -> CellLibrary:
    """Create the default static-CMOS library used by all generators.

    Transistor counts are the textbook static-CMOS implementations:
    transmission-gate MUX2 (incl. select inverter) and the 10-transistor
    XOR/XNOR.  The transmission-gate cells (MUX2, TRIBUF) present small
    switched capacitance -- pass-gate inputs, no full restoring input
    stage -- which is why the bypassing multipliers' extra cells do not
    erase their activity savings (paper Figs. 26-27(b)).  The tri-state buffer is a clocked inverter pair plus enable
    inverter.  Sequential cells (DFF, Razor FF) are *not* library gates --
    they live at the architecture level -- but their transistor weights
    are exported here for the Fig. 25 area accounting.
    """
    lib = CellLibrary("static-cmos-32nm")
    entries = [
        #        name      opcode     in  delay  T   cap  pmos
        CellType("BUF",    OP_BUF,    1,  1.40,  4,  1.3, 0.50),
        CellType("INV",    OP_INV,    1,  1.00,  2,  1.0, 0.55),
        CellType("AND2",   OP_AND2,   2,  1.80,  6,  1.5, 0.45),
        CellType("OR2",    OP_OR2,    2,  2.00,  6,  1.5, 0.60),
        CellType("NAND2",  OP_NAND2,  2,  1.25,  4,  1.2, 0.40),
        CellType("NOR2",   OP_NOR2,   2,  1.45,  4,  1.2, 0.65),
        CellType("XOR2",   OP_XOR2,   2,  2.20, 10,  2.0, 0.50),
        CellType("XNOR2",  OP_XNOR2,  2,  2.20, 10,  2.0, 0.50),
        CellType("MUX2",   OP_MUX2,   3,  1.90, 10,  0.9, 0.50),
        CellType("TRIBUF", OP_TRIBUF, 2,  1.30,  6,  0.5, 0.50),
        CellType("AND3",   OP_AND3,   3,  2.10,  8,  1.7, 0.45),
        CellType("OR3",    OP_OR3,    3,  2.40,  8,  1.7, 0.60),
    ]
    for entry in entries:
        lib.add(entry)
    return lib


#: Default library instance shared by the arithmetic generators.
STANDARD_LIBRARY = _build_standard_library()

#: Transistor weight of a plain D flip-flop (master-slave, static CMOS).
DFF_TRANSISTORS = 24

#: Transistor weight of a 1-bit Razor flip-flop: main DFF + shadow latch +
#: XOR comparator + restore mux (Ernst et al. [27]).
RAZOR_FF_TRANSISTORS = DFF_TRANSISTORS + 12 + 10 + 10
