"""Gate-sizing transforms (paper Section IV-A).

"If both do not match, methods, such as transistor sizing or using
another skip number, can be used to adjust the multiplier's cycle
period."  This module implements the sizing half of that sentence as a
*delay-scale* transform: upsizing a cell by factor ``k`` divides its
delay by ``k`` (stronger drive) at the cost of ``k``-times its
transistors (area and leakage).

Because :class:`~repro.timing.CompiledCircuit` already takes per-cell
delay factors, sizing composes freely with the aging factors -- the
sizing ablation bench exercises exactly that.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, Optional

import numpy as np

from ..config import DEFAULT_TECHNOLOGY, Technology
from ..errors import ConfigError
from .netlist import Netlist


@dataclasses.dataclass(frozen=True)
class SizingPlan:
    """A per-cell drive-strength assignment.

    Attributes:
        netlist_name: Design this plan belongs to.
        factors: Per-cell drive factors (1.0 = minimum size).
    """

    netlist_name: str
    factors: np.ndarray

    def __post_init__(self):
        if np.any(self.factors < 1.0):
            raise ConfigError("drive factors must be >= 1.0")

    def delay_scale(self) -> np.ndarray:
        """Delay factors for :class:`~repro.timing.CompiledCircuit`."""
        return 1.0 / self.factors

    def extra_transistors(self, netlist: Netlist) -> int:
        """Area cost of the plan over minimum sizing."""
        if netlist.name != self.netlist_name:
            raise ConfigError("plan belongs to %r" % self.netlist_name)
        base = np.array(
            [cell.cell_type.transistors for cell in netlist.cells]
        )
        return int(np.round((self.factors - 1.0) @ base))

    def num_upsized(self) -> int:
        return int(np.sum(self.factors > 1.0))


def uniform_sizing(netlist: Netlist, factor: float) -> SizingPlan:
    """Upsize every cell by ``factor`` (global overdesign -- the naive
    aging guard-band the paper's Section I criticizes)."""
    if factor < 1.0:
        raise ConfigError("factor must be >= 1.0")
    return SizingPlan(
        netlist.name, np.full(len(netlist.cells), float(factor))
    )


def upsize_cells(
    netlist: Netlist, cell_indices: Iterable[int], factor: float
) -> SizingPlan:
    """Upsize a chosen subset of cells."""
    if factor < 1.0:
        raise ConfigError("factor must be >= 1.0")
    factors = np.ones(len(netlist.cells))
    for index in cell_indices:
        if not 0 <= index < len(netlist.cells):
            raise ConfigError("cell index %d out of range" % index)
        factors[index] = factor
    return SizingPlan(netlist.name, factors)


def upsize_critical_paths(
    netlist: Netlist,
    factor: float = 1.5,
    slack_fraction: float = 0.9,
    technology: Technology = DEFAULT_TECHNOLOGY,
    base_scale: Optional[np.ndarray] = None,
) -> SizingPlan:
    """Upsize every cell lying on a near-critical path.

    Cells whose worst-case path (arrival + required) exceeds
    ``slack_fraction`` of the critical delay get ``factor`` drive --
    the classic targeted-sizing move to compress the cycle period
    without paying the uniform-overdesign area bill.
    """
    if not 0.0 < slack_fraction <= 1.0:
        raise ConfigError("slack_fraction must lie in (0, 1]")
    if factor < 1.0:
        raise ConfigError("factor must be >= 1.0")
    netlist.validate()
    order = netlist.levelize()
    unit = technology.time_unit_ns
    if base_scale is None:
        base_scale = np.ones(len(netlist.cells))

    # Forward arrival times.
    arrival: Dict[int, float] = {}
    delay_of = {}
    for cell in order:
        delay = (
            cell.cell_type.delay_units * unit * float(base_scale[cell.index])
        )
        delay_of[cell.index] = delay
        worst = max(
            (arrival.get(net, 0.0) for net in cell.inputs), default=0.0
        )
        arrival[cell.output] = worst + delay

    # Backward: longest downstream continuation from each cell output.
    downstream: Dict[int, float] = {}
    for cell in reversed(order):
        own = delay_of[cell.index]
        tail = downstream.get(cell.output, 0.0)
        through = own + tail
        for net in cell.inputs:
            downstream[net] = max(downstream.get(net, 0.0), through)

    critical = max(
        (
            arrival.get(net, 0.0)
            for port in netlist.output_ports.values()
            for net in port.nets
        ),
        default=0.0,
    )
    if critical <= 0:
        return SizingPlan(netlist.name, np.ones(len(netlist.cells)))

    threshold = slack_fraction * critical
    factors = np.ones(len(netlist.cells))
    for cell in order:
        input_arrival = max(
            (arrival.get(net, 0.0) for net in cell.inputs), default=0.0
        )
        path = input_arrival + delay_of[cell.index] + downstream.get(
            cell.output, 0.0
        )
        if path >= threshold:
            factors[cell.index] = factor
    return SizingPlan(netlist.name, factors)
