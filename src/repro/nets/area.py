"""Transistor-count area accounting (paper Fig. 25).

The paper reports area as transistor counts, normalized to the array
multiplier.  A design's area is the sum of its combinational cells plus
the sequential overhead the architecture adds around it:

* plain designs (AM, FLCB, FLRB): input DFFs for both operands and output
  DFFs for the product;
* adaptive designs (A-VLCB, A-VLRB): input DFFs, *Razor* flip-flops on the
  product, and the AHL circuit (judging blocks + aging indicator + mux +
  gating DFF), whose structural netlist supplies its own count.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from .cells import DFF_TRANSISTORS, RAZOR_FF_TRANSISTORS
from .netlist import Netlist


@dataclasses.dataclass(frozen=True)
class AreaReport:
    """Transistor breakdown of one design variant."""

    name: str
    combinational: int
    flip_flops: int
    razor_flip_flops: int
    ahl: int

    @property
    def total(self) -> int:
        return (
            self.combinational
            + self.flip_flops
            + self.razor_flip_flops
            + self.ahl
        )

    def normalized_to(self, baseline: "AreaReport") -> float:
        """Area ratio vs a baseline report (Fig. 25 normalizes to AM)."""
        return self.total / baseline.total

    def breakdown(self) -> Dict[str, int]:
        return {
            "combinational": self.combinational,
            "flip_flops": self.flip_flops,
            "razor_flip_flops": self.razor_flip_flops,
            "ahl": self.ahl,
            "total": self.total,
        }


def transistor_count(netlist: Netlist) -> int:
    """Total transistor count of a netlist's combinational cells."""
    return sum(cell.cell_type.transistors for cell in netlist.cells)


def area_report(
    netlist: Netlist,
    name: str = "",
    input_ff_bits: int = 0,
    output_ff_bits: int = 0,
    razor_bits: int = 0,
    ahl_netlist: Netlist = None,
    extra_dff_bits: int = 0,
) -> AreaReport:
    """Build an :class:`AreaReport` for a design variant.

    Args:
        netlist: The multiplier's combinational netlist.
        name: Report label; defaults to the netlist name.
        input_ff_bits: Plain DFF bits at the inputs.
        output_ff_bits: Plain DFF bits at the outputs.
        razor_bits: Razor flip-flop bits at the outputs.
        ahl_netlist: Structural AHL netlist, if the variant has one.
        extra_dff_bits: Additional sequential bits inside the AHL
            (gating DFF, aging-indicator counter bits).
    """
    ahl_transistors = 0
    if ahl_netlist is not None:
        ahl_transistors = transistor_count(ahl_netlist)
    ahl_transistors += extra_dff_bits * DFF_TRANSISTORS
    return AreaReport(
        name=name or netlist.name,
        combinational=transistor_count(netlist),
        flip_flops=(input_ff_bits + output_ff_bits) * DFF_TRANSISTORS,
        razor_flip_flops=razor_bits * RAZOR_FF_TRANSISTORS,
        ahl=ahl_transistors,
    )
