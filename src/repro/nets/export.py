"""Human-readable structural dump of a netlist.

The authors' flow emits Verilog; for inspection and documentation this
module emits an equivalent flat structural text form, one cell per line::

    # netlist multiplier-am-4x4 (cells=..., nets=...)
    input a[4] = n2 n3 n4 n5
    ...
    XOR2 u_fa_0_0_s1 (n2, n3) -> n40

The format round-trips through :func:`parse_netlist` so designs can be
stored, diffed and reloaded without the Python generators.
"""

from __future__ import annotations

from typing import List

from ..errors import NetlistError
from .cells import CellLibrary, STANDARD_LIBRARY
from .netlist import Netlist


def dump_netlist(netlist: Netlist) -> str:
    """Serialize ``netlist`` into the flat structural text form."""
    lines: List[str] = [
        "# netlist %s (cells=%d, nets=%d)"
        % (netlist.name, len(netlist.cells), netlist.num_nets)
    ]
    lines.append("netlist %s %d" % (netlist.name, netlist.num_nets))
    for port in netlist.input_ports.values():
        lines.append(
            "input %s %s" % (port.name, " ".join(str(n) for n in port.nets))
        )
    for cell in netlist.cells:
        group = cell.group if cell.group else "-"
        lines.append(
            "cell %s %s %s %s -> %d"
            % (
                cell.cell_type.name,
                cell.name or ("u%d" % cell.index),
                group,
                " ".join(str(n) for n in cell.inputs),
                cell.output,
            )
        )
    for port in netlist.output_ports.values():
        lines.append(
            "output %s %s" % (port.name, " ".join(str(n) for n in port.nets))
        )
    return "\n".join(lines) + "\n"


def parse_netlist(
    text: str, library: CellLibrary = STANDARD_LIBRARY
) -> Netlist:
    """Parse the text form produced by :func:`dump_netlist`.

    Net ids are preserved exactly, so a dump/parse round trip yields a
    structurally identical netlist.
    """
    netlist = None
    pending_outputs = []
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split()
        keyword = fields[0]
        if keyword == "netlist":
            if len(fields) != 3:
                raise NetlistError("line %d: bad netlist header" % line_no)
            netlist = Netlist(fields[1], library=library)
            total_nets = int(fields[2])
            while netlist.num_nets < total_nets:
                netlist.new_net()
        elif netlist is None:
            raise NetlistError(
                "line %d: %r before netlist header" % (line_no, keyword)
            )
        elif keyword == "input":
            name, nets = fields[1], [int(f) for f in fields[2:]]
            # Re-register the port over the pre-allocated nets.
            netlist.input_ports[name] = _make_port(name, nets, True)
            netlist._input_nets.update(nets)
        elif keyword == "cell":
            if "->" not in fields:
                raise NetlistError("line %d: cell line missing '->'" % line_no)
            arrow = fields.index("->")
            type_name, inst_name, group = fields[1], fields[2], fields[3]
            inputs = [int(f) for f in fields[4:arrow]]
            output = int(fields[arrow + 1])
            netlist.add_cell(
                type_name,
                inputs,
                output=output,
                name=inst_name,
                group=None if group == "-" else group,
            )
        elif keyword == "output":
            pending_outputs.append((fields[1], [int(f) for f in fields[2:]]))
        else:
            raise NetlistError("line %d: unknown keyword %r" % (line_no, keyword))
    if netlist is None:
        raise NetlistError("empty netlist text")
    for name, nets in pending_outputs:
        netlist.add_output_port(name, nets)
    return netlist


def _make_port(name, nets, is_input):
    from .netlist import Port

    return Port(name, tuple(nets), is_input)
