"""Combinational netlist builder with ports, validation and levelization.

A :class:`Netlist` is a directed graph of single-output library cells wired
by integer *nets*.  Nets ``0`` and ``1`` are the constant-0 and constant-1
rails.  Sequential elements (input flip-flops, Razor flip-flops) live at
the architecture level (:mod:`repro.core`), so every netlist here is purely
combinational -- which is what lets the timing engines levelize it.

The builder exposes one generic :meth:`Netlist.add_cell` plus small
per-gate helpers (``xor2``, ``mux2``, ...) that allocate the output net and
return it, keeping the arithmetic generators readable::

    nl = Netlist("half-adder")
    a, = nl.add_input_port("a", 1)
    b, = nl.add_input_port("b", 1)
    nl.add_output_port("sum", [nl.xor2(a, b)])
    nl.add_output_port("carry", [nl.and2(a, b)])
"""

from __future__ import annotations

import collections
import dataclasses
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import CombinationalLoopError, NetlistError
from .cells import CellLibrary, CellType, STANDARD_LIBRARY

#: Net id of the constant-0 rail.
CONST0 = 0
#: Net id of the constant-1 rail.
CONST1 = 1


@dataclasses.dataclass(frozen=True)
class Cell:
    """One placed instance of a library cell.

    Attributes:
        index: Position in the netlist's cell list (stable identifier).
        cell_type: The library :class:`CellType`.
        inputs: Input net ids, in pin order.  For ``MUX2`` the order is
            ``(d0, d1, select)``; for ``TRIBUF`` it is ``(din, enable)``.
        output: The single output net id.
        name: Optional instance name (used in exports and diagnostics).
        group: Optional group tag.  The power model uses groups to tie a
            bypassed full-adder's internal gates to its enable signal.
    """

    index: int
    cell_type: CellType
    inputs: Tuple[int, ...]
    output: int
    name: str = ""
    group: Optional[str] = None


@dataclasses.dataclass(frozen=True)
class Port:
    """A named bundle of nets at the netlist boundary (LSB first)."""

    name: str
    nets: Tuple[int, ...]
    is_input: bool

    @property
    def width(self) -> int:
        return len(self.nets)


class Netlist:
    """A combinational gate-level netlist.

    Args:
        name: Human-readable design name.
        library: Cell library to draw cell types from.
    """

    def __init__(self, name: str, library: CellLibrary = STANDARD_LIBRARY):
        self.name = name
        self.library = library
        self._net_names: List[Optional[str]] = [None, None]  # const rails
        self.cells: List[Cell] = []
        self.input_ports: "collections.OrderedDict[str, Port]" = (
            collections.OrderedDict()
        )
        self.output_ports: "collections.OrderedDict[str, Port]" = (
            collections.OrderedDict()
        )
        self._driver: Dict[int, int] = {}  # net id -> cell index
        self._input_nets: set = set()
        self._levelized: Optional[List[Cell]] = None
        self._validated = False
        #: Group tag -> enable net id.  Cells tagged with a group are
        #: understood to be frozen (no switching) whenever the enable net
        #: is 0; the power model uses this to credit bypassing savings.
        self.group_enables: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Net and port management
    # ------------------------------------------------------------------

    @property
    def const0(self) -> int:
        """Net id of the constant-0 rail."""
        return CONST0

    @property
    def const1(self) -> int:
        """Net id of the constant-1 rail."""
        return CONST1

    @property
    def num_nets(self) -> int:
        return len(self._net_names)

    @property
    def version(self) -> Tuple[int, int, int, int, int]:
        """Mutation counter for memo invalidation.  The builder is
        append-only (cells, nets, ports and group enables are added,
        never edited or removed), so the element counts uniquely
        identify the structural revision."""
        return (
            len(self.cells),
            len(self._net_names),
            len(self.input_ports),
            len(self.output_ports),
            len(self.group_enables),
        )

    def new_net(self, name: Optional[str] = None) -> int:
        """Allocate a fresh net id."""
        net = len(self._net_names)
        self._net_names.append(name)
        return net

    def new_nets(self, count: int, prefix: str = "") -> List[int]:
        """Allocate ``count`` fresh nets, named ``prefix0..prefixN-1``."""
        if count < 0:
            raise NetlistError("net count must be non-negative")
        return [
            self.new_net("%s%d" % (prefix, i) if prefix else None)
            for i in range(count)
        ]

    def net_name(self, net: int) -> str:
        """Best-effort display name for a net."""
        self._check_net(net)
        if net == CONST0:
            return "const0"
        if net == CONST1:
            return "const1"
        name = self._net_names[net]
        return name if name is not None else "n%d" % net

    def add_input_port(self, name: str, width: int) -> List[int]:
        """Declare a ``width``-bit input port; returns its nets, LSB first."""
        if name in self.input_ports or name in self.output_ports:
            raise NetlistError("duplicate port name %r" % name)
        if width < 1:
            raise NetlistError("port width must be >= 1")
        nets = [self.new_net("%s[%d]" % (name, i)) for i in range(width)]
        self.input_ports[name] = Port(name, tuple(nets), is_input=True)
        self._input_nets.update(nets)
        return nets

    def add_output_port(self, name: str, nets: Sequence[int]) -> Port:
        """Declare an output port over existing ``nets`` (LSB first)."""
        if name in self.input_ports or name in self.output_ports:
            raise NetlistError("duplicate port name %r" % name)
        if not nets:
            raise NetlistError("output port %r must have >= 1 net" % name)
        for net in nets:
            self._check_net(net)
        port = Port(name, tuple(nets), is_input=False)
        self.output_ports[name] = port
        return port

    def driver_of(self, net: int) -> Optional[Cell]:
        """Return the cell driving ``net``, or None for PIs/constants."""
        self._check_net(net)
        idx = self._driver.get(net)
        return self.cells[idx] if idx is not None else None

    def is_primary_input(self, net: int) -> bool:
        return net in self._input_nets

    def _check_net(self, net: int) -> None:
        if not isinstance(net, (int,)) or isinstance(net, bool):
            raise NetlistError("net id must be an int, got %r" % (net,))
        if not 0 <= net < len(self._net_names):
            raise NetlistError(
                "net id %d out of range (have %d nets)"
                % (net, len(self._net_names))
            )

    # ------------------------------------------------------------------
    # Cell placement
    # ------------------------------------------------------------------

    def add_cell(
        self,
        type_name: str,
        inputs: Sequence[int],
        output: Optional[int] = None,
        name: str = "",
        group: Optional[str] = None,
    ) -> int:
        """Place a cell; returns its output net id.

        Args:
            type_name: Library cell name, e.g. ``"NAND2"``.
            inputs: Input net ids in pin order.
            output: Existing net to drive, or None to allocate a fresh one.
            name: Optional instance name.
            group: Optional group tag (see :class:`Cell`).

        Raises:
            UnknownCellError: ``type_name`` is not in the library.
            NetlistError: wrong pin count, bad net id, or the output net
                already has a driver.
        """
        cell_type = self.library.get(type_name)
        inputs = tuple(inputs)
        if len(inputs) != cell_type.num_inputs:
            raise NetlistError(
                "cell %s expects %d inputs, got %d"
                % (type_name, cell_type.num_inputs, len(inputs))
            )
        for net in inputs:
            self._check_net(net)
        if output is None:
            output = self.new_net()
        else:
            self._check_net(output)
        if output in (CONST0, CONST1):
            raise NetlistError("cannot drive a constant rail")
        if output in self._driver:
            raise NetlistError(
                "net %s already driven by cell %d"
                % (self.net_name(output), self._driver[output])
            )
        if output in self._input_nets:
            raise NetlistError(
                "net %s is a primary input and cannot be driven"
                % self.net_name(output)
            )
        index = len(self.cells)
        cell = Cell(index, cell_type, inputs, output, name=name, group=group)
        self.cells.append(cell)
        self._driver[output] = index
        self._levelized = None
        self._validated = False
        return output

    def set_group_enable(self, group: str, enable_net: int) -> None:
        """Associate ``group``-tagged cells with an enable net.

        While the enable net is 0 the group's cells are treated as frozen
        by the power model (tri-state bypassing, Section II-A/B).
        """
        self._check_net(enable_net)
        if group in self.group_enables:
            raise NetlistError("group %r already has an enable" % group)
        self.group_enables[group] = enable_net

    # Small readable helpers for the arithmetic generators. ------------

    def buf(self, a: int, **kw) -> int:
        return self.add_cell("BUF", [a], **kw)

    def inv(self, a: int, **kw) -> int:
        return self.add_cell("INV", [a], **kw)

    def and2(self, a: int, b: int, **kw) -> int:
        return self.add_cell("AND2", [a, b], **kw)

    def or2(self, a: int, b: int, **kw) -> int:
        return self.add_cell("OR2", [a, b], **kw)

    def nand2(self, a: int, b: int, **kw) -> int:
        return self.add_cell("NAND2", [a, b], **kw)

    def nor2(self, a: int, b: int, **kw) -> int:
        return self.add_cell("NOR2", [a, b], **kw)

    def xor2(self, a: int, b: int, **kw) -> int:
        return self.add_cell("XOR2", [a, b], **kw)

    def xnor2(self, a: int, b: int, **kw) -> int:
        return self.add_cell("XNOR2", [a, b], **kw)

    def mux2(self, d0: int, d1: int, select: int, **kw) -> int:
        """2:1 mux -- output is ``d0`` when ``select`` is 0, else ``d1``."""
        return self.add_cell("MUX2", [d0, d1, select], **kw)

    def tribuf(self, din: int, enable: int, **kw) -> int:
        """Tri-state buffer -- drives ``din`` when enabled, else holds."""
        return self.add_cell("TRIBUF", [din, enable], **kw)

    def and3(self, a: int, b: int, c: int, **kw) -> int:
        return self.add_cell("AND3", [a, b, c], **kw)

    def or3(self, a: int, b: int, c: int, **kw) -> int:
        return self.add_cell("OR3", [a, b, c], **kw)

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------

    def levelize(self) -> List[Cell]:
        """Topologically order the cells (inputs before consumers).

        Returns a cached list; raises :class:`CombinationalLoopError` if
        the netlist has a combinational cycle.
        """
        if self._levelized is not None:
            return self._levelized
        indegree = [0] * len(self.cells)
        consumers: Dict[int, List[int]] = collections.defaultdict(list)
        for cell in self.cells:
            for net in cell.inputs:
                driver = self._driver.get(net)
                if driver is not None:
                    indegree[cell.index] += 1
                    consumers[driver].append(cell.index)
        ready = collections.deque(
            i for i, degree in enumerate(indegree) if degree == 0
        )
        order: List[Cell] = []
        while ready:
            idx = ready.popleft()
            order.append(self.cells[idx])
            for succ in consumers[idx]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready.append(succ)
        if len(order) != len(self.cells):
            stuck = [i for i, degree in enumerate(indegree) if degree > 0]
            raise CombinationalLoopError(stuck)
        self._levelized = order
        return order

    def validate(self) -> None:
        """Check structural invariants; raises :class:`NetlistError`.

        * every output-port net is driven, a primary input, or a constant;
        * every cell input is driven, a primary input, or a constant;
        * the netlist levelizes (no combinational loops).

        Memoized: once a netlist validates it stays valid until the
        next ``add_cell``, so analysis passes (STA, compilation,
        replay) revalidating the same netlist pay nothing.
        """
        if self._validated:
            return
        for port in self.output_ports.values():
            for net in port.nets:
                if (
                    net not in self._driver
                    and net not in self._input_nets
                    and net not in (CONST0, CONST1)
                ):
                    raise NetlistError(
                        "output port %r bit %s is undriven"
                        % (port.name, self.net_name(net))
                    )
        for cell in self.cells:
            for net in cell.inputs:
                if (
                    net not in self._driver
                    and net not in self._input_nets
                    and net not in (CONST0, CONST1)
                ):
                    raise NetlistError(
                        "cell %d (%s) input %s is undriven"
                        % (cell.index, cell.cell_type.name, self.net_name(net))
                    )
        self.levelize()
        self._validated = True

    def stats(self) -> Dict[str, int]:
        """Cell counts by type plus ``nets`` and ``cells`` totals."""
        counts: Dict[str, int] = collections.Counter(
            cell.cell_type.name for cell in self.cells
        )
        counts["cells"] = len(self.cells)
        counts["nets"] = self.num_nets
        return dict(counts)

    def cells_in_group(self, group: str) -> List[Cell]:
        """All cells tagged with ``group``."""
        return [cell for cell in self.cells if cell.group == group]

    def max_logic_depth(self) -> int:
        """Longest cell chain from any input to any output (unit depth)."""
        depth: Dict[int, int] = {}
        best = 0
        for cell in self.levelize():
            level = 1 + max(
                (depth.get(net, 0) for net in cell.inputs), default=0
            )
            depth[cell.output] = level
            best = max(best, level)
        return best

    def __repr__(self) -> str:
        return "Netlist(%r, cells=%d, nets=%d)" % (
            self.name,
            len(self.cells),
            self.num_nets,
        )


def bits_to_int(bits: Iterable[int]) -> int:
    """Recombine LSB-first bits into an integer (port helper)."""
    value = 0
    for position, bit in enumerate(bits):
        if bit not in (0, 1):
            raise NetlistError("bit values must be 0 or 1, got %r" % (bit,))
        value |= bit << position
    return value


def int_to_bits(value: int, width: int) -> List[int]:
    """Split an integer into ``width`` LSB-first bits (port helper)."""
    if value < 0:
        raise NetlistError("value must be non-negative, got %d" % value)
    if width < 1:
        raise NetlistError("width must be >= 1")
    if value >> width:
        raise NetlistError(
            "value %d does not fit in %d bits" % (value, width)
        )
    return [(value >> i) & 1 for i in range(width)]
