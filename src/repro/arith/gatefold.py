"""Constant-folding gate helpers.

Thin wrappers over the :class:`~repro.nets.netlist.Netlist` gate
builders that fold constant-rail inputs away instead of emitting
degenerate gates -- the generators use them wherever operands may be
``CONST0``/``CONST1`` (Booth magnitude muxing, prefix-adder boundaries),
keeping transistor counts honest.
"""

from __future__ import annotations

from ..nets.netlist import CONST0, CONST1, Netlist


def fold_and(nl: Netlist, a: int, b: int, name: str = "") -> int:
    if a == CONST0 or b == CONST0:
        return CONST0
    if a == CONST1:
        return b
    if b == CONST1:
        return a
    if a == b:
        return a
    return nl.and2(a, b, name=name)


def fold_or(nl: Netlist, a: int, b: int, name: str = "") -> int:
    if a == CONST1 or b == CONST1:
        return CONST1
    if a == CONST0:
        return b
    if b == CONST0:
        return a
    if a == b:
        return a
    return nl.or2(a, b, name=name)


def fold_xor(nl: Netlist, a: int, b: int, name: str = "") -> int:
    if a == CONST0:
        return b
    if b == CONST0:
        return a
    if a == CONST1 and b == CONST1:
        return CONST0
    if a == CONST1:
        return nl.inv(b, name=name)
    if b == CONST1:
        return nl.inv(a, name=name)
    if a == b:
        return CONST0
    return nl.xor2(a, b, name=name)


def fold_xnor(nl: Netlist, a: int, b: int, name: str = "") -> int:
    folded = fold_xor(nl, a, b)
    if folded == CONST0:
        return CONST1
    if folded == CONST1:
        return CONST0
    return nl.inv(folded, name=name)


def fold_mux(nl: Netlist, d0: int, d1: int, select: int, name: str = "") -> int:
    if select == CONST0 or d0 == d1:
        return d0
    if select == CONST1:
        return d1
    return nl.mux2(d0, d1, select, name=name)
