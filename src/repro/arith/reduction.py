"""Generic carry-save column reduction.

A *column map* assigns each bit weight a list of nets to be summed.
:func:`reduce_columns` compresses it with full/half adders until every
weight holds at most two nets (Wallace/Dadda style), and
:func:`columns_to_product` finishes with a ripple carry-propagate stage.
The Wallace-tree and Booth multipliers are both thin layers over these
two functions; the exhaustive multiplier tests cover them indirectly and
``tests/test_reduction.py`` directly.
"""

from __future__ import annotations

from typing import Dict, List

from ..errors import NetlistError
from ..nets.netlist import CONST0, CONST1, Netlist
from .adders import carry_save_add

Columns = Dict[int, List[int]]


def add_to_column(columns: Columns, weight: int, net: int) -> None:
    """Append a net to a weight's column (constant 0 folds away)."""
    if weight < 0:
        raise NetlistError("column weight must be non-negative")
    if net == CONST0:
        return
    columns.setdefault(weight, []).append(net)


def add_constant(columns: Columns, weight: int, value: int) -> None:
    """Add an integer constant starting at ``weight``."""
    if value < 0:
        raise NetlistError("use two's-complement nets for negatives")
    position = weight
    while value:
        if value & 1:
            add_to_column(columns, position, CONST1)
        value >>= 1
        position += 1


def reduce_columns(
    nl: Netlist,
    columns: Columns,
    prefix: str = "red",
    strategy: str = "wallace",
) -> Columns:
    """Compress columns until every weight holds at most two nets.

    Two classic schedules:

    * ``"wallace"`` -- greedy: every level compresses as many 3:2
      groups per column as possible (fewest levels, more adders);
    * ``"dadda"`` -- lazy: each level only compresses down to the next
      Dadda height (2, 3, 4, 6, 9, 13, ...), using the minimum number
      of full/half adders.

    Constant-1 nets participate like any other and fold inside
    :func:`carry_save_add` where possible.
    """
    if strategy == "wallace":
        return _reduce_wallace(nl, columns, prefix)
    if strategy == "dadda":
        return _reduce_dadda(nl, columns, prefix)
    raise NetlistError("unknown reduction strategy %r" % (strategy,))


def _reduce_wallace(nl: Netlist, columns: Columns, prefix: str) -> Columns:
    pending = {w: list(nets) for w, nets in columns.items() if nets}
    level = 0
    while True:
        widest = max((len(nets) for nets in pending.values()), default=0)
        if widest <= 2:
            return pending
        next_columns: Columns = {}
        for weight in sorted(pending):
            nets = pending[weight]
            index = 0
            while len(nets) - index >= 3:
                total, carry = carry_save_add(
                    nl,
                    nets[index],
                    nets[index + 1],
                    nets[index + 2],
                    prefix="%s_l%d_w%d_%d_" % (prefix, level, weight, index),
                )
                add_to_column(next_columns, weight, total)
                add_to_column(next_columns, weight + 1, carry)
                index += 3
            for net in nets[index:]:
                add_to_column(next_columns, weight, net)
        pending = next_columns
        level += 1


def dadda_heights(max_height: int) -> List[int]:
    """The Dadda target-height sequence up to ``max_height``, descending."""
    heights = [2]
    while heights[-1] < max_height:
        heights.append(int(heights[-1] * 3 // 2))
    return list(reversed(heights[:-1])) if len(heights) > 1 else []


def _reduce_dadda(nl: Netlist, columns: Columns, prefix: str) -> Columns:
    pending = {w: list(nets) for w, nets in columns.items() if nets}
    widest = max((len(nets) for nets in pending.values()), default=0)
    for level, target in enumerate(dadda_heights(widest)):
        work = {w: list(nets) for w, nets in pending.items()}
        done: Columns = {}
        if not work:
            break
        weight = min(work)
        top = max(work)
        while weight <= top:
            nets = work.get(weight, [])
            index = 0
            # Compress just enough to land at the target height; carries
            # land in the next column *of this stage*, so they count
            # toward its target when we get there.
            while len(nets) - index > target:
                excess = len(nets) - index - target
                if excess >= 2 and len(nets) - index >= 3:
                    total, carry = carry_save_add(
                        nl,
                        nets[index],
                        nets[index + 1],
                        nets[index + 2],
                        prefix="%s_d%d_w%d_%d_"
                        % (prefix, level, weight, index),
                    )
                    index += 3
                else:
                    total, carry = carry_save_add(
                        nl,
                        nets[index],
                        nets[index + 1],
                        CONST0,
                        prefix="%s_d%d_w%d_%d_"
                        % (prefix, level, weight, index),
                    )
                    index += 2
                if total != CONST0:
                    nets.append(total)
                if carry != CONST0:
                    work.setdefault(weight + 1, []).append(carry)
                    top = max(top, weight + 1)
            remainder = nets[index:]
            if remainder:
                done[weight] = remainder
            weight += 1
        pending = done
    return pending


def columns_to_product(
    nl: Netlist,
    columns: Columns,
    width: int,
    prefix: str = "cpa",
) -> List[int]:
    """Carry-propagate the (<=2-deep) columns into ``width`` sum bits.

    The final carry-propagate stage is a Kogge-Stone prefix adder, so a
    tree multiplier's overall depth stays logarithmic.  Weights at or
    above ``width`` are discarded (modulo arithmetic), which is exactly
    what the Booth sign-extension algebra needs.
    """
    from .adders import kogge_stone_sum

    reduced = reduce_columns(nl, columns, prefix=prefix + "_pre")
    a_bits: List[int] = []
    b_bits: List[int] = []
    for weight in range(width):
        nets = reduced.get(weight, [])
        if len(nets) > 2:
            raise NetlistError("column %d not fully reduced" % weight)
        a_bits.append(nets[0] if len(nets) >= 1 else CONST0)
        b_bits.append(nets[1] if len(nets) >= 2 else CONST0)
    return kogge_stone_sum(nl, a_bits, b_bits, prefix=prefix)[:width]
