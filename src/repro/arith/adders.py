"""Adder building blocks and the Fig. 4 variable-latency RCA example.

:func:`carry_save_add` is the one helper every multiplier generator is
built from.  It emits the textbook 5-gate full adder (two XORs for the
sum; two ANDs and an OR for the majority carry) but degrades gracefully
when inputs are constant rails: a full adder with one zero input becomes
a half adder, with two zero inputs becomes a wire.  That keeps transistor
counts honest for the Fig. 25 area comparison.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..errors import NetlistError
from ..nets.cells import CellLibrary, STANDARD_LIBRARY
from ..nets.netlist import CONST0, CONST1, Netlist


def half_add(
    nl: Netlist,
    x: int,
    y: int,
    group: Optional[str] = None,
    prefix: str = "",
) -> Tuple[int, int]:
    """Half adder: returns ``(sum, carry)`` nets; folds constant inputs."""
    if x == CONST0:
        return y, CONST0
    if y == CONST0:
        return x, CONST0
    if x == CONST1 and y == CONST1:
        return CONST0, CONST1
    if x == CONST1:
        return (
            nl.inv(y, name=prefix + "s", group=group),
            y,
        )
    if y == CONST1:
        return (
            nl.inv(x, name=prefix + "s", group=group),
            x,
        )
    total = nl.xor2(x, y, name=prefix + "s", group=group)
    carry = nl.and2(x, y, name=prefix + "c", group=group)
    return total, carry


def carry_save_add(
    nl: Netlist,
    x: int,
    y: int,
    z: int,
    group: Optional[str] = None,
    prefix: str = "",
) -> Tuple[int, int]:
    """Full adder: returns ``(sum, carry)`` nets; folds constant inputs.

    Structure (when all three inputs are live nets)::

        t     = x XOR y
        sum   = t XOR z
        carry = (x AND y) OR (t AND z)

    which places the majority carry on the classic XOR-AND-OR path the
    paper's delay distributions depend on.
    """
    operands = [x, y, z]
    live = [net for net in operands if net != CONST0]
    num_ones = sum(1 for net in operands if net == CONST1)
    live = [net for net in live if net != CONST1]

    if num_ones == 0:
        if len(live) <= 1:
            return (live[0] if live else CONST0), CONST0
        if len(live) == 2:
            return half_add(nl, live[0], live[1], group=group, prefix=prefix)
        a, b, c = live
        t = nl.xor2(a, b, name=prefix + "t", group=group)
        total = nl.xor2(t, c, name=prefix + "s", group=group)
        g1 = nl.and2(a, b, name=prefix + "g1", group=group)
        g2 = nl.and2(t, c, name=prefix + "g2", group=group)
        carry = nl.or2(g1, g2, name=prefix + "c", group=group)
        return total, carry

    if num_ones == 1:
        # x + y + 1: sum = NOT(x XOR y); carry = x OR y.
        if not live:
            return CONST1, CONST0
        if len(live) == 1:
            return nl.inv(live[0], name=prefix + "s", group=group), live[0]
        a, b = live
        total = nl.xnor2(a, b, name=prefix + "s", group=group)
        carry = nl.or2(a, b, name=prefix + "c", group=group)
        return total, carry

    if num_ones == 2:
        # x + 2: sum = x, carry = 1.
        return (live[0] if live else CONST0), CONST1

    return CONST1, CONST1  # 1 + 1 + 1 = 0b11


def kogge_stone_sum(
    nl: Netlist,
    a_bits: Sequence[int],
    b_bits: Sequence[int],
    prefix: str = "ks",
) -> List[int]:
    """Parallel-prefix (Kogge-Stone) addition of two bit vectors.

    Returns ``width + 1`` sum nets (carry-out on top) with O(log width)
    logic depth -- the carry-propagate stage the tree multipliers
    (Wallace, Booth) use so their overall depth stays logarithmic.
    Constant bits fold away, so unequal-length vectors are fine.
    """
    from .gatefold import fold_and, fold_or, fold_xor

    width = max(len(a_bits), len(b_bits))
    if width == 0:
        raise NetlistError("kogge_stone_sum needs at least one bit")

    def bit(bits, index):
        return bits[index] if index < len(bits) else CONST0

    propagate = [
        fold_xor(nl, bit(a_bits, i), bit(b_bits, i),
                 name="%s_p%d" % (prefix, i))
        for i in range(width)
    ]
    generate = [
        fold_and(nl, bit(a_bits, i), bit(b_bits, i),
                 name="%s_g%d" % (prefix, i))
        for i in range(width)
    ]

    # Prefix tree: after the last level, generate[i] is the carry out of
    # bit i (the group generate over [0, i]).
    group_p = list(propagate)
    group_g = list(generate)
    distance = 1
    level = 0
    while distance < width:
        new_p = list(group_p)
        new_g = list(group_g)
        for i in range(distance, width):
            tag = "%s_l%d_%d" % (prefix, level, i)
            carried = fold_and(nl, group_p[i], group_g[i - distance],
                               name=tag + "_a")
            new_g[i] = fold_or(nl, group_g[i], carried, name=tag + "_o")
            new_p[i] = fold_and(nl, group_p[i], group_p[i - distance],
                                name=tag + "_p")
        group_p, group_g = new_p, new_g
        distance *= 2
        level += 1

    sums = [propagate[0]]
    for i in range(1, width):
        sums.append(
            fold_xor(nl, propagate[i], group_g[i - 1],
                     name="%s_s%d" % (prefix, i))
        )
    sums.append(group_g[width - 1])
    return sums


def adaptive_hold_rca(
    width: int = 16,
    position: Optional[int] = None,
    library: CellLibrary = STANDARD_LIBRARY,
) -> Netlist:
    """An RCA with *two* hold-logic criteria for an adaptive VL adder.

    The aging-aware variable-latency adder (the paper's direct
    predecessors [20], [21]) needs the same relaxed/strict pair the
    multiplier AHL has:

    * ``hold`` (relaxed): ``p_a AND p_(a+1)`` -- two monitored stages
      both propagate, so the long carry chain may be live: take two
      cycles (fires on ~25% of random patterns, Fig. 4's criterion);
    * ``hold_strict``: ``(p_(a-1) AND p_a) OR (p_a AND p_(a+1))`` --
      any adjacent propagating pair across a wider window: fires more
      often, classifying more patterns as two-cycle once aging has
      eaten the timing margin.

    Ports: ``a``, ``b`` in; ``s`` (sum+carry), ``hold``, ``hold_strict``
    (1 bit each) out.
    """
    if width < 3:
        raise NetlistError("adaptive-hold RCA needs width >= 3")
    if position is None:
        position = width // 2
    if not 1 <= position < width - 1:
        raise NetlistError(
            "position must leave room for the 3-bit window, got %d"
            % position
        )
    nl = ripple_carry_adder(width, library, name="avl-rca-%d" % width)
    a = list(nl.input_ports["a"].nets)
    b = list(nl.input_ports["b"].nets)
    propagate = {
        k: nl.xor2(a[k], b[k], name="hp%d" % k)
        for k in (position - 1, position, position + 1)
    }
    relaxed = nl.and2(
        propagate[position], propagate[position + 1], name="hold_relaxed"
    )
    lower_pair = nl.and2(
        propagate[position - 1], propagate[position], name="hold_lower"
    )
    strict = nl.or2(lower_pair, relaxed, name="hold_strict_or")
    nl.add_output_port("hold", [relaxed])
    nl.add_output_port("hold_strict", [strict])
    nl.validate()
    return nl


def ripple_carry_adder(
    width: int,
    library: CellLibrary = STANDARD_LIBRARY,
    name: Optional[str] = None,
) -> Netlist:
    """Plain ``width``-bit ripple-carry adder.

    Ports: inputs ``a``, ``b`` (``width`` bits), output ``s``
    (``width + 1`` bits, carry-out on top).
    """
    if width < 1:
        raise NetlistError("width must be >= 1")
    nl = Netlist(name or "rca-%d" % width, library)
    a = nl.add_input_port("a", width)
    b = nl.add_input_port("b", width)
    carry = CONST0
    sums: List[int] = []
    for i in range(width):
        total, carry = carry_save_add(
            nl, a[i], b[i], carry, prefix="fa%d_" % i
        )
        sums.append(total)
    sums.append(carry)
    nl.add_output_port("s", sums)
    nl.validate()
    return nl


def variable_latency_rca(
    width: int = 8,
    hold_positions: Optional[Sequence[int]] = None,
    library: CellLibrary = STANDARD_LIBRARY,
) -> Netlist:
    """The Fig. 4 variable-latency RCA: an RCA plus its hold logic.

    The hold logic ANDs together ``a_i XOR b_i`` over ``hold_positions``
    (Fig. 4 uses bit positions 3 and 4, i.e. the 4th and 5th adders): if
    any monitored stage has equal inputs it kills the long carry chain,
    so the addition finishes within the short cycle; if all monitored
    stages propagate, the ``hold`` output is 1 and the operation takes
    two cycles.

    Ports: ``a``, ``b`` in; ``s`` (sum with carry-out) and ``hold``
    (1 bit) out.
    """
    if width < 2:
        raise NetlistError("variable-latency RCA needs width >= 2")
    if hold_positions is None:
        hold_positions = (width // 2 - 1, width // 2)
    nl = ripple_carry_adder(width, library, name="vl-rca-%d" % width)
    a = list(nl.input_ports["a"].nets)
    b = list(nl.input_ports["b"].nets)
    hold = None
    for position in hold_positions:
        if not 0 <= position < width:
            raise NetlistError(
                "hold position %d outside adder width %d" % (position, width)
            )
        propagate = nl.xor2(a[position], b[position], name="hp%d" % position)
        hold = (
            propagate
            if hold is None
            else nl.and2(hold, propagate, name="hand%d" % position)
        )
    nl.add_output_port("hold", [hold])
    nl.validate()
    return nl
