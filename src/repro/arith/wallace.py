"""Wallace-tree multiplier.

A classic fast-multiplier baseline: the partial-product AND plane feeds a
logarithmic-depth carry-save reduction tree instead of the linear
carry-save rows of the array multiplier (Fig. 1).  The paper's related
work contrasts variable-latency designs against such tree multipliers;
this implementation lets the benchmarks quantify the comparison on equal
footing (same cell library, same timing engine).

Note: this uses the straightforward column-wise greedy schedule, whose
tail carries ripple across columns and cost extra levels; the
:mod:`repro.arith.dadda` variant implements the height-targeted schedule
and reaches the textbook logarithmic depth.  Both are exact.

Wallace trees have a *much* flatter per-pattern delay distribution than
the array -- almost every pattern exercises a near-critical path -- which
is exactly why they are poor hosts for the paper's variable-latency
technique (no cheap one-cycle majority to exploit).  The ablation bench
``benchmarks/test_ablation_baselines_bench.py`` demonstrates this.
"""

from __future__ import annotations

from typing import Optional

from ..errors import NetlistError
from ..nets.cells import CellLibrary, STANDARD_LIBRARY
from ..nets.netlist import Netlist
from .array_mult import partial_products
from .reduction import Columns, add_to_column, columns_to_product


def wallace_multiplier(
    width: int,
    library: CellLibrary = STANDARD_LIBRARY,
    name: Optional[str] = None,
) -> Netlist:
    """Build a ``width x width`` unsigned Wallace-tree multiplier.

    Ports: ``md``, ``mr`` in; ``p`` (``2*width`` bits) out.
    """
    if width < 2:
        raise NetlistError("multiplier width must be >= 2")
    nl = Netlist(name or "wallace-%dx%d" % (width, width), library)
    md = nl.add_input_port("md", width)
    mr = nl.add_input_port("mr", width)
    pp = partial_products(nl, md, mr)

    columns: Columns = {}
    for i in range(width):
        for j in range(width):
            add_to_column(columns, i + j, pp[i][j])

    product = columns_to_product(nl, columns, 2 * width, prefix="wal")
    nl.add_output_port("p", product)
    nl.validate()
    return nl
