"""Golden behavioral models and operand helpers.

The structural generators are verified against these plain-integer
models: exhaustively for small widths, randomly for 16/32 bits.  The
zero-counting helpers implement the AHL judging criterion (the number of
zeros in the multiplicand / multiplicator decides one- vs two-cycle
execution, Section III-A).
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from ..errors import WorkloadError

ArrayLike = Union[Sequence[int], np.ndarray]


def golden_product(a: int, b: int, width: int) -> int:
    """Reference ``width x width`` unsigned product."""
    _check_operand(a, width)
    _check_operand(b, width)
    return a * b


def golden_products(a: ArrayLike, b: ArrayLike, width: int) -> np.ndarray:
    """Vectorized reference products as uint64 (width <= 32)."""
    if width > 32:
        raise WorkloadError("vectorized golden product supports width <= 32")
    a = np.asarray(a, dtype=np.uint64)
    b = np.asarray(b, dtype=np.uint64)
    limit = np.uint64(1) << np.uint64(width)
    if np.any(a >= limit) or np.any(b >= limit):
        raise WorkloadError("operand does not fit in %d bits" % width)
    return a * b


def golden_add(a: int, b: int, width: int) -> int:
    """Reference ``width``-bit addition with carry-out in bit ``width``."""
    _check_operand(a, width)
    _check_operand(b, width)
    return a + b


def count_zeros(value: ArrayLike, width: int) -> np.ndarray:
    """Number of zero bits in each ``width``-bit operand.

    This is the judging-block quantity: Skip-``n`` treats a pattern as
    one-cycle when this count is >= ``n``.
    """
    values = np.asarray(value, dtype=np.uint64)
    limit_ok = width >= 64 or not np.any(values >> np.uint64(width))
    if not limit_ok:
        raise WorkloadError("operand does not fit in %d bits" % width)
    return width - count_ones(values, width)


def count_ones(value: ArrayLike, width: int) -> np.ndarray:
    """Number of one bits in each ``width``-bit operand."""
    values = np.asarray(value, dtype=np.uint64)
    ones = np.zeros(values.shape, dtype=np.int64)
    for i in range(width):
        ones += ((values >> np.uint64(i)) & np.uint64(1)).astype(np.int64)
    return ones


def _check_operand(value: int, width: int) -> None:
    if width < 1:
        raise WorkloadError("width must be >= 1")
    if value < 0 or (width < 64 and value >> width):
        raise WorkloadError(
            "operand %d does not fit in %d bits" % (value, width)
        )
