"""Dadda multiplier.

Same AND plane and final prefix adder as the Wallace tree, but with the
lazy Dadda reduction schedule: each stage compresses only down to the
next height in the 2, 3, 4, 6, 9, 13, ... sequence, spending the
minimum number of full/half adders.  Included as the area-lean member
of the tree-multiplier baseline family (``ext_baselines``).
"""

from __future__ import annotations

from typing import Optional

from ..errors import NetlistError
from ..nets.cells import CellLibrary, STANDARD_LIBRARY
from ..nets.netlist import CONST0, Netlist
from .adders import kogge_stone_sum
from .array_mult import partial_products
from .reduction import Columns, add_to_column, reduce_columns


def dadda_multiplier(
    width: int,
    library: CellLibrary = STANDARD_LIBRARY,
    name: Optional[str] = None,
) -> Netlist:
    """Build a ``width x width`` unsigned Dadda multiplier.

    Ports: ``md``, ``mr`` in; ``p`` (``2*width`` bits) out.
    """
    if width < 2:
        raise NetlistError("multiplier width must be >= 2")
    nl = Netlist(name or "dadda-%dx%d" % (width, width), library)
    md = nl.add_input_port("md", width)
    mr = nl.add_input_port("mr", width)
    pp = partial_products(nl, md, mr)

    columns: Columns = {}
    for i in range(width):
        for j in range(width):
            add_to_column(columns, i + j, pp[i][j])

    reduced = reduce_columns(nl, columns, prefix="dad", strategy="dadda")
    out_width = 2 * width
    a_bits = []
    b_bits = []
    for weight in range(out_width):
        nets = reduced.get(weight, [])
        if len(nets) > 2:
            raise NetlistError("column %d not fully reduced" % weight)
        a_bits.append(nets[0] if len(nets) >= 1 else CONST0)
        b_bits.append(nets[1] if len(nets) >= 2 else CONST0)
    product = kogge_stone_sum(nl, a_bits, b_bits, prefix="dadcpa")[:out_width]
    nl.add_output_port("p", product)
    nl.validate()
    return nl
