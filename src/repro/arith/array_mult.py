"""Plain carry-save array multiplier (paper Fig. 1).

Structure: an AND plane of partial products ``pp(i, j) = md_j AND mr_i``,
``width - 1`` rows of carry-save adders, and a final ripple row for carry
propagation.  Row ``i`` adds partial-product row ``i`` (absolute weights
``i .. i + width - 1``) to the running sum and the carries emitted by the
row above; the rightmost sum of each row drops out as a final product
bit.  This is the AM baseline of every figure in Section IV.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import NetlistError
from ..nets.cells import CellLibrary, STANDARD_LIBRARY
from ..nets.netlist import CONST0, Netlist
from .adders import carry_save_add


def partial_products(nl: Netlist, md, mr) -> List[List[int]]:
    """The AND plane: ``pp[i][j] = md[j] AND mr[i]``."""
    return [
        [
            nl.and2(md[j], mr[i], name="pp_%d_%d" % (i, j))
            for j in range(len(md))
        ]
        for i in range(len(mr))
    ]


def array_multiplier(
    width: int,
    library: CellLibrary = STANDARD_LIBRARY,
    name: Optional[str] = None,
) -> Netlist:
    """Build a ``width x width`` unsigned array multiplier.

    Ports: ``md`` (multiplicand), ``mr`` (multiplicator), ``p``
    (``2 * width``-bit product).
    """
    if width < 2:
        raise NetlistError("multiplier width must be >= 2")
    nl = Netlist(name or "am-%dx%d" % (width, width), library)
    md = nl.add_input_port("md", width)
    mr = nl.add_input_port("mr", width)
    pp = partial_products(nl, md, mr)

    product: List[Optional[int]] = [None] * (2 * width)
    # Running sum bits by absolute weight; carries emitted by the row
    # above, also by absolute weight.
    sums: Dict[int, int] = {w: pp[0][w] for w in range(width)}
    carries: Dict[int, int] = {}
    product[0] = sums[0]

    for i in range(1, width):
        new_sums: Dict[int, int] = {}
        new_carries: Dict[int, int] = {}
        for w in range(i, i + width):
            total, carry = carry_save_add(
                nl,
                pp[i][w - i],
                sums.get(w, CONST0),
                carries.get(w, CONST0),
                prefix="r%d_w%d_" % (i, w),
            )
            new_sums[w] = total
            if carry != CONST0:
                new_carries[w + 1] = carry
        product[i] = new_sums[i]
        sums, carries = new_sums, new_carries

    _final_ripple(nl, width, sums, carries, product)
    nl.add_output_port("p", [net for net in product])
    nl.validate()
    return nl


def _final_ripple(
    nl: Netlist,
    width: int,
    sums: Dict[int, int],
    carries: Dict[int, int],
    product: List[Optional[int]],
) -> None:
    """The carry-propagating last row shared by AM and column bypassing.

    Adds the surviving sum and carry vectors over weights
    ``width .. 2*width - 2``; the top product bit combines the final
    ripple carry with the leftmost carry-save carry (their sum never
    overflows because the product fits in ``2*width`` bits).
    """
    ripple = CONST0
    for w in range(width, 2 * width - 1):
        product[w], ripple = carry_save_add(
            nl,
            sums.get(w, CONST0),
            carries.get(w, CONST0),
            ripple,
            prefix="fin_w%d_" % w,
        )
    top_carry = carries.get(2 * width - 1, CONST0)
    if ripple == CONST0:
        product[2 * width - 1] = top_carry
    elif top_carry == CONST0:
        product[2 * width - 1] = ripple
    else:
        product[2 * width - 1] = nl.xor2(ripple, top_carry, name="fin_top")
