"""Column-bypassing multiplier (Wen et al. [22]; paper Fig. 2).

In the array multiplier, all full adders whose partial product uses
multiplicand bit ``md_d`` form a diagonal, and -- crucially -- the
carry-save carry chains stay *within* that diagonal.  So when ``md_d``
is 0 every partial product and every internal carry of the diagonal is 0:
each full adder there would only copy its upper sum input downwards.

The bypass exploits this exactly: per full adder, two tri-state gates
freeze the sum/carry inputs (no switching, the power saving), a
multiplexer driven by ``md_d`` routes the upper sum straight down, and an
AND gate forces the emitted carry to 0.  The transformation is *exact*
(not approximate): the bypassed outputs equal what the full adder would
have produced, so the netlist stays functionally identical to the array
multiplier -- the tests verify this exhaustively.

Because a skipped diagonal costs one mux instead of a full sum/carry
evaluation, the per-pattern path delay drops as the number of zeros in
the multiplicand grows -- the property the AHL judging blocks key on
(paper Fig. 6).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import NetlistError
from ..nets.cells import CellLibrary, STANDARD_LIBRARY
from ..nets.netlist import CONST0, Netlist
from .adders import carry_save_add
from .array_mult import _final_ripple, partial_products


def column_bypass_multiplier(
    width: int,
    library: CellLibrary = STANDARD_LIBRARY,
    name: Optional[str] = None,
) -> Netlist:
    """Build a ``width x width`` column-bypassing multiplier.

    Ports: ``md`` (multiplicand, also the bypass selects), ``mr``
    (multiplicator), ``p`` (product).  Cells of bypass diagonal ``d``
    carry group tag ``"cbd<d>"`` with ``md_d`` as the group enable, which
    the power model uses to freeze their switching when bypassed.
    """
    if width < 2:
        raise NetlistError("multiplier width must be >= 2")
    nl = Netlist(name or "cb-%dx%d" % (width, width), library)
    md = nl.add_input_port("md", width)
    mr = nl.add_input_port("mr", width)
    pp = partial_products(nl, md, mr)

    registered_groups = set()
    product: List[Optional[int]] = [None] * (2 * width)
    sums: Dict[int, int] = {w: pp[0][w] for w in range(width)}
    carries: Dict[int, int] = {}
    product[0] = sums[0]

    for i in range(1, width):
        new_sums: Dict[int, int] = {}
        new_carries: Dict[int, int] = {}
        for w in range(i, i + width):
            d = w - i
            select = md[d]
            group = "cbd%d" % d
            if group not in registered_groups:
                nl.set_group_enable(group, select)
                registered_groups.add(group)

            sum_in = sums.get(w, CONST0)
            carry_in = carries.get(w, CONST0)
            prefix = "r%d_w%d_" % (i, w)

            gated_sum = (
                nl.tribuf(sum_in, select, name=prefix + "ts", group=group)
                if sum_in != CONST0
                else CONST0
            )
            gated_carry = (
                nl.tribuf(carry_in, select, name=prefix + "tc", group=group)
                if carry_in != CONST0
                else CONST0
            )
            fa_sum, fa_carry = carry_save_add(
                nl, pp[i][d], gated_sum, gated_carry, group=group, prefix=prefix
            )

            # Bypass mux: when md_d is 0 the upper sum drops straight
            # through; the emitted carry is forced to 0 (it is provably 0
            # inside a bypassed diagonal, so this is exact).
            if fa_sum == sum_in:
                new_sums[w] = sum_in  # degenerate cell, nothing to bypass
            else:
                new_sums[w] = nl.mux2(
                    sum_in, fa_sum, select, name=prefix + "smux"
                )
            if fa_carry != CONST0:
                new_carries[w + 1] = nl.and2(
                    select, fa_carry, name=prefix + "cmask"
                )
        product[i] = new_sums[i]
        sums, carries = new_sums, new_carries

    _final_ripple(nl, width, sums, carries, product)
    nl.add_output_port("p", [net for net in product])
    nl.validate()
    return nl
