"""Radix-4 (modified) Booth multiplier.

The related-work baseline of the paper's reference [18] (variable-latency
*Booth* pipelines): the multiplicator is recoded into ``width/2 + 1``
signed digits in {-2,-1,0,+1,+2}, halving the partial-product count; the
rows are summed by the shared carry-save column reducer.

Unsigned semantics: both operands are treated as non-negative two's
complement values (a zero sign bit is appended), negative digit rows are
realized with the standard invert-and-add-one identity, and sign
extension runs to the full ``2*width`` columns with arithmetic taken
modulo ``2^(2*width)`` -- which is exact for unsigned products.  The
tests verify exhaustive equality with integer multiplication.

Booth encoding per digit i over the triplet
``(mr[2i+1], mr[2i], mr[2i-1])``::

    one = mid XOR lo               # digit magnitude 1
    two = (hi XOR mid) AND NOT(mid XOR lo)   # digit magnitude 2
    neg = hi                       # digit sign

(the all-ones triplet encodes digit 0; ``neg=1`` with zero magnitude is
harmless because ``~0 + 1 = 0`` in two's complement.)
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import NetlistError
from ..nets.netlist import CONST0, CONST1, Netlist
from ..nets.cells import CellLibrary, STANDARD_LIBRARY
from .gatefold import fold_and as _and, fold_or as _or, fold_xnor as _xnor, fold_xor as _xor
from .reduction import Columns, add_to_column, columns_to_product


class _BoothDigit:
    """Encoded control signals of one radix-4 digit."""

    def __init__(self, nl: Netlist, hi: int, mid: int, lo: int, tag: str):
        mid_lo = _xor(nl, mid, lo, name=tag + "_one")
        self.one = mid_lo
        hi_mid = _xor(nl, hi, mid)
        same_mid_lo = (
            _xnor(nl, mid, lo, name=tag + "_same")
            if mid_lo not in (CONST0, CONST1)
            else (CONST1 if mid_lo == CONST0 else CONST0)
        )
        self.two = _and(nl, hi_mid, same_mid_lo, name=tag + "_two")
        self.neg = hi


def booth_multiplier(
    width: int,
    library: CellLibrary = STANDARD_LIBRARY,
    name: Optional[str] = None,
) -> Netlist:
    """Build a ``width x width`` unsigned radix-4 Booth multiplier.

    Ports: ``md``, ``mr`` in; ``p`` (``2*width`` bits) out.
    """
    if width < 2:
        raise NetlistError("multiplier width must be >= 2")
    nl = Netlist(name or "booth-%dx%d" % (width, width), library)
    md = nl.add_input_port("md", width)
    mr = nl.add_input_port("mr", width)
    out_width = 2 * width

    def mr_bit(index: int) -> int:
        return mr[index] if 0 <= index < width else CONST0

    def md_bit(index: int) -> int:
        return md[index] if 0 <= index < width else CONST0

    columns: Columns = {}
    num_digits = width // 2 + 1
    for i in range(num_digits):
        tag = "bd%d" % i
        digit = _BoothDigit(
            nl,
            hi=mr_bit(2 * i + 1),
            mid=mr_bit(2 * i),
            lo=mr_bit(2 * i - 1),
            tag=tag,
        )
        offset = 2 * i
        # Magnitude bits: one*md + two*(md << 1), width+1 bits.
        for j in range(width + 1):
            single = _and(nl, digit.one, md_bit(j))
            double = _and(nl, digit.two, md_bit(j - 1))
            magnitude = _or(nl, single, double, name="%s_m%d" % (tag, j))
            bit = _xor(nl, magnitude, digit.neg, name="%s_p%d" % (tag, j))
            weight = offset + j
            if weight < out_width:
                add_to_column(columns, weight, bit)
        # Sign extension of the inverted row to the product width.
        if digit.neg != CONST0:
            for weight in range(offset + width + 1, out_width):
                add_to_column(columns, weight, digit.neg)
            # The +1 completing the two's complement negation.
            add_to_column(columns, offset, digit.neg)

    product = columns_to_product(nl, columns, out_width, prefix="booth")
    nl.add_output_port("p", product)
    nl.validate()
    return nl


def booth_digit_values(mr_value: int, width: int) -> List[int]:
    """Reference radix-4 recoding (used by tests): digits, LSB first."""
    digits = []
    padded = mr_value << 1  # b_{-1} = 0
    for i in range(width // 2 + 1):
        triplet = (padded >> (2 * i)) & 0b111
        digits.append(
            {0: 0, 1: 1, 2: 1, 3: 2, 4: -2, 5: -1, 6: -1, 7: 0}[triplet]
        )
    return digits
