"""Arithmetic circuit generators.

Structural gate-level generators for every datapath the paper uses:

* :func:`ripple_carry_adder` and :func:`variable_latency_rca` -- the
  8-bit motivating example of Fig. 4 (RCA + hold logic);
* :func:`array_multiplier` -- the plain carry-save array multiplier (AM,
  Fig. 1), the paper's performance baseline;
* :func:`column_bypass_multiplier` -- Wen et al. [22] (Fig. 2): full
  adders along a multiplicand diagonal are skipped when that multiplicand
  bit is 0;
* :func:`row_bypass_multiplier` -- Ohban et al. [23] (Fig. 3): whole rows
  are skipped when the multiplicator bit is 0, with deferred-carry muxes
  and the extended final adder that re-absorbs dropped carries;
* :func:`wallace_multiplier` and :func:`booth_multiplier` -- the classic
  fast-multiplier baselines of the related work (tree reduction and
  radix-4 recoding), built on the shared column reducer
  (:mod:`repro.arith.reduction`).

All generators return a validated :class:`repro.nets.Netlist` with ports
``md`` (multiplicand), ``mr`` (multiplicator) and ``p`` (product), and are
verified exhaustively against :mod:`repro.arith.reference` in the tests.
"""

from .adders import (
    carry_save_add,
    half_add,
    ripple_carry_adder,
    variable_latency_rca,
)
from .array_mult import array_multiplier
from .booth import booth_multiplier
from .column_bypass import column_bypass_multiplier
from .dadda import dadda_multiplier
from .row_bypass import row_bypass_multiplier
from .wallace import wallace_multiplier
from .reference import (
    count_ones,
    count_zeros,
    golden_add,
    golden_product,
    golden_products,
)

__all__ = [
    "array_multiplier",
    "booth_multiplier",
    "carry_save_add",
    "column_bypass_multiplier",
    "count_ones",
    "dadda_multiplier",
    "count_zeros",
    "golden_add",
    "golden_product",
    "golden_products",
    "half_add",
    "ripple_carry_adder",
    "row_bypass_multiplier",
    "variable_latency_rca",
    "wallace_multiplier",
]
