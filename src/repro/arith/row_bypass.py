"""Row-bypassing multiplier (Ohban et al. [23]; paper Fig. 3).

When multiplicator bit ``mr_i`` is 0, every partial product of row ``i``
is 0, so the row's full adders would only recombine the sum and carry
vectors arriving from above.  The bypass skips that work:

* tri-state gates freeze the row's full-adder inputs (the power saving);
* a sum mux passes each upper sum bit straight down;
* a *deferred-carry* mux hands each carry that the row would have
  consumed to the row below unchanged -- the pair (sum, carry) at equal
  weight carries the same arithmetic value whether or not the row
  recombines it, so this is exact;
* the one carry that has no slot below (the row's rightmost, at weight
  ``i``) is *dropped* onto a correction rail and re-absorbed by an
  extended final adder that spans the low product bits.

The extended final adder is the "extra circuit" visible at the bottom of
the paper's Fig. 3; it is also why the row-bypassing multiplier is larger
than the column-bypassing one (Fig. 25) and why its critical path carries
more multiplexers (Section IV-A).  Functional equivalence with the plain
array multiplier is verified exhaustively in the tests.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import NetlistError
from ..nets.cells import CellLibrary, STANDARD_LIBRARY
from ..nets.netlist import CONST0, Netlist
from .adders import carry_save_add
from .array_mult import partial_products


def row_bypass_multiplier(
    width: int,
    library: CellLibrary = STANDARD_LIBRARY,
    name: Optional[str] = None,
) -> Netlist:
    """Build a ``width x width`` row-bypassing multiplier.

    Ports: ``md`` (multiplicand), ``mr`` (multiplicator, also the bypass
    selects), ``p`` (product).  Cells of bypassed row ``i`` carry group
    tag ``"rbr<i>"`` with ``mr_i`` as the group enable.
    """
    if width < 2:
        raise NetlistError("multiplier width must be >= 2")
    nl = Netlist(name or "rb-%dx%d" % (width, width), library)
    md = nl.add_input_port("md", width)
    mr = nl.add_input_port("mr", width)
    pp = partial_products(nl, md, mr)

    product: List[Optional[int]] = [None] * (2 * width)
    sums: Dict[int, int] = {w: pp[0][w] for w in range(width)}
    # Carries *into* the current row, by absolute weight (CIN(i, w)).
    cin: Dict[int, int] = {}
    # Dropped rightmost carries, re-absorbed by the extended final adder.
    dropped: Dict[int, int] = {}
    product[0] = sums[0]

    for i in range(1, width):
        select = mr[i]
        group = "rbr%d" % i
        nl.set_group_enable(group, select)
        select_n = None

        new_sums: Dict[int, int] = {}
        fa_carries: Dict[int, int] = {}
        for w in range(i, i + width):
            sum_in = sums.get(w, CONST0)
            carry_in = cin.get(w, CONST0)
            prefix = "r%d_w%d_" % (i, w)

            gated_sum = (
                nl.tribuf(sum_in, select, name=prefix + "ts", group=group)
                if sum_in != CONST0
                else CONST0
            )
            gated_carry = (
                nl.tribuf(carry_in, select, name=prefix + "tc", group=group)
                if carry_in != CONST0
                else CONST0
            )
            fa_sum, fa_carry = carry_save_add(
                nl, pp[i][w - i], gated_sum, gated_carry, group=group,
                prefix=prefix,
            )
            if fa_sum == sum_in:
                new_sums[w] = sum_in
            else:
                new_sums[w] = nl.mux2(
                    sum_in, fa_sum, select, name=prefix + "smux"
                )
            if fa_carry != CONST0:
                fa_carries[w + 1] = fa_carry

        # The carry at the row's rightmost weight has no slot below when
        # the row is bypassed: divert it to the correction rail.
        right_cin = cin.get(i, CONST0)
        if right_cin != CONST0:
            if select_n is None:
                select_n = nl.inv(select, name="r%d_seln" % i)
            dropped[i] = nl.and2(select_n, right_cin, name="r%d_drop" % i)

        # Deferred-carry muxes: the row below sees either this row's
        # computed carries (active) or the carries this row received
        # (bypassed), at identical weights.
        new_cin: Dict[int, int] = {}
        for wp in range(i + 1, i + width + 1):
            deferred = cin.get(wp, CONST0)
            computed = fa_carries.get(wp, CONST0)
            if deferred == CONST0 and computed == CONST0:
                continue
            if deferred == computed:
                new_cin[wp] = deferred
            else:
                new_cin[wp] = nl.mux2(
                    deferred, computed, select, name="r%d_w%d_cmux" % (i, wp)
                )
        product[i] = new_sums[i]
        sums, cin = new_sums, new_cin

    _extended_final_adder(nl, width, sums, cin, dropped, product)
    nl.add_output_port("p", [net for net in product])
    nl.validate()
    return nl


def _extended_final_adder(
    nl: Netlist,
    width: int,
    sums: Dict[int, int],
    cin: Dict[int, int],
    dropped: Dict[int, int],
    product: List[Optional[int]],
) -> None:
    """Carry-propagating last row extended over the low product bits.

    Low half (weights ``1 .. width-1``): re-absorb the dropped carries
    into the already-produced product bits.  High half (weights
    ``width .. 2*width-2``): the usual sum+carry ripple.  The top bit
    combines the final ripple carry with the leftmost deferred carry.
    """
    ripple = CONST0
    for w in range(1, width):
        product[w], ripple = carry_save_add(
            nl, product[w], dropped.get(w, CONST0), ripple,
            prefix="finlo_w%d_" % w,
        )
    for w in range(width, 2 * width - 1):
        product[w], ripple = carry_save_add(
            nl, sums.get(w, CONST0), cin.get(w, CONST0), ripple,
            prefix="finhi_w%d_" % w,
        )
    top_carry = cin.get(2 * width - 1, CONST0)
    if ripple == CONST0:
        product[2 * width - 1] = top_carry
    elif top_carry == CONST0:
        product[2 * width - 1] = ripple
    else:
        product[2 * width - 1] = nl.xor2(ripple, top_carry, name="fin_top")
