"""Process-sharded execution of fault-injection campaigns.

:func:`run_sharded` fans a campaign's pending site indices out over a
:class:`concurrent.futures.ProcessPoolExecutor`.  Each worker receives
the pickled :class:`~repro.faults.campaign.InjectionCampaign` once (via
the pool initializer) and then simulates batches of site *indices*, so
per-site traffic is a couple of integers out and one
:class:`~repro.faults.campaign.SiteReport` back.

Determinism contract (why sharded == serial, bit for bit):

* the operand stream (``md``/``mr``) is drawn **once** in the parent's
  campaign constructor and shipped to workers inside the pickled
  campaign -- workers never touch an RNG;
* SEU flip decisions are a stateless counter hash of ``(fault seed,
  net, global pattern index)`` (see :class:`~repro.faults.models
  .TransientBitFlip`), so they are independent of which process -- or
  which chunk -- simulates the site.  Unique-stimulus folding
  (:mod:`repro.timing.fold`) would renumber those global indices, which
  is why the engine refuses to fold any circuit carrying fault hooks:
  ``run_site``'s ``fold=True`` is a no-op for value-corrupting faults
  and only ever folds pure delay faults, keeping flips deterministic;
* every site is simulated independently (single-fault campaigns share
  no state), so completion *order* cannot influence any report, and the
  parent reassembles results by site index.

Together these make the shard boundaries pure scheduling: ``workers=8``
and ``workers=1`` produce identical :class:`CampaignResult` s, which is
asserted by ``tests/test_campaign_exec.py`` and the campaign benchmark.

A ``KeyboardInterrupt`` in the parent cancels all queued batches,
terminates the pool without waiting for stragglers, and re-raises so
:meth:`InjectionCampaign.run` can flush its checkpoint and report
partial coverage.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Callable, List, Optional, Sequence, Tuple

from ..errors import FaultError

#: Worker-process global: the campaign shipped by the pool initializer.
_WORKER_CAMPAIGN = None


def _init_worker(campaign) -> None:
    global _WORKER_CAMPAIGN
    _WORKER_CAMPAIGN = campaign


def _simulate_batch(indices: Sequence[int]) -> List[Tuple[int, object]]:
    """Run a batch of site indices in the worker; returns reports."""
    campaign = _WORKER_CAMPAIGN
    if campaign is None:  # pragma: no cover - initializer always ran
        raise FaultError("worker has no campaign (initializer not run)")
    out = []
    for index in indices:
        report, _ = campaign.run_site(
            campaign.faults[index], campaign.site_ids[index]
        )
        out.append((index, report))
    return out


def make_batches(
    pending: Sequence[int], workers: int, chunk_size: Optional[int] = None
) -> List[List[int]]:
    """Split pending site indices into per-worker batches.

    Defaults to ~4 batches per worker so a slow site (one fault can cost
    many recovery cycles) does not straggle the whole shard, while a
    batch still amortizes the submit/pickle overhead over several sites.
    """
    if not pending:
        return []
    if chunk_size is None:
        chunk_size = max(1, -(-len(pending) // (workers * 4)))
    if chunk_size < 1:
        raise FaultError("chunk_size must be >= 1, got %d" % chunk_size)
    return [
        list(pending[start:start + chunk_size])
        for start in range(0, len(pending), chunk_size)
    ]


def run_sharded(
    campaign,
    pending: Sequence[int],
    workers: int,
    chunk_size: Optional[int] = None,
    on_result: Optional[Callable[[int, object], None]] = None,
) -> List[Tuple[int, object]]:
    """Simulate ``pending`` site indices across ``workers`` processes.

    ``on_result(index, report)`` fires in the parent as each site
    completes (checkpoint appends hook in here); the full index->report
    list is also returned.  Batches complete out of order; callers index
    reports by site, never by arrival.
    """
    if workers < 2:
        raise FaultError(
            "run_sharded needs workers >= 2 (use InjectionCampaign.run "
            "for serial execution)"
        )
    batches = make_batches(pending, workers, chunk_size)
    results: List[Tuple[int, object]] = []
    executor = ProcessPoolExecutor(
        max_workers=min(workers, max(1, len(batches))),
        initializer=_init_worker,
        initargs=(campaign,),
    )
    try:
        futures = {executor.submit(_simulate_batch, b) for b in batches}
        while futures:
            done, futures = wait(futures, return_when=FIRST_COMPLETED)
            for future in done:
                for index, report in future.result():
                    results.append((index, report))
                    if on_result is not None:
                        on_result(index, report)
    finally:
        # On KeyboardInterrupt (or any error) every still-queued batch
        # is cancelled; in-flight batches finish and are discarded.  The
        # campaign layer then flushes its checkpoint with what already
        # completed and reports partial coverage.
        executor.shutdown(wait=True, cancel_futures=True)
    return results
