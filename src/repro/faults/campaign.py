"""Fault-injection campaigns over the aging-aware architecture.

An :class:`InjectionCampaign` sweeps a list of single-fault sites over
one :class:`~repro.core.architecture.AgingAwareMultiplier`: for every
site it compiles the faulty circuit, streams the same operands through
it, feeds the faulty per-pattern delays and products through the healthy
Razor/AHL control loop, and classifies every corrupted pattern as
*detected* (Razor flagged it) or *silent* (the corruption arrived early
enough to latch cleanly -- the coverage hole value faults exploit).

The campaign never aborts mid-sweep: site runs execute under the
architecture's configured recovery policy (``degrade`` by default), so
even sites that push arrivals past the shadow window complete and are
reported.  A campaign with zero faults is bit-identical to the pristine
baseline run -- property-tested, and the sanity anchor for every
coverage number produced here.

Campaign execution (this layer's production contract):

* **Stable site ids** -- every fault has a canonical
  :meth:`~repro.faults.models.FaultModel.site_id` derived purely from
  its parameters, so a site means the same thing across processes and
  interpreter runs (duplicates are suffixed ``#k`` in campaign order).
* **Checkpointing** -- ``run(checkpoint=path)`` persists each
  :class:`SiteReport` to a JSONL :class:`~repro.faults.store
  .CheckpointStore` as it completes; ``resume=True`` (the default)
  skips sites already recorded for the same campaign fingerprint.
* **Sharding** -- ``run(workers=N)`` fans the pending sites out over a
  :class:`concurrent.futures.ProcessPoolExecutor`
  (:mod:`repro.faults.parallel`).  All randomness (operand streams,
  SEU flips) is either drawn up-front in the parent or a stateless
  counter hash, so the sharded sweep is bit-identical to the serial
  one regardless of worker count or chunk boundaries.
* **Graceful interruption** -- a SIGINT / :class:`KeyboardInterrupt`
  mid-sweep flushes the checkpoint and raises
  :class:`~repro.errors.CampaignInterrupted` carrying the partial
  :class:`CampaignResult`, so partial coverage is still reportable and
  the next ``run`` resumes where the sweep stopped.
* **Logic-cone pruning** -- ``prune=True`` (default) skips simulating
  sites whose forward cone cannot reach any observed product bit
  (:meth:`~repro.timing.engine.CompiledCircuit.output_reach_mask`);
  such sites provably reproduce the baseline run, so their reports are
  synthesized exactly (property-tested) at zero simulation cost.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..aging.electromigration import cell_toggle_rates
from ..arith.reference import golden_products
from ..core.architecture import AgingAwareMultiplier
from ..core.stats import ArchitectureRunResult
from ..errors import CampaignInterrupted, FaultError
from .injector import (
    compile_with_faults,
    em_fault_sites,
    enumerate_fault_sites,
)
from .models import FaultModel

#: Progress callback: ``(site_report, completed, total)``, invoked after
#: every finished site (resumed and pruned sites included).
ProgressFn = Callable[["SiteReport", int, int], None]


@dataclasses.dataclass(frozen=True)
class SiteReport:
    """Detection/recovery statistics of one fault site.

    Attributes:
        label: Human-readable site description.
        kind: Fault class tag (``stuck-at-0``, ``transient``, ...).
        corrupted_ops: Patterns whose product differed from golden.
        detected_ops: Corrupted patterns the Razor bank flagged.
        silent_ops: Corrupted patterns that latched without a flag.
        razor_errors: All Razor detections (corrupted or not -- a delay
            fault can be caught and fixed by re-execution).
        undetectable_ops: One-cycle patterns past the shadow window.
        recovered_ops: Over-budget patterns absorbed by the fallback.
        exhausted_ops: Patterns that hit the fallback cap.
        avg_latency_ns: Mean latency under the fault.
        indicator_aged_at: Operation index where the AHL switched to
            Skip-(n+1) under this fault (-1: never).
        site_id: Canonical fault site id (checkpoint key).
        pruned: True when the report was synthesized by logic-cone
            pruning instead of simulated (bit-exact either way).
    """

    label: str
    kind: str
    corrupted_ops: int
    detected_ops: int
    silent_ops: int
    razor_errors: int
    undetectable_ops: int
    recovered_ops: int
    exhausted_ops: int
    avg_latency_ns: float
    indicator_aged_at: int
    site_id: str = ""
    pruned: bool = False

    @property
    def detection_fraction(self) -> float:
        """Detected fraction of corrupted patterns (1.0 when nothing
        was corrupted -- a benign site has full coverage by default)."""
        if self.corrupted_ops == 0:
            return 1.0
        return self.detected_ops / self.corrupted_ops

    def summary(self) -> Dict[str, float]:
        return {
            "site_id": self.site_id,
            "kind": self.kind,
            "corrupted_ops": self.corrupted_ops,
            "detected_ops": self.detected_ops,
            "silent_ops": self.silent_ops,
            "detection_fraction": self.detection_fraction,
            "avg_latency_ns": self.avg_latency_ns,
        }

    def to_dict(self) -> Dict:
        """JSON-ready dict -- the checkpoint store's line payload."""
        data = dataclasses.asdict(self)
        data["detection_fraction"] = self.detection_fraction
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "SiteReport":
        """Inverse of :meth:`to_dict` (ignores derived/unknown keys)."""
        fields = {f.name for f in dataclasses.fields(cls)}
        try:
            return cls(**{k: v for k, v in data.items() if k in fields})
        except TypeError as exc:
            raise FaultError(
                "malformed site report payload: %s" % (exc,)
            ) from None


@dataclasses.dataclass
class CampaignResult:
    """Per-site reports plus the pristine baseline they compare against."""

    design: str
    num_patterns: int
    years: float
    baseline: ArchitectureRunResult
    sites: List[SiteReport]
    #: Sites whose report was synthesized by logic-cone pruning (their
    #: ``SiteReport.pruned`` flag is set, surviving checkpoint resume).
    pruned_sites: int = 0
    #: Sites restored from a checkpoint instead of re-simulated.
    resumed_sites: int = 0
    #: Sites actually simulated during this sweep (neither pruned nor
    #: restored from the checkpoint).
    simulated_sites: int = 0
    #: Sites the campaign was asked to run (== len(sites) unless the
    #: sweep was interrupted and this is a partial result).
    requested_sites: int = -1

    def __post_init__(self):
        if self.requested_sites < 0:
            self.requested_sites = len(self.sites)

    @property
    def num_sites(self) -> int:
        return len(self.sites)

    @property
    def complete(self) -> bool:
        """False for the partial result of an interrupted sweep."""
        return self.num_sites == self.requested_sites

    @property
    def corrupting_sites(self) -> int:
        """Sites whose fault corrupted at least one product."""
        return sum(1 for s in self.sites if s.corrupted_ops > 0)

    def detection_coverage(self, kind: Optional[str] = None) -> float:
        """Mean per-site detection fraction over corrupting sites."""
        picked = [
            s
            for s in self.sites
            if s.corrupted_ops > 0 and (kind is None or s.kind == kind)
        ]
        if not picked:
            return 1.0
        return float(
            np.mean([s.detection_fraction for s in picked])
        )

    def silent_corruption_rate(self) -> float:
        """Silent corrupted patterns per simulated pattern, over sites."""
        total = self.num_sites * self.num_patterns
        if total == 0:
            return 0.0
        return sum(s.silent_ops for s in self.sites) / total

    def by_kind(self) -> Dict[str, List[SiteReport]]:
        kinds: Dict[str, List[SiteReport]] = {}
        for site in self.sites:
            kinds.setdefault(site.kind, []).append(site)
        return kinds

    # -- uniform serialization protocol (analysis.serialize) -----------

    def summary(self) -> Dict:
        """Flat scalar summary -- what the benchmark JSON records."""
        return {
            "design": self.design,
            "num_patterns": self.num_patterns,
            "years": self.years,
            "policy": self.baseline.report.policy,
            "baseline_latency_ns": self.baseline.report.average_latency_ns,
            "sites_total": self.num_sites,
            "sites_requested": self.requested_sites,
            "sites_corrupting": self.corrupting_sites,
            "sites_pruned": self.pruned_sites,
            "sites_resumed": self.resumed_sites,
            "sites_simulated": self.simulated_sites,
            "complete": self.complete,
            "detection_coverage": self.detection_coverage(),
            "silent_corruption_rate": self.silent_corruption_rate(),
        }

    def to_dict(self) -> Dict:
        data = self.summary()
        data["baseline"] = self.baseline.to_dict()
        data["sites"] = [site.to_dict() for site in self.sites]
        return data

    def render(self) -> str:
        from ..analysis.tables import format_table

        rows = []
        for kind, sites in sorted(self.by_kind().items()):
            corrupting = [s for s in sites if s.corrupted_ops > 0]
            rows.append(
                [
                    kind,
                    len(sites),
                    len(corrupting),
                    self.detection_coverage(kind),
                    float(np.mean([s.avg_latency_ns for s in sites])),
                    sum(s.recovered_ops for s in sites),
                    sum(s.exhausted_ops for s in sites),
                ]
            )
        info = self.summary()
        header = (
            "%s: %d/%d sites x %d patterns (baseline %.4g ns/op, policy %s)"
            % (
                info["design"],
                info["sites_total"],
                info["sites_requested"],
                info["num_patterns"],
                info["baseline_latency_ns"],
                info["policy"],
            )
        )
        extras = "pruned %d, resumed %d, simulated %d%s" % (
            info["sites_pruned"],
            info["sites_resumed"],
            info["sites_simulated"],
            "" if info["complete"] else "  [PARTIAL -- interrupted]",
        )
        table = format_table(
            [
                "fault kind",
                "sites",
                "corrupting",
                "detection",
                "ns/op",
                "recovered",
                "exhausted",
            ],
            rows,
        )
        return header + "\n" + extras + "\n" + table


def campaign_from_spec(spec: Dict) -> "InjectionCampaign":
    """Rebuild a campaign from a small JSON-able spec dict.

    This is the distributed transport: remote workers and the
    ``faults merge`` subcommand reconstruct the exact campaign from the
    same handful of CLI-level parameters instead of shipping pickled
    state, relying on the campaign's determinism contract (operand
    streams and site enumeration are pure functions of the spec).
    """
    mult = AgingAwareMultiplier.build(
        int(spec.get("width", 8)),
        spec.get("kind", "column"),
        skip=spec.get("skip"),
        cycle_ns=None,
        characterize_patterns=int(spec.get("characterize_patterns", 600)),
    )
    mult = mult.with_cycle(
        float(spec.get("cycle_fraction", 0.6)) * mult.critical_path_ns()
    )
    return InjectionCampaign.sweep(
        mult,
        num_sites=int(spec.get("sites", 60)),
        num_patterns=int(spec.get("patterns", 2000)),
        seed=int(spec.get("seed", 7)),
        years=float(spec.get("years", 0.0)),
        kernel=spec.get("kernel", "soa"),
    )


def merge_campaign_shards(
    campaign: "InjectionCampaign", checkpoints: Sequence[str]
) -> CampaignResult:
    """Fuse per-shard checkpoint files into the full campaign result.

    Each shard ran ``campaign.run(site_range=..., checkpoint=...)`` on
    some host; every checkpoint carries the same campaign fingerprint
    (validated here), and together they must cover every site.  The
    merged result is byte-identical -- rendered text and sorted JSON --
    to a single-host ``campaign.run()``: the baseline is recomputed
    deterministically and the resumed/simulated accounting is reported
    as the serial run would (``resumed=0``,
    ``simulated = total - pruned``), since "which host simulated which
    site" is pure scheduling, not a property of the result.
    """
    from .store import CheckpointStore

    if not checkpoints:
        raise FaultError("no shard checkpoints to merge")
    fingerprint = campaign.fingerprint()
    restored: Dict[str, SiteReport] = {}
    for path in checkpoints:
        restored.update(CheckpointStore(path).load(fingerprint))
    missing = [
        site_id
        for site_id in campaign.site_ids
        if site_id not in restored
    ]
    if missing:
        raise FaultError(
            "shard merge incomplete: %d/%d sites missing (first: %s);"
            " run the missing shards, then merge again"
            % (len(missing), len(campaign.faults), missing[0])
        )
    sites = [restored[site_id] for site_id in campaign.site_ids]
    pruned = sum(1 for report in sites if report.pruned)
    return CampaignResult(
        design=campaign.architecture.name,
        num_patterns=campaign.num_patterns,
        years=campaign.years,
        baseline=campaign.run_pristine(),
        sites=sites,
        pruned_sites=pruned,
        resumed_sites=0,
        simulated_sites=len(sites) - pruned,
        requested_sites=len(sites),
    )


def unique_site_ids(faults: Sequence[FaultModel]) -> List[str]:
    """Canonical site ids in campaign order, de-duplicated with ``#k``.

    Ids come from :meth:`FaultModel.site_id` -- pure functions of the
    fault parameters -- so the mapping is stable across processes; a
    fault listed twice gets ``...#1``, ``...#2`` suffixes, keeping ids
    unique within one campaign while staying deterministic.
    """
    counts: Dict[str, int] = {}
    ids: List[str] = []
    for fault in faults:
        base = fault.site_id()
        seen = counts.get(base, 0)
        counts[base] = seen + 1
        ids.append(base if seen == 0 else "%s#%d" % (base, seen))
    return ids


class InjectionCampaign:
    """Sweep fault sites through one architecture on a fixed workload.

    Args:
        architecture: The design under test (its configured recovery
            policy governs the site runs; the default ``degrade`` never
            aborts a sweep).
        faults: Fault sites to inject, one at a time.  May be empty --
            the campaign then reduces to the pristine baseline.
        num_patterns: Operand pairs per site.
        seed: Operand-stream seed.
        years: BTI aging point every site is simulated at.
    """

    def __init__(
        self,
        architecture: AgingAwareMultiplier,
        faults: Sequence[FaultModel],
        num_patterns: int = 2000,
        seed: int = 1,
        years: float = 0.0,
        kernel: str = "soa",
    ):
        from ..timing.engine import normalize_kernel

        if num_patterns < 1:
            raise FaultError("num_patterns must be >= 1")
        # The kernel is pure execution strategy (all backends are
        # bit-identical), so it deliberately stays out of
        # :meth:`fingerprint` -- checkpoints interoperate across it.
        self.kernel = normalize_kernel(kernel)
        for fault in faults:
            if not isinstance(fault, FaultModel):
                raise FaultError("not a fault model: %r" % (fault,))
            fault.validate(architecture.netlist)
        self.architecture = architecture
        self.faults = list(faults)
        self.site_ids = unique_site_ids(self.faults)
        self.num_patterns = num_patterns
        self.seed = seed
        self.years = years
        rng = np.random.default_rng(seed)
        high = 1 << architecture.width
        self.md = rng.integers(0, high, num_patterns, dtype=np.uint64)
        self.mr = rng.integers(0, high, num_patterns, dtype=np.uint64)
        self._golden = golden_products(
            self.md, self.mr, architecture.width
        )
        self._base_scale = (
            architecture.factory.delay_scale(years) if years else None
        )
        self._pristine = None

    @classmethod
    def sweep(
        cls,
        architecture: AgingAwareMultiplier,
        num_sites: int,
        num_patterns: int = 2000,
        seed: int = 1,
        years: float = 0.0,
        kinds: Sequence[str] = ("sa0", "sa1", "transient", "delay"),
        transient_rate: Optional[float] = None,
        delay_extra_ns: Optional[float] = None,
        sites: str = "uniform",
        em_model=None,
        em_years: float = 10.0,
        kernel: str = "soa",
    ) -> "InjectionCampaign":
        """Campaign over an automatically enumerated site sweep.

        ``sites`` selects the enumeration strategy: ``"uniform"`` (the
        default) cycles ``kinds`` over a seeded shuffle of all cells;
        ``"em"`` measures per-cell toggle rates on the campaign's own
        operand stream and places delay faults on the cells the
        electromigration current-density model ages fastest after
        ``em_years``, with exactly the modelled delay magnitudes (see
        :func:`~repro.faults.injector.em_fault_sites`).
        """
        if sites == "em":
            rng = np.random.default_rng(seed)
            high = 1 << architecture.width
            md = rng.integers(0, high, num_patterns, dtype=np.uint64)
            mr = rng.integers(0, high, num_patterns, dtype=np.uint64)
            stats = architecture.factory.stream_result(
                years, {"md": md, "mr": mr}, collect_net_stats=True
            )
            rates = cell_toggle_rates(
                architecture.netlist, stats.toggle_counts, num_patterns
            )
            site_list = em_fault_sites(
                architecture.netlist,
                rates,
                years=em_years,
                em_model=em_model,
                limit=num_sites,
                technology=architecture.technology,
            )
        elif sites == "uniform":
            if transient_rate is None:
                transient_rate = architecture.config.default_transient_rate
            if delay_extra_ns is None:
                delay_extra_ns = 0.5 * architecture.cycle_ns
            site_list = enumerate_fault_sites(
                architecture.netlist,
                kinds=kinds,
                limit=num_sites,
                seed=seed,
                transient_rate=transient_rate,
                delay_extra_ns=delay_extra_ns,
            )
        else:
            raise FaultError(
                "unknown site strategy %r (known: 'uniform', 'em')"
                % (sites,)
            )
        return cls(
            architecture, site_list, num_patterns, seed=seed,
            years=years, kernel=kernel,
        )

    # ------------------------------------------------------------------

    def fingerprint(self) -> Dict:
        """Stable identity of this campaign's configuration.

        The checkpoint store refuses to resume from a file written by a
        different campaign (different design, workload, seed, aging
        point or site list) -- mixing reports across configurations
        would silently corrupt coverage numbers.
        """
        digest = hashlib.sha256(
            "|".join(self.site_ids).encode("utf-8")
        ).hexdigest()[:16]
        return {
            "design": self.architecture.name,
            "width": self.architecture.width,
            "cycle_ns": self.architecture.cycle_ns,
            "policy": self.architecture.config.recovery_policy,
            "num_patterns": self.num_patterns,
            "seed": self.seed,
            "years": self.years,
            "num_sites": len(self.faults),
            "sites_digest": digest,
        }

    def _pristine_circuit(self):
        """The compiled fault-free circuit (cached; also serves the
        logic-cone reachability masks)."""
        if self._pristine is None:
            self._pristine = compile_with_faults(
                self.architecture.netlist,
                [],
                self.architecture.technology,
                delay_scale=self._base_scale,
                kernel=self.kernel,
            )
        return self._pristine

    def run_pristine(self) -> ArchitectureRunResult:
        """The fault-free reference run on the campaign workload."""
        circuit = self._pristine_circuit()
        stream = circuit.run(
            {"md": self.md, "mr": self.mr}, chunk_size="auto", fold=True
        )
        return self.architecture.run_patterns(
            self.md, self.mr, years=self.years, stream=stream
        )

    def run_site(
        self, fault: FaultModel, site_id: str = ""
    ) -> Tuple[SiteReport, ArchitectureRunResult]:
        """Inject one fault and execute the full control loop."""
        arch = self.architecture
        circuit = compile_with_faults(
            arch.netlist,
            [fault],
            arch.technology,
            delay_scale=self._base_scale,
            kernel=self.kernel,
        )
        # ``fold=True`` only folds hook-free circuits (pure delay
        # faults); value-corrupting hooks make the engine bypass it, so
        # every fault model keeps its exact per-pattern indexing.
        stream = circuit.run(
            {"md": self.md, "mr": self.mr}, chunk_size="auto", fold=True
        )
        result = arch.run_patterns(
            self.md, self.mr, years=self.years, stream=stream
        )
        corrupted = result.products != self._golden
        detected = corrupted & result.errors
        report = result.report
        site = SiteReport(
            label=fault.describe(arch.netlist),
            kind=fault.kind,
            corrupted_ops=int(corrupted.sum()),
            detected_ops=int(detected.sum()),
            silent_ops=int((corrupted & ~result.errors).sum()),
            razor_errors=report.error_count,
            undetectable_ops=report.undetectable_count,
            recovered_ops=report.recovered_ops,
            exhausted_ops=report.recovery_exhausted_ops,
            avg_latency_ns=report.average_latency_ns,
            indicator_aged_at=report.indicator_aged_at,
            site_id=site_id or fault.site_id(),
        )
        return site, result

    # ------------------------------------------------------------------
    # Logic-cone pruning
    # ------------------------------------------------------------------

    def prunable_site_indices(
        self, observed_ports: Optional[Sequence[str]] = None
    ) -> List[int]:
        """Indices of faults whose cone misses every observed output bit.

        A fault at such a site cannot change any observed product value
        *or* arrival time (value and arrival propagation both follow the
        directed cell graph), so its run is provably identical to the
        pristine baseline and can be synthesized instead of simulated.
        ``observed_ports`` narrows the observation to a subset of output
        ports (default: every product bit the workload checks).
        """
        circuit = self._pristine_circuit()
        masks = circuit.output_reach_mask(observed_ports)
        netlist = self.architecture.netlist
        return [
            index
            for index, fault in enumerate(self.faults)
            if not masks[fault.cone_root(netlist)]
        ]

    def _synthesize_pruned(
        self, fault: FaultModel, site_id: str,
        baseline: ArchitectureRunResult,
    ) -> SiteReport:
        """The exact report a pruned site would have produced.

        Because the fault's cone misses every observed output bit, the
        site's products and delays equal the baseline's, so the control
        loop's statistics equal the baseline's and nothing was corrupted
        (the pristine netlist computes golden products).  Property-tested
        against full simulation in ``tests/test_campaign_exec.py``.
        """
        report = baseline.report
        return SiteReport(
            label=fault.describe(self.architecture.netlist),
            kind=fault.kind,
            corrupted_ops=0,
            detected_ops=0,
            silent_ops=0,
            razor_errors=report.error_count,
            undetectable_ops=report.undetectable_count,
            recovered_ops=report.recovered_ops,
            exhausted_ops=report.recovery_exhausted_ops,
            avg_latency_ns=report.average_latency_ns,
            indicator_aged_at=report.indicator_aged_at,
            site_id=site_id,
            pruned=True,
        )

    # ------------------------------------------------------------------
    # Campaign execution
    # ------------------------------------------------------------------

    def run(
        self,
        workers: int = 1,
        checkpoint: Optional[str] = None,
        resume: bool = True,
        prune: bool = True,
        chunk_size: Optional[int] = None,
        progress: Optional[ProgressFn] = None,
        observed_ports: Optional[Sequence[str]] = None,
        site_range: Optional[Tuple[int, int]] = None,
        pool=None,
        pool_spec: Optional[Dict] = None,
    ) -> CampaignResult:
        """Run every site and collect the campaign result.

        Args:
            workers: Processes to shard the site list over (1 = serial
                in-process execution).  Results are bit-identical to the
                serial sweep for any worker count.
            checkpoint: Optional JSONL path; each completed
                :class:`SiteReport` is appended and flushed immediately,
                so a killed sweep loses at most the in-flight sites.
            resume: With ``checkpoint``, skip sites already recorded for
                this campaign's :meth:`fingerprint` (False starts over).
            prune: Skip simulating sites whose logic cone cannot reach
                any observed product bit; their reports are synthesized
                exactly from the baseline.
            chunk_size: Sites per worker batch (default: an even split
                into ~4 batches per worker).
            progress: ``(report, completed, total)`` callback after each
                finished site.
            observed_ports: Output ports the workload observes (pruning
                granularity; default all).
            site_range: Optional ``(lo, hi)`` slice of the site list to
                run -- the manifest-sharding unit.  The partial result
                carries only those sites; merging every shard's
                checkpoint reproduces the full serial result exactly
                (``python -m repro faults merge``).
            pool: Optional :class:`~repro.distrib.pool.WorkerPool`;
                pending sites are dispatched through it instead of a
                local process pool (requires ``pool_spec``).
            pool_spec: JSON-able campaign spec remote workers rebuild
                this campaign from (see :func:`campaign_from_spec`).

        Raises:
            CampaignInterrupted: A SIGINT / :class:`KeyboardInterrupt`
                landed mid-sweep.  The checkpoint is already flushed and
                the exception carries the partial result.
        """
        if workers < 1:
            raise FaultError("workers must be >= 1, got %d" % workers)
        if pool is not None and pool_spec is None:
            raise FaultError(
                "a worker pool needs pool_spec (the JSON campaign spec"
                " remote workers rebuild state from)"
            )
        total = len(self.faults)
        if site_range is None:
            lo, hi = 0, total
        else:
            lo, hi = int(site_range[0]), int(site_range[1])
            if not 0 <= lo <= hi <= total:
                raise FaultError(
                    "site_range (%d, %d) outside [0, %d]"
                    % (lo, hi, total)
                )
        selected = range(lo, hi)
        requested = len(selected)
        baseline = self.run_pristine()

        store = None
        restored: Dict[str, SiteReport] = {}
        if checkpoint is not None:
            from .store import CheckpointStore

            store = CheckpointStore(checkpoint)
            restored = store.open(self.fingerprint(), resume=resume)

        reports: List[Optional[SiteReport]] = [None] * total
        resumed = 0
        for index in selected:
            hit = restored.get(self.site_ids[index])
            if hit is not None:
                reports[index] = hit
                resumed += 1

        pruned_indices = (
            set(self.prunable_site_indices(observed_ports)) & set(selected)
            if prune
            else set()
        )

        completed = resumed
        interrupted = False
        simulated_indices: List[int] = []

        def record(index: int, report: SiteReport) -> None:
            nonlocal completed
            reports[index] = report
            completed += 1
            if store is not None:
                store.append(self.site_ids[index], report)
            if progress is not None:
                progress(report, completed, requested)

        try:
            # Pruned sites are synthesized in-process: cheaper than the
            # cost of shipping them to a worker.
            for index in sorted(pruned_indices):
                if reports[index] is not None:
                    continue
                record(
                    index,
                    self._synthesize_pruned(
                        self.faults[index],
                        self.site_ids[index],
                        baseline,
                    ),
                )
            pending = [
                index
                for index in selected
                if reports[index] is None
            ]
            simulated_indices.extend(pending)
            if pending:
                if pool is not None:
                    from ..distrib.pool import run_campaign_pooled

                    run_campaign_pooled(
                        pool,
                        pool_spec,
                        pending,
                        chunk_size=chunk_size,
                        on_result=record,
                    )
                elif workers > 1:
                    from .parallel import run_sharded

                    run_sharded(
                        self,
                        pending,
                        workers=workers,
                        chunk_size=chunk_size,
                        on_result=record,
                    )
                else:
                    for index in pending:
                        site, _ = self.run_site(
                            self.faults[index], self.site_ids[index]
                        )
                        record(index, site)
        except KeyboardInterrupt:
            interrupted = True
        finally:
            if store is not None:
                store.close()

        done_reports = [
            reports[index] for index in selected
            if reports[index] is not None
        ]
        pruned_count = sum(1 for r in done_reports if r.pruned)
        result = CampaignResult(
            design=self.architecture.name,
            num_patterns=self.num_patterns,
            years=self.years,
            baseline=baseline,
            sites=done_reports,
            pruned_sites=pruned_count,
            resumed_sites=resumed,
            simulated_sites=sum(
                1 for index in simulated_indices
                if reports[index] is not None
            ),
            requested_sites=requested,
        )
        if interrupted:
            raise CampaignInterrupted(
                "campaign interrupted after %d/%d sites%s"
                % (
                    len(done_reports),
                    requested,
                    ""
                    if checkpoint is None
                    else " (checkpoint %s flushed; rerun with resume=True"
                    " to continue)" % checkpoint,
                ),
                partial=result,
                completed=len(done_reports),
                total=requested,
            )
        return result
