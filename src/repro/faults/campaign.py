"""Fault-injection campaigns over the aging-aware architecture.

An :class:`InjectionCampaign` sweeps a list of single-fault sites over
one :class:`~repro.core.architecture.AgingAwareMultiplier`: for every
site it compiles the faulty circuit, streams the same operands through
it, feeds the faulty per-pattern delays and products through the healthy
Razor/AHL control loop, and classifies every corrupted pattern as
*detected* (Razor flagged it) or *silent* (the corruption arrived early
enough to latch cleanly -- the coverage hole value faults exploit).

The campaign never aborts mid-sweep: site runs execute under the
architecture's configured recovery policy (``degrade`` by default), so
even sites that push arrivals past the shadow window complete and are
reported.  A campaign with zero faults is bit-identical to the pristine
baseline run -- property-tested, and the sanity anchor for every
coverage number produced here.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..arith.reference import golden_products
from ..core.architecture import AgingAwareMultiplier
from ..core.stats import ArchitectureRunResult
from ..errors import FaultError
from .injector import compile_with_faults, enumerate_fault_sites
from .models import FaultModel


@dataclasses.dataclass(frozen=True)
class SiteReport:
    """Detection/recovery statistics of one fault site.

    Attributes:
        label: Human-readable site description.
        kind: Fault class tag (``stuck-at-0``, ``transient``, ...).
        corrupted_ops: Patterns whose product differed from golden.
        detected_ops: Corrupted patterns the Razor bank flagged.
        silent_ops: Corrupted patterns that latched without a flag.
        razor_errors: All Razor detections (corrupted or not -- a delay
            fault can be caught and fixed by re-execution).
        undetectable_ops: One-cycle patterns past the shadow window.
        recovered_ops: Over-budget patterns absorbed by the fallback.
        exhausted_ops: Patterns that hit the fallback cap.
        avg_latency_ns: Mean latency under the fault.
        indicator_aged_at: Operation index where the AHL switched to
            Skip-(n+1) under this fault (-1: never).
    """

    label: str
    kind: str
    corrupted_ops: int
    detected_ops: int
    silent_ops: int
    razor_errors: int
    undetectable_ops: int
    recovered_ops: int
    exhausted_ops: int
    avg_latency_ns: float
    indicator_aged_at: int

    @property
    def detection_fraction(self) -> float:
        """Detected fraction of corrupted patterns (1.0 when nothing
        was corrupted -- a benign site has full coverage by default)."""
        if self.corrupted_ops == 0:
            return 1.0
        return self.detected_ops / self.corrupted_ops


@dataclasses.dataclass
class CampaignResult:
    """Per-site reports plus the pristine baseline they compare against."""

    design: str
    num_patterns: int
    years: float
    baseline: ArchitectureRunResult
    sites: List[SiteReport]

    @property
    def num_sites(self) -> int:
        return len(self.sites)

    @property
    def corrupting_sites(self) -> int:
        """Sites whose fault corrupted at least one product."""
        return sum(1 for s in self.sites if s.corrupted_ops > 0)

    def detection_coverage(self, kind: Optional[str] = None) -> float:
        """Mean per-site detection fraction over corrupting sites."""
        picked = [
            s
            for s in self.sites
            if s.corrupted_ops > 0 and (kind is None or s.kind == kind)
        ]
        if not picked:
            return 1.0
        return float(
            np.mean([s.detection_fraction for s in picked])
        )

    def silent_corruption_rate(self) -> float:
        """Silent corrupted patterns per simulated pattern, over sites."""
        total = self.num_sites * self.num_patterns
        if total == 0:
            return 0.0
        return sum(s.silent_ops for s in self.sites) / total

    def by_kind(self) -> Dict[str, List[SiteReport]]:
        kinds: Dict[str, List[SiteReport]] = {}
        for site in self.sites:
            kinds.setdefault(site.kind, []).append(site)
        return kinds

    def render(self) -> str:
        from ..analysis.tables import format_table

        rows = []
        for kind, sites in sorted(self.by_kind().items()):
            corrupting = [s for s in sites if s.corrupted_ops > 0]
            rows.append(
                [
                    kind,
                    len(sites),
                    len(corrupting),
                    self.detection_coverage(kind),
                    float(np.mean([s.avg_latency_ns for s in sites])),
                    sum(s.recovered_ops for s in sites),
                    sum(s.exhausted_ops for s in sites),
                ]
            )
        header = (
            "%s: %d sites x %d patterns (baseline %.4g ns/op, policy %s)"
            % (
                self.design,
                self.num_sites,
                self.num_patterns,
                self.baseline.report.average_latency_ns,
                self.baseline.report.policy,
            )
        )
        table = format_table(
            [
                "fault kind",
                "sites",
                "corrupting",
                "detection",
                "ns/op",
                "recovered",
                "exhausted",
            ],
            rows,
        )
        return header + "\n" + table


class InjectionCampaign:
    """Sweep fault sites through one architecture on a fixed workload.

    Args:
        architecture: The design under test (its configured recovery
            policy governs the site runs; the default ``degrade`` never
            aborts a sweep).
        faults: Fault sites to inject, one at a time.  May be empty --
            the campaign then reduces to the pristine baseline.
        num_patterns: Operand pairs per site.
        seed: Operand-stream seed.
        years: BTI aging point every site is simulated at.
    """

    def __init__(
        self,
        architecture: AgingAwareMultiplier,
        faults: Sequence[FaultModel],
        num_patterns: int = 2000,
        seed: int = 1,
        years: float = 0.0,
    ):
        if num_patterns < 1:
            raise FaultError("num_patterns must be >= 1")
        for fault in faults:
            if not isinstance(fault, FaultModel):
                raise FaultError("not a fault model: %r" % (fault,))
            fault.validate(architecture.netlist)
        self.architecture = architecture
        self.faults = list(faults)
        self.num_patterns = num_patterns
        self.seed = seed
        self.years = years
        rng = np.random.default_rng(seed)
        high = 1 << architecture.width
        self.md = rng.integers(0, high, num_patterns, dtype=np.uint64)
        self.mr = rng.integers(0, high, num_patterns, dtype=np.uint64)
        self._golden = golden_products(
            self.md, self.mr, architecture.width
        )
        self._base_scale = (
            architecture.factory.delay_scale(years) if years else None
        )

    @classmethod
    def sweep(
        cls,
        architecture: AgingAwareMultiplier,
        num_sites: int,
        num_patterns: int = 2000,
        seed: int = 1,
        years: float = 0.0,
        kinds: Sequence[str] = ("sa0", "sa1", "transient", "delay"),
        transient_rate: Optional[float] = None,
        delay_extra_ns: Optional[float] = None,
    ) -> "InjectionCampaign":
        """Campaign over an automatically enumerated site sweep."""
        if transient_rate is None:
            transient_rate = architecture.config.default_transient_rate
        if delay_extra_ns is None:
            delay_extra_ns = 0.5 * architecture.cycle_ns
        sites = enumerate_fault_sites(
            architecture.netlist,
            kinds=kinds,
            limit=num_sites,
            seed=seed,
            transient_rate=transient_rate,
            delay_extra_ns=delay_extra_ns,
        )
        return cls(
            architecture, sites, num_patterns, seed=seed, years=years
        )

    # ------------------------------------------------------------------

    def run_pristine(self) -> ArchitectureRunResult:
        """The fault-free reference run on the campaign workload."""
        circuit = compile_with_faults(
            self.architecture.netlist,
            [],
            self.architecture.technology,
            delay_scale=self._base_scale,
        )
        stream = circuit.run({"md": self.md, "mr": self.mr})
        return self.architecture.run_patterns(
            self.md, self.mr, years=self.years, stream=stream
        )

    def run_site(
        self, fault: FaultModel
    ) -> Tuple[SiteReport, ArchitectureRunResult]:
        """Inject one fault and execute the full control loop."""
        arch = self.architecture
        circuit = compile_with_faults(
            arch.netlist,
            [fault],
            arch.technology,
            delay_scale=self._base_scale,
        )
        stream = circuit.run({"md": self.md, "mr": self.mr})
        result = arch.run_patterns(
            self.md, self.mr, years=self.years, stream=stream
        )
        corrupted = result.products != self._golden
        detected = corrupted & result.errors
        report = result.report
        site = SiteReport(
            label=fault.describe(arch.netlist),
            kind=fault.kind,
            corrupted_ops=int(corrupted.sum()),
            detected_ops=int(detected.sum()),
            silent_ops=int((corrupted & ~result.errors).sum()),
            razor_errors=report.error_count,
            undetectable_ops=report.undetectable_count,
            recovered_ops=report.recovered_ops,
            exhausted_ops=report.recovery_exhausted_ops,
            avg_latency_ns=report.average_latency_ns,
            indicator_aged_at=report.indicator_aged_at,
        )
        return site, result

    def run(self) -> CampaignResult:
        """Run every site and collect the campaign result."""
        baseline = self.run_pristine()
        sites = [self.run_site(fault)[0] for fault in self.faults]
        return CampaignResult(
            design=self.architecture.name,
            num_patterns=self.num_patterns,
            years=self.years,
            baseline=baseline,
            sites=sites,
        )
