"""JSONL checkpoint store for fault-injection campaigns.

Classic campaign managers (MEFISTO-style) treat a fault-injection sweep
as a restartable job list; this module is that persistence layer.  A
checkpoint file is newline-delimited JSON:

* line 1 -- a header identifying the format, version and the campaign
  :meth:`~repro.faults.campaign.InjectionCampaign.fingerprint` the
  reports belong to;
* every further line -- ``{"site_id": ..., "report": {...}}``, one
  completed :class:`~repro.faults.campaign.SiteReport` (serialized via
  its ``to_dict()``, the library-wide protocol from
  :mod:`repro.analysis.serialize`), appended and flushed the moment the
  site finishes.

Robustness contract:

* A process killed mid-write leaves at most one partial trailing line;
  :meth:`CheckpointStore.open` drops it and resumes from the last
  complete report.  On open the file is compacted (rewritten from the
  surviving valid lines), so the append stream always starts clean.
* A header from a *different* campaign (other design, workload, seed,
  aging point or site list) raises
  :class:`~repro.errors.CheckpointError` instead of silently mixing
  incompatible reports.
* Duplicate ``site_id`` lines are legal (a crash between flush and the
  in-memory bookkeeping can double-write); the last occurrence wins.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional

from ..analysis.serialize import to_json
from ..errors import CheckpointError
from ..util.locking import FileLock
from .campaign import SiteReport

#: Format tag written to (and required of) every checkpoint header.
FORMAT = "repro-campaign-checkpoint"
#: Current checkpoint schema version.
VERSION = 1


class CheckpointStore:
    """Append-only JSONL persistence of per-site campaign reports.

    Usage (what :meth:`InjectionCampaign.run` does internally)::

        store = CheckpointStore("campaign.jsonl")
        done = store.open(campaign.fingerprint())   # {} on fresh file
        ...
        store.append(site_id, report)               # flushed immediately
        store.close()
    """

    def __init__(self, path: str):
        self.path = str(path)
        self._fp = None
        #: Partial/corrupt trailing lines dropped by the last ``open``.
        self.dropped_lines = 0

    # ------------------------------------------------------------------

    def load(
        self, fingerprint: Optional[Dict] = None
    ) -> Dict[str, SiteReport]:
        """Read all complete reports (read-only; missing file -> ``{}``).

        Validates the header against ``fingerprint`` when given.  A
        partial trailing line (killed writer) is dropped; corruption
        anywhere *before* the last line raises
        :class:`~repro.errors.CheckpointError`.
        """
        self.dropped_lines = 0
        if not os.path.exists(self.path):
            return {}
        with open(self.path, "r", encoding="utf-8") as fp:
            lines = fp.read().split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        if not lines:
            return {}
        records = []
        for number, line in enumerate(lines):
            try:
                records.append(json.loads(line))
            except ValueError:
                if number == len(lines) - 1:
                    # Torn trailing write -- the crash/kill case resume
                    # exists for.  Drop it and keep everything before.
                    self.dropped_lines += 1
                    break
                raise CheckpointError(
                    "checkpoint %s: corrupt line %d (not trailing -- "
                    "refusing to guess; delete the file to start over)"
                    % (self.path, number + 1)
                ) from None
        if not records:
            return {}
        self._check_header(records[0], fingerprint)
        reports: Dict[str, SiteReport] = {}
        for number, record in enumerate(records[1:], start=2):
            try:
                site_id = record["site_id"]
                report = SiteReport.from_dict(record["report"])
            except (KeyError, TypeError):
                raise CheckpointError(
                    "checkpoint %s: line %d is not a site report"
                    % (self.path, number)
                ) from None
            reports[site_id] = report
        return reports

    def _check_header(
        self, header: Dict, fingerprint: Optional[Dict]
    ) -> None:
        if not isinstance(header, dict) or header.get("format") != FORMAT:
            raise CheckpointError(
                "%s is not a campaign checkpoint (missing %r header)"
                % (self.path, FORMAT)
            )
        if header.get("version") != VERSION:
            raise CheckpointError(
                "checkpoint %s has version %r, this build reads %d"
                % (self.path, header.get("version"), VERSION)
            )
        if fingerprint is not None:
            stored = header.get("fingerprint")
            if stored != _jsonround(fingerprint):
                raise CheckpointError(
                    "checkpoint %s belongs to a different campaign:\n"
                    "  stored:  %r\n  current: %r\n"
                    "Pass resume=False (or a fresh path) to overwrite."
                    % (self.path, stored, _jsonround(fingerprint))
                )

    # ------------------------------------------------------------------

    def open(
        self, fingerprint: Dict, resume: bool = True
    ) -> Dict[str, SiteReport]:
        """Load prior reports and open the file for appending.

        With ``resume=False`` (or a missing/fresh file) the checkpoint
        restarts empty.  The file is compacted on open -- header plus
        every surviving report rewritten atomically -- so torn trailing
        bytes never pollute subsequent appends.

        The load-compact-reopen sequence runs under an advisory
        :class:`~repro.util.locking.FileLock` (the artifact store's
        shard-lock primitive), so two processes resuming the same
        checkpoint serialize instead of interleaving their rewrites.
        """
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        with FileLock(self.path + ".lock"):
            reports = self.load(fingerprint) if resume else {}
            tmp = self.path + ".tmp"
            with open(tmp, "w", encoding="utf-8") as fp:
                fp.write(self._header_line(fingerprint))
                for site_id, report in reports.items():
                    fp.write(self._report_line(site_id, report))
            os.replace(tmp, self.path)
            self._fp = open(self.path, "a", encoding="utf-8")
        return reports

    def append(self, site_id: str, report: SiteReport) -> None:
        """Persist one completed site report (flushed immediately)."""
        if self._fp is None:
            raise CheckpointError(
                "checkpoint %s is not open for appending" % self.path
            )
        self._fp.write(self._report_line(site_id, report))
        self._fp.flush()

    def close(self) -> None:
        if self._fp is not None:
            self._fp.flush()
            try:
                os.fsync(self._fp.fileno())
            except OSError:  # pragma: no cover - fsync-less filesystems
                pass
            self._fp.close()
            self._fp = None

    def __enter__(self) -> "CheckpointStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------

    @staticmethod
    def _header_line(fingerprint: Dict) -> str:
        return (
            to_json(
                {
                    "format": FORMAT,
                    "version": VERSION,
                    "fingerprint": fingerprint,
                }
            )
            + "\n"
        )

    @staticmethod
    def _report_line(site_id: str, report: SiteReport) -> str:
        return (
            to_json({"site_id": site_id, "report": report.to_dict()})
            + "\n"
        )


def _jsonround(data: Dict) -> Dict:
    """A dict as it looks after one JSON round-trip (tuples -> lists,
    numpy scalars -> python), so fingerprint comparison is stable."""
    return json.loads(to_json(data))
