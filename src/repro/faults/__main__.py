"""Command-line fault-injection campaign runner.

Usage::

    # sharded, checkpointed sweep (resumes automatically when the
    # checkpoint already holds reports for the same campaign)
    python -m repro.faults run --width 8 --sites 60 --patterns 2000 \\
        --workers 4 --checkpoint campaign.jsonl

    # serial-vs-sharded wall-clock benchmark, JSON artifact included
    python -m repro.faults bench --sites 52 --patterns 400 --workers 2 \\
        --json benchmarks/results/campaign_scaling.json

``run`` exits 130 on SIGINT after flushing the checkpoint and printing
the partial coverage, so interrupted sweeps resume cleanly.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Optional

from ..core.architecture import AgingAwareMultiplier
from ..errors import CampaignInterrupted, ReproError
from .campaign import InjectionCampaign


def build_campaign(args) -> InjectionCampaign:
    mult = AgingAwareMultiplier.build(
        args.width,
        args.kind,
        skip=args.skip,
        cycle_ns=None,
        characterize_patterns=args.characterize_patterns,
    )
    mult = mult.with_cycle(
        args.cycle_fraction * mult.critical_path_ns()
    )
    return InjectionCampaign.sweep(
        mult,
        num_sites=args.sites,
        num_patterns=args.patterns,
        seed=args.seed,
        years=args.years,
    )


def _progress(report, completed, total) -> None:
    sys.stderr.write(
        "\r[%d/%d] %-40s" % (completed, total, report.label[:40])
    )
    sys.stderr.flush()
    if completed == total:
        sys.stderr.write("\n")


def _write_json(path: str, payload) -> None:
    from ..analysis.serialize import dump_json

    with open(path, "w", encoding="utf-8") as fp:
        dump_json(payload, fp, indent=2)
    print("wrote %s" % path)


def cmd_run(args) -> int:
    campaign = build_campaign(args)
    print(
        "%s: %d sites x %d patterns (workers=%d%s)"
        % (
            campaign.architecture.name,
            len(campaign.faults),
            campaign.num_patterns,
            args.workers,
            ", checkpoint=%s" % args.checkpoint if args.checkpoint else "",
        )
    )
    start = time.time()
    try:
        result = campaign.run(
            workers=args.workers,
            checkpoint=args.checkpoint,
            resume=not args.no_resume,
            prune=not args.no_prune,
            progress=None if args.quiet else _progress,
        )
    except CampaignInterrupted as exc:
        sys.stderr.write("\n")
        print("interrupted: %s" % exc)
        if exc.partial is not None:
            print()
            print(exc.partial.render())
        return 130
    elapsed = time.time() - start
    print()
    print(result.render())
    print(
        "%.2f s wall-clock; %d simulated, %d pruned, %d resumed"
        % (
            elapsed,
            result.simulated_sites,
            result.pruned_sites,
            result.resumed_sites,
        )
    )
    if args.json:
        _write_json(args.json, result)
    return 0


def cmd_bench(args) -> int:
    """Serial vs sharded wall-clock on the same campaign (identity
    checked site-for-site), with pruning stats -- the JSON artifact the
    benchmark suite and CI record."""
    campaign = build_campaign(args)
    print(
        "benchmarking %d sites x %d patterns, serial vs %d workers..."
        % (len(campaign.faults), campaign.num_patterns, args.workers)
    )
    start = time.time()
    serial = campaign.run(workers=1, prune=not args.no_prune)
    serial_s = time.time() - start
    print("  serial : %.2f s" % serial_s)
    start = time.time()
    sharded = campaign.run(
        workers=args.workers, prune=not args.no_prune
    )
    sharded_s = time.time() - start
    print("  sharded: %.2f s  (workers=%d)" % (sharded_s, args.workers))
    identical = serial.sites == sharded.sites
    print("  bit-identical: %s" % identical)
    payload = {
        "experiment": "ext_faults campaign (serial vs sharded)",
        # Speedup is bounded by the host: on a single-CPU box the
        # sharded sweep can only demonstrate identity, not gain.
        "host_cpus": os.cpu_count(),
        "design": serial.design,
        "num_patterns": serial.num_patterns,
        "sites_total": serial.num_sites,
        "sites_pruned": serial.pruned_sites,
        "sites_simulated": serial.simulated_sites,
        "workers": args.workers,
        "serial_seconds": round(serial_s, 4),
        "sharded_seconds": round(sharded_s, 4),
        "speedup": round(serial_s / sharded_s, 4) if sharded_s else None,
        "bit_identical": identical,
        "campaign": serial.summary(),
    }
    if args.json:
        _write_json(args.json, payload)
    if not identical:
        print("ERROR: sharded sweep diverged from the serial sweep")
        return 1
    return 0


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="Sharded, resumable fault-injection campaigns.",
    )
    sub = parser.add_subparsers(dest="command")
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--width", type=int, default=8)
    common.add_argument(
        "--kind", choices=("column", "row"), default="column"
    )
    common.add_argument(
        "--skip", type=int, default=None,
        help="judging threshold (default width//2 - 1)",
    )
    common.add_argument(
        "--cycle-fraction", type=float, default=0.6,
        help="clock period as a fraction of the critical path",
    )
    common.add_argument("--sites", type=int, default=60)
    common.add_argument("--patterns", type=int, default=2000)
    common.add_argument("--seed", type=int, default=7)
    common.add_argument("--years", type=float, default=0.0)
    common.add_argument(
        "--characterize-patterns", type=int, default=600,
        help="BTI characterization workload length",
    )
    common.add_argument("--workers", type=int, default=1)
    common.add_argument(
        "--no-prune", action="store_true",
        help="disable logic-cone pruning",
    )
    common.add_argument(
        "--json", metavar="PATH", help="write a JSON artifact to PATH"
    )

    run = sub.add_parser(
        "run", parents=[common],
        help="run one (optionally sharded + checkpointed) campaign",
    )
    run.add_argument(
        "--checkpoint", metavar="PATH",
        help="JSONL checkpoint to append per-site reports to",
    )
    run.add_argument(
        "--no-resume", action="store_true",
        help="ignore an existing checkpoint and start over",
    )
    run.add_argument(
        "--quiet", action="store_true", help="no per-site progress line"
    )
    run.set_defaults(func=cmd_run)

    bench = sub.add_parser(
        "bench", parents=[common],
        help="serial-vs-sharded wall-clock benchmark (+JSON artifact)",
    )
    bench.set_defaults(func=cmd_bench, workers_default=2)
    return parser


def main(argv=None) -> int:
    parser = make_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 0
    if args.command == "bench" and args.workers < 2:
        args.workers = 2
    try:
        return args.func(args)
    except ReproError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 1


if __name__ == "__main__":
    print(
        "note: 'python -m repro.faults' is deprecated; use"
        " 'python -m repro faults' (same arguments)",
        file=sys.stderr,
    )
    sys.exit(main())
