"""Command-line fault-injection campaign runner.

Usage::

    # sharded, checkpointed sweep (resumes automatically when the
    # checkpoint already holds reports for the same campaign)
    python -m repro.faults run --width 8 --sites 60 --patterns 2000 \\
        --workers 4 --checkpoint campaign.jsonl

    # distributed: each host runs one shard of the site list...
    python -m repro.faults run --sites 60 --shard 1/2 --checkpoint a.jsonl
    python -m repro.faults run --sites 60 --shard 2/2 --checkpoint b.jsonl
    # ...and the merge fuses the checkpoints, byte-identical to serial
    python -m repro.faults merge --sites 60 --checkpoint a.jsonl b.jsonl

    # or dispatch sites through a worker pool (local / tcp / manifest)
    python -m repro.faults run --sites 60 --pool tcp:hostA:9100,hostB:9100

    # serial-vs-sharded wall-clock benchmark, JSON artifact included
    python -m repro.faults bench --sites 52 --patterns 400 --workers 2 \\
        --json benchmarks/results/campaign_scaling.json

``run`` exits 130 on SIGINT after flushing the checkpoint and printing
the partial coverage, so interrupted sweeps resume cleanly.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Dict, Optional, Tuple

from ..errors import CampaignInterrupted, ReproError
from .campaign import (
    InjectionCampaign,
    campaign_from_spec,
    merge_campaign_shards,
)


def _kernel_arg(text: str) -> str:
    from ..timing.engine import normalize_kernel

    try:
        return normalize_kernel(text)
    except ReproError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _shard_arg(text: str) -> Tuple[int, int]:
    index, sep, count = text.partition("/")
    try:
        pair = (int(index), int(count)) if sep else None
    except ValueError:
        pair = None
    if pair is None or not 1 <= pair[0] <= pair[1]:
        raise argparse.ArgumentTypeError(
            "shard must be I/N with 1 <= I <= N, got %r" % (text,)
        )
    return pair


def spec_from_args(args) -> Dict:
    """The JSON-able campaign spec (the distributed transport: workers
    and ``merge`` rebuild the identical campaign from these fields)."""
    return {
        "width": args.width,
        "kind": args.kind,
        "skip": args.skip,
        "cycle_fraction": args.cycle_fraction,
        "sites": args.sites,
        "patterns": args.patterns,
        "seed": args.seed,
        "years": args.years,
        "characterize_patterns": args.characterize_patterns,
        "kernel": args.kernel,
    }


def build_campaign(args) -> InjectionCampaign:
    return campaign_from_spec(spec_from_args(args))


def _progress(report, completed, total) -> None:
    sys.stderr.write(
        "\r[%d/%d] %-40s" % (completed, total, report.label[:40])
    )
    sys.stderr.flush()
    if completed == total:
        sys.stderr.write("\n")


def _write_json(path: str, payload) -> None:
    from ..analysis.serialize import dump_json

    with open(path, "w", encoding="utf-8") as fp:
        dump_json(payload, fp, indent=2)
    print("wrote %s" % path)


def cmd_run(args) -> int:
    campaign = build_campaign(args)
    site_range = None
    if args.shard is not None:
        from ..experiments.scheduler import shard_ranges

        index, count = args.shard
        ranges = shard_ranges(len(campaign.faults), count)
        site_range = ranges[index - 1] if index <= len(ranges) else (0, 0)
    pool = None
    if args.pool is not None:
        from ..distrib.pool import parse_pool_spec

        pool = parse_pool_spec(args.pool)
    print(
        "%s: %d sites x %d patterns (workers=%d%s%s%s)"
        % (
            campaign.architecture.name,
            len(campaign.faults),
            campaign.num_patterns,
            args.workers,
            ", checkpoint=%s" % args.checkpoint if args.checkpoint else "",
            ", shard=%d/%d" % args.shard if args.shard else "",
            ", pool=%s" % args.pool if args.pool else "",
        )
    )
    start = time.time()
    try:
        result = campaign.run(
            workers=args.workers,
            checkpoint=args.checkpoint,
            resume=not args.no_resume,
            prune=not args.no_prune,
            progress=None if args.quiet else _progress,
            site_range=site_range,
            pool=pool,
            pool_spec=spec_from_args(args) if pool is not None else None,
        )
    except CampaignInterrupted as exc:
        sys.stderr.write("\n")
        print("interrupted: %s" % exc)
        if exc.partial is not None:
            print()
            print(exc.partial.render())
        return 130
    finally:
        if pool is not None:
            pool.close()
    elapsed = time.time() - start
    print()
    print(result.render())
    print(
        "%.2f s wall-clock; %d simulated, %d pruned, %d resumed"
        % (
            elapsed,
            result.simulated_sites,
            result.pruned_sites,
            result.resumed_sites,
        )
    )
    if args.json:
        _write_json(args.json, result)
    return 0


def cmd_merge(args) -> int:
    """Fuse per-shard checkpoints into the full campaign result.

    The campaign flags must match the ones the shards ran with (the
    checkpoint header's fingerprint check enforces this); the output --
    rendered table and ``--json`` artifact -- is byte-identical to a
    single-host ``run`` with the same flags.
    """
    campaign = build_campaign(args)
    result = merge_campaign_shards(campaign, args.checkpoint)
    print(result.render())
    if args.json:
        _write_json(args.json, result)
    return 0


def cmd_bench(args) -> int:
    """Serial vs sharded wall-clock on the same campaign (identity
    checked site-for-site), with pruning stats -- the JSON artifact the
    benchmark suite and CI record."""
    campaign = build_campaign(args)
    print(
        "benchmarking %d sites x %d patterns, serial vs %d workers..."
        % (len(campaign.faults), campaign.num_patterns, args.workers)
    )
    start = time.time()
    serial = campaign.run(workers=1, prune=not args.no_prune)
    serial_s = time.time() - start
    print("  serial : %.2f s" % serial_s)
    start = time.time()
    sharded = campaign.run(
        workers=args.workers, prune=not args.no_prune
    )
    sharded_s = time.time() - start
    print("  sharded: %.2f s  (workers=%d)" % (sharded_s, args.workers))
    identical = serial.sites == sharded.sites
    print("  bit-identical: %s" % identical)
    payload = {
        "experiment": "ext_faults campaign (serial vs sharded)",
        # Speedup is bounded by the host: on a single-CPU box the
        # sharded sweep can only demonstrate identity, not gain.
        "host_cpus": os.cpu_count(),
        "design": serial.design,
        "num_patterns": serial.num_patterns,
        "sites_total": serial.num_sites,
        "sites_pruned": serial.pruned_sites,
        "sites_simulated": serial.simulated_sites,
        "workers": args.workers,
        "serial_seconds": round(serial_s, 4),
        "sharded_seconds": round(sharded_s, 4),
        "speedup": round(serial_s / sharded_s, 4) if sharded_s else None,
        "bit_identical": identical,
        "campaign": serial.summary(),
    }
    if args.json:
        _write_json(args.json, payload)
    if not identical:
        print("ERROR: sharded sweep diverged from the serial sweep")
        return 1
    return 0


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="Sharded, resumable fault-injection campaigns.",
    )
    sub = parser.add_subparsers(dest="command")
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--width", type=int, default=8)
    common.add_argument(
        "--kind", choices=("column", "row"), default="column"
    )
    common.add_argument(
        "--skip", type=int, default=None,
        help="judging threshold (default width//2 - 1)",
    )
    common.add_argument(
        "--cycle-fraction", type=float, default=0.6,
        help="clock period as a fraction of the critical path",
    )
    common.add_argument("--sites", type=int, default=60)
    common.add_argument("--patterns", type=int, default=2000)
    common.add_argument("--seed", type=int, default=7)
    common.add_argument("--years", type=float, default=0.0)
    common.add_argument(
        "--characterize-patterns", type=int, default=600,
        help="BTI characterization workload length",
    )
    common.add_argument("--workers", type=int, default=1)
    common.add_argument(
        "--kernel", type=_kernel_arg, default="soa",
        help="gate-kernel backend: soa, percell or numba (all"
        " bit-identical; numba falls back to soa when unavailable)",
    )
    common.add_argument(
        "--no-prune", action="store_true",
        help="disable logic-cone pruning",
    )
    common.add_argument(
        "--json", metavar="PATH", help="write a JSON artifact to PATH"
    )

    run = sub.add_parser(
        "run", parents=[common],
        help="run one (optionally sharded + checkpointed) campaign",
    )
    run.add_argument(
        "--checkpoint", metavar="PATH",
        help="JSONL checkpoint to append per-site reports to",
    )
    run.add_argument(
        "--no-resume", action="store_true",
        help="ignore an existing checkpoint and start over",
    )
    run.add_argument(
        "--quiet", action="store_true", help="no per-site progress line"
    )
    run.add_argument(
        "--shard", type=_shard_arg, metavar="I/N", default=None,
        help="run only shard I of N (contiguous site slice; merge the"
        " per-shard checkpoints with the 'merge' subcommand)",
    )
    run.add_argument(
        "--pool", metavar="SPEC", default=None,
        help="worker pool: local:N, tcp:host:port,... or manifest:DIR"
        " (see 'python -m repro distrib')",
    )
    run.set_defaults(func=cmd_run)

    merge = sub.add_parser(
        "merge", parents=[common],
        help="fuse per-shard checkpoints into the full campaign result",
    )
    merge.add_argument(
        "--checkpoint", metavar="PATH", nargs="+", required=True,
        help="the shard checkpoint files (any order)",
    )
    merge.set_defaults(func=cmd_merge)

    bench = sub.add_parser(
        "bench", parents=[common],
        help="serial-vs-sharded wall-clock benchmark (+JSON artifact)",
    )
    bench.set_defaults(func=cmd_bench, workers_default=2)
    return parser


def main(argv=None) -> int:
    parser = make_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 0
    if args.command == "bench" and args.workers < 2:
        args.workers = 2
    try:
        return args.func(args)
    except ReproError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 1


if __name__ == "__main__":
    print(
        "note: 'python -m repro.faults' is deprecated; use"
        " 'python -m repro faults' (same arguments)",
        file=sys.stderr,
    )
    sys.exit(main())
