"""Fault injection: fault models, netlist injection, campaign sweeps.

The reliability claim of the paper -- and of this reproduction's
extensions -- is only testable against *faulty* silicon.  This package
provides the three standard fault classes of the aging-monitor
literature (stuck-at, transient bit-flip, delay hot-spot), applies them
to compiled netlists through the timing engine's fault hooks, and runs
sweeping :class:`InjectionCampaign` s that measure what fraction of
injected corruption the Razor bank detects and how the recovery
policies absorb it.

Quickstart::

    from repro import AgingAwareMultiplier
    from repro.faults import InjectionCampaign

    arch = AgingAwareMultiplier.build(8, "column", skip=3, cycle_ns=0.6)
    result = InjectionCampaign.sweep(arch, num_sites=50,
                                     num_patterns=2000).run()
    print(result.render())

Campaigns are restartable, partitionable jobs: ``run(workers=4,
checkpoint="campaign.jsonl")`` shards the site list over a process pool
(bit-identical to the serial sweep), persists every
:class:`SiteReport` as it completes, resumes from the checkpoint after
a kill, and prunes sites whose logic cone cannot reach an observed
product bit.  ``python -m repro.faults run --help`` exposes the same
machinery from the command line.
"""

from .campaign import (
    CampaignResult,
    InjectionCampaign,
    SiteReport,
    unique_site_ids,
)
from .injector import (
    SITE_KINDS,
    build_fault_hooks,
    compile_with_faults,
    em_fault_sites,
    enumerate_fault_sites,
    fault_delay_scale,
    fault_delay_scales,
)
from .models import (
    DelayFault,
    FaultModel,
    StuckAtFault,
    TransientBitFlip,
)
from .parallel import make_batches, run_sharded
from .store import CheckpointStore

__all__ = [
    "CampaignResult",
    "CheckpointStore",
    "DelayFault",
    "FaultModel",
    "InjectionCampaign",
    "SITE_KINDS",
    "SiteReport",
    "StuckAtFault",
    "TransientBitFlip",
    "build_fault_hooks",
    "compile_with_faults",
    "em_fault_sites",
    "enumerate_fault_sites",
    "fault_delay_scale",
    "fault_delay_scales",
    "make_batches",
    "run_sharded",
    "unique_site_ids",
]
