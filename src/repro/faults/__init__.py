"""Fault injection: fault models, netlist injection, campaign sweeps.

The reliability claim of the paper -- and of this reproduction's
extensions -- is only testable against *faulty* silicon.  This package
provides the three standard fault classes of the aging-monitor
literature (stuck-at, transient bit-flip, delay hot-spot), applies them
to compiled netlists through the timing engine's fault hooks, and runs
sweeping :class:`InjectionCampaign` s that measure what fraction of
injected corruption the Razor bank detects and how the recovery
policies absorb it.

Quickstart::

    from repro import AgingAwareMultiplier
    from repro.faults import InjectionCampaign

    arch = AgingAwareMultiplier.build(8, "column", skip=3, cycle_ns=0.6)
    result = InjectionCampaign.sweep(arch, num_sites=50,
                                     num_patterns=2000).run()
    print(result.render())
"""

from .campaign import CampaignResult, InjectionCampaign, SiteReport
from .injector import (
    SITE_KINDS,
    build_fault_hooks,
    compile_with_faults,
    enumerate_fault_sites,
    fault_delay_scale,
)
from .models import (
    DelayFault,
    FaultModel,
    StuckAtFault,
    TransientBitFlip,
)

__all__ = [
    "CampaignResult",
    "DelayFault",
    "FaultModel",
    "InjectionCampaign",
    "SITE_KINDS",
    "SiteReport",
    "StuckAtFault",
    "TransientBitFlip",
    "build_fault_hooks",
    "compile_with_faults",
    "enumerate_fault_sites",
    "fault_delay_scale",
]
