"""Applying fault models to a netlist / compiled engine.

:func:`compile_with_faults` is the single entry point: it folds any mix
of value faults (stuck-at, transient flips -- applied through the
engine's fault hooks) and delay faults (applied through the per-cell
delay-scale vector, composing with aging/EM scales) into one
:class:`~repro.timing.engine.CompiledCircuit`.

:func:`enumerate_fault_sites` produces a deterministic, seeded sweep of
candidate fault sites over a netlist's cell outputs, used by
:class:`repro.faults.campaign.InjectionCampaign`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..config import DEFAULT_TECHNOLOGY, Technology
from ..errors import FaultError
from ..nets.netlist import Netlist
from ..timing.engine import CompiledCircuit, FaultHook
from .models import DelayFault, FaultModel, StuckAtFault, TransientBitFlip

#: Fault-kind tags accepted by :func:`enumerate_fault_sites`.
SITE_KINDS = ("sa0", "sa1", "transient", "delay")


def _chain_hooks(first: FaultHook, second: FaultHook) -> FaultHook:
    def chained(values: np.ndarray, start_index: int) -> np.ndarray:
        return second(first(values, start_index), start_index)

    # Preserve value-plane cacheability (repro.timing.value_cache): a
    # chain is keyable iff both links are.
    first_key = getattr(first, "cache_key", None)
    second_key = getattr(second, "cache_key", None)
    if first_key is not None and second_key is not None:
        chained.cache_key = "%s+%s" % (first_key, second_key)
    return chained


def build_fault_hooks(
    netlist: Netlist, faults: Sequence[FaultModel]
) -> Dict[int, FaultHook]:
    """Collect the value-fault hooks of ``faults`` keyed by net id.

    Multiple value faults on the same net compose in listed order (e.g.
    a transient flip on top of a stuck net is absorbed by the stuck-at
    applied last).
    """
    hooks: Dict[int, FaultHook] = {}
    for fault in faults:
        if not isinstance(fault, FaultModel):
            raise FaultError("not a fault model: %r" % (fault,))
        fault.validate(netlist)
        hook = fault.value_hook()
        if hook is None:
            continue
        if getattr(hook, "cache_key", None) is None:
            # Deterministic identity so faulty value planes can be
            # cached per hook set (see repro.timing.value_cache).
            try:
                hook.cache_key = fault.site_id()
            except AttributeError:  # pragma: no cover - exotic callables
                pass
        net = fault.net
        hooks[net] = (
            _chain_hooks(hooks[net], hook) if net in hooks else hook
        )
    return hooks


def fault_delay_scale(
    netlist: Netlist,
    faults: Sequence[FaultModel],
    technology: Technology = DEFAULT_TECHNOLOGY,
    base_scale: Optional[np.ndarray] = None,
) -> Optional[np.ndarray]:
    """Fold :class:`DelayFault` extras into a per-cell delay-scale vector.

    The compiled delay of cell ``i`` is ``delay_units * time_unit_ns *
    scale[i]``, so an additive ``extra_ns`` becomes an additive
    delay-scale term.  Returns ``base_scale`` (possibly None) untouched
    when no delay faults are present.
    """
    delay_faults = [f for f in faults if isinstance(f, DelayFault)]
    if not delay_faults:
        return base_scale
    num_cells = len(netlist.cells)
    if base_scale is None:
        scale = np.ones(num_cells)
    else:
        scale = np.asarray(base_scale, dtype=float).copy()
        if scale.shape != (num_cells,):
            raise FaultError(
                "base delay scale must have one entry per cell (%d), got %r"
                % (num_cells, scale.shape)
            )
    unit = technology.time_unit_ns
    for fault in delay_faults:
        fault.validate(netlist)
        cell = netlist.cells[fault.cell]
        scale[fault.cell] += fault.extra_ns / (
            cell.cell_type.delay_units * unit
        )
    return scale


def fault_delay_scales(
    netlist: Netlist,
    faults: Sequence[FaultModel],
    base_scales: np.ndarray,
    technology: Technology = DEFAULT_TECHNOLOGY,
) -> np.ndarray:
    """Fold :class:`DelayFault` extras into a ``(k, num_cells)`` scale
    *matrix* -- every corner row gets the same additive term, mirroring
    :func:`fault_delay_scale` per row.

    This is the multi-corner form variant sweeps price through
    :func:`repro.timing.delta.replay_delta`: the perturbed columns are
    exactly the fault's cells, so the arrival cone stays the fault's
    forward cone.  Returns ``base_scales`` itself (not a copy) when no
    delay faults are present.
    """
    scales = np.asarray(base_scales, dtype=float)
    if scales.ndim == 1:
        scales = scales[None, :]
    num_cells = len(netlist.cells)
    if scales.ndim != 2 or scales.shape[1] != num_cells:
        raise FaultError(
            "base delay scales must be (k, num_cells) with"
            " num_cells=%d, got %r" % (num_cells, np.shape(base_scales))
        )
    delay_faults = [f for f in faults if isinstance(f, DelayFault)]
    if not delay_faults:
        return scales
    scales = scales.copy()
    unit = technology.time_unit_ns
    for fault in delay_faults:
        fault.validate(netlist)
        cell = netlist.cells[fault.cell]
        scales[:, fault.cell] += fault.extra_ns / (
            cell.cell_type.delay_units * unit
        )
    return scales


def compile_with_faults(
    netlist: Netlist,
    faults: Sequence[FaultModel],
    technology: Technology = DEFAULT_TECHNOLOGY,
    delay_scale: Optional[np.ndarray] = None,
    mode: str = "inertial",
    kernel: str = "soa",
) -> CompiledCircuit:
    """Compile ``netlist`` with ``faults`` injected.

    With an empty fault list this is exactly ``CompiledCircuit(netlist,
    technology, delay_scale, mode)`` -- the zero-fault campaign is
    bit-identical to the pristine simulation (property-tested).
    ``kernel`` selects the chunk runner (see
    :data:`repro.timing.engine.KERNELS`); hooked cells always evaluate
    on the scalar path regardless, so faults behave identically under
    either kernel.
    """
    hooks = build_fault_hooks(netlist, faults)
    scale = fault_delay_scale(netlist, faults, technology, delay_scale)
    return CompiledCircuit(
        netlist, technology, scale, mode, fault_hooks=hooks or None,
        kernel=kernel,
    )


def em_fault_sites(
    netlist: Netlist,
    toggle_rates: np.ndarray,
    years: float = 10.0,
    em_model=None,
    limit: Optional[int] = None,
    technology: Technology = DEFAULT_TECHNOLOGY,
) -> List[DelayFault]:
    """Delay-fault sites derived from the electromigration model.

    Instead of spreading sites uniformly over the netlist
    (:func:`enumerate_fault_sites`), this targets the cells whose output
    wires electromigration ages fastest under the measured workload: the
    EM current-density model (:class:`~repro.aging.electromigration
    .ElectromigrationModel`) converts per-cell ``toggle_rates`` into
    delay-scale factors after ``years``, cells are ranked by the
    *absolute* delay they gain (scale excess x the cell's own delay),
    and each of the top ``limit`` cells gets a :class:`DelayFault` of
    exactly that magnitude.  Fully deterministic -- no sampling.
    """
    from ..aging.electromigration import ElectromigrationModel

    if em_model is None:
        em_model = ElectromigrationModel(technology)
    cells = netlist.cells
    if not cells:
        return []
    scale = em_model.delay_scale(netlist, toggle_rates, years)
    unit = technology.time_unit_ns
    extra_ns = np.array(
        [
            (scale[cell.index] - 1.0)
            * cell.cell_type.delay_units
            * unit
            for cell in cells
        ]
    )
    order = np.argsort(-extra_ns, kind="stable")
    if limit is not None:
        order = order[:limit]
    return [
        DelayFault(int(index), float(extra_ns[index])) for index in order
    ]


def enumerate_fault_sites(
    netlist: Netlist,
    kinds: Sequence[str] = SITE_KINDS,
    limit: Optional[int] = None,
    seed: int = 0,
    transient_rate: float = 1e-3,
    delay_extra_ns: float = 0.25,
) -> List[FaultModel]:
    """A deterministic sweep of single-fault sites over cell outputs.

    Cycles through ``kinds`` across a seeded shuffle of the netlist's
    cells, one fault per site, ``limit`` sites in total (all
    ``len(cells) * len(kinds)`` combinations when None).  Stuck-at and
    transient faults target the cell's output net; delay faults target
    the cell itself.
    """
    for kind in kinds:
        if kind not in SITE_KINDS:
            raise FaultError(
                "unknown fault site kind %r (known: %s)"
                % (kind, SITE_KINDS)
            )
    if not netlist.cells:
        return []
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(netlist.cells))
    total = len(order) * len(kinds)
    count = total if limit is None else min(limit, total)
    sites: List[FaultModel] = []
    for i in range(count):
        cell = netlist.cells[int(order[i % len(order)])]
        kind = kinds[i % len(kinds)]
        if kind == "sa0":
            sites.append(StuckAtFault(cell.output, 0))
        elif kind == "sa1":
            sites.append(StuckAtFault(cell.output, 1))
        elif kind == "transient":
            sites.append(
                TransientBitFlip(cell.output, transient_rate, seed=seed + i)
            )
        else:
            sites.append(DelayFault(cell.index, delay_extra_ns))
    return sites
