"""Fault model library: stuck-at, transient bit-flip and delay faults.

Aging validation flows (Juracy et al.'s survey of aging monitors; the
NBTI fault-injection literature) exercise a countermeasure against three
fault classes, all modelled here against the gate-level netlists:

* :class:`StuckAtFault` -- a net permanently tied to 0/1 (hard defect,
  end-of-life oxide breakdown).  The stuck net is electrically quiet, so
  it changes *values* but produces no late arrivals of its own.
* :class:`TransientBitFlip` -- a single-event upset (SEU): the net's
  settled value flips on a random subset of patterns.  Flips are drawn
  from a counter-based hash of ``(seed, net, pattern index)``, so a
  stream is bit-reproducible regardless of engine chunking.
* :class:`DelayFault` -- a localized aging hot-spot: one cell gets a
  fixed extra propagation delay on top of the smooth BTI/EM curve.  This
  is the fault class Razor is designed to catch.

Value faults enter the simulator through
:attr:`repro.timing.engine.CompiledCircuit` fault hooks; delay faults
enter through the per-cell delay-scale vector.  Use
:func:`repro.faults.injector.compile_with_faults` to apply a mix of all
three to a netlist.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional

import numpy as np

from ..errors import FaultError
from ..nets.netlist import CONST0, CONST1, Netlist

#: splitmix64 multiplier constants (stateless counter-based hashing).
_GAMMA = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB
_MASK64 = (1 << 64) - 1


def _hash_uniform(seed: int, lane: int, indices: np.ndarray) -> np.ndarray:
    """Deterministic uniforms in [0, 1) per (seed, lane, index).

    A splitmix64 finalizer over a per-(seed, lane) key -- stateless, so
    any slice of the pattern axis hashes identically no matter how the
    stream is chunked.
    """
    key = ((seed * _MIX1 + lane * _MIX2 + _GAMMA) ^ (lane << 17)) & _MASK64
    x = indices.astype(np.uint64) * np.uint64(_GAMMA)
    x ^= np.uint64(key)
    x ^= x >> np.uint64(30)
    x *= np.uint64(_MIX1)
    x ^= x >> np.uint64(27)
    x *= np.uint64(_MIX2)
    x ^= x >> np.uint64(31)
    return x.astype(np.float64) / float(1 << 64)


@dataclasses.dataclass(frozen=True)
class FaultModel:
    """Base class of every injectable fault.

    Subclasses are frozen dataclasses, so a fault doubles as a hashable
    campaign key.  ``validate(netlist)`` checks the target exists;
    ``value_hook()`` returns the engine hook for value faults (None for
    pure delay faults); ``describe()`` is the human-readable site label.
    """

    def validate(self, netlist: Netlist) -> None:
        raise NotImplementedError

    def value_hook(self) -> Optional[Callable]:
        return None

    @property
    def kind(self) -> str:
        raise NotImplementedError

    def describe(self, netlist: Optional[Netlist] = None) -> str:
        raise NotImplementedError

    def site_id(self) -> str:
        """Canonical, process-stable identifier of this fault site.

        Unlike :meth:`describe` (which uses human-readable net names)
        the site id is derived purely from the fault's own parameters,
        so it is identical across processes and interpreter runs -- it
        is the key the campaign checkpoint store persists reports under.
        """
        raise NotImplementedError

    def cone_root(self, netlist: Netlist) -> int:
        """The net whose forward logic cone this fault can corrupt.

        Value faults corrupt their target net; a delay fault can only
        move arrivals downstream of its cell's output.  Campaigns use
        this with :meth:`repro.timing.engine.CompiledCircuit
        .output_reach_mask` to prune sites that cannot reach any
        observed product bit.
        """
        raise NotImplementedError


def _check_net(net: int, netlist: Optional[Netlist] = None) -> None:
    if not isinstance(net, int) or isinstance(net, bool):
        raise FaultError("fault net id must be an int, got %r" % (net,))
    if net in (CONST0, CONST1):
        raise FaultError("cannot fault the constant rails")
    if net < 0:
        raise FaultError("fault net id must be non-negative, got %d" % net)
    if netlist is not None and net >= netlist.num_nets:
        raise FaultError(
            "fault net %d out of range (netlist has %d nets)"
            % (net, netlist.num_nets)
        )


@dataclasses.dataclass(frozen=True)
class StuckAtFault(FaultModel):
    """Net ``net`` permanently reads ``value`` (0 or 1).

    The hook forces the whole stream -- including the settling pattern --
    so the fault is present from before the first operation and the net
    never transitions (a stuck node is electrically quiet).
    """

    net: int
    value: int

    def __post_init__(self):
        _check_net(self.net)
        if self.value not in (0, 1):
            raise FaultError(
                "stuck-at value must be 0 or 1, got %r" % (self.value,)
            )

    def validate(self, netlist: Netlist) -> None:
        _check_net(self.net, netlist)

    def value_hook(self):
        value = np.uint8(self.value)

        def hook(values: np.ndarray, start_index: int) -> np.ndarray:
            return np.full_like(values, value)

        return hook

    @property
    def kind(self) -> str:
        return "stuck-at-%d" % self.value

    def describe(self, netlist: Optional[Netlist] = None) -> str:
        where = netlist.net_name(self.net) if netlist else "n%d" % self.net
        return "sa%d@%s" % (self.value, where)

    def site_id(self) -> str:
        return "sa%d:n%d" % (self.value, self.net)

    def cone_root(self, netlist: Netlist) -> int:
        return self.net


@dataclasses.dataclass(frozen=True)
class TransientBitFlip(FaultModel):
    """SEU: net ``net`` flips on a random ``rate`` fraction of patterns.

    Flip decisions are a pure function of ``(seed, net, pattern index)``,
    so results are chunking-independent and reproducible.  The settling
    pattern (index -1) is never flipped.  A flip lands at the start of
    the cycle (the upset happens while the combinational logic is quiet),
    so -- like real SEUs -- it corrupts values without a late arrival and
    is invisible to Razor's timing comparison unless downstream logic is
    simultaneously slow.
    """

    net: int
    rate: float
    seed: int = 0

    def __post_init__(self):
        _check_net(self.net)
        if not 0.0 <= self.rate <= 1.0:
            raise FaultError(
                "transient flip rate must lie in [0, 1], got %r"
                % (self.rate,)
            )

    def validate(self, netlist: Netlist) -> None:
        _check_net(self.net, netlist)

    def value_hook(self):
        net, rate, seed = self.net, self.rate, self.seed

        def hook(values: np.ndarray, start_index: int) -> np.ndarray:
            idx = np.arange(
                start_index, start_index + values.shape[0], dtype=np.int64
            )
            flips = (_hash_uniform(seed, net, idx) < rate) & (idx >= 0)
            return values ^ flips.astype(np.uint8)

        return hook

    @property
    def kind(self) -> str:
        return "transient"

    def describe(self, netlist: Optional[Netlist] = None) -> str:
        where = netlist.net_name(self.net) if netlist else "n%d" % self.net
        return "seu@%s rate=%g" % (where, self.rate)

    def site_id(self) -> str:
        return "seu:n%d:r%r:s%d" % (self.net, self.rate, self.seed)

    def cone_root(self, netlist: Netlist) -> int:
        return self.net


@dataclasses.dataclass(frozen=True)
class DelayFault(FaultModel):
    """Cell ``cell`` is ``extra_ns`` slower than its aged delay.

    Models a localized hot-spot (metal self-heating, a fast-aging
    transistor pair) beyond the smooth BTI curve.  Unlike value faults
    this produces genuinely *late* arrivals, which is the fault class
    the Razor bank detects and the recovery policies absorb.
    """

    cell: int
    extra_ns: float

    def __post_init__(self):
        if not isinstance(self.cell, int) or isinstance(self.cell, bool):
            raise FaultError(
                "delay-fault cell index must be an int, got %r"
                % (self.cell,)
            )
        if self.cell < 0:
            raise FaultError("delay-fault cell index must be non-negative")
        if not self.extra_ns >= 0.0:
            raise FaultError(
                "delay-fault extra_ns must be non-negative, got %r"
                % (self.extra_ns,)
            )

    def validate(self, netlist: Netlist) -> None:
        if self.cell >= len(netlist.cells):
            raise FaultError(
                "delay-fault cell %d out of range (netlist has %d cells)"
                % (self.cell, len(netlist.cells))
            )

    @property
    def kind(self) -> str:
        return "delay"

    def describe(self, netlist: Optional[Netlist] = None) -> str:
        if netlist is not None and self.cell < len(netlist.cells):
            cell = netlist.cells[self.cell]
            where = cell.name or "%s#%d" % (cell.cell_type.name, self.cell)
        else:
            where = "cell%d" % self.cell
        return "delay@%s +%.3fns" % (where, self.extra_ns)

    def site_id(self) -> str:
        return "delay:c%d:e%r" % (self.cell, self.extra_ns)

    def cone_root(self, netlist: Netlist) -> int:
        return netlist.cells[self.cell].output
