"""Temporally correlated (bursty) operand streams.

The paper's testbench applies i.i.d. uniform patterns, but real operand
buses are bursty: values persist, change in bursts, or random-walk.
Because the per-pattern delay of a two-vector simulation depends on the
*transition*, temporal correlation changes both power (fewer toggles)
and the Razor error profile.  These generators make that axis testable.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import WorkloadError


def lazy_stream(
    width: int,
    num_patterns: int,
    hold_probability: float = 0.7,
    seed: int = 1,
) -> np.ndarray:
    """Each step keeps the previous value with ``hold_probability``."""
    _check(width, num_patterns)
    if not 0.0 <= hold_probability < 1.0:
        raise WorkloadError("hold_probability must lie in [0, 1)")
    rng = np.random.default_rng(seed)
    high = 1 << width
    fresh = rng.integers(0, high, num_patterns, dtype=np.uint64)
    hold = rng.random(num_patterns) < hold_probability
    hold[0] = False
    values = fresh.copy()
    for k in range(1, num_patterns):
        if hold[k]:
            values[k] = values[k - 1]
    return values


def bit_markov_stream(
    width: int,
    num_patterns: int,
    flip_probability: float = 0.1,
    seed: int = 1,
) -> np.ndarray:
    """Each *bit* independently flips with ``flip_probability`` per step.

    Low flip probabilities yield high temporal correlation with an
    unbiased stationary distribution -- unlike :func:`lazy_stream`, every
    step usually changes *something*, so the circuit never fully idles.
    """
    _check(width, num_patterns)
    if not 0.0 < flip_probability <= 1.0:
        raise WorkloadError("flip_probability must lie in (0, 1]")
    rng = np.random.default_rng(seed)
    flips = rng.random((num_patterns, width)) < flip_probability
    state = rng.integers(0, 2, width, dtype=np.uint64)
    values = np.empty(num_patterns, dtype=np.uint64)
    for k in range(num_patterns):
        state = state ^ flips[k].astype(np.uint64)
        values[k] = int(
            sum(int(bit) << lane for lane, bit in enumerate(state))
        )
    return values


def random_walk_stream(
    width: int,
    num_patterns: int,
    step_scale: float = 0.02,
    seed: int = 1,
) -> np.ndarray:
    """A bounded random walk (slowly drifting magnitudes)."""
    _check(width, num_patterns)
    if step_scale <= 0:
        raise WorkloadError("step_scale must be positive")
    rng = np.random.default_rng(seed)
    top = (1 << width) - 1
    steps = rng.normal(0.0, step_scale * top, num_patterns)
    position = np.clip(
        np.cumsum(steps) + top / 2.0, 0, top
    )
    return np.round(position).astype(np.uint64)


def correlated_operands(
    width: int,
    num_patterns: int,
    hold_probability: float = 0.7,
    seed: int = 1,
) -> Tuple[np.ndarray, np.ndarray]:
    """A (md, mr) pair of independently lazy streams."""
    return (
        lazy_stream(width, num_patterns, hold_probability, seed),
        lazy_stream(width, num_patterns, hold_probability, seed + 1),
    )


def _check(width: int, num_patterns: int) -> None:
    if not 1 <= width <= 63:
        raise WorkloadError("width must lie in [1, 63]")
    if num_patterns < 1:
        raise WorkloadError("num_patterns must be >= 1")
