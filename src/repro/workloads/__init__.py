"""Workload generation: the paper's random streams (Section IV) plus
application-shaped streams for the motivating DSP domains."""

from .generators import (
    PatternStream,
    operands_with_zero_count,
    uniform_operands,
    walking_ones,
    zero_weighted_operands,
)
from .dsp import (
    dct_stream,
    fir_filter_stream,
    image_gradient_stream,
    sparse_fir_stream,
)
from .markov import (
    bit_markov_stream,
    correlated_operands,
    lazy_stream,
    random_walk_stream,
)

__all__ = [
    "PatternStream",
    "bit_markov_stream",
    "correlated_operands",
    "lazy_stream",
    "random_walk_stream",
    "dct_stream",
    "fir_filter_stream",
    "image_gradient_stream",
    "operands_with_zero_count",
    "sparse_fir_stream",
    "uniform_operands",
    "walking_ones",
    "zero_weighted_operands",
]
