"""Application-shaped workloads (the paper's motivating domains).

The introduction motivates the multiplier with Fourier transforms,
discrete cosine transforms and digital filtering.  These generators
produce the operand streams such kernels actually feed a multiplier:

* :func:`fir_filter_stream` -- a direct-form FIR filter: a short,
  *fixed* coefficient vector (multiplicand) against a sliding window of
  samples (multiplicator).  Coefficients are reused heavily, so the
  column-bypassing design's delay is dominated by a few coefficient
  zero-counts -- the situation where choosing the judged operand
  (md vs mr) matters most.
* :func:`dct_stream` -- an 8-point DCT-II butterfly's coefficient and
  sample pairs, quantized to the operand width.
* :func:`image_gradient_stream` -- pixel pairs from a synthetic image
  with smooth gradients plus noise; neighbouring operands are strongly
  correlated, lowering switching activity relative to uniform noise.

All values are unsigned ``width``-bit magnitudes (the paper's
multipliers are unsigned): signed kernels are folded by magnitude, which
preserves the zero-count statistics that drive the architecture.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from ..errors import WorkloadError


def _quantize(values: np.ndarray, width: int) -> np.ndarray:
    """Map real values in [-1, 1] to unsigned width-bit magnitudes."""
    top = (1 << width) - 1
    magnitudes = np.clip(np.abs(values), 0.0, 1.0)
    return np.round(magnitudes * top).astype(np.uint64)


def fir_filter_stream(
    width: int,
    num_patterns: int,
    num_taps: int = 16,
    seed: int = 1,
) -> Tuple[np.ndarray, np.ndarray]:
    """Direct-form FIR convolution operand stream.

    Returns ``(md, mr)``: the multiplicand stream cycles through the
    ``num_taps`` fixed coefficients of a low-pass windowed-sinc filter;
    the multiplicator stream is the corresponding sliding-window sample.
    """
    _check(width, num_patterns)
    if num_taps < 1:
        raise WorkloadError("num_taps must be >= 1")
    rng = np.random.default_rng(seed)

    # Hamming-windowed sinc taps, normalized to peak 1.
    n = np.arange(num_taps)
    centred = n - (num_taps - 1) / 2.0
    taps = np.sinc(centred / 3.0) * np.hamming(num_taps)
    taps /= np.abs(taps).max()
    coefficients = _quantize(taps, width)

    samples = rng.normal(0.0, 0.35, num_patterns + num_taps)
    samples = np.clip(samples, -1.0, 1.0)

    md = np.empty(num_patterns, dtype=np.uint64)
    mr = np.empty(num_patterns, dtype=np.uint64)
    quantized = _quantize(samples, width)
    for k in range(num_patterns):
        md[k] = coefficients[k % num_taps]
        mr[k] = quantized[k // num_taps + (k % num_taps)]
    return md, mr


def sparse_fir_stream(
    width: int,
    num_patterns: int,
    num_taps: int = 16,
    seed: int = 1,
    sparsity: float = 0.85,
    levels: int = 8,
) -> Tuple[np.ndarray, np.ndarray]:
    """FIR operand stream over a mostly-silent, coarsely-held signal.

    Real filtering workloads (voice activity gaps, pause frames, DC
    image regions) spend most cycles multiplying the same few operand
    pairs: the coefficient vector cycles while the sample is zero or
    held at one of a few quantized levels.  ``sparsity`` is the
    fraction of *sample* positions that are exactly zero; non-zero
    samples snap to ``levels`` coarse magnitudes and are held for short
    runs.  The resulting ``(md, mr)`` transition stream repeats
    heavily, which is what unique-stimulus folding
    (:func:`repro.timing.fold.fold_stimulus`) exploits.
    """
    _check(width, num_patterns)
    if num_taps < 1:
        raise WorkloadError("num_taps must be >= 1")
    if not 0.0 <= sparsity < 1.0:
        raise WorkloadError("sparsity must lie in [0, 1)")
    if levels < 1:
        raise WorkloadError("levels must be >= 1")
    rng = np.random.default_rng(seed)

    n = np.arange(num_taps)
    centred = n - (num_taps - 1) / 2.0
    taps = np.sinc(centred / 3.0) * np.hamming(num_taps)
    taps /= np.abs(taps).max()
    coefficients = _quantize(taps, width)

    # Sample track: zero-runs interleaved with short holds at one of a
    # few coarse levels (a step-wise envelope, not fresh noise).
    num_samples = num_patterns + num_taps
    magnitudes = np.linspace(1.0 / levels, 1.0, levels)
    samples = np.zeros(num_samples)
    pos = 0
    while pos < num_samples:
        run = int(rng.integers(2, 3 * num_taps))
        if rng.random() >= sparsity:
            samples[pos:pos + run] = rng.choice(magnitudes)
        pos += run
    quantized = _quantize(samples, width)

    md = coefficients[np.arange(num_patterns) % num_taps]
    k = np.arange(num_patterns)
    mr = quantized[k // num_taps + (k % num_taps)]
    return md.astype(np.uint64), mr.astype(np.uint64)


def dct_stream(
    width: int,
    num_patterns: int,
    seed: int = 1,
) -> Tuple[np.ndarray, np.ndarray]:
    """8-point DCT-II coefficient x sample operand pairs."""
    _check(width, num_patterns)
    rng = np.random.default_rng(seed)
    # DCT-II basis cosines for an 8-point transform.
    basis = np.array(
        [
            math.cos((2 * x + 1) * u * math.pi / 16.0)
            for u in range(8)
            for x in range(8)
        ]
    )
    coefficients = _quantize(basis, width)
    samples = _quantize(
        np.clip(rng.normal(0.0, 0.4, num_patterns), -1, 1), width
    )
    md = coefficients[np.arange(num_patterns) % coefficients.size]
    return md.astype(np.uint64), samples


def image_gradient_stream(
    width: int,
    num_patterns: int,
    seed: int = 1,
    noise: float = 0.05,
) -> Tuple[np.ndarray, np.ndarray]:
    """Neighbouring-pixel pairs from a smooth synthetic image."""
    _check(width, num_patterns)
    rng = np.random.default_rng(seed)
    side = int(math.ceil(math.sqrt(num_patterns + 1)))
    gradient = np.linspace(0.0, 1.0, side)
    image = 0.5 * (gradient[:, None] + gradient[None, :])
    image = np.clip(image + rng.normal(0.0, noise, image.shape), 0.0, 1.0)
    flat = _quantize(image.ravel() * 2 - 1, width)
    md = flat[:num_patterns]
    mr = flat[1 : num_patterns + 1]
    return md.astype(np.uint64), mr.astype(np.uint64)


def _check(width: int, num_patterns: int) -> None:
    if not 1 <= width <= 63:
        raise WorkloadError("width must lie in [1, 63]")
    if num_patterns < 1:
        raise WorkloadError("num_patterns must be >= 1")
