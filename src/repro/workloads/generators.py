"""Seeded pattern generators.

The paper drives every experiment with uniformly random operands (65 536
patterns for the delay distributions, 3 000 for the zero-count study of
Fig. 6, 10 000 for the latency sweeps).  These generators reproduce those
workloads deterministically, plus a few structured streams used by the
extra examples and ablations.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, Tuple

import numpy as np

from ..errors import WorkloadError


def uniform_operands(
    width: int, num_patterns: int, seed: int = 1
) -> Tuple[np.ndarray, np.ndarray]:
    """Uniformly random ``(md, mr)`` streams (the paper's workload)."""
    _check(width, num_patterns)
    rng = np.random.default_rng(seed)
    high = 1 << width
    md = rng.integers(0, high, num_patterns, dtype=np.uint64)
    mr = rng.integers(0, high, num_patterns, dtype=np.uint64)
    return md, mr


def operands_with_zero_count(
    width: int, num_patterns: int, zeros: int, seed: int = 1
) -> np.ndarray:
    """Random operands with *exactly* ``zeros`` zero bits (Fig. 6).

    Zero positions are chosen uniformly among the :math:`\\binom{w}{z}`
    possibilities, independently per pattern.
    """
    _check(width, num_patterns)
    if not 0 <= zeros <= width:
        raise WorkloadError(
            "zeros must lie in [0, %d], got %d" % (width, zeros)
        )
    rng = np.random.default_rng(seed)
    ones = width - zeros
    values = np.zeros(num_patterns, dtype=np.uint64)
    for k in range(num_patterns):
        positions = rng.choice(width, size=ones, replace=False)
        word = 0
        for position in positions:
            word |= 1 << int(position)
        values[k] = word
    return values


def zero_weighted_operands(
    width: int,
    num_patterns: int,
    one_probability: float,
    seed: int = 1,
) -> np.ndarray:
    """Operands whose bits are i.i.d. Bernoulli(``one_probability``).

    Sweeping ``one_probability`` shifts the zero-count distribution and
    with it the one-cycle pattern ratio -- used by the ablation
    benchmarks to probe non-uniform workloads.
    """
    _check(width, num_patterns)
    if not 0.0 <= one_probability <= 1.0:
        raise WorkloadError("one_probability must lie in [0, 1]")
    rng = np.random.default_rng(seed)
    bits = rng.random((num_patterns, width)) < one_probability
    values = np.zeros(num_patterns, dtype=np.uint64)
    for lane in range(width):
        values |= bits[:, lane].astype(np.uint64) << np.uint64(lane)
    return values


def walking_ones(width: int, num_patterns: int) -> np.ndarray:
    """A deterministic walking-ones stream (corner-case workload)."""
    _check(width, num_patterns)
    lanes = np.arange(num_patterns) % width
    return (np.uint64(1) << lanes.astype(np.uint64)).astype(np.uint64)


@dataclasses.dataclass(frozen=True)
class PatternStream:
    """A named, reproducible operand stream."""

    name: str
    width: int
    md: np.ndarray
    mr: np.ndarray

    def __post_init__(self):
        if self.md.shape != self.mr.shape:
            raise WorkloadError("md and mr must be equally long")

    @property
    def num_patterns(self) -> int:
        return int(self.md.shape[0])

    def windows(self, size: int) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Iterate ``(md, mr)`` windows of at most ``size`` patterns."""
        if size < 1:
            raise WorkloadError("window size must be >= 1")
        for start in range(0, self.num_patterns, size):
            yield self.md[start : start + size], self.mr[start : start + size]

    @classmethod
    def uniform(
        cls, width: int, num_patterns: int, seed: int = 1, name: str = ""
    ) -> "PatternStream":
        md, mr = uniform_operands(width, num_patterns, seed)
        return cls(name or "uniform-%d" % seed, width, md, mr)


def _check(width: int, num_patterns: int) -> None:
    if not 1 <= width <= 63:
        raise WorkloadError("width must lie in [1, 63], got %d" % width)
    if num_patterns < 1:
        raise WorkloadError("num_patterns must be >= 1")
