"""Technology and simulation configuration objects.

The paper evaluates on a 32-nm high-k/metal-gate predictive technology model
(PTM) at 125 degC with the ac reaction-diffusion (RD) BTI model of
[24]-[26].  The PTM card itself is not redistributable, so
:class:`Technology` carries the published headline constants of that node
(supply, nominal threshold voltages, oxide thickness, activation energies)
plus two calibration knobs:

* ``time_unit_ns`` - the logical-effort delay unit, fitted once so the
  16x16 array-multiplier critical path equals the paper's 1.32 ns.
* ``bti_prefactor`` - the constant ``A`` of Eq. (2), fitted once so the
  7-year critical-path drift of the 16x16 column-bypassing multiplier is
  about 13% (paper Fig. 7).

Both fits live in :mod:`repro.experiments.calibration`; the defaults below
are the fitted values so that a fresh install reproduces the paper without
re-running calibration.
"""

from __future__ import annotations

import dataclasses
import math

from .errors import ConfigError

#: Boltzmann constant in eV/K.
BOLTZMANN_EV = 8.617333262e-5

#: Seconds in one (Julian) year; used to convert aging times.
SECONDS_PER_YEAR = 365.25 * 24.0 * 3600.0


@dataclasses.dataclass(frozen=True)
class Technology:
    """A 32-nm high-k/metal-gate technology description.

    The defaults reproduce the paper's setup (Section IV): 32-nm high-k
    PTM-like device constants, 125 degC junction temperature, and the RD
    framework time exponent ``n = 1/6`` for H2 diffusion.
    """

    name: str = "ptm-hk-32nm"
    #: Supply voltage in volts.
    vdd: float = 0.9
    #: Nominal pMOS threshold voltage magnitude in volts (NBTI victim).
    vth_p: float = 0.30
    #: Nominal nMOS threshold voltage in volts (PBTI victim).
    vth_n: float = 0.29
    #: Gate oxide (equivalent) thickness in metres.
    tox: float = 1.2e-9
    #: Junction temperature in kelvin (125 degC).
    temperature: float = 398.15
    #: RD framework time exponent (1/6 for H2 diffusion).
    n_exponent: float = 1.0 / 6.0
    #: Reaction activation energy in eV (paper: 0.12 eV).
    ea: float = 0.12
    #: Field acceleration reference in V/m (paper: 1.9-2.0 MV/cm).
    e0: float = 1.95e8
    #: Velocity-saturation exponent of the alpha-power delay law.
    alpha_sat: float = 1.3
    #: Calibrated Eq. (2) prefactor ``A`` (see module docstring).
    bti_prefactor: float = 4.5874084e7
    #: Effective V_DS / (alpha * (V_GS - V_th)) of Eq. (2)'s drain-bias
    #: correction term (near-saturation operation).
    vds_ratio: float = 0.1
    #: PBTI severity relative to NBTI on this high-k node (paper cites
    #: [2]-[4]: PBTI is *not* negligible at 32-nm high-k; near parity).
    pbti_ratio: float = 0.9
    #: Calibrated logical-effort delay unit in nanoseconds.
    time_unit_ns: float = 0.010801964
    #: Unit gate input capacitance in femtofarads (for the power model).
    unit_cap_ff: float = 0.18
    #: Inertial glitch-filtering factor of the transition-density power
    #: model: the fraction of arriving glitch activity a gate propagates
    #: (narrow pulses die inside the gate).
    glitch_damping: float = 0.8
    #: Leakage current scale per transistor in nanoamperes at nominal Vth.
    leak_na: float = 4.0
    #: Subthreshold swing factor n*kT/q in volts at ``temperature``.
    subthreshold_swing: float = 1.35 * BOLTZMANN_EV * 398.15

    def __post_init__(self):
        if self.vdd <= 0:
            raise ConfigError("vdd must be positive, got %r" % (self.vdd,))
        if not 0 < self.vth_p < self.vdd:
            raise ConfigError(
                "vth_p must lie in (0, vdd), got %r" % (self.vth_p,)
            )
        if not 0 < self.vth_n < self.vdd:
            raise ConfigError(
                "vth_n must lie in (0, vdd), got %r" % (self.vth_n,)
            )
        if self.temperature <= 0:
            raise ConfigError("temperature must be positive (kelvin)")
        if not 0 < self.n_exponent < 1:
            raise ConfigError("n_exponent must lie in (0, 1)")
        if self.time_unit_ns <= 0:
            raise ConfigError("time_unit_ns must be positive")

    @property
    def gate_overdrive_p(self) -> float:
        """Fresh pMOS gate overdrive ``Vdd - |Vth_p|`` in volts."""
        return self.vdd - self.vth_p

    @property
    def gate_overdrive_n(self) -> float:
        """Fresh nMOS gate overdrive ``Vdd - Vth_n`` in volts."""
        return self.vdd - self.vth_n

    @property
    def oxide_field(self) -> float:
        """Gate electric field E_OX = (V_GS - V_th)/T_OX in V/m."""
        return self.gate_overdrive_p / self.tox

    def thermal_factor(self) -> float:
        """The Arrhenius term exp(-Ea / kT) of Eq. (2)."""
        return math.exp(-self.ea / (BOLTZMANN_EV * self.temperature))

    def replace(self, **changes) -> "Technology":
        """Return a copy with ``changes`` applied (frozen-dataclass helper)."""
        return dataclasses.replace(self, **changes)


#: Recovery-policy names accepted by :attr:`SimulationConfig.recovery_policy`
#: (see :mod:`repro.core.architecture` for their semantics).
RECOVERY_POLICIES = ("strict", "degrade", "detect-only")


@dataclasses.dataclass(frozen=True)
class SimulationConfig:
    """Knobs of the cycle-accurate architecture simulation (Section III)."""

    #: Razor penalty in cycles for a detected timing violation: one cycle
    #: for the Razor flag plus two re-execution cycles (Section IV-B).
    razor_penalty_cycles: int = 3
    #: Aging-indicator observation window in operations (Section IV-C).
    indicator_window: int = 100
    #: Error threshold within a window that flips the aging indicator
    #: (Section IV-C: 10 errors per 100 operations).
    indicator_threshold: int = 10
    #: Shadow-latch skew as a fraction of the cycle period.  The shadow
    #: latch samples this much later than the main flip-flop; a late
    #: arrival beyond the shadow edge would be undetectable, so two-cycle
    #: execution must always fit (the architecture guarantees 2T covers
    #: the critical path).
    shadow_skew_fraction: float = 1.0
    #: Whether the aging indicator may switch back to the relaxed judging
    #: block when errors subside (the paper's indicator is monotone: once
    #: aged, it stays on the stricter block).
    indicator_sticky: bool = True
    #: How the architecture resolves timing overruns that plain Razor
    #: re-execution cannot absorb (arrivals past the shadow window or the
    #: two-cycle budget).  One of :data:`RECOVERY_POLICIES`: ``"strict"``
    #: raises :class:`repro.errors.RecoveryExhaustedError`, ``"degrade"``
    #: charges a bounded multi-cycle fallback and records the event,
    #: ``"detect-only"`` charges nothing and only counts coverage.
    recovery_policy: str = "degrade"
    #: Upper bound on the multi-cycle fallback an overrunning operation
    #: may be charged (in cycles, on top of the Razor penalty).  Under
    #: ``degrade`` an operation needing more is capped and counted as
    #: recovery-exhausted; under ``strict`` it raises.
    max_fallback_cycles: int = 64
    #: Default per-pattern bit-flip probability used by fault-injection
    #: campaigns when a transient site does not specify its own rate.
    default_transient_rate: float = 1e-3

    def __post_init__(self):
        if self.razor_penalty_cycles < 1:
            raise ConfigError("razor_penalty_cycles must be >= 1")
        if self.indicator_window < 1:
            raise ConfigError("indicator_window must be >= 1")
        if not 0 <= self.indicator_threshold <= self.indicator_window:
            raise ConfigError(
                "indicator_threshold must lie in [0, indicator_window]"
            )
        if self.shadow_skew_fraction <= 0:
            raise ConfigError("shadow_skew_fraction must be positive")
        if self.recovery_policy not in RECOVERY_POLICIES:
            raise ConfigError(
                "recovery_policy must be one of %s, got %r"
                % (RECOVERY_POLICIES, self.recovery_policy)
            )
        if self.max_fallback_cycles < 1:
            raise ConfigError("max_fallback_cycles must be >= 1")
        if not 0.0 <= self.default_transient_rate <= 1.0:
            raise ConfigError(
                "default_transient_rate must lie in [0, 1], got %r"
                % (self.default_transient_rate,)
            )


#: The default technology instance used throughout the library.
DEFAULT_TECHNOLOGY = Technology()

#: The default architecture-simulation configuration.
DEFAULT_SIM_CONFIG = SimulationConfig()
