"""Multi-host distributed campaign execution.

The fault-injection campaigns, the Monte Carlo pricer, and the
experiment-suite scheduler all fan work out over a local
:class:`~concurrent.futures.ProcessPoolExecutor`.  This package
generalizes that fan-out to machines that do not share a Python
process -- or even a filesystem -- while preserving the repo's
bit-identity contract: a distributed run merges to byte-identical
rendered/JSON output versus the serial run.

The design rests on one rule: **jobs travel as JSON specs, never as
pickles.**  Every worker rebuilds heavy state (characterized factories,
compiled circuits) deterministically from a handful of CLI-level
parameters (:func:`repro.faults.campaign.campaign_from_spec`,
:func:`repro.montecarlo.runner.mc_job_spec`), and caches it per
process, so any host with this repo checked out can serve jobs.

Three pool flavours, selected by ``--pool SPEC``:

* ``local:N`` -- :class:`~.pool.LocalPool`, a process pool speaking the
  same JSON job protocol as the remote transports (the reference
  implementation and the CI stand-in for a cluster);
* ``tcp:host:port,host:port`` -- :class:`~.pool.TcpPool`, newline-
  delimited JSON over sockets to ``python -m repro distrib worker``
  daemons (framing shared with :mod:`repro.service.protocol`);
* ``manifest:DIR`` -- :class:`~.pool.ManifestPool`, a two-phase
  file-based flow for hosts that share only a directory (NFS, synced
  artifacts): the driver stages request files, any number of
  ``python -m repro distrib exec`` runs claim and execute them, and
  re-running the driver merges the results.

See DESIGN.md section 15 for the protocol and merge invariants.
"""

from .pool import (
    LocalPool,
    ManifestPool,
    TcpPool,
    WorkerPool,
    parse_pool_spec,
    run_campaign_pooled,
    run_mc_pooled,
    run_suite_pooled,
)

__all__ = [
    "LocalPool",
    "ManifestPool",
    "TcpPool",
    "WorkerPool",
    "parse_pool_spec",
    "run_campaign_pooled",
    "run_mc_pooled",
    "run_suite_pooled",
]
