"""Worker pools: one JSON job protocol, three transports.

Every pool takes JSON job requests (see :mod:`repro.distrib.jobs`) and
returns response envelopes ``{"ok": true, "result": {...}}`` /
``{"ok": false, "error": "..."}``.  The envelope is produced by the
worker side (:func:`local_worker` in-process, the TCP daemon, or the
manifest executor), so driver-side handling is transport-agnostic.

Pools are selected from one CLI string by :func:`parse_pool_spec`:

* ``local:4`` -- four local worker processes;
* ``tcp:hostA:9100,hostB:9100`` -- round-robin over running
  ``python -m repro distrib worker`` daemons;
* ``manifest:/shared/dir`` (optionally ``manifest:/shared/dir:N`` for
  ``N`` logical shards) -- stage request files and merge results
  produced by ``python -m repro distrib exec`` runs.

The driver-facing helpers at the bottom
(:func:`run_campaign_pooled` / :func:`run_mc_pooled` /
:func:`run_suite_pooled`) adapt the three orchestrators' native shapes
onto the job protocol.
"""

from __future__ import annotations

import os
import socket
import tempfile
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import as_completed
from typing import Callable, Dict, Iterator, List, Optional
from typing import Sequence, Tuple

from ..errors import ConfigError, DistribError, ManifestPending
from ..service.protocol import decode, encode
from .jobs import run_job

#: Pool schemes :func:`parse_pool_spec` understands.
POOL_SCHEMES = ("local", "tcp", "manifest")

#: Seconds to wait for a TCP connect (job execution itself is
#: unbounded -- characterizing a wide design legitimately takes long).
CONNECT_TIMEOUT_S = 10.0


def local_worker(request: Dict) -> Dict:
    """Process-pool entry point: run one job, envelope the outcome.

    Module-level (picklable) and exception-free: failures become
    ``ok: false`` envelopes so one bad site cannot kill the pool.
    """
    try:
        return {"ok": True, "result": run_job(request)}
    except BaseException as exc:  # envelope *everything*, incl. SystemExit
        return {
            "ok": False,
            "error": "%s: %s" % (type(exc).__name__, exc),
        }


def _unwrap(response: Dict) -> Dict:
    """Driver-side envelope check; remote failures raise typed errors."""
    if not isinstance(response, dict) or "ok" not in response:
        raise DistribError(
            "malformed worker response (no 'ok' field): %r" % (response,)
        )
    if not response["ok"]:
        raise DistribError(
            "worker job failed: %s" % response.get("error", "unknown error")
        )
    result = response.get("result")
    if not isinstance(result, dict):
        raise DistribError(
            "malformed worker response (non-dict result): %r" % (result,)
        )
    return result


class WorkerPool:
    """Transport-agnostic pool interface.

    Attributes:
        size: Worker parallelism -- drives sharding decisions
            (``shard_ranges(num_dies, pool.size)``, campaign batch
            sizing), so every transport must report an honest value.
    """

    size: int = 1

    def map(self, requests: Sequence[Dict]) -> List[Dict]:
        """Run every request; responses in request order."""
        raise NotImplementedError

    def imap_unordered(self, requests: Sequence[Dict]) -> Iterator[Dict]:
        """Yield response envelopes as they complete (default: the
        ordered :meth:`map`; transports override for real streaming)."""
        for response in self.map(requests):
            yield response

    def close(self) -> None:
        """Release transport resources (idempotent)."""

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class LocalPool(WorkerPool):
    """A :class:`ProcessPoolExecutor` speaking the JSON job protocol.

    Functionally redundant with the orchestrators' built-in ``workers=N``
    paths -- deliberately so: it exercises the exact spec-rebuild
    transport the remote pools use, making it the CI stand-in for a
    cluster and the reference for byte-identity checks.
    """

    def __init__(self, workers: int):
        if workers < 1:
            raise ConfigError(
                "local pool needs >= 1 worker, got %d" % workers
            )
        self.size = int(workers)
        self._executor: Optional[ProcessPoolExecutor] = None

    def _ensure(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.size)
        return self._executor

    def map(self, requests: Sequence[Dict]) -> List[Dict]:
        executor = self._ensure()
        return list(executor.map(local_worker, requests))

    def imap_unordered(self, requests: Sequence[Dict]) -> Iterator[Dict]:
        executor = self._ensure()
        futures = [executor.submit(local_worker, req) for req in requests]
        for future in as_completed(futures):
            yield future.result()

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None


class TcpPool(WorkerPool):
    """Round-robin dispatch to ``distrib worker`` TCP daemons.

    One connection per request (the protocol is newline-delimited JSON,
    identical framing to :mod:`repro.service.protocol`), requests
    assigned ``i -> address[i % n]`` so a deterministic request list
    lands deterministically on workers.
    """

    def __init__(self, addresses: Sequence[Tuple[str, int]]):
        if not addresses:
            raise ConfigError("tcp pool needs at least one host:port")
        self.addresses = [(host, int(port)) for host, port in addresses]
        self.size = len(self.addresses)

    @staticmethod
    def call(address: Tuple[str, int], request: Dict) -> Dict:
        """One request/response round trip to one worker."""
        host, port = address
        try:
            with socket.create_connection(
                (host, port), timeout=CONNECT_TIMEOUT_S
            ) as conn:
                conn.settimeout(None)
                conn.sendall(encode(request))
                with conn.makefile("rb") as stream:
                    line = stream.readline()
        except OSError as exc:
            raise DistribError(
                "worker %s:%d unreachable: %s" % (host, port, exc)
            ) from None
        if not line:
            raise DistribError(
                "worker %s:%d closed the connection without a response"
                % (host, port)
            )
        return decode(line)

    def _assignments(
        self, requests: Sequence[Dict]
    ) -> List[Tuple[int, Tuple[str, int], Dict]]:
        return [
            (i, self.addresses[i % self.size], request)
            for i, request in enumerate(requests)
        ]

    def map(self, requests: Sequence[Dict]) -> List[Dict]:
        responses: List[Optional[Dict]] = [None] * len(requests)
        with ThreadPoolExecutor(max_workers=self.size) as executor:
            futures = {
                executor.submit(self.call, address, request): i
                for i, address, request in self._assignments(requests)
            }
            for future in as_completed(futures):
                responses[futures[future]] = future.result()
        return [r for r in responses if r is not None]

    def imap_unordered(self, requests: Sequence[Dict]) -> Iterator[Dict]:
        with ThreadPoolExecutor(max_workers=self.size) as executor:
            futures = [
                executor.submit(self.call, address, request)
                for _, address, request in self._assignments(requests)
            ]
            for future in as_completed(futures):
                yield future.result()

    def shutdown_workers(self) -> int:
        """Send every daemon a shutdown op; returns how many answered."""
        answered = 0
        for address in self.addresses:
            try:
                self.call(address, {"op": "shutdown"})
                answered += 1
            except DistribError:
                pass
        return answered


class ManifestPool(WorkerPool):
    """Two-phase execution through a shared directory.

    Phase 1 (driver): :meth:`map` stages every request as
    ``DIR/requests/job-NNNN.json`` and raises
    :class:`~repro.errors.ManifestPending` while results are missing.
    Phase 2 (any hosts): ``python -m repro distrib exec --manifest DIR``
    claims requests (atomic ``O_EXCL`` claim files) and writes
    ``DIR/results/job-NNNN.json`` envelopes.  Re-running the driver
    command then finds every result and completes the merge.

    Staging is idempotent: the request files are a pure function of the
    (deterministic) job list, so re-runs overwrite identical bytes.
    """

    def __init__(self, directory: str, size: int = 2):
        if size < 1:
            raise ConfigError(
                "manifest pool needs >= 1 shard, got %d" % size
            )
        self.directory = directory
        self.size = int(size)

    def _subdir(self, name: str) -> str:
        path = os.path.join(self.directory, name)
        os.makedirs(path, exist_ok=True)
        return path

    @staticmethod
    def _job_name(index: int) -> str:
        return "job-%04d.json" % index

    def map(self, requests: Sequence[Dict]) -> List[Dict]:
        requests_dir = self._subdir("requests")
        results_dir = self._subdir("results")
        for i, request in enumerate(requests):
            path = os.path.join(requests_dir, self._job_name(i))
            _write_json_atomic(path, request)
        responses: List[Dict] = []
        missing: List[str] = []
        for i in range(len(requests)):
            path = os.path.join(results_dir, self._job_name(i))
            if os.path.exists(path):
                with open(path, "rb") as stream:
                    responses.append(decode(stream.readline()))
            else:
                missing.append(self._job_name(i))
        if missing:
            raise ManifestPending(
                "%d/%d manifest results missing under %s -- run"
                " 'python -m repro distrib exec --manifest %s' on the"
                " worker hosts, then re-run this command"
                % (
                    len(missing),
                    len(requests),
                    self.directory,
                    self.directory,
                ),
                directory=self.directory,
                missing=len(missing),
            )
        return responses


def _write_json_atomic(path: str, payload: Dict) -> None:
    """Canonical-JSON write via temp file + rename (NFS-safe enough:
    readers never observe a partial file)."""
    directory = os.path.dirname(path)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as stream:
            stream.write(encode(payload))
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def execute_manifest(
    directory: str,
    progress: Optional[Callable[[str], None]] = None,
) -> int:
    """Claim and execute staged manifest requests (worker side).

    Multiple concurrent executors -- on the same or different hosts
    sharing ``directory`` -- coordinate through ``O_CREAT | O_EXCL``
    claim files, so every request runs exactly once.  Returns the
    number of jobs this call executed.
    """
    requests_dir = os.path.join(directory, "requests")
    if not os.path.isdir(requests_dir):
        raise ConfigError(
            "no manifest requests under %s (expected %s)"
            % (directory, requests_dir)
        )
    results_dir = os.path.join(directory, "results")
    claims_dir = os.path.join(directory, "claims")
    os.makedirs(results_dir, exist_ok=True)
    os.makedirs(claims_dir, exist_ok=True)
    executed = 0
    for name in sorted(os.listdir(requests_dir)):
        if not name.endswith(".json"):
            continue
        if os.path.exists(os.path.join(results_dir, name)):
            continue
        claim = os.path.join(claims_dir, name + ".claim")
        try:
            fd = os.open(claim, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            continue
        os.close(fd)
        with open(os.path.join(requests_dir, name), "rb") as stream:
            request = decode(stream.readline())
        if progress is not None:
            progress(name)
        envelope = local_worker(request)
        _write_json_atomic(os.path.join(results_dir, name), envelope)
        executed += 1
    return executed


def parse_pool_spec(text: str) -> WorkerPool:
    """Build a pool from one CLI string (``--pool SPEC``).

    * ``local:N``
    * ``tcp:host:port[,host:port...]``
    * ``manifest:DIR`` or ``manifest:DIR:N`` (N logical shards)
    """
    scheme, _, rest = str(text).partition(":")
    if scheme == "local":
        try:
            workers = int(rest)
        except ValueError:
            raise ConfigError(
                "local pool spec must be 'local:N', got %r" % (text,)
            ) from None
        return LocalPool(workers)
    if scheme == "tcp":
        addresses: List[Tuple[str, int]] = []
        for part in filter(None, rest.split(",")):
            host, sep, port = part.rpartition(":")
            if not sep or not host:
                raise ConfigError(
                    "tcp pool entries must be host:port, got %r" % (part,)
                )
            try:
                addresses.append((host, int(port)))
            except ValueError:
                raise ConfigError(
                    "tcp pool port must be an int, got %r" % (port,)
                ) from None
        return TcpPool(addresses)
    if scheme == "manifest":
        if not rest:
            raise ConfigError(
                "manifest pool spec must be 'manifest:DIR[:N]', got %r"
                % (text,)
            )
        directory, sep, tail = rest.rpartition(":")
        if sep and tail.isdigit():
            return ManifestPool(directory, size=int(tail))
        return ManifestPool(rest)
    import difflib

    hints = difflib.get_close_matches(scheme, POOL_SCHEMES, n=1)
    hint = " (did you mean %r?)" % hints[0] if hints else ""
    raise ConfigError(
        "unknown pool scheme %r%s; known schemes: %s"
        % (scheme, hint, ", ".join(POOL_SCHEMES))
    )


# -- driver-side adapters ----------------------------------------------


def run_campaign_pooled(
    pool: WorkerPool,
    pool_spec: Dict,
    pending: Sequence[int],
    chunk_size: Optional[int] = None,
    on_result: Optional[Callable] = None,
) -> int:
    """Fan pending campaign site indices out over ``pool``.

    Batching mirrors the local process pool
    (:func:`repro.faults.parallel.make_batches`), and ``on_result``
    fires per site as batches stream back -- checkpoint/progress
    behaviour is identical to a local parallel run.
    """
    from ..faults.campaign import SiteReport
    from ..faults.parallel import make_batches

    batches = make_batches(pending, pool.size, chunk_size)
    requests = [
        {"job": "fault_sites", "spec": dict(pool_spec), "sites": batch}
        for batch in batches
    ]
    completed = 0
    for response in pool.imap_unordered(requests):
        result = _unwrap(response)
        for index, data in result.get("reports", []):
            if on_result is not None:
                on_result(int(index), SiteReport.from_dict(data))
            completed += 1
    return completed


def run_mc_pooled(
    pool: WorkerPool,
    job: Dict,
    ranges: Sequence[Tuple[int, int]],
) -> List[Dict]:
    """Price every die range through ``pool``; shard payloads in range
    order (concatenation order is the merge invariant)."""
    requests = [
        {"job": "mc_shard", "mc": dict(job), "die_range": [lo, hi]}
        for lo, hi in ranges
    ]
    return [_unwrap(response) for response in pool.map(requests)]


def run_sweep_pooled(
    pool: WorkerPool,
    sweep_spec: Dict,
    pending: Sequence[int],
    engine: str = "delta",
    chunk_size: Optional[int] = None,
):
    """Fan pending variant indices of one sweep out over ``pool``.

    Workers rebuild the sweep (parent base included) deterministically
    from ``sweep_spec`` and evaluate their index batches, so request
    payloads stay tiny.  Yields ``(index, record)`` pairs as batches
    stream back (unordered; the caller owns index placement).
    """
    from ..faults.parallel import make_batches

    batches = make_batches(pending, pool.size, chunk_size)
    requests = [
        {
            "job": "variant_shard",
            "sweep": dict(sweep_spec),
            "engine": engine,
            "variants": batch,
        }
        for batch in batches
    ]
    for response in pool.imap_unordered(requests):
        result = _unwrap(response)
        for index, record in result.get("records", []):
            yield int(index), record


def run_suite_pooled(
    pool: WorkerPool, requests: Sequence[Dict]
) -> List[Dict]:
    """Run experiment jobs through ``pool``; per-job failures come back
    as ``{"error": ...}`` entries (degraded, not fatal -- matching the
    local scheduler's worker-death handling)."""
    responses = pool.map(requests)
    out: List[Dict] = []
    for response in responses:
        try:
            out.append(_unwrap(response))
        except DistribError as exc:
            out.append({"error": str(exc)})
    return out
