"""The ``distrib worker`` TCP daemon.

A deliberately small newline-delimited-JSON server (framing shared
with :mod:`repro.service.protocol`): each connection sends one request
per line and reads one response line back.  A request is either a
control op -- ``{"op": "ping"}`` / ``{"op": "shutdown"}`` -- or a job
dict executed by :func:`repro.distrib.jobs.run_job`.

Responses are the standard envelope::

    {"ok": true, "result": {...}, "protocol": "repro-distrib",
     "version": 1}
    {"ok": false, "error": "...", "protocol": "repro-distrib",
     "version": 1}

Jobs run on the connection's thread; heavy state is cached per daemon
process (see :mod:`repro.distrib.jobs`), so serving many batches of
one campaign characterizes it once.  ``--port 0`` binds an ephemeral
port; ``--port-file`` publishes the bound port for test/CI harnesses.
"""

from __future__ import annotations

import socketserver
import threading
from typing import Dict, Optional, Tuple

from ..errors import ServiceError
from ..service.protocol import decode, encode
from .jobs import run_job

#: Protocol tag + version stamped into every response.
PROTOCOL = "repro-distrib"
PROTOCOL_VERSION = 1


def _envelope(payload: Dict) -> Dict:
    payload["protocol"] = PROTOCOL
    payload["version"] = PROTOCOL_VERSION
    return payload


def handle_request(request: Dict) -> Tuple[Dict, bool]:
    """One request -> (response, keep_serving)."""
    op = request.get("op")
    if op == "ping":
        return _envelope({"ok": True, "result": {"pong": True}}), True
    if op == "shutdown":
        return _envelope({"ok": True, "result": {"stopping": True}}), False
    try:
        return _envelope({"ok": True, "result": run_job(request)}), True
    except BaseException as exc:
        return (
            _envelope(
                {"ok": False, "error": "%s: %s" % (type(exc).__name__, exc)}
            ),
            True,
        )


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        for line in self.rfile:
            if not line.strip():
                continue
            try:
                request = decode(line)
            except ServiceError as exc:
                self.wfile.write(
                    encode(_envelope({"ok": False, "error": str(exc)}))
                )
                self.wfile.flush()
                continue
            response, keep_serving = handle_request(request)
            self.wfile.write(encode(response))
            self.wfile.flush()
            if not keep_serving:
                self.server.request_stop()
                return


class WorkerServer(socketserver.ThreadingTCPServer):
    """Threaded JSON-lines job server (one thread per connection)."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, host: str = "127.0.0.1", port: int = 0):
        super().__init__((host, port), _Handler)
        self._stop = threading.Event()

    @property
    def port(self) -> int:
        return self.server_address[1]

    def request_stop(self) -> None:
        self._stop.set()
        # shutdown() must come from another thread than serve_forever's.
        threading.Thread(target=self.shutdown, daemon=True).start()

    def serve_until_shutdown(self) -> None:
        self.serve_forever(poll_interval=0.1)


def serve(
    host: str = "127.0.0.1",
    port: int = 0,
    port_file: Optional[str] = None,
) -> None:
    """Run one worker daemon until a shutdown op arrives."""
    with WorkerServer(host, port) as server:
        if port_file is not None:
            with open(port_file, "w") as stream:
                stream.write("%d\n" % server.port)
        server.serve_until_shutdown()
