"""CLI for the distributed worker fleet.

::

    python -m repro distrib worker --host 0.0.0.0 --port 9100
    python -m repro distrib worker --port 0 --port-file /tmp/port
    python -m repro distrib exec --manifest /shared/campaign
    python -m repro distrib ping --pool tcp:hostA:9100,hostB:9100
    python -m repro distrib shutdown --pool tcp:hostA:9100,hostB:9100

``worker`` serves jobs over TCP until a shutdown op; ``exec`` drains
staged manifest requests; ``ping``/``shutdown`` manage a TCP fleet.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..errors import ReproError


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro distrib",
        description="Distributed campaign workers.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    worker = sub.add_parser("worker", help="serve jobs over TCP")
    worker.add_argument("--host", default="127.0.0.1")
    worker.add_argument(
        "--port", type=int, default=9100,
        help="TCP port (0 = ephemeral; see --port-file)",
    )
    worker.add_argument(
        "--port-file", default=None,
        help="write the bound port here (harness handshake for --port 0)",
    )

    execute = sub.add_parser(
        "exec", help="drain staged manifest requests"
    )
    execute.add_argument(
        "--manifest", required=True,
        help="shared manifest directory (the --pool manifest:DIR one)",
    )
    execute.add_argument(
        "--quiet", action="store_true", help="no per-job progress lines"
    )

    for name, help_text in (
        ("ping", "probe every TCP worker"),
        ("shutdown", "stop every TCP worker"),
    ):
        fleet = sub.add_parser(name, help=help_text)
        fleet.add_argument(
            "--pool", required=True,
            help="tcp pool spec, e.g. tcp:hostA:9100,hostB:9100",
        )
    return parser


def _tcp_pool(spec: str):
    from .pool import TcpPool, parse_pool_spec

    pool = parse_pool_spec(spec)
    if not isinstance(pool, TcpPool):
        raise ReproError(
            "this command needs a tcp pool spec, got %r" % (spec,)
        )
    return pool


def main(argv: Optional[List[str]] = None) -> int:
    args = make_parser().parse_args(argv)
    try:
        if args.command == "worker":
            from .worker import serve

            serve(args.host, args.port, args.port_file)
            return 0
        if args.command == "exec":
            from .pool import execute_manifest

            progress = None
            if not args.quiet:
                progress = lambda name: print("running %s" % name)
            executed = execute_manifest(args.manifest, progress=progress)
            print("executed %d job(s)" % executed)
            return 0
        if args.command == "ping":
            pool = _tcp_pool(args.pool)
            for address in pool.addresses:
                response = pool.call(address, {"op": "ping"})
                print(
                    "%s:%d %s"
                    % (
                        address[0],
                        address[1],
                        "ok" if response.get("ok") else "error",
                    )
                )
            return 0
        if args.command == "shutdown":
            pool = _tcp_pool(args.pool)
            answered = pool.shutdown_workers()
            print("stopped %d/%d worker(s)" % (answered, pool.size))
            return 0
    except ReproError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        return 130
    return 0


if __name__ == "__main__":
    sys.exit(main())
