"""Worker-side job execution.

Every transport (:class:`~.pool.LocalPool` processes, ``distrib
worker`` TCP daemons, ``distrib exec`` manifest runners) funnels into
:func:`run_job`: one JSON request dict in, one JSON-able result dict
out.  Heavy state -- characterized campaigns, experiment contexts --
is rebuilt deterministically from the spec and cached per process
keyed by the spec's canonical JSON, so a worker serving many batches
of the same campaign characterizes it exactly once.

Job kinds:

``fault_sites``
    ``{"job": "fault_sites", "spec": {...}, "sites": [3, 4, 9]}`` --
    rebuild the campaign via
    :func:`repro.faults.campaign.campaign_from_spec` and run the listed
    site indices.  Result: ``{"reports": [[index, report_dict], ...]}``
    (:meth:`SiteReport.to_dict` payloads, checkpoint-compatible).

``mc_shard``
    ``{"job": "mc_shard", "mc": {...}, "die_range": [lo, hi]}`` --
    price one die range via
    :func:`repro.montecarlo.runner.run_mc_shard`.  Result: the shard
    payload (fingerprint + die_range + reduction planes).

``experiment``
    ``{"job": "experiment", "name": "fig7", "scale": 1.0,
    "characterize_patterns": 2000, "kernel": "soa"}`` -- run one
    registered experiment.  Result:
    ``{"title": ..., "rendered": ..., "elapsed": ...}``.

``variant_shard``
    ``{"job": "variant_shard", "sweep": {...}, "engine": "delta",
    "variants": [0, 5, 9]}`` -- rebuild the variant sweep (parent
    netlist, characterization, :class:`repro.timing.delta.DeltaBase`)
    from the :class:`repro.experiments.sweep.SweepSpec` dict and
    evaluate the listed variant indices.  Result:
    ``{"records": [[index, record_dict], ...]}`` (engine-independent
    :func:`~repro.experiments.sweep._result_record` payloads).

``ping``
    Liveness probe.  Result: ``{"pong": true}``.
"""

from __future__ import annotations

import json
import time
from typing import Dict

from ..errors import ConfigError

#: Job kinds :func:`run_job` dispatches on.
JOB_KINDS = (
    "fault_sites", "mc_shard", "experiment", "variant_shard", "ping"
)

#: Per-process cache of rebuilt heavy state, keyed by
#: ``(kind, canonical-JSON-of-spec)``.  Bounded in practice: a worker
#: serves one campaign / context shape per run.
_STATE_CACHE: Dict = {}


def _cache_key(kind: str, spec: Dict) -> str:
    return kind + ":" + json.dumps(spec, sort_keys=True, separators=(",", ":"))


def clear_state_cache() -> None:
    """Drop every cached campaign/context (tests and long-lived
    daemons switching workloads)."""
    _STATE_CACHE.clear()


def _campaign_for(spec: Dict):
    from ..faults.campaign import campaign_from_spec

    key = _cache_key("campaign", spec)
    if key not in _STATE_CACHE:
        _STATE_CACHE[key] = campaign_from_spec(spec)
    return _STATE_CACHE[key]


def _context_for(scale: float, characterize_patterns: int, kernel: str):
    from ..experiments.context import ExperimentContext

    spec = {
        "scale": float(scale),
        "characterize_patterns": int(characterize_patterns),
        "kernel": kernel,
    }
    key = _cache_key("context", spec)
    if key not in _STATE_CACHE:
        _STATE_CACHE[key] = ExperimentContext(
            scale=float(scale),
            characterize_patterns=int(characterize_patterns),
            kernel=kernel,
        )
    return _STATE_CACHE[key]


def _run_fault_sites(request: Dict) -> Dict:
    spec = request.get("spec")
    if not isinstance(spec, dict):
        raise ConfigError(
            "fault_sites job needs a 'spec' dict, got %r" % (spec,)
        )
    sites = request.get("sites")
    if not isinstance(sites, list):
        raise ConfigError(
            "fault_sites job needs a 'sites' list, got %r" % (sites,)
        )
    campaign = _campaign_for(spec)
    reports = []
    for raw in sites:
        index = int(raw)
        if not 0 <= index < len(campaign.faults):
            raise ConfigError(
                "site index %d outside [0, %d)"
                % (index, len(campaign.faults))
            )
        report, _ = campaign.run_site(
            campaign.faults[index], campaign.site_ids[index]
        )
        reports.append([index, report.to_dict()])
    return {"reports": reports}


def _run_mc_shard(request: Dict) -> Dict:
    from ..montecarlo.runner import run_mc_shard

    job = request.get("mc")
    if not isinstance(job, dict):
        raise ConfigError("mc_shard job needs an 'mc' dict, got %r" % (job,))
    die_range = request.get("die_range")
    if not (isinstance(die_range, (list, tuple)) and len(die_range) == 2):
        raise ConfigError(
            "mc_shard job needs a 2-element 'die_range', got %r"
            % (die_range,)
        )
    return run_mc_shard(job, (int(die_range[0]), int(die_range[1])))


def _sweep_for(spec: Dict):
    from ..experiments.sweep import SweepSpec, VariantSweep

    key = _cache_key("sweep", spec)
    if key not in _STATE_CACHE:
        _STATE_CACHE[key] = VariantSweep(SweepSpec.from_dict(spec))
    return _STATE_CACHE[key]


def _run_variant_shard(request: Dict) -> Dict:
    spec = request.get("sweep")
    if not isinstance(spec, dict):
        raise ConfigError(
            "variant_shard job needs a 'sweep' dict, got %r" % (spec,)
        )
    indices = request.get("variants")
    if not isinstance(indices, list):
        raise ConfigError(
            "variant_shard job needs a 'variants' list, got %r"
            % (indices,)
        )
    engine = request.get("engine", "delta")
    sweep = _sweep_for(spec)
    records = []
    for raw in indices:
        index = int(raw)
        if not 0 <= index < len(sweep.variants):
            raise ConfigError(
                "variant index %d outside [0, %d)"
                % (index, len(sweep.variants))
            )
        record, _ = sweep.evaluate(index, engine=engine)
        records.append([index, record])
    return {"records": records}


def _run_experiment(request: Dict) -> Dict:
    from ..experiments.registry import get_experiment

    name = request.get("name")
    if not isinstance(name, str):
        raise ConfigError(
            "experiment job needs a 'name' string, got %r" % (name,)
        )
    spec = get_experiment(name)
    context = _context_for(
        request.get("scale", 1.0),
        request.get("characterize_patterns", 2000),
        request.get("kernel", "soa"),
    )
    start = time.perf_counter()
    result = spec.run(context)
    return {
        "title": spec.title,
        "rendered": result.render(),
        "elapsed": time.perf_counter() - start,
    }


def run_job(request: Dict) -> Dict:
    """Execute one JSON job request; returns a JSON-able result dict.

    Raises typed :class:`~repro.errors.ReproError` subclasses on bad
    requests; transports catch and ship them back as error responses.
    """
    if not isinstance(request, dict):
        raise ConfigError("job request must be a dict, got %r" % (request,))
    kind = request.get("job")
    if kind == "ping":
        return {"pong": True}
    if kind == "fault_sites":
        return _run_fault_sites(request)
    if kind == "mc_shard":
        return _run_mc_shard(request)
    if kind == "experiment":
        return _run_experiment(request)
    if kind == "variant_shard":
        return _run_variant_shard(request)
    import difflib

    hints = difflib.get_close_matches(str(kind), JOB_KINDS, n=1)
    hint = " (did you mean %r?)" % hints[0] if hints else ""
    raise ConfigError(
        "unknown job kind %r%s; known kinds: %s"
        % (kind, hint, ", ".join(JOB_KINDS))
    )
