"""System-level throughput (the introduction's motivation).

"The throughput of these applications depends on multipliers, and if
the multipliers are too slow, the performance of entire circuits will
be reduced."  This module closes that loop: a producer emits multiply
jobs at a configurable rate into a bounded queue drained by one
multiplier, and the simulation reports sustained throughput, queue
occupancy and job latency (waiting + service).

For a *fixed-latency* unit the service time is constant (the critical
path); for the *variable-latency* unit it is the per-job cycle count
from the cycle-accurate architecture run -- so the paper's average-
latency win translates directly into sustainable arrival rate, and the
tail of Razor re-executions shows up as queueing jitter.
"""

from __future__ import annotations

import dataclasses
import heapq
from typing import Optional

import numpy as np

from ..errors import ConfigError, SimulationError
from .architecture import AgingAwareMultiplier


@dataclasses.dataclass(frozen=True)
class ThroughputReport:
    """Queueing statistics of one simulated run."""

    num_jobs: int
    #: Mean jobs completed per nanosecond.
    throughput_per_ns: float
    #: Mean total job latency (wait + service) in ns.
    mean_latency_ns: float
    #: 95th-percentile total job latency in ns.
    p95_latency_ns: float
    #: Mean queue occupancy sampled at arrival instants.
    mean_queue_depth: float
    #: Jobs dropped because the bounded queue was full.
    dropped_jobs: int
    #: Fraction of time the multiplier was busy.
    utilization: float

    @property
    def accepted_jobs(self) -> int:
        return self.num_jobs - self.dropped_jobs


def simulate_queue(
    service_times_ns: np.ndarray,
    arrival_period_ns: float,
    queue_capacity: int = 64,
) -> ThroughputReport:
    """Single-server FIFO queue with deterministic arrivals.

    Args:
        service_times_ns: Per-job service time (cycle-accurate, from
            the architecture run or a constant for fixed latency).
        arrival_period_ns: Time between job arrivals.
        queue_capacity: Jobs that may wait; arrivals beyond it drop.
    """
    service = np.asarray(service_times_ns, dtype=float)
    if service.ndim != 1 or service.size == 0:
        raise SimulationError("service_times_ns must be a non-empty vector")
    if np.any(service <= 0):
        raise SimulationError("service times must be positive")
    if arrival_period_ns <= 0:
        raise ConfigError("arrival_period_ns must be positive")
    if queue_capacity < 1:
        raise ConfigError("queue_capacity must be >= 1")

    n = service.size
    completions = []
    latencies = []
    depths = []
    dropped = 0
    server_free_at = 0.0
    # Min-heap of completion times of jobs still in system, for queue
    # depth probes: popping everything <= arrival is equivalent to the
    # old full-list rebuild keeping t > arrival, but each job is pushed
    # and popped exactly once -- O(n log depth) instead of O(n * depth)
    # across a run (depth ~ queue_capacity under saturation).
    in_system: list = []
    busy_ns = 0.0

    for k in range(n):
        arrival = k * arrival_period_ns
        while in_system and in_system[0] <= arrival:
            heapq.heappop(in_system)
        depths.append(len(in_system))
        if len(in_system) >= queue_capacity:
            dropped += 1
            continue
        start = max(arrival, server_free_at)
        finish = start + service[k]
        busy_ns += service[k]
        server_free_at = finish
        heapq.heappush(in_system, finish)
        completions.append(finish)
        latencies.append(finish - arrival)

    if not completions:
        return ThroughputReport(
            num_jobs=n,
            throughput_per_ns=0.0,
            mean_latency_ns=0.0,
            p95_latency_ns=0.0,
            mean_queue_depth=float(np.mean(depths)) if depths else 0.0,
            dropped_jobs=dropped,
            utilization=0.0,
        )
    horizon = max(completions)
    latencies = np.asarray(latencies)
    return ThroughputReport(
        num_jobs=n,
        throughput_per_ns=len(completions) / horizon,
        mean_latency_ns=float(latencies.mean()),
        p95_latency_ns=float(np.quantile(latencies, 0.95)),
        mean_queue_depth=float(np.mean(depths)),
        dropped_jobs=dropped,
        utilization=float(busy_ns / horizon),
    )


def architecture_service_times(
    architecture: AgingAwareMultiplier,
    md: np.ndarray,
    mr: np.ndarray,
    years: float = 0.0,
    stream=None,
) -> np.ndarray:
    """Per-job service times (ns) from a cycle-accurate run."""
    result = architecture.run_patterns(md, mr, years=years, stream=stream)
    report = result.report
    penalty = architecture.config.razor_penalty_cycles
    cycles = np.where(
        result.one_cycle, 1.0 + result.errors * penalty, 2.0
    )
    over = result.delays > 2.0 * architecture.cycle_ns
    cycles = np.where(
        over,
        penalty + np.ceil(result.delays / architecture.cycle_ns),
        cycles,
    )
    service = cycles * architecture.cycle_ns
    # Consistency with the latency report.
    if abs(service.sum() - report.total_cycles * architecture.cycle_ns) > 1e-6:
        raise SimulationError("service-time reconstruction mismatch")
    return service


def max_sustainable_rate(
    service_times_ns: np.ndarray,
    queue_capacity: int = 64,
    drop_budget: float = 0.001,
    resolution: int = 24,
) -> float:
    """Largest arrival rate (jobs/ns) with drops below ``drop_budget``.

    Bisects the arrival period; the result converges to the inverse of
    the mean service time for well-behaved service distributions (with
    a small guard band for burst re-executions).
    """
    service = np.asarray(service_times_ns, dtype=float)
    mean = float(service.mean())
    lo, hi = mean * 0.5, mean * 4.0  # period bracket
    for _ in range(resolution):
        mid = 0.5 * (lo + hi)
        report = simulate_queue(service, mid, queue_capacity)
        if report.dropped_jobs <= drop_budget * service.size:
            hi = mid  # can go faster (shorter period)
        else:
            lo = mid
    return 1.0 / hi
