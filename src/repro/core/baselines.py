"""Fixed-latency baselines: AM, FLCB and FLRB.

A fixed-latency design clocks every operation at the critical-path delay
(the paper's 1.32 / 1.88 / 1.82 ns for the 16x16 AM / FLCB / FLRB), so
its average latency *is* the critical path -- which grows as the circuit
ages.  :class:`FixedLatencyDesign` measures that consistently with the
variable-latency architecture: same netlists, same aging model, same
technology card.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

import numpy as np

from ..aging.degradation import AgedCircuitFactory
from ..arith.array_mult import array_multiplier
from ..arith.column_bypass import column_bypass_multiplier
from ..arith.row_bypass import row_bypass_multiplier
from ..config import DEFAULT_TECHNOLOGY, Technology
from ..errors import ConfigError
from ..nets.netlist import Netlist
from ..timing.sta import StaticTiming, critical_delays

#: Multiplier generators by kind keyword.
GENERATORS = {
    "am": array_multiplier,
    "column": column_bypass_multiplier,
    "row": row_bypass_multiplier,
}


def build_multiplier(width: int, kind: str) -> Netlist:
    """Dispatch to the generator for ``kind`` in {am, column, row}."""
    try:
        generator = GENERATORS[kind]
    except KeyError:
        raise ConfigError(
            "kind must be one of %s, got %r" % (sorted(GENERATORS), kind)
        ) from None
    return generator(width)


@dataclasses.dataclass
class FixedLatencyDesign:
    """A multiplier clocked at its (aging-aware) critical path."""

    netlist: Netlist
    factory: AgedCircuitFactory
    technology: Technology = DEFAULT_TECHNOLOGY
    name: str = ""

    def __post_init__(self):
        if not self.name:
            self.name = self.netlist.name
        self._latency_cache: Dict[float, float] = {}

    @classmethod
    def build(
        cls,
        width: int,
        kind: str,
        technology: Technology = DEFAULT_TECHNOLOGY,
        characterize_patterns: int = 2000,
        characterize_seed: int = 2014,
        name: str = "",
    ) -> "FixedLatencyDesign":
        """Construct and characterize (stress-profile) a baseline."""
        netlist = build_multiplier(width, kind)
        factory = AgedCircuitFactory.characterize(
            netlist,
            technology,
            num_patterns=characterize_patterns,
            seed=characterize_seed,
        )
        return cls(netlist, factory, technology, name=name)

    def latency_ns(self, years: float = 0.0) -> float:
        """Fixed cycle period = aged critical-path delay (cached)."""
        key = float(years)
        if key not in self._latency_cache:
            scale = None if years == 0 else self.factory.delay_scale(years)
            sta = StaticTiming(self.netlist, self.technology, scale)
            self._latency_cache[key] = sta.critical_delay
        return self._latency_cache[key]

    def latencies_ns(self, years) -> "list[float]":
        """Aged critical paths for many years in one vectorized STA
        sweep (:func:`~repro.timing.sta.critical_delays`) -- each entry
        bit-identical to :meth:`latency_ns`, and cached under the same
        keys, so lifetime sweeps pay one topological pass instead of
        one per year."""
        missing = [
            float(year)
            for year in years
            if float(year) not in self._latency_cache
        ]
        if missing:
            delays = critical_delays(
                self.netlist,
                self.technology,
                self.factory.lifetime_delay_scales(missing),
            )
            for year, delay in zip(missing, delays):
                self._latency_cache[year] = float(delay)
        return [self._latency_cache[float(year)] for year in years]

    def run_stream(
        self,
        md: np.ndarray,
        mr: np.ndarray,
        years: float = 0.0,
        collect_net_stats: bool = False,
    ):
        """Simulate a stream at the given age (for power measurements)."""
        circuit = self.factory.circuit(years)
        return circuit.run(
            {"md": md, "mr": mr}, collect_net_stats=collect_net_stats
        )

    def degradation_ratio(self, years: float) -> float:
        """Latency growth vs fresh silicon, e.g. 0.15 for +15%."""
        return self.latency_ns(years) / self.latency_ns(0.0) - 1.0
