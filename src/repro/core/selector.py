"""Operating-point selection (paper Section IV-A).

The paper observes that each skip number has a *preferred cycle-period
range* and that a system should "match the system cycle period with the
multiplier's preferred cycle period", adjusting the skip number when it
cannot.  :func:`select_operating_point` automates that design-space
walk: it sweeps candidate (skip, cycle) pairs on a calibration workload
and returns the feasible point with the lowest average latency, where
*feasible* means no operation ever exceeded the two-cycle budget (no
slow retries and no Razor-undetectable violations), optionally at a
target lifetime.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigError
from .architecture import AgingAwareMultiplier
from .stats import LatencyReport


@dataclasses.dataclass(frozen=True)
class OperatingPoint:
    """One evaluated (skip, cycle) candidate."""

    skip: int
    cycle_ns: float
    average_latency_ns: float
    error_rate: float
    feasible: bool
    report: LatencyReport

    def __str__(self):
        return (
            "skip=%d T=%.3f ns -> %.3f ns avg (errors %.2f%%, %s)"
            % (
                self.skip,
                self.cycle_ns,
                self.average_latency_ns,
                100 * self.error_rate,
                "feasible" if self.feasible else "INFEASIBLE",
            )
        )


@dataclasses.dataclass
class SelectionResult:
    """Outcome of an operating-point search."""

    best: Optional[OperatingPoint]
    candidates: Tuple[OperatingPoint, ...]

    def feasible_candidates(self) -> Tuple[OperatingPoint, ...]:
        return tuple(c for c in self.candidates if c.feasible)

    def preferred_range(self, skip: int) -> Tuple[float, ...]:
        """Feasible cycle periods for one skip, sorted ascending."""
        return tuple(
            sorted(
                c.cycle_ns
                for c in self.candidates
                if c.skip == skip and c.feasible
            )
        )


def select_operating_point(
    architecture: AgingAwareMultiplier,
    skips: Optional[Sequence[int]] = None,
    cycles_ns: Optional[Sequence[float]] = None,
    num_patterns: int = 4000,
    seed: int = 2024,
    years: float = 0.0,
    max_error_rate: float = 1.0,
) -> SelectionResult:
    """Search (skip, cycle) pairs for the lowest feasible latency.

    Args:
        architecture: A built architecture; siblings with other skips
            and cycles are derived from it (sharing its aging factory).
        skips: Candidate judging thresholds; defaults to the
            architecture's skip and its two stricter neighbours.
        cycles_ns: Candidate clock periods; defaults to a grid between
            30% and 80% of the (aged) critical path.
        num_patterns: Calibration workload size.
        years: Lifetime point to optimize for -- selecting at the target
            lifetime (e.g. 7 years) yields clocks that stay feasible
            after aging, the paper's reliability goal.
        max_error_rate: Optional additional feasibility bound on the
            Razor error rate (1.0 disables it).
    """
    if num_patterns < 1:
        raise ConfigError("num_patterns must be >= 1")
    if skips is None:
        base = architecture.skip
        skips = [s for s in (base, base + 1, base + 2)
                 if s + 1 <= architecture.width]
    if cycles_ns is None:
        critical = architecture.critical_path_ns(years)
        cycles_ns = np.round(np.linspace(0.3, 0.8, 11) * critical, 4)

    rng = np.random.default_rng(seed)
    high = 1 << architecture.width
    md = rng.integers(0, high, num_patterns, dtype=np.uint64)
    mr = rng.integers(0, high, num_patterns, dtype=np.uint64)
    # One circuit simulation serves every candidate.
    stream = architecture.factory.circuit(years).run({"md": md, "mr": mr})

    candidates = []
    for skip in skips:
        sibling_skip = architecture.with_skip(skip)
        for cycle in cycles_ns:
            sibling = sibling_skip.with_cycle(float(cycle))
            report = sibling.run_patterns(
                md, mr, years=years, stream=stream
            ).report
            feasible = (
                report.deep_retry_ops == 0
                and report.undetectable_count == 0
                and report.error_rate <= max_error_rate
            )
            candidates.append(
                OperatingPoint(
                    skip=skip,
                    cycle_ns=float(cycle),
                    average_latency_ns=report.average_latency_ns,
                    error_rate=report.error_rate,
                    feasible=feasible,
                    report=report,
                )
            )
    feasible = [c for c in candidates if c.feasible]
    best = min(
        feasible, key=lambda c: c.average_latency_ns, default=None
    )
    return SelectionResult(best=best, candidates=tuple(candidates))
