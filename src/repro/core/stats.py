"""Latency and error reports produced by the architecture simulation."""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

import numpy as np


def _empty_int_list() -> List[int]:
    return []


@dataclasses.dataclass(frozen=True)
class LatencyReport:
    """Cycle-accurate accounting of one pattern-stream execution.

    Attributes:
        name: Design label (e.g. ``"A-VLCB-16 skip7"``).
        cycle_ns: Clock period used.
        years: Aging point the circuit was simulated at.
        num_ops: Operations executed.
        total_cycles: Clock cycles consumed, including Razor penalties.
        one_cycle_ops: Patterns the AHL judged one-cycle.
        two_cycle_ops: Patterns the AHL judged two-cycle.
        error_count: Razor-detected timing violations (re-executed).
        undetectable_count: One-cycle patterns whose delay exceeded even
            the shadow-latch window -- must be 0 for a safe design point.
        deep_retry_ops: Operations whose delay exceeded the two-cycle
            budget entirely and fell back to the slow multi-cycle retry
            (0 inside the paper's preferred cycle-period ranges).
        window_errors: Razor errors per indicator window.
        indicator_trace: Indicator output after each window.
        indicator_aged_at: Operation index where the indicator flipped
            (-1 if it never did).
        policy: Recovery policy the run executed under (``"strict"``,
            ``"degrade"`` or ``"detect-only"``).
        recovered_ops: Overrunning operations the policy absorbed with a
            multi-cycle fallback inside the retry cap.
        recovery_exhausted_ops: Overrunning operations that hit the
            fallback cap (charged the cap, flagged in the stats; the
            ``strict`` policy raises instead of counting).
        window_recoveries: Recovery events (recovered + exhausted) per
            indicator window.
    """

    name: str
    cycle_ns: float
    years: float
    num_ops: int
    total_cycles: float
    one_cycle_ops: int
    two_cycle_ops: int
    error_count: int
    undetectable_count: int
    window_errors: List[int]
    indicator_trace: List[bool]
    indicator_aged_at: int
    deep_retry_ops: int = 0
    policy: str = "degrade"
    recovered_ops: int = 0
    recovery_exhausted_ops: int = 0
    window_recoveries: List[int] = dataclasses.field(
        default_factory=_empty_int_list
    )

    @property
    def average_latency_ns(self) -> float:
        """Mean latency per operation in ns (the paper's y-axis)."""
        if self.num_ops == 0:
            return 0.0
        return self.total_cycles * self.cycle_ns / self.num_ops

    @property
    def average_cycles_per_op(self) -> float:
        if self.num_ops == 0:
            return 0.0
        return self.total_cycles / self.num_ops

    @property
    def one_cycle_ratio(self) -> float:
        """Fraction of patterns judged one-cycle (Tables I-II)."""
        if self.num_ops == 0:
            return 0.0
        return self.one_cycle_ops / self.num_ops

    @property
    def error_rate(self) -> float:
        if self.num_ops == 0:
            return 0.0
        return self.error_count / self.num_ops

    def improvement_over(self, baseline_latency_ns: float) -> float:
        """Relative latency reduction vs a fixed-latency baseline.

        Positive values mean this design is faster (the paper quotes
        e.g. "37.3% less than the FLCB").
        """
        if baseline_latency_ns <= 0:
            return 0.0
        return 1.0 - self.average_latency_ns / baseline_latency_ns

    def summary(self) -> Dict[str, float]:
        return {
            "cycle_ns": self.cycle_ns,
            "years": self.years,
            "avg_latency_ns": self.average_latency_ns,
            "avg_cycles": self.average_cycles_per_op,
            "one_cycle_ratio": self.one_cycle_ratio,
            "errors": float(self.error_count),
            "undetectable": float(self.undetectable_count),
            "recovered": float(self.recovered_ops),
            "recovery_exhausted": float(self.recovery_exhausted_ops),
        }

    def to_dict(self) -> Dict:
        """JSON-ready dict: every field plus the derived ratios.

        This is the one serialization path (see
        :mod:`repro.analysis.serialize`): the campaign checkpoint store,
        ``render()`` headers and the benchmark JSON all consume it.
        """
        data = dataclasses.asdict(self)
        data["indicator_trace"] = [bool(x) for x in self.indicator_trace]
        data.update(self.summary())
        data["name"] = self.name
        data["policy"] = self.policy
        data["num_ops"] = self.num_ops
        return data


@dataclasses.dataclass
class ArchitectureRunResult:
    """A :class:`LatencyReport` plus the raw simulation artefacts."""

    report: LatencyReport
    #: Per-pattern floating-mode path delay in ns.
    delays: np.ndarray
    #: Per-pattern product values (uint64).
    products: np.ndarray
    #: Per-pattern one-cycle decision.
    one_cycle: np.ndarray
    #: Per-pattern Razor error flag.
    errors: np.ndarray
    #: Mean switched capacitance per op (drives the power model).
    mean_switched_caps: float
    #: Whether products matched the golden model (None when unchecked).
    golden_ok: Optional[bool] = None
    #: Per-pattern mask: arrival overran the shadow window while judged
    #: one-cycle -- an undetectable violation (None on legacy paths).
    undetectable: Optional[np.ndarray] = None
    #: Per-pattern mask: the recovery policy absorbed an over-budget
    #: operation with a multi-cycle fallback inside the cap.
    recovered: Optional[np.ndarray] = None
    #: Per-pattern mask: the fallback hit the retry cap (degrade policy
    #: records these; strict raises on the first).
    exhausted: Optional[np.ndarray] = None

    def summary(self) -> Dict[str, float]:
        """Scalar summary (the :class:`LatencyReport` one plus run-level
        aggregates) -- same protocol as ``CampaignResult.summary()``."""
        data = self.report.summary()
        data["num_ops"] = float(self.report.num_ops)
        data["mean_switched_caps"] = float(self.mean_switched_caps)
        if self.golden_ok is not None:
            data["golden_ok"] = float(self.golden_ok)
        return data

    def to_dict(self) -> Dict:
        """JSON-ready dict (scalar statistics only -- the per-pattern
        arrays stay in memory; serialize them separately if needed)."""
        return {
            "report": self.report.to_dict(),
            "mean_switched_caps": float(self.mean_switched_caps),
            "golden_ok": self.golden_ok,
            "num_ops": self.report.num_ops,
        }
