"""Aging-aware variable-latency adder (the paper's lineage, [20]-[21]).

The introduction credits Chen et al.'s VL-Adder as the only prior
variable-latency design that considers aging -- but notes it cannot
*adjust dynamically*.  This module builds that missing rung of the
ladder with the paper's own machinery: the Fig. 4 ripple-carry adder
with two hold-logic criteria (:func:`repro.arith.adders
.adaptive_hold_rca`), Razor flip-flops on the sum, and the same aging
indicator switching from the relaxed to the strict hold once errors
exceed the threshold.

The decision logic differs from the multiplier in one instructive way:
the hold is computed *structurally* from the operands' propagate bits
(no zero counting), so the architecture demonstrates that the AHL
concept is criterion-agnostic -- anything that predicts "long path
live" can drive it.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from ..aging.degradation import AgedCircuitFactory
from ..arith.adders import adaptive_hold_rca
from ..config import (
    DEFAULT_SIM_CONFIG,
    DEFAULT_TECHNOLOGY,
    SimulationConfig,
    Technology,
)
from ..errors import ConfigError, SimulationError
from ..nets.netlist import Netlist
from ..razor.flipflop import RazorBank
from ..timing.sta import StaticTiming
from .aging_indicator import AgingIndicator
from .stats import ArchitectureRunResult, LatencyReport


@dataclasses.dataclass
class AgingAwareAdder:
    """Variable-latency RCA with adaptive hold logic and Razor."""

    netlist: Netlist
    width: int
    cycle_ns: float
    factory: AgedCircuitFactory
    technology: Technology = DEFAULT_TECHNOLOGY
    config: SimulationConfig = DEFAULT_SIM_CONFIG
    adaptive: bool = True
    name: str = ""

    def __post_init__(self):
        if self.cycle_ns <= 0:
            raise ConfigError("cycle_ns must be positive")
        if not self.name:
            prefix = "A-VL" if self.adaptive else "T-VL"
            self.name = "%s-RCA-%d" % (prefix, self.width)

    @classmethod
    def build(
        cls,
        width: int = 16,
        position: Optional[int] = None,
        cycle_ns: Optional[float] = None,
        adaptive: bool = True,
        technology: Technology = DEFAULT_TECHNOLOGY,
        config: SimulationConfig = DEFAULT_SIM_CONFIG,
        characterize_patterns: int = 1000,
    ) -> "AgingAwareAdder":
        """Construct around a fresh adaptive-hold RCA netlist.

        ``cycle_ns`` defaults to 5/8 of the critical path -- the Fig. 4
        proportions (cycle 5 against a worst chain of 8).
        """
        netlist = adaptive_hold_rca(width, position)
        factory = AgedCircuitFactory.characterize(
            netlist, technology, num_patterns=characterize_patterns
        )
        if cycle_ns is None:
            cycle_ns = 0.625 * StaticTiming(netlist, technology).critical_delay
        return cls(
            netlist=netlist,
            width=width,
            cycle_ns=cycle_ns,
            factory=factory,
            technology=technology,
            config=config,
            adaptive=adaptive,
        )

    def with_cycle(self, cycle_ns: float) -> "AgingAwareAdder":
        return dataclasses.replace(self, cycle_ns=cycle_ns, name="")

    def critical_path_ns(self, years: float = 0.0) -> float:
        scale = None if years == 0 else self.factory.delay_scale(years)
        return StaticTiming(
            self.netlist, self.technology, scale
        ).critical_delay

    def run_random(
        self, num_patterns: int, seed: int = 1, years: float = 0.0
    ) -> ArchitectureRunResult:
        rng = np.random.default_rng(seed)
        high = 1 << self.width
        a = rng.integers(0, high, num_patterns, dtype=np.uint64)
        b = rng.integers(0, high, num_patterns, dtype=np.uint64)
        return self.run_patterns(a, b, years=years)

    def run_patterns(
        self,
        a: np.ndarray,
        b: np.ndarray,
        years: float = 0.0,
        check_golden: bool = False,
    ) -> ArchitectureRunResult:
        """Cycle-accurate variable-latency addition of a stream."""
        a = np.asarray(a, dtype=np.uint64)
        b = np.asarray(b, dtype=np.uint64)
        if a.shape != b.shape or a.ndim != 1 or a.size == 0:
            raise SimulationError("a and b must be equal-length 1-D arrays")

        circuit = self.factory.circuit(years)
        stream = circuit.run(
            {"a": a, "b": b}, collect_bit_arrivals=True
        )
        # Path delay of the *sum* only -- the hold bits are shallow
        # side logic, sampled separately by the controller.
        delays = stream.bit_arrivals["s"].max(axis=0)
        hold_relaxed = stream.outputs["hold"].astype(bool)
        hold_strict = stream.outputs["hold_strict"].astype(bool)

        razor = RazorBank(
            self.cycle_ns, self.cycle_ns * self.config.shadow_skew_fraction
        )
        late = razor.errors(delays)
        over_budget = delays > 2.0 * self.cycle_ns
        retry_cycles = self.config.razor_penalty_cycles + np.ceil(
            delays / self.cycle_ns
        )

        indicator = AgingIndicator(self.config)
        n = a.size
        window = self.config.indicator_window
        penalty = self.config.razor_penalty_cycles
        cycles = np.empty(n)
        one_cycle = np.empty(n, dtype=bool)
        errors = np.zeros(n, dtype=bool)
        window_errors = []
        indicator_trace = []
        undetectable = 0
        deep_retries = 0

        for start in range(0, n, window):
            stop = min(start + window, n)
            use_strict = self.adaptive and indicator.aged
            hold = (
                hold_strict[start:stop]
                if use_strict
                else hold_relaxed[start:stop]
            )
            flags = ~hold
            window_late = late[start:stop]
            window_over = over_budget[start:stop]
            err = (flags & window_late) | (~flags & window_over)
            base = np.where(flags, 1.0 + (flags & window_late) * penalty, 2.0)
            cycles[start:stop] = np.where(
                window_over, retry_cycles[start:stop], base
            )
            one_cycle[start:stop] = flags
            errors[start:stop] = err
            undetectable += int((flags & window_over).sum())
            deep_retries += int(window_over.sum())
            num_errors = int(err.sum())
            indicator.record_window(stop - start, num_errors)
            window_errors.append(num_errors)
            indicator_trace.append(indicator.aged)

        report = LatencyReport(
            name=self.name,
            cycle_ns=self.cycle_ns,
            years=years,
            num_ops=n,
            total_cycles=float(cycles.sum()),
            one_cycle_ops=int(one_cycle.sum()),
            two_cycle_ops=int((~one_cycle).sum()),
            error_count=int(errors.sum()),
            undetectable_count=undetectable,
            window_errors=window_errors,
            indicator_trace=indicator_trace,
            indicator_aged_at=indicator.aged_at_op,
            deep_retry_ops=deep_retries,
        )
        golden_ok = None
        if check_golden:
            golden_ok = bool(
                np.array_equal(stream.outputs["s"], a + b)
            )
        return ArchitectureRunResult(
            report=report,
            delays=delays,
            products=stream.outputs["s"],
            one_cycle=one_cycle,
            errors=errors,
            mean_switched_caps=stream.mean_switched_caps(),
            golden_ok=golden_ok,
        )
