"""The aging-aware variable-latency multiplier architecture (Fig. 8).

One :class:`AgingAwareMultiplier` bundles

* a column- or row-bypassing multiplier netlist,
* ``2m`` Razor flip-flops on the product (:class:`repro.razor.RazorBank`),
* the adaptive hold logic (:class:`repro.core.ahl.AdaptiveHoldLogic`),
* an aging model hooked to the netlist
  (:class:`repro.aging.AgedCircuitFactory`),

and executes pattern streams cycle-accurately:

1. the AHL inspects the judged operand's zero count and declares the
   pattern one- or two-cycle;
2. the compiled circuit supplies the pattern's true path delay;
3. a one-cycle pattern whose delay exceeds the cycle period raises a
   Razor error and is re-executed, costing
   :attr:`~repro.config.SimulationConfig.razor_penalty_cycles` extra
   cycles (1 detection + 2 re-execution);
4. every :attr:`~repro.config.SimulationConfig.indicator_window`
   operations the aging indicator evaluates the error rate and, past the
   threshold, permanently switches the AHL to the Skip-(n+1) block
   (adaptive designs only).

Two-cycle execution covers any pattern whose delay fits ``2T`` -- the
paper's operating assumption in its preferred cycle-period ranges.  When
the clock is pushed below that (the left edge of Figs. 13-18), a pattern
can exceed even the two-cycle budget; such an operation cannot succeed by
plain re-execution.  What happens next is governed by a
:class:`RecoveryPolicy` (selected through
:attr:`~repro.config.SimulationConfig.recovery_policy` or per-run):

* ``degrade`` (default) charges a *slow retry* -- ``razor_penalty +
  ceil(delay / T)`` cycles (detection plus a multi-cycle fallback issue),
  capped at :attr:`~repro.config.SimulationConfig.max_fallback_cycles` --
  and records the event, so long fault-injection campaigns never abort
  mid-stream.  This is what turns the latency curves back up at short
  cycle periods and produces the paper's preferred-region shape; the
  report tracks these events (``deep_retry_ops``, ``recovered_ops``,
  ``recovery_exhausted_ops``).
* ``strict`` raises :class:`repro.errors.RecoveryExhaustedError` the
  moment an arrival overruns the shadow window while judged one-cycle
  (undetectable violation) or the fallback cap is hit -- the hardware
  guarantee, enforced.
* ``detect-only`` charges no re-execution at all and only counts
  detections and undetectable violations -- coverage accounting for
  fault campaigns.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Union

import numpy as np

from ..aging.degradation import AgedCircuitFactory
from ..arith.reference import count_zeros, golden_products
from ..config import (
    DEFAULT_SIM_CONFIG,
    DEFAULT_TECHNOLOGY,
    RECOVERY_POLICIES,
    SimulationConfig,
    Technology,
)
from ..errors import ConfigError, RecoveryExhaustedError, SimulationError
from ..nets.area import AreaReport, area_report
from ..nets.netlist import Netlist
from ..razor.flipflop import RazorBank
from ..timing.sta import StaticTiming
from .ahl import AdaptiveHoldLogic, ahl_netlist
from .baselines import build_multiplier
from .stats import ArchitectureRunResult, LatencyReport


@dataclasses.dataclass
class WindowResolution:
    """Per-window outcome of a :class:`RecoveryPolicy`.

    All arrays are per-pattern over the window slice: cycle charges,
    Razor detections, undetectable violations, and which operations the
    policy recovered with a fallback / gave up on at the retry cap.
    """

    cycles: np.ndarray
    errors: np.ndarray
    undetectable: np.ndarray
    recovered: np.ndarray
    exhausted: np.ndarray


class RecoveryPolicy:
    """How the architecture resolves arrivals Razor cannot absorb.

    A policy turns one indicator window's worth of judged flags and path
    delays into cycle charges and recovery statistics.  Subclasses
    implement :meth:`resolve`; :func:`resolve_policy` maps the
    configuration names (``"strict"``, ``"degrade"``, ``"detect-only"``)
    to singletons.
    """

    name: str = "?"

    def resolve(
        self,
        flags: np.ndarray,
        delays: np.ndarray,
        cycle_ns: float,
        shadow_ns: float,
        penalty: int,
        max_fallback: int,
        start_op: int = 0,
    ) -> WindowResolution:
        """Resolve one window.  ``flags`` marks one-cycle judgements;
        ``start_op`` is the window's global operation offset (used in
        diagnostics)."""
        raise NotImplementedError

    # Shared primitive classifications -------------------------------

    @staticmethod
    def _classify(flags, delays, cycle_ns, shadow_ns):
        late = delays > cycle_ns
        over = delays > 2.0 * cycle_ns
        # A one-cycle pattern arriving past the shadow edge latches the
        # same stale data in main and shadow: Razor sees no mismatch.
        undetectable = flags & (delays > shadow_ns)
        errors = (flags & late) | (~flags & over)
        return late, over, undetectable, errors


class DegradeRecovery(RecoveryPolicy):
    """Bounded multi-cycle fallback with capped retries (the default).

    Over-budget operations are charged ``penalty + min(ceil(delay / T),
    max_fallback)`` cycles; operations that hit the cap are charged the
    cap and flagged ``exhausted`` instead of aborting the run.
    """

    name = "degrade"

    def resolve(self, flags, delays, cycle_ns, shadow_ns, penalty,
                max_fallback, start_op=0):
        late, over, undetectable, errors = self._classify(
            flags, delays, cycle_ns, shadow_ns
        )
        fallback = np.ceil(delays / cycle_ns)
        exhausted = over & (fallback > max_fallback)
        retry = penalty + np.minimum(fallback, float(max_fallback))
        base = np.where(flags, 1.0 + (flags & late) * penalty, 2.0)
        cycles = np.where(over, retry, base)
        return WindowResolution(
            cycles=cycles,
            errors=errors,
            undetectable=undetectable,
            recovered=over & ~exhausted,
            exhausted=exhausted,
        )


class StrictRecovery(RecoveryPolicy):
    """Raise on any overrun the architecture cannot guarantee to fix.

    The first undetectable violation (one-cycle judgement past the
    shadow window) or capped fallback raises
    :class:`repro.errors.RecoveryExhaustedError`; otherwise accounting
    matches ``degrade``.
    """

    name = "strict"

    def resolve(self, flags, delays, cycle_ns, shadow_ns, penalty,
                max_fallback, start_op=0):
        resolution = DegradeRecovery.resolve(
            self, flags, delays, cycle_ns, shadow_ns, penalty,
            max_fallback, start_op,
        )
        fatal = resolution.undetectable | resolution.exhausted
        if fatal.any():
            index = int(np.argmax(fatal))
            raise RecoveryExhaustedError(
                "operation %d: arrival %.4f ns overruns the %s under the "
                "strict recovery policy (cycle %.4f ns, shadow %.4f ns, "
                "fallback cap %d)"
                % (
                    start_op + index,
                    float(delays[index]),
                    "shadow window"
                    if resolution.undetectable[index]
                    else "fallback cap",
                    cycle_ns,
                    shadow_ns,
                    max_fallback,
                ),
                op_index=start_op + index,
                delay_ns=float(delays[index]),
            )
        return resolution


class DetectOnlyRecovery(RecoveryPolicy):
    """Count detections and misses; charge no re-execution.

    Every operation costs its judged one or two cycles; Razor errors and
    undetectable violations are tallied for coverage reporting.  Used by
    fault campaigns to measure what the Razor bank *would* catch.
    """

    name = "detect-only"

    def resolve(self, flags, delays, cycle_ns, shadow_ns, penalty,
                max_fallback, start_op=0):
        late, over, undetectable, errors = self._classify(
            flags, delays, cycle_ns, shadow_ns
        )
        zeros = np.zeros(flags.shape, dtype=bool)
        return WindowResolution(
            cycles=np.where(flags, 1.0, 2.0),
            errors=errors,
            undetectable=undetectable,
            recovered=zeros,
            exhausted=zeros.copy(),
        )


_POLICY_INSTANCES = {
    "strict": StrictRecovery(),
    "degrade": DegradeRecovery(),
    "detect-only": DetectOnlyRecovery(),
}


def resolve_policy(
    policy: Union[str, RecoveryPolicy, None],
    config: SimulationConfig = DEFAULT_SIM_CONFIG,
) -> RecoveryPolicy:
    """Map a policy name (or None for the configured default) to an
    instance; custom :class:`RecoveryPolicy` objects pass through."""
    if policy is None:
        policy = config.recovery_policy
    if isinstance(policy, RecoveryPolicy):
        return policy
    try:
        return _POLICY_INSTANCES[policy]
    except KeyError:
        raise ConfigError(
            "unknown recovery policy %r (known: %s)"
            % (policy, RECOVERY_POLICIES)
        ) from None


@dataclasses.dataclass
class AgingAwareMultiplier:
    """The proposed architecture: bypassing multiplier + Razor + AHL.

    Build one with :meth:`build`; drive it with :meth:`run_patterns` or
    :meth:`run_random`.
    """

    netlist: Netlist
    kind: str
    width: int
    skip: int
    cycle_ns: float
    factory: AgedCircuitFactory
    technology: Technology = DEFAULT_TECHNOLOGY
    config: SimulationConfig = DEFAULT_SIM_CONFIG
    adaptive: bool = True
    name: str = ""

    def __post_init__(self):
        if self.kind not in ("column", "row"):
            raise ConfigError(
                "kind must be 'column' or 'row', got %r" % (self.kind,)
            )
        if self.cycle_ns <= 0:
            raise ConfigError("cycle_ns must be positive")
        if not self.name:
            prefix = "A-VL" if self.adaptive else "T-VL"
            tag = "CB" if self.kind == "column" else "RB"
            self.name = "%s%s-%d skip%d" % (prefix, tag, self.width, self.skip)

    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        width: int,
        kind: str = "column",
        skip: Optional[int] = None,
        cycle_ns: Optional[float] = None,
        adaptive: bool = True,
        technology: Technology = DEFAULT_TECHNOLOGY,
        config: SimulationConfig = DEFAULT_SIM_CONFIG,
        characterize_patterns: int = 2000,
        characterize_seed: int = 2014,
        name: str = "",
    ) -> "AgingAwareMultiplier":
        """Construct the architecture around a freshly generated netlist.

        Args:
            width: Operand width ``m`` (the paper uses 16 and 32).
            kind: ``"column"`` or ``"row"`` bypassing.
            skip: Judging threshold ``n`` (defaults to ``width//2 - 1``,
                the paper's Skip-7 / Skip-15 working points).
            cycle_ns: Clock period; defaults to half the fresh critical
                path (a safe starting point inside the preferred range).
            adaptive: False builds the traditional variable-latency
                design (single judging block, Figs. 19-24 baselines).
        """
        if kind not in ("column", "row"):
            raise ConfigError("kind must be 'column' or 'row'")
        netlist = build_multiplier(width, kind)
        factory = AgedCircuitFactory.characterize(
            netlist,
            technology,
            num_patterns=characterize_patterns,
            seed=characterize_seed,
        )
        if skip is None:
            skip = width // 2 - 1
        if cycle_ns is None:
            cycle_ns = 0.5 * StaticTiming(netlist, technology).critical_delay
        return cls(
            netlist=netlist,
            kind=kind,
            width=width,
            skip=skip,
            cycle_ns=cycle_ns,
            factory=factory,
            technology=technology,
            config=config,
            adaptive=adaptive,
            name=name,
        )

    def with_cycle(self, cycle_ns: float) -> "AgingAwareMultiplier":
        """A sibling architecture at a different clock period (shares the
        netlist, stress profile and compiled-circuit cache)."""
        return dataclasses.replace(self, cycle_ns=cycle_ns, name="")

    def with_skip(self, skip: int) -> "AgingAwareMultiplier":
        """A sibling architecture with a different judging threshold."""
        return dataclasses.replace(self, skip=skip, name="")

    # ------------------------------------------------------------------

    def judged_operand(self, md: np.ndarray, mr: np.ndarray) -> np.ndarray:
        """The operand the AHL inspects: md (column) or mr (row)."""
        return md if self.kind == "column" else mr

    def critical_path_ns(self, years: float = 0.0) -> float:
        """Aged worst-case combinational delay."""
        scale = None if years == 0 else self.factory.delay_scale(years)
        return StaticTiming(self.netlist, self.technology, scale).critical_delay

    def run_random(
        self,
        num_patterns: int,
        seed: int = 1,
        years: float = 0.0,
        check_golden: bool = False,
        policy: Union[str, RecoveryPolicy, None] = None,
    ) -> ArchitectureRunResult:
        """Run uniformly random operands (the paper's workload)."""
        rng = np.random.default_rng(seed)
        high = 1 << self.width
        md = rng.integers(0, high, num_patterns, dtype=np.uint64)
        mr = rng.integers(0, high, num_patterns, dtype=np.uint64)
        return self.run_patterns(
            md, mr, years=years, check_golden=check_golden, policy=policy
        )

    def run_patterns(
        self,
        md: np.ndarray,
        mr: np.ndarray,
        years: float = 0.0,
        check_golden: bool = False,
        stream=None,
        policy: Union[str, RecoveryPolicy, None] = None,
    ) -> ArchitectureRunResult:
        """Cycle-accurate execution of a pattern stream at age ``years``.

        ``stream`` may carry a pre-computed
        :class:`~repro.timing.engine.StreamResult` for exactly these
        operands at exactly this age -- the cycle-period sweeps reuse one
        circuit simulation across every clock setting, since the path
        delays do not depend on the clock.  Fault-injection campaigns
        use the same mechanism to feed a *faulty* stream through the
        healthy control loop.

        ``policy`` overrides the configured recovery policy for this run
        (a name from :data:`repro.config.RECOVERY_POLICIES` or a
        :class:`RecoveryPolicy` instance).
        """
        md = np.asarray(md, dtype=np.uint64)
        mr = np.asarray(mr, dtype=np.uint64)
        if md.shape != mr.shape or md.ndim != 1 or md.size == 0:
            raise SimulationError("md and mr must be equal-length 1-D arrays")

        if stream is None:
            # Replay fast path: the factory's cached value plane is
            # re-timed for this age instead of re-simulating values
            # (bit-identical to circuit(years).run(...)).
            stream = self.factory.stream_result(years, {"md": md, "mr": mr})
        elif stream.num_patterns != md.size:
            raise SimulationError(
                "precomputed stream has %d patterns, operands have %d"
                % (stream.num_patterns, md.size)
            )
        active_policy = resolve_policy(policy, self.config)
        delays = stream.delays
        zeros = count_zeros(self.judged_operand(md, mr), self.width)

        skew_ns = self.cycle_ns * self.config.shadow_skew_fraction
        razor = RazorBank(self.cycle_ns, skew_ns)
        shadow_ns = razor.cycle_ns + razor.shadow_skew_ns
        over_budget = delays > 2.0 * self.cycle_ns

        ahl = AdaptiveHoldLogic(
            self.width, self.skip, self.config, adaptive=self.adaptive
        )

        n = md.size
        window = self.config.indicator_window
        penalty = self.config.razor_penalty_cycles
        max_fallback = self.config.max_fallback_cycles
        cycles = np.empty(n)
        one_cycle = np.empty(n, dtype=bool)
        errors = np.zeros(n, dtype=bool)
        undetectable = np.zeros(n, dtype=bool)
        recovered = np.zeros(n, dtype=bool)
        exhausted = np.zeros(n, dtype=bool)
        window_errors = []
        window_recoveries = []
        indicator_trace = []

        for start in range(0, n, window):
            stop = min(start + window, n)
            flags = zeros[start:stop] >= ahl.active_block.skip
            resolution = active_policy.resolve(
                flags,
                delays[start:stop],
                self.cycle_ns,
                shadow_ns,
                penalty,
                max_fallback,
                start_op=start,
            )
            cycles[start:stop] = resolution.cycles
            one_cycle[start:stop] = flags
            errors[start:stop] = resolution.errors
            undetectable[start:stop] = resolution.undetectable
            recovered[start:stop] = resolution.recovered
            exhausted[start:stop] = resolution.exhausted
            num_errors = int(resolution.errors.sum())
            ahl.observe(stop - start, num_errors)
            window_errors.append(num_errors)
            window_recoveries.append(
                int(resolution.recovered.sum())
                + int(resolution.exhausted.sum())
            )
            indicator_trace.append(ahl.indicator.aged)

        report = LatencyReport(
            name=self.name,
            cycle_ns=self.cycle_ns,
            years=years,
            num_ops=n,
            total_cycles=float(cycles.sum()),
            one_cycle_ops=int(one_cycle.sum()),
            two_cycle_ops=int((~one_cycle).sum()),
            error_count=int(errors.sum()),
            undetectable_count=int(undetectable.sum()),
            window_errors=window_errors,
            indicator_trace=indicator_trace,
            indicator_aged_at=ahl.indicator.aged_at_op,
            deep_retry_ops=int(over_budget.sum()),
            policy=active_policy.name,
            recovered_ops=int(recovered.sum()),
            recovery_exhausted_ops=int(exhausted.sum()),
            window_recoveries=window_recoveries,
        )
        golden_ok = None
        if check_golden:
            golden_ok = bool(
                np.array_equal(
                    stream.outputs["p"], golden_products(md, mr, self.width)
                )
            )
        return ArchitectureRunResult(
            report=report,
            delays=delays,
            products=stream.outputs["p"],
            one_cycle=one_cycle,
            errors=errors,
            mean_switched_caps=stream.mean_switched_caps(),
            golden_ok=golden_ok,
            undetectable=undetectable,
            recovered=recovered,
            exhausted=exhausted,
        )

    def run_lifetime(
        self,
        md: np.ndarray,
        mr: np.ndarray,
        years: "Sequence[float]",
        check_golden: bool = False,
        policy: Union[str, RecoveryPolicy, None] = None,
        fold: bool = True,
    ) -> "List[ArchitectureRunResult]":
        """Run the control loop at every aging timestep of a lifetime.

        One value pass + one batched arrival replay (see
        :meth:`repro.aging.degradation.AgedCircuitFactory
        .stream_results`) feed the per-timestep control loops, so the
        sweep costs O(value pass + k * replay) instead of k full
        simulations.  ``fold`` (default on) deduplicates repeated
        operand transitions before the value pass (see
        :mod:`repro.timing.fold`).  Each element is bit-identical to
        ``run_patterns(md, mr, years=y, ...)`` at the matching year.
        """
        years = list(years)
        streams = self.factory.stream_results(
            years, {"md": md, "mr": mr}, fold=fold
        )
        return [
            self.run_patterns(
                md,
                mr,
                years=year,
                check_golden=check_golden,
                stream=stream,
                policy=policy,
            )
            for year, stream in zip(years, streams)
        ]

    # ------------------------------------------------------------------

    def area(self) -> AreaReport:
        """Fig. 25 accounting: core + input DFFs + Razor bank + AHL."""
        ahl_nl, sequential_bits = ahl_netlist(self.width, self.skip)
        return area_report(
            self.netlist,
            name=self.name,
            input_ff_bits=2 * self.width,
            output_ff_bits=0,
            razor_bits=2 * self.width,
            ahl_netlist=ahl_nl,
            extra_dff_bits=sequential_bits,
        )
