"""Adaptive hold logic (Section III-A, Fig. 12).

The AHL bundles two judging blocks -- Skip-``n`` and Skip-``n+1`` -- a
mux steered by the aging indicator, and the gating flip-flop that stalls
the input registers for one cycle on two-cycle patterns.  Behaviorally
the class below makes the one/two-cycle decision per pattern; the
structural netlist (:func:`ahl_netlist`) exists for the Fig. 25 area
accounting and for inspection.

A *traditional* variable-latency design (T-VLCB / T-VLRB in Figs. 19-24)
is the same hold logic without adaptivity: construct with
``adaptive=False`` and only the Skip-``n`` block is ever consulted.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from ..config import DEFAULT_SIM_CONFIG, SimulationConfig
from ..errors import ConfigError
from ..nets.cells import CellLibrary, STANDARD_LIBRARY
from ..nets.netlist import Netlist
from .aging_indicator import AgingIndicator
from .judging import JudgingBlock, compare_ge_const, judging_netlist, popcount_nets


class AdaptiveHoldLogic:
    """Behavioral AHL: decides one- vs two-cycle execution per pattern."""

    def __init__(
        self,
        width: int,
        skip: int,
        config: SimulationConfig = DEFAULT_SIM_CONFIG,
        adaptive: bool = True,
    ):
        if skip + 1 > width:
            raise ConfigError(
                "skip=%d leaves no room for the stricter Skip-%d block in "
                "a %d-bit operand" % (skip, skip + 1, width)
            )
        self.width = width
        self.skip = skip
        self.adaptive = adaptive
        self.config = config
        self.block_relaxed = JudgingBlock(width, skip)
        self.block_strict = JudgingBlock(width, skip + 1)
        self.indicator = AgingIndicator(config)

    @property
    def active_block(self) -> JudgingBlock:
        """The judging block the mux currently selects."""
        if self.adaptive and self.indicator.aged:
            return self.block_strict
        return self.block_relaxed

    def decide(self, operands) -> np.ndarray:
        """One-cycle flags for a batch of operands under the current state.

        The batch must not straddle an indicator window (the architecture
        simulation feeds exactly one window at a time); the indicator is
        *not* updated here -- call :meth:`observe` with the Razor
        outcome afterwards.
        """
        return self.active_block.one_cycle(operands)

    def observe(self, num_ops: int, num_errors: int) -> None:
        """Report a window's Razor error count back to the indicator."""
        self.indicator.record_window(num_ops, num_errors)

    def reset(self) -> None:
        self.indicator.reset()


def skip_candidates(width: int) -> range:
    """Every AHL-legal Skip-n for a ``width``-bit judged operand.

    The adaptive pair needs Skip-``n+1`` to fit alongside Skip-``n``
    (the :class:`AdaptiveHoldLogic` constructor check), so candidates
    run ``0 .. width - 1``.  The Monte Carlo guard-band tuner scans
    exactly this range (:mod:`repro.montecarlo.analytics`).
    """
    if width < 1:
        raise ConfigError("width must be >= 1, got %r" % (width,))
    return range(0, width)


def ahl_netlist(
    width: int,
    skip: int,
    library: CellLibrary = STANDARD_LIBRARY,
    name: Optional[str] = None,
) -> Tuple[Netlist, int]:
    """Structural AHL for area accounting.

    Returns ``(netlist, sequential_bits)``: the combinational netlist
    (shared popcount feeding both threshold comparators, the selection
    mux and the gating OR of Fig. 12) and the number of flip-flop bits
    the AHL needs on top (gating DFF, aging-indicator flag, error and
    operation counters sized by the indicator window).
    """
    JudgingBlock(width, skip + 1)  # validate both thresholds fit
    nl = Netlist(name or "ahl-%d-skip%d" % (width, skip), library)
    x = nl.add_input_port("x", width)
    aging = nl.add_input_port("aging", 1)[0]
    q_state = nl.add_input_port("q", 1)[0]

    inverted = [nl.inv(bit, name="zinv%d" % i) for i, bit in enumerate(x)]
    zeros = popcount_nets(nl, inverted)
    relaxed = compare_ge_const(nl, zeros, skip)
    strict = compare_ge_const(nl, zeros, skip + 1)
    chosen = nl.mux2(relaxed, strict, aging, name="block_mux")
    gating = nl.or2(chosen, q_state, name="gate_or")
    nl.add_output_port("one_cycle", [chosen])
    nl.add_output_port("gating_n", [gating])
    nl.validate()

    window_bits = max(1, math.ceil(math.log2(DEFAULT_SIM_CONFIG.indicator_window + 1)))
    sequential_bits = (
        1  # gating D flip-flop
        + 1  # aging-indicator output flag
        + window_bits  # error counter
        + window_bits  # operation counter
    )
    return nl, sequential_bits


__all__ = [
    "AdaptiveHoldLogic",
    "ahl_netlist",
    "judging_netlist",
    "skip_candidates",
]
