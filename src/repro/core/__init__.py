"""The paper's contribution: adaptive hold logic and the aging-aware
variable-latency multiplier architecture (Section III).

* :mod:`repro.core.judging` -- the judging blocks: behavioral zero-count
  predicates plus their structural netlists (popcount + comparator);
* :mod:`repro.core.aging_indicator` -- the error-rate counter that flips
  the AHL to the stricter judging block;
* :mod:`repro.core.ahl` -- the adaptive hold logic assembling both;
* :mod:`repro.core.architecture` -- the full architecture of Fig. 8:
  bypassing multiplier + Razor output bank + AHL, simulated
  cycle-accurately over pattern streams at any aging point;
* :mod:`repro.core.baselines` -- fixed-latency baselines (AM, FLCB,
  FLRB) measured consistently;
* :mod:`repro.core.stats` -- latency/error reports.
"""

from .adder_architecture import AgingAwareAdder
from .aging_indicator import AgingIndicator
from .ahl import AdaptiveHoldLogic, ahl_netlist
from .architecture import (
    AgingAwareMultiplier,
    DegradeRecovery,
    DetectOnlyRecovery,
    RecoveryPolicy,
    StrictRecovery,
    WindowResolution,
    resolve_policy,
)
from .baselines import FixedLatencyDesign, build_multiplier
from .judging import JudgingBlock, judging_netlist, popcount_nets
from .selector import OperatingPoint, SelectionResult, select_operating_point
from .stats import ArchitectureRunResult, LatencyReport
from .structural import StructuralArchitecture, validate_against_behavioral
from .throughput import (
    ThroughputReport,
    architecture_service_times,
    max_sustainable_rate,
    simulate_queue,
)

__all__ = [
    "AdaptiveHoldLogic",
    "AgingAwareAdder",
    "AgingAwareMultiplier",
    "AgingIndicator",
    "ArchitectureRunResult",
    "DegradeRecovery",
    "DetectOnlyRecovery",
    "FixedLatencyDesign",
    "JudgingBlock",
    "LatencyReport",
    "OperatingPoint",
    "RecoveryPolicy",
    "SelectionResult",
    "StrictRecovery",
    "StructuralArchitecture",
    "ThroughputReport",
    "WindowResolution",
    "architecture_service_times",
    "max_sustainable_rate",
    "resolve_policy",
    "select_operating_point",
    "simulate_queue",
    "validate_against_behavioral",
    "ahl_netlist",
    "build_multiplier",
    "judging_netlist",
    "popcount_nets",
]
