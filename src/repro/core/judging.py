"""Judging blocks: the AHL's one-cycle/two-cycle predictors.

Behaviorally (Section III-A): a *Skip-n* judging block outputs 1 -- the
pattern may execute in one cycle -- when the number of zeros in the
selected operand (multiplicand for column bypassing, multiplicator for
row bypassing) is at least ``n``.

Structurally, the block is a popcount tree over the inverted operand
bits followed by a greater-or-equal comparator against the constant
threshold; :func:`judging_netlist` emits that circuit so the Fig. 25
area accounting charges the AHL its real transistor cost.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Union

import numpy as np

from ..arith.adders import carry_save_add
from ..arith.reference import count_zeros
from ..errors import ConfigError
from ..nets.cells import CellLibrary, STANDARD_LIBRARY
from ..nets.netlist import CONST0, CONST1, Netlist

Operands = Union[Sequence[int], np.ndarray]


@dataclasses.dataclass(frozen=True)
class JudgingBlock:
    """Behavioral Skip-``skip`` judging block over ``width``-bit operands."""

    width: int
    skip: int

    def __post_init__(self):
        if self.width < 1:
            raise ConfigError("width must be >= 1")
        if not 0 <= self.skip <= self.width:
            raise ConfigError(
                "skip must lie in [0, width]; got skip=%d width=%d"
                % (self.skip, self.width)
            )

    def one_cycle(self, operands: Operands) -> np.ndarray:
        """True where the operand has >= ``skip`` zeros (one-cycle)."""
        return count_zeros(operands, self.width) >= self.skip

    def one_cycle_ratio(self, operands: Operands) -> float:
        """Fraction of one-cycle patterns in a stream (Tables I-II)."""
        flags = self.one_cycle(operands)
        return float(flags.mean()) if flags.size else 0.0


def popcount_nets(nl: Netlist, bits: Sequence[int]) -> List[int]:
    """Structural population count: returns count bits, LSB first.

    Pairwise tree of ripple additions built from
    :func:`repro.arith.adders.carry_save_add`; constant inputs fold away.
    """
    numbers: List[List[int]] = [[bit] for bit in bits]
    if not numbers:
        return [CONST0]
    while len(numbers) > 1:
        paired: List[List[int]] = []
        for k in range(0, len(numbers) - 1, 2):
            paired.append(_ripple_add(nl, numbers[k], numbers[k + 1]))
        if len(numbers) % 2:
            paired.append(numbers[-1])
        numbers = paired
    return numbers[0]


def _ripple_add(nl: Netlist, a: List[int], b: List[int]) -> List[int]:
    """Add two little-endian nets vectors; result one bit wider."""
    width = max(len(a), len(b))
    carry = CONST0
    out: List[int] = []
    for i in range(width):
        x = a[i] if i < len(a) else CONST0
        y = b[i] if i < len(b) else CONST0
        total, carry = carry_save_add(nl, x, y, carry)
        out.append(total)
    out.append(carry)
    return out


def compare_ge_const(
    nl: Netlist, value_bits: Sequence[int], threshold: int
) -> int:
    """Net that is 1 iff the little-endian ``value_bits`` >= ``threshold``.

    Implemented as the carry-out of ``value + (2^k - threshold)``; the
    constant operand folds into half adders.
    """
    if threshold < 0:
        raise ConfigError("threshold must be non-negative")
    if threshold == 0:
        return CONST1
    k = len(value_bits)
    if threshold > (1 << k):
        return CONST0
    complement = (1 << k) - threshold
    carry = CONST0
    for i, bit in enumerate(value_bits):
        const_bit = CONST1 if (complement >> i) & 1 else CONST0
        _, carry = carry_save_add(nl, bit, const_bit, carry)
    return carry


def judging_netlist(
    width: int,
    skip: int,
    library: CellLibrary = STANDARD_LIBRARY,
    name: Optional[str] = None,
) -> Netlist:
    """Structural Skip-``skip`` judging block.

    Ports: ``x`` (the judged operand) in, ``one_cycle`` (1 bit) out.
    """
    block = JudgingBlock(width, skip)  # validates the parameters
    nl = Netlist(name or "judging-%d-skip%d" % (width, skip), library)
    x = nl.add_input_port("x", width)
    inverted = [nl.inv(bit, name="zinv%d" % i) for i, bit in enumerate(x)]
    zeros = popcount_nets(nl, inverted)
    flag = compare_ge_const(nl, zeros, block.skip)
    if flag in (CONST0, CONST1):
        # Degenerate thresholds still need a driven output.
        flag = nl.buf(flag, name="const_flag")
    nl.add_output_port("one_cycle", [flag])
    nl.validate()
    return nl
