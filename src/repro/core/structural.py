"""Gate-level closed-loop validation of the Fig. 8 architecture.

The cycle-accurate simulation in :mod:`repro.core.architecture` models
the AHL *behaviorally* (zero counts compared in Python).  This module
closes the loop at the gate level instead:

* the one-/two-cycle decision comes from simulating the **structural AHL
  netlist** (popcount tree, threshold comparators, selection mux of
  Fig. 12) on the judged operand and the aging-indicator bit;
* the Razor check uses **per-bit arrival times** of the product bus --
  each of the ``2m`` Razor flip-flops raises its own error flag, and the
  architecture sees their OR (Fig. 11);
* the input-register gating sequence (the ``!gating`` signal stalling
  the operand flip-flops for the second cycle of two-cycle patterns) is
  reconstructed and checked for consistency.

:func:`validate_against_behavioral` runs both models on the same stream
and reports any divergence -- the repository's strongest evidence that
the behavioral experiments characterize the actual circuit.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np

from ..errors import SimulationError
from ..timing.engine import CompiledCircuit
from .ahl import ahl_netlist
from .aging_indicator import AgingIndicator
from .architecture import AgingAwareMultiplier


@dataclasses.dataclass
class StructuralRunResult:
    """Gate-level decision trace for one stream."""

    #: Structural AHL one-cycle decision per operation.
    one_cycle: np.ndarray
    #: Per-operation Razor error (OR over the per-bit flags).
    errors: np.ndarray
    #: Number of product bits that individually flagged, per operation.
    error_bits: np.ndarray
    #: Gating sequence: one entry per *clock cycle*; True = input
    #: registers enabled (new operand latched), False = stalled.
    gating_enable: List[bool]
    #: Indicator output after each observation window.
    indicator_trace: List[bool]
    #: Total clock cycles consumed.
    total_cycles: float


@dataclasses.dataclass
class StructuralValidation:
    """Outcome of a behavioral-vs-structural comparison."""

    num_ops: int
    decisions_match: bool
    errors_match: bool
    latency_match: bool
    mismatched_ops: np.ndarray

    @property
    def ok(self) -> bool:
        return (
            self.decisions_match
            and self.errors_match
            and self.latency_match
        )


class StructuralArchitecture:
    """The architecture with a gate-level AHL and per-bit Razor bank."""

    def __init__(self, architecture: AgingAwareMultiplier):
        self.architecture = architecture
        nl, _ = ahl_netlist(architecture.width, architecture.skip)
        self._ahl_netlist = nl
        self._ahl_circuit = CompiledCircuit(nl, architecture.technology)

    def decide(
        self, operands: np.ndarray, aging: bool
    ) -> np.ndarray:
        """One-cycle flags from the structural AHL netlist."""
        operands = np.asarray(operands, dtype=np.uint64)
        n = operands.shape[0]
        constant = np.full(n, int(aging), dtype=np.uint64)
        result = self._ahl_circuit.run(
            {
                "x": operands,
                "aging": constant,
                "q": np.zeros(n, dtype=np.uint64),
            }
        )
        return result.outputs["one_cycle"].astype(bool)

    def run(
        self,
        md: np.ndarray,
        mr: np.ndarray,
        years: float = 0.0,
    ) -> StructuralRunResult:
        """Cycle-accurate run with structural decisions and per-bit Razor."""
        arch = self.architecture
        md = np.asarray(md, dtype=np.uint64)
        mr = np.asarray(mr, dtype=np.uint64)
        if md.shape != mr.shape or md.ndim != 1 or md.size == 0:
            raise SimulationError("md and mr must be equal-length 1-D arrays")

        circuit = arch.factory.circuit(years)
        stream = circuit.run(
            {"md": md, "mr": mr}, collect_bit_arrivals=True
        )
        arrivals = stream.bit_arrivals["p"]  # (2m, n)
        cycle = arch.cycle_ns
        late_bits = arrivals > cycle  # per-bit Razor flags
        over_budget = stream.delays > 2.0 * cycle
        retry_cycles = arch.config.razor_penalty_cycles + np.ceil(
            stream.delays / cycle
        )

        judged = arch.judged_operand(md, mr)
        indicator = AgingIndicator(arch.config)

        n = md.size
        window = arch.config.indicator_window
        penalty = arch.config.razor_penalty_cycles
        one_cycle = np.empty(n, dtype=bool)
        errors = np.zeros(n, dtype=bool)
        error_bits = np.zeros(n, dtype=np.int64)
        gating_enable: List[bool] = []
        indicator_trace: List[bool] = []
        total_cycles = 0.0

        for start in range(0, n, window):
            stop = min(start + window, n)
            aging = indicator.aged if arch.adaptive else False
            flags = self.decide(judged[start:stop], aging)
            window_late_bits = late_bits[:, start:stop]
            window_late = window_late_bits.any(axis=0)
            window_over = over_budget[start:stop]
            err = (flags & window_late) | (~flags & window_over)

            one_cycle[start:stop] = flags
            errors[start:stop] = err
            error_bits[start:stop] = window_late_bits.sum(axis=0)

            base = np.where(flags, 1.0 + (flags & window_late) * penalty, 2.0)
            cycles = np.where(
                window_over, retry_cycles[start:stop], base
            )
            total_cycles += float(cycles.sum())

            # Reconstruct the !gating sequence: a one-cycle pattern
            # enables the input registers every cycle; a two-cycle
            # pattern stalls them for exactly one cycle.
            for flag in flags:
                gating_enable.append(True)
                if not flag:
                    gating_enable.append(False)

            indicator.record_window(stop - start, int(err.sum()))
            indicator_trace.append(indicator.aged)

        return StructuralRunResult(
            one_cycle=one_cycle,
            errors=errors,
            error_bits=error_bits,
            gating_enable=gating_enable,
            indicator_trace=indicator_trace,
            total_cycles=total_cycles,
        )


def validate_against_behavioral(
    architecture: AgingAwareMultiplier,
    md: np.ndarray,
    mr: np.ndarray,
    years: float = 0.0,
) -> StructuralValidation:
    """Run both models on one stream and compare decision-for-decision."""
    behavioral = architecture.run_patterns(md, mr, years=years)
    structural = StructuralArchitecture(architecture).run(
        md, mr, years=years
    )
    decisions = np.asarray(behavioral.one_cycle) == structural.one_cycle
    errors = np.asarray(behavioral.errors) == structural.errors
    latency = (
        abs(behavioral.report.total_cycles - structural.total_cycles)
        < 1e-9
    )
    mismatched = np.nonzero(~(decisions & errors))[0]
    return StructuralValidation(
        num_ops=int(np.asarray(md).size),
        decisions_match=bool(decisions.all()),
        errors_match=bool(errors.all()),
        latency_match=bool(latency),
        mismatched_ops=mismatched,
    )
