"""The aging indicator (Section III-A, Fig. 12).

A counter tallies Razor errors over a fixed observation window of
operations (the paper uses 100) and is reset at each window boundary.
When a window accumulates at least the threshold number of errors (the
paper uses 10, i.e. a 10% error rate), the indicator raises its output:
the circuit has aged enough that the current judging criterion
mispredicts too often, and the AHL switches to the stricter
Skip-(n+1) block.

The paper's indicator is monotone (once aged, stay aged); setting
``sticky=False`` lets it relax again when errors subside -- an extension
the ablation benchmarks explore.
"""

from __future__ import annotations

from ..config import DEFAULT_SIM_CONFIG, SimulationConfig
from ..errors import SimulationError


class AgingIndicator:
    """Error-rate watchdog driving the AHL's judging-block mux."""

    def __init__(self, config: SimulationConfig = DEFAULT_SIM_CONFIG):
        self.config = config
        self._aged = False
        self._errors_in_window = 0
        self._ops_in_window = 0
        self._windows_observed = 0
        self._aged_at_op: int = -1
        self._total_ops = 0

    @property
    def aged(self) -> bool:
        """Current indicator output: 1 selects the stricter block."""
        return self._aged

    @property
    def aged_at_op(self) -> int:
        """Operation index at which the indicator first flipped (-1: never)."""
        return self._aged_at_op

    @property
    def windows_observed(self) -> int:
        return self._windows_observed

    def record(self, error: bool) -> None:
        """Feed one operation's Razor outcome."""
        self._errors_in_window += bool(error)
        self._ops_in_window += 1
        self._total_ops += 1
        if self._ops_in_window >= self.config.indicator_window:
            self._close_window()

    def record_window(self, num_ops: int, num_errors: int) -> None:
        """Feed a whole window at once (vectorized simulation path).

        ``num_ops`` must not straddle a window boundary relative to the
        operations already recorded.
        """
        if num_errors < 0 or num_ops < 0 or num_errors > num_ops:
            raise SimulationError("invalid window counts")
        if self._ops_in_window + num_ops > self.config.indicator_window:
            raise SimulationError(
                "record_window would straddle a window boundary"
            )
        self._errors_in_window += num_errors
        self._ops_in_window += num_ops
        self._total_ops += num_ops
        if self._ops_in_window >= self.config.indicator_window:
            self._close_window()

    def _close_window(self) -> None:
        exceeded = self._errors_in_window >= self.config.indicator_threshold
        if exceeded and not self._aged:
            self._aged = True
            self._aged_at_op = self._total_ops
        elif not exceeded and self._aged and not self.config.indicator_sticky:
            self._aged = False
        self._errors_in_window = 0
        self._ops_in_window = 0
        self._windows_observed += 1

    def reset(self) -> None:
        """Back to the fresh state (new lifetime)."""
        self._aged = False
        self._errors_in_window = 0
        self._ops_in_window = 0
        self._windows_observed = 0
        self._aged_at_op = -1
        self._total_ops = 0
