"""Razor flip-flop substrate (Ernst et al. [27]; paper Fig. 11).

A Razor flip-flop pairs the main flip-flop with a shadow latch clocked on
a delayed edge; a mismatch between the two means the combinational result
arrived after the main edge, i.e. a timing violation.  The architecture
uses one Razor flip-flop per product bit and ORs the per-bit error flags
(:class:`RazorBank`) to trigger re-execution.
"""

from .flipflop import RazorBank, RazorFlipFlop, RazorSample

__all__ = ["RazorBank", "RazorFlipFlop", "RazorSample"]
