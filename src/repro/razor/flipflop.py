"""Behavioral Razor flip-flop and the output-bank error detector.

Model (paper Fig. 11): the main flip-flop samples the combinational
output at the cycle edge ``T``; the shadow latch samples on a delayed
clock at ``T + skew``.  If the data input settles between the two edges,
main and shadow disagree and the error output goes high.

The simulation works with per-bit *arrival times* (the floating-mode
upper bound on the last transition): a bit errors when it arrives after
the main edge.  An arrival past the *shadow* edge would be undetectable
-- the architecture avoids that case by sending slow patterns through
two-cycle execution, and the bank reports such overruns separately so
tests can assert the guarantee holds.
"""

from __future__ import annotations

import dataclasses
from typing import Union

import numpy as np

from ..errors import SimulationError

Number = Union[float, np.ndarray]


@dataclasses.dataclass(frozen=True)
class RazorFlipFlop:
    """One Razor stage: main edge at ``cycle_ns``, shadow at ``+skew``.

    Args:
        cycle_ns: Clock period (main sampling edge).
        shadow_skew_ns: Delay of the shadow clock after the main edge.
    """

    cycle_ns: float
    shadow_skew_ns: float

    def __post_init__(self):
        if self.cycle_ns <= 0:
            raise SimulationError("cycle_ns must be positive")
        if self.shadow_skew_ns <= 0:
            raise SimulationError("shadow_skew_ns must be positive")

    def samples(self, arrival_ns: float, settled_value: int):
        """Return ``(main_value, shadow_value, error)`` for one bit.

        A bit arriving before the main edge latches correctly in both;
        one arriving in the detection window latches stale data in the
        main flip-flop but correct data in the shadow latch.
        """
        if arrival_ns <= self.cycle_ns:
            return settled_value, settled_value, False
        if arrival_ns <= self.cycle_ns + self.shadow_skew_ns:
            stale = 1 - settled_value
            return stale, settled_value, True
        raise SimulationError(
            "arrival %.4f ns beyond the shadow window (%.4f ns): "
            "undetectable violation" % (arrival_ns, self.cycle_ns + self.shadow_skew_ns)
        )

    def error(self, arrival_ns: float) -> bool:
        """Whether this bit triggers the Razor error signal."""
        return arrival_ns > self.cycle_ns


@dataclasses.dataclass(frozen=True)
class RazorBank:
    """A bank of Razor flip-flops across all product bits.

    The bank works vectorized on per-pattern delay arrays (the max over
    bits is enough for the OR of the per-bit error flags: the slowest
    bit decides).
    """

    cycle_ns: float
    shadow_skew_ns: float

    def __post_init__(self):
        if self.cycle_ns <= 0:
            raise SimulationError("cycle_ns must be positive")
        if self.shadow_skew_ns <= 0:
            raise SimulationError("shadow_skew_ns must be positive")

    def errors(self, delays_ns: Number) -> np.ndarray:
        """Error flags: the operation missed the main edge."""
        return np.asarray(delays_ns, dtype=float) > self.cycle_ns

    def undetectable(self, delays_ns: Number) -> np.ndarray:
        """Flags for arrivals beyond the shadow window.

        The architecture must keep this all-False by routing slow
        patterns through two-cycle execution.
        """
        window = self.cycle_ns + self.shadow_skew_ns
        return np.asarray(delays_ns, dtype=float) > window

    def error_count(self, delays_ns: Number) -> int:
        """Number of operations flagged in a stream."""
        return int(self.errors(delays_ns).sum())
