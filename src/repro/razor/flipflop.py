"""Behavioral Razor flip-flop and the output-bank error detector.

Model (paper Fig. 11): the main flip-flop samples the combinational
output at the cycle edge ``T``; the shadow latch samples on a delayed
clock at ``T + skew``.  If the data input settles between the two edges,
main and shadow disagree and the error output goes high.

The simulation works with per-bit *arrival times* (the floating-mode
upper bound on the last transition): a bit errors when it arrives after
the main edge.  An arrival past the *shadow* edge would be undetectable
-- the architecture avoids that case by sending slow patterns through
two-cycle execution, and the bank reports such overruns separately so
tests can assert the guarantee holds.
"""

from __future__ import annotations

import dataclasses
from typing import Union

import numpy as np

from ..errors import SimulationError

Number = Union[float, np.ndarray]


@dataclasses.dataclass(frozen=True)
class RazorSample:
    """Vectorized sampling outcome of a :class:`RazorBank` call.

    Attributes:
        main: Values latched by the main flip-flops at the cycle edge
            (stale for late arrivals).
        shadow: Values latched by the shadow latches (stale only past
            the shadow window).
        error: Main/shadow mismatch -- the Razor error signal.
        undetectable: Arrival beyond the shadow window: both latches
            hold stale data, so the violation raises *no* error.  The
            caller decides how to act (the architecture's recovery
            policies; ``strict`` raises, the others record).
    """

    main: np.ndarray
    shadow: np.ndarray
    error: np.ndarray
    undetectable: np.ndarray


@dataclasses.dataclass(frozen=True)
class RazorFlipFlop:
    """One Razor stage: main edge at ``cycle_ns``, shadow at ``+skew``.

    Args:
        cycle_ns: Clock period (main sampling edge).
        shadow_skew_ns: Delay of the shadow clock after the main edge.
    """

    cycle_ns: float
    shadow_skew_ns: float

    def __post_init__(self):
        if self.cycle_ns <= 0:
            raise SimulationError("cycle_ns must be positive")
        if self.shadow_skew_ns <= 0:
            raise SimulationError("shadow_skew_ns must be positive")

    def samples(self, arrival_ns: float, settled_value: int,
                policy: str = "strict"):
        """Return ``(main_value, shadow_value, error)`` for one bit.

        A bit arriving before the main edge latches correctly in both;
        one arriving in the detection window latches stale data in the
        main flip-flop but correct data in the shadow latch.

        An arrival beyond the shadow window is an *undetectable*
        violation: under the default ``"strict"`` policy it raises
        :class:`~repro.errors.SimulationError` (the scalar path keeps
        the hardware guarantee an assertion); any other policy name
        returns the physical outcome -- stale data in both latches with
        the error line low.  Vectorized callers should use
        :meth:`RazorBank.samples`, which never raises and reports a
        per-pattern ``undetectable`` mask instead.
        """
        if arrival_ns <= self.cycle_ns:
            return settled_value, settled_value, False
        stale = 1 - settled_value
        if arrival_ns <= self.cycle_ns + self.shadow_skew_ns:
            return stale, settled_value, True
        if policy == "strict":
            raise SimulationError(
                "arrival %.4f ns beyond the shadow window (%.4f ns): "
                "undetectable violation"
                % (arrival_ns, self.cycle_ns + self.shadow_skew_ns)
            )
        return stale, stale, False

    def error(self, arrival_ns: float) -> bool:
        """Whether this bit triggers the Razor error signal."""
        return arrival_ns > self.cycle_ns


@dataclasses.dataclass(frozen=True)
class RazorBank:
    """A bank of Razor flip-flops across all product bits.

    The bank works vectorized on per-pattern delay arrays (the max over
    bits is enough for the OR of the per-bit error flags: the slowest
    bit decides).
    """

    cycle_ns: float
    shadow_skew_ns: float

    def __post_init__(self):
        if self.cycle_ns <= 0:
            raise SimulationError("cycle_ns must be positive")
        if self.shadow_skew_ns <= 0:
            raise SimulationError("shadow_skew_ns must be positive")

    def errors(self, delays_ns: Number) -> np.ndarray:
        """Error flags: the operation missed the main edge.

        This is the *timing-violation* predicate (arrival past the main
        edge), which the architecture's judging guarantees stay inside
        the shadow window.  The physical error line of the bank --
        which goes quiet again past the shadow window -- is
        :attr:`RazorSample.error` from :meth:`samples`.
        """
        return np.asarray(delays_ns, dtype=float) > self.cycle_ns

    def samples(self, arrival_ns: Number, settled_values: Number) -> RazorSample:
        """Vectorized bank sampling: never raises.

        ``arrival_ns`` and ``settled_values`` are broadcast-compatible
        per-pattern arrays (the bank reduces over bits, so one arrival
        and one packed value word per pattern is the usual shape; bit
        values 0/1 model the slowest bit's lane).  A single overrun
        pattern no longer aborts the whole batch -- it surfaces in the
        returned :attr:`RazorSample.undetectable` mask while every other
        pattern's results stay valid.
        """
        arrivals = np.asarray(arrival_ns, dtype=float)
        values = np.asarray(settled_values)
        window = self.cycle_ns + self.shadow_skew_ns
        late = arrivals > self.cycle_ns
        undetectable = arrivals > window
        stale = values ^ 1
        main = np.where(late, stale, values)
        shadow = np.where(undetectable, stale, values)
        return RazorSample(
            main=main,
            shadow=shadow,
            error=late & ~undetectable,
            undetectable=undetectable,
        )

    def undetectable(self, delays_ns: Number) -> np.ndarray:
        """Flags for arrivals beyond the shadow window.

        The architecture must keep this all-False by routing slow
        patterns through two-cycle execution.
        """
        window = self.cycle_ns + self.shadow_skew_ns
        return np.asarray(delays_ns, dtype=float) > window

    def error_count(self, delays_ns: Number) -> int:
        """Number of operations flagged in a stream."""
        return int(self.errors(delays_ns).sum())
