"""Minimal ASCII table formatting for experiment reports."""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    float_format: str = "%.4g",
) -> str:
    """Render a list of rows as an aligned ASCII table."""
    rendered = [
        [
            (float_format % cell) if isinstance(cell, float) else str(cell)
            for cell in row
        ]
        for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered:
        for k, cell in enumerate(row):
            widths[k] = max(widths[k], len(cell))
    lines = [
        "  ".join(h.ljust(widths[k]) for k, h in enumerate(headers)),
        "  ".join("-" * widths[k] for k in range(len(headers))),
    ]
    for row in rendered:
        lines.append(
            "  ".join(cell.rjust(widths[k]) for k, cell in enumerate(row))
        )
    return "\n".join(lines)
