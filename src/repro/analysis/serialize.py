"""The one serialization protocol shared by results and stores.

Result objects across the library (:class:`repro.core.stats
.ArchitectureRunResult`, :class:`repro.faults.CampaignResult`,
:class:`repro.faults.SiteReport`, experiment results) expose two
methods:

* ``summary() -> dict`` -- flat, scalar, JSON-ready key/value pairs
  (the numbers a benchmark log or a table row wants);
* ``to_dict() -> dict`` -- the full JSON-ready representation
  (everything a checkpoint store needs to round-trip the object).

:func:`to_json` / :func:`dump_json` funnel every producer -- the
campaign checkpoint store, ``render()`` headers and the benchmark JSON
artifacts -- through that single code path instead of three ad-hoc
formats.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO

from ..errors import SimulationError

try:  # pragma: no cover - typing backcompat
    from typing import Protocol, runtime_checkable

    @runtime_checkable
    class Summarizable(Protocol):
        """Anything exposing the ``summary()`` / ``to_dict()`` pair."""

        def summary(self) -> Dict[str, Any]: ...

        def to_dict(self) -> Dict[str, Any]: ...

except ImportError:  # pragma: no cover - Python < 3.8
    Summarizable = None  # type: ignore[assignment]


def _coerce(value: Any) -> Any:
    """Make numpy scalars / arrays JSON-friendly."""
    if hasattr(value, "item") and not hasattr(value, "__len__"):
        return value.item()
    if hasattr(value, "tolist"):
        return value.tolist()
    if isinstance(value, dict):
        return {key: _coerce(val) for key, val in value.items()}
    if isinstance(value, (list, tuple)):
        return [_coerce(val) for val in value]
    return value


def to_json(obj: Any, summary_only: bool = False, **json_kw: Any) -> str:
    """Serialize a :class:`Summarizable` (or plain dict) to JSON text."""
    if isinstance(obj, dict):
        data = obj
    elif summary_only and hasattr(obj, "summary"):
        data = obj.summary()
    elif hasattr(obj, "to_dict"):
        data = obj.to_dict()
    else:
        raise SimulationError(
            "%r is not serializable: expected a dict or an object with "
            "to_dict()/summary()" % (type(obj).__name__,)
        )
    json_kw.setdefault("sort_keys", True)
    return json.dumps(_coerce(data), **json_kw)


def dump_json(obj: Any, fp: IO[str], **kw: Any) -> None:
    """Write :func:`to_json` output (plus a trailing newline) to ``fp``."""
    fp.write(to_json(obj, **kw))
    fp.write("\n")
