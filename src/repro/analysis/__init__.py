"""Result presentation: histograms, ASCII tables and series."""

from .histogram import Histogram
from .serialize import Summarizable, dump_json, to_json
from .series import Series, improvement
from .tables import format_table

__all__ = [
    "Histogram",
    "Series",
    "Summarizable",
    "dump_json",
    "format_table",
    "improvement",
    "to_json",
]
