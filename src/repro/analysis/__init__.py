"""Result presentation: histograms, ASCII tables and series."""

from .histogram import Histogram
from .series import Series, improvement
from .tables import format_table

__all__ = ["Histogram", "Series", "format_table", "improvement"]
