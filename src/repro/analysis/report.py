"""Reproduction report generation.

Collects experiment results into one markdown document with the same
structure as EXPERIMENTS.md -- a paper-claims checklist with measured
values -- so a full reproduction run can emit its own record::

    python -m repro.experiments all --report my_run.md
"""

from __future__ import annotations

import dataclasses
import io
from typing import Dict, List, Optional

from ..errors import SimulationError


@dataclasses.dataclass
class ClaimCheck:
    """One paper claim with its measured verdict."""

    claim: str
    paper: str
    measured: str
    holds: bool


@dataclasses.dataclass
class ReproductionReport:
    """Accumulates experiment sections + claim checks into markdown."""

    title: str = "Reproduction report"
    sections: List = dataclasses.field(default_factory=list)
    claims: List[ClaimCheck] = dataclasses.field(default_factory=list)
    timings: Dict[str, float] = dataclasses.field(default_factory=dict)
    #: Optional generation stamp.  Off by default so that two runs of
    #: the same experiments render byte-identical reports (the suite
    #: scheduler's serial-vs-parallel identity check depends on it);
    #: set it explicitly (e.g. ``time.strftime("%Y-%m-%d %H:%M:%S")``)
    #: to record when a report was produced.
    generated_at: Optional[str] = None

    def add_section(self, name: str, body: str, elapsed: Optional[float] = None):
        """Attach one experiment's rendered output."""
        if not name:
            raise SimulationError("section needs a name")
        self.sections.append((name, body))
        if elapsed is not None:
            self.timings[name] = elapsed

    def add_claim(
        self, claim: str, paper: str, measured: str, holds: bool
    ) -> None:
        self.claims.append(ClaimCheck(claim, paper, measured, holds))

    @property
    def claims_held(self) -> int:
        return sum(1 for check in self.claims if check.holds)

    def render(self) -> str:
        out = io.StringIO()
        out.write("# %s\n\n" % self.title)
        if self.generated_at:
            out.write("Generated %s.\n\n" % self.generated_at)
        if self.claims:
            out.write("## Claim checklist (%d/%d hold)\n\n"
                      % (self.claims_held, len(self.claims)))
            out.write("| claim | paper | measured | holds |\n")
            out.write("|---|---|---|---|\n")
            for check in self.claims:
                out.write(
                    "| %s | %s | %s | %s |\n"
                    % (
                        check.claim,
                        check.paper,
                        check.measured,
                        "yes" if check.holds else "NO",
                    )
                )
            out.write("\n")
        for name, body in self.sections:
            out.write("## %s" % name)
            if name in self.timings:
                out.write("  (%.1f s)" % self.timings[name])
            out.write("\n\n```\n%s\n```\n\n" % body.rstrip())
        return out.getvalue()

    def write(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.render())
