"""Delay histograms (paper Figs. 5, 6, 9, 10)."""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

import numpy as np

from ..errors import SimulationError


@dataclasses.dataclass
class Histogram:
    """A binned distribution with paper-style summary helpers."""

    edges: np.ndarray
    counts: np.ndarray
    name: str = ""

    @classmethod
    def from_samples(
        cls,
        samples: Sequence[float],
        num_bins: int = 40,
        limits: Optional["tuple[float, float]"] = None,
        name: str = "",
    ) -> "Histogram":
        data = np.asarray(samples, dtype=float)
        if data.size == 0:
            raise SimulationError("cannot histogram an empty sample set")
        if limits is None:
            limits = (float(data.min()), float(data.max()) or 1.0)
        counts, edges = np.histogram(data, bins=num_bins, range=limits)
        return cls(edges=edges, counts=counts, name=name)

    @property
    def total(self) -> int:
        return int(self.counts.sum())

    def fraction_below(self, threshold: float) -> float:
        """Fraction of mass in bins entirely below ``threshold``.

        The paper quotes e.g. "more than 98% of the paths have a delay
        of <0.7 ns" -- this is that number (computed from the binned
        data, matching how one reads it off the figure).
        """
        if self.total == 0:
            return 0.0
        below = self.edges[1:] <= threshold
        return float(self.counts[below].sum()) / self.total

    def mode_bin(self) -> "tuple[float, float]":
        """The (lo, hi) edges of the most populated bin."""
        k = int(np.argmax(self.counts))
        return float(self.edges[k]), float(self.edges[k + 1])

    def mean(self) -> float:
        """Mean estimated from bin centres."""
        if self.total == 0:
            return 0.0
        centres = 0.5 * (self.edges[:-1] + self.edges[1:])
        return float((centres * self.counts).sum() / self.total)

    def render(self, width: int = 50) -> str:
        """ASCII bar rendering, one bin per line."""
        lines: List[str] = []
        if self.name:
            lines.append(self.name)
        peak = max(1, int(self.counts.max()))
        for k, count in enumerate(self.counts):
            bar = "#" * int(round(width * count / peak))
            lines.append(
                "%8.3f-%8.3f | %-*s %d"
                % (self.edges[k], self.edges[k + 1], width, bar, count)
            )
        return "\n".join(lines)
