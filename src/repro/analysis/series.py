"""Named (x, y) series and comparison helpers for the latency sweeps."""

from __future__ import annotations

import dataclasses
from typing import List, Sequence

import numpy as np

from ..errors import SimulationError


@dataclasses.dataclass(frozen=True)
class Series:
    """One curve of a paper figure: y over x, with a label."""

    name: str
    x: np.ndarray
    y: np.ndarray

    def __post_init__(self):
        if self.x.shape != self.y.shape:
            raise SimulationError("series x and y must be equally long")

    @classmethod
    def build(cls, name: str, x: Sequence[float], y: Sequence[float]):
        return cls(name, np.asarray(x, dtype=float), np.asarray(y, dtype=float))

    def best(self) -> "tuple[float, float]":
        """(x, y) of the series minimum (best cycle period)."""
        k = int(np.argmin(self.y))
        return float(self.x[k]), float(self.y[k])

    def at(self, x_value: float) -> float:
        """y at the sample nearest to ``x_value``."""
        k = int(np.argmin(np.abs(self.x - x_value)))
        return float(self.y[k])

    def crossings_below(self, level: float) -> List[float]:
        """x samples where the series dips below a constant level."""
        return [float(xv) for xv, yv in zip(self.x, self.y) if yv < level]


def improvement(variable: float, baseline: float) -> float:
    """Relative reduction: the paper's "X% less than" number."""
    if baseline <= 0:
        raise SimulationError("baseline must be positive")
    return 1.0 - variable / baseline
