"""Unified command-line entry point: ``python -m repro <command>``.

Usage::

    python -m repro experiments fig05        # paper figures / tables
    python -m repro faults run --width 8     # fault-injection campaigns
    python -m repro service serve            # reliability query service
    python -m repro mc --dies 10000 --jobs 8 # variation x aging Monte Carlo

Each command forwards the remaining arguments to the matching
sub-CLI (previously the separate ``python -m repro.experiments`` /
``repro.faults`` / ``repro.service`` entry points, which still work as
deprecation shims).  Commands import lazily, so ``python -m repro mc``
never pays for the service or faults stacks.

Exit status: the sub-CLI's; 2 for an unknown command (with a
did-you-mean suggestion).
"""

from __future__ import annotations

import difflib
import sys
from typing import List, Optional

#: command -> (module with ``main(argv) -> int``, one-line description).
COMMANDS = {
    "experiments": (
        "repro.experiments.__main__",
        "run / list the paper-reproduction experiments",
    ),
    "faults": (
        "repro.faults.__main__",
        "fault-injection campaigns and their benchmarks",
    ),
    "service": (
        "repro.service.__main__",
        "reliability query service (serve / query / direct / bench)",
    ),
    "mc": (
        "repro.montecarlo.cli",
        "correlated process-variation x aging Monte Carlo",
    ),
    "distrib": (
        "repro.distrib.__main__",
        "distributed campaign workers (worker / exec / ping / shutdown)",
    ),
    "sweep": (
        "repro.experiments.sweep_cli",
        "incremental netlist variant sweeps (cone-delta patch-replay)",
    ),
}


def _usage(stream) -> None:
    print("usage: python -m repro <command> [options]", file=stream)
    print("commands:", file=stream)
    for name in sorted(COMMANDS):
        print("  %-12s %s" % (name, COMMANDS[name][1]), file=stream)
    print(
        "run 'python -m repro <command> --help' for command options",
        file=stream,
    )


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        _usage(sys.stdout)
        return 0
    command, rest = argv[0], argv[1:]
    if command not in COMMANDS:
        close = difflib.get_close_matches(command, sorted(COMMANDS), n=1)
        hint = " -- did you mean %r?" % close[0] if close else ""
        print(
            "error: unknown command %r%s" % (command, hint),
            file=sys.stderr,
        )
        _usage(sys.stderr)
        return 2
    module_name = COMMANDS[command][0]
    import importlib

    module = importlib.import_module(module_name)
    return int(module.main(rest) or 0)


if __name__ == "__main__":
    sys.exit(main())
