"""Bounded exponential backoff and a typed retry driver.

Every concurrent corner of the library (shard locks, store compaction,
``clear()`` racing writers, the service's backend pool rebuilds) wants
the same loop: try, sleep a growing-but-capped delay, try again, give
up after a budget with a *typed* error.  This module is that loop,
written once.

The schedule is deterministic under a seeded RNG: jitter draws come
from a private :class:`random.Random`, so tests can pin ``seed`` and
assert the exact delay sequence -- no global ``random`` state is
touched and no flaky sleeps leak into CI.
"""

from __future__ import annotations

import dataclasses
import random
import time
from typing import Callable, Iterator, Optional, Tuple, Type

from ..errors import ConfigError, RetryExhaustedError


@dataclasses.dataclass(frozen=True)
class Backoff:
    """A bounded exponential backoff schedule.

    Delay ``i`` (0-based) is ``min(initial_s * factor**i, max_delay_s)``
    plus a uniform jitter in ``[0, jitter * delay]``.  The schedule
    stops after :attr:`max_attempts` delays or once the cumulative
    *planned* sleep would exceed :attr:`max_elapsed_s`, whichever comes
    first.

    Attributes:
        initial_s: First delay in seconds.
        factor: Multiplier between consecutive delays (>= 1).
        max_delay_s: Cap on any single delay.
        max_elapsed_s: Budget on the summed delays (None: unbounded).
        max_attempts: Number of delays the schedule yields (None:
            bounded only by ``max_elapsed_s``).
        jitter: Fractional jitter added to each delay (0 disables).
        seed: Jitter RNG seed; a fixed seed makes the schedule fully
            deterministic (the property the tests pin down).
    """

    initial_s: float = 0.005
    factor: float = 2.0
    max_delay_s: float = 0.25
    max_elapsed_s: Optional[float] = 5.0
    max_attempts: Optional[int] = None
    jitter: float = 0.25
    seed: Optional[int] = None

    def __post_init__(self):
        if self.initial_s <= 0:
            raise ConfigError("backoff initial_s must be positive")
        if self.factor < 1.0:
            raise ConfigError("backoff factor must be >= 1")
        if self.max_delay_s < self.initial_s:
            raise ConfigError("backoff max_delay_s < initial_s")
        if self.jitter < 0:
            raise ConfigError("backoff jitter must be >= 0")
        if self.max_attempts is None and self.max_elapsed_s is None:
            raise ConfigError(
                "backoff needs max_attempts or max_elapsed_s (or both)"
            )

    def delays(self) -> Iterator[float]:
        """Yield the delay sequence (seconds), jitter applied."""
        rng = random.Random(self.seed)
        delay = self.initial_s
        planned = 0.0
        attempt = 0
        while True:
            if (
                self.max_attempts is not None
                and attempt >= self.max_attempts
            ):
                return
            step = min(delay, self.max_delay_s)
            if self.jitter:
                step += rng.uniform(0.0, self.jitter * step)
            planned += step
            if (
                self.max_elapsed_s is not None
                and planned > self.max_elapsed_s
            ):
                return
            yield step
            delay = min(delay * self.factor, self.max_delay_s)
            attempt += 1


def retry_call(
    func: Callable,
    retry_on: "Tuple[Type[BaseException], ...]" = (OSError,),
    backoff: Optional[Backoff] = None,
    description: str = "operation",
    sleep: Callable[[float], None] = time.sleep,
):
    """Call ``func()`` until it succeeds or the backoff is exhausted.

    Args:
        func: Zero-argument callable; its return value is passed
            through on success.
        retry_on: Exception types that trigger a retry; anything else
            propagates immediately.
        backoff: Schedule (default: a fresh :class:`Backoff`).
        description: Human label used in the exhaustion message.
        sleep: Injection point for tests (defaults to ``time.sleep``).

    Raises:
        RetryExhaustedError: Every attempt failed; the last underlying
            exception is chained as ``__cause__``.
    """
    schedule = backoff or Backoff()
    start = time.monotonic()
    attempts = 0
    last: Optional[BaseException] = None
    for delay in schedule.delays():
        attempts += 1
        try:
            return func()
        except retry_on as exc:
            last = exc
            sleep(delay)
    # One final attempt after the last sleep (or the only attempt when
    # the schedule is empty).
    attempts += 1
    try:
        return func()
    except retry_on as exc:
        last = exc
    elapsed = time.monotonic() - start
    raise RetryExhaustedError(
        "%s failed after %d attempts (%.3f s): %s"
        % (description, attempts, elapsed, last),
        attempts=attempts,
        elapsed_s=elapsed,
    ) from last
