"""Advisory per-path file locking with timeout and backoff.

POSIX ``fcntl`` locks exclude *processes*, not threads -- two threads
of one process can both "hold" an ``flock``.  :class:`FileLock`
therefore layers two mechanisms behind one interface:

* an in-process registry of ``threading.Lock`` s keyed by the absolute
  lock path (threads of one process serialize here), and
* ``fcntl.flock(LOCK_EX | LOCK_NB)`` on the lock file (processes
  serialize here), polled through a bounded-exponential
  :class:`~repro.util.retry.Backoff` until the timeout.

Failure to acquire raises the typed
:class:`~repro.errors.LockTimeoutError` carrying the path, never a
bare ``OSError``.  On platforms without :mod:`fcntl` (Windows) the
lock degrades to thread-only exclusion -- every POSIX CI target gets
the full behavior.

The lock file is a zero-byte sibling (``<target>.lock`` by
convention); deleting a held lock file is harmless for the holder (the
``flock`` lives on the open descriptor) and the stores that use this
primitive only ever delete lock files together with the whole
directory they guard.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, Optional, Tuple

try:  # pragma: no cover - import guard exercised only off-POSIX
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None

from ..errors import LockTimeoutError
from .retry import Backoff

#: Process-wide registry: abs path -> (thread lock, refcount).
_REGISTRY: Dict[str, "Tuple[threading.Lock, int]"] = {}
_REGISTRY_GUARD = threading.Lock()


def _checkout(path: str) -> threading.Lock:
    with _REGISTRY_GUARD:
        lock, count = _REGISTRY.get(path, (None, 0))
        if lock is None:
            lock = threading.Lock()
        _REGISTRY[path] = (lock, count + 1)
    return lock


def _checkin(path: str) -> None:
    with _REGISTRY_GUARD:
        lock, count = _REGISTRY[path]
        if count <= 1:
            del _REGISTRY[path]
        else:
            _REGISTRY[path] = (lock, count - 1)


class FileLock:
    """Exclusive advisory lock on a path (thread- and process-safe).

    Usage::

        with FileLock(shard_path + ".lock", timeout_s=10.0):
            ...  # critical section

    Args:
        path: Lock file (created on demand, parent too).
        timeout_s: Acquisition budget across both layers.
        backoff: Poll schedule for the cross-process ``flock`` layer
            (default: a deterministic-but-jittered :class:`Backoff`
            capped well under ``timeout_s`` granularity).

    Raises:
        LockTimeoutError: The lock stayed contended past ``timeout_s``.
    """

    def __init__(
        self,
        path: str,
        timeout_s: float = 10.0,
        backoff: Optional[Backoff] = None,
    ):
        self.path = os.path.abspath(str(path))
        self.timeout_s = float(timeout_s)
        self._backoff = backoff or Backoff(
            initial_s=0.001,
            max_delay_s=0.05,
            max_elapsed_s=None,
            max_attempts=1_000_000,
        )
        self._fd: Optional[int] = None
        self._thread_lock: Optional[threading.Lock] = None

    @property
    def locked(self) -> bool:
        return self._thread_lock is not None

    # ------------------------------------------------------------------

    def acquire(self) -> "FileLock":
        if self.locked:
            raise LockTimeoutError(
                "lock %s is not reentrant" % self.path, path=self.path
            )
        deadline = time.monotonic() + self.timeout_s
        thread_lock = _checkout(self.path)
        acquired = thread_lock.acquire(timeout=self.timeout_s)
        if not acquired:
            _checkin(self.path)
            raise LockTimeoutError(
                "thread contention on %s exceeded %.2f s"
                % (self.path, self.timeout_s),
                path=self.path,
            )
        try:
            self._flock(deadline)
        except BaseException:
            thread_lock.release()
            _checkin(self.path)
            raise
        self._thread_lock = thread_lock
        return self

    def release(self) -> None:
        if not self.locked:
            return
        if self._fd is not None:
            try:
                if fcntl is not None:
                    fcntl.flock(self._fd, fcntl.LOCK_UN)
            finally:
                os.close(self._fd)
                self._fd = None
        self._thread_lock.release()
        self._thread_lock = None
        _checkin(self.path)

    def __enter__(self) -> "FileLock":
        return self.acquire()

    def __exit__(self, *exc) -> None:
        self.release()

    # ------------------------------------------------------------------

    def _flock(self, deadline: float) -> None:
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            return
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        fd = os.open(self.path, os.O_CREAT | os.O_RDWR, 0o644)
        attempts = 0
        start = time.monotonic()
        try:
            for delay in self._backoff.delays():
                attempts += 1
                try:
                    fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                    self._fd = fd
                    return
                except OSError:
                    now = time.monotonic()
                    if now + delay > deadline:
                        break
                    time.sleep(delay)
        except BaseException:
            os.close(fd)
            raise
        os.close(fd)
        raise LockTimeoutError(
            "could not flock %s within %.2f s (%d attempts)"
            % (self.path, self.timeout_s, attempts),
            path=self.path,
            attempts=attempts,
            elapsed_s=time.monotonic() - start,
        )
