"""Cross-cutting infrastructure helpers shared by every subsystem.

The packages above this one (stores, scheduler, service) all need the
same two primitives when they go concurrent:

* :mod:`repro.util.retry` -- a deterministic bounded-exponential
  backoff schedule and a ``retry_call`` driver with a typed
  :class:`~repro.errors.RetryExhaustedError`;
* :mod:`repro.util.locking` -- an advisory per-path
  :class:`~repro.util.locking.FileLock` (``fcntl`` across processes,
  a registry of ``threading.Lock`` s within one) acquired with a
  timeout through the same backoff schedule.
"""

from .locking import FileLock
from .retry import Backoff, retry_call

__all__ = ["Backoff", "FileLock", "retry_call"]
