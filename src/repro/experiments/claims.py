"""The headline claim checklist, evaluated programmatically.

``python -m repro.experiments claims`` runs a compact subset of the
evaluation and fills a :class:`~repro.analysis.report.ReproductionReport`
claim table -- the quickest way to see whether a modified library still
reproduces the paper.  Each claim mirrors a row of EXPERIMENTS.md.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..analysis.report import ReproductionReport
from .context import ExperimentContext, default_context
from . import (
    fig05_delay_distribution,
    fig07_aging_trend,
    fig13_14_latency_sweep,
    fig19_22_adaptive_errors,
    fig25_area,
    fig26_27_lifetime,
    tables_one_cycle_ratio,
)


@dataclasses.dataclass
class ClaimsResult:
    report: ReproductionReport

    @property
    def all_hold(self) -> bool:
        return self.report.claims_held == len(self.report.claims)

    def render(self) -> str:
        return self.report.render()


def run(
    context: Optional[ExperimentContext] = None,
    num_patterns: Optional[int] = None,
) -> ClaimsResult:
    ctx = context or default_context()
    report = ReproductionReport(title="Headline claim checklist")
    patterns = num_patterns or ctx.patterns(4000)

    # 1. Critical paths (Fig. 5).
    fig05 = fig05_delay_distribution.run(ctx, num_patterns=patterns)
    report.add_claim(
        "16x16 AM critical path",
        "1.32 ns",
        "%.3f ns" % fig05.critical_ns["am"],
        abs(fig05.critical_ns["am"] - 1.32) < 0.01,
    )
    report.add_claim(
        "bypassing critical paths exceed the AM's",
        "1.88/1.82 vs 1.32 ns",
        "%.2f/%.2f vs %.2f ns"
        % (
            fig05.critical_ns["column"],
            fig05.critical_ns["row"],
            fig05.critical_ns["am"],
        ),
        fig05.critical_ns["column"] > fig05.critical_ns["am"]
        and fig05.critical_ns["row"] > fig05.critical_ns["am"],
    )
    report.add_claim(
        "bulk of AM paths below 0.7 ns",
        ">98%",
        "%.1f%%" % (100 * fig05.fraction_below["am"]),
        fig05.fraction_below["am"] > 0.9,
    )

    # 2. Aging trend (Fig. 7).
    fig07 = fig07_aging_trend.run(ctx)
    report.add_claim(
        "7-year critical-path drift",
        "~13%",
        "%.1f%% / %.1f%%"
        % (100 * fig07.drift_at_7y["column"], 100 * fig07.drift_at_7y["row"]),
        all(abs(d - 0.13) < 0.02 for d in fig07.drift_at_7y.values()),
    )

    # 3. One-cycle ratios (Table I).
    tab1 = tables_one_cycle_ratio.run_table1(ctx, num_patterns=patterns)
    measured = tab1.ratios[("row", 7)]
    report.add_claim(
        "16x16 Skip-7 one-cycle ratio",
        "77.4% (paper VLRB)",
        "%.1f%%" % (100 * measured),
        abs(measured - 0.7728) < 0.03,
    )

    # 4. Variable latency beats fixed latency (Fig. 13).
    fig13 = fig13_14_latency_sweep.run_fig13(
        ctx, num_patterns=patterns, skips=(7,)
    )
    improvement = fig13.improvement_vs("column", 7, "flcb")
    report.add_claim(
        "A-VLCB-16 beats the FLCB",
        "-37.3% at its preferred point",
        "%.1f%%" % (-100 * improvement),
        improvement > 0.2,
    )
    report.add_claim(
        "A-VLCB-16 beats even the AM in its preferred range",
        "-10.7%",
        "%.1f%%" % (-100 * fig13.improvement_vs("column", 7, "am")),
        fig13.improvement_vs("column", 7, "am") > 0.0,
    )

    # 5. AHL reduces aged error counts (Fig. 19).
    fig19 = fig19_22_adaptive_errors.run_fig19(
        ctx, num_patterns=patterns
    )
    report.add_claim(
        "adaptive errors <= traditional (aged)",
        "everywhere",
        "max gap %d"
        % int(max(fig19.traditional.y - fig19.adaptive.y)),
        fig19.adaptive_never_worse(slack=2),
    )

    # 6. Area overhead shrinks with width (Fig. 25).
    fig25 = fig25_area.run(ctx)
    report.add_claim(
        "adaptive area overhead shrinks at 32x32",
        "22.9% -> 12.3%",
        "%.1f%% -> %.1f%%"
        % (
            100 * fig25.adaptive_overhead(16, "column"),
            100 * fig25.adaptive_overhead(32, "column"),
        ),
        fig25.adaptive_overhead(32, "column")
        < fig25.adaptive_overhead(16, "column"),
    )

    # 7. Lifetime latency (Fig. 26).
    fig26 = fig26_27_lifetime.run_fig26(
        ctx, num_patterns=patterns, years=(0.0, 7.0)
    )
    report.add_claim(
        "fixed designs degrade ~15%, adaptive stay flat",
        "15% vs ~3%",
        "%.1f%% vs %.1f%%"
        % (
            100 * fig26.latency_growth("flcb"),
            100 * fig26.latency_growth("a-vlcb"),
        ),
        fig26.latency_growth("flcb") > 0.1
        and fig26.latency_growth("a-vlcb") < 0.05,
    )
    report.add_claim(
        "AM burns the most power",
        "largest of the five",
        "%.3f mW vs FLCB %.3f mW"
        % (
            1e3 * fig26.power_w["am"].y[0],
            1e3 * fig26.power_w["flcb"].y[0],
        ),
        fig26.power_w["am"].y[0] > fig26.power_w["flcb"].y[0],
    )

    return ClaimsResult(report=report)
