"""Figs. 15-18: skip-number comparison of latency and error counts.

Figs. 15 (16x16) and 17 (32x32) overlay the average-latency curves of
the three skip numbers; Figs. 16 and 18 show the matching Razor error
counts per 10 000 operations.

Paper readings this reproduces:

* the smallest skip number (Skip-7 / Skip-15) has the *lowest* latency
  at long cycle periods (most one-cycle patterns, few violations) and
  the *highest* latency at short cycle periods (its aggressive one-cycle
  population racks up re-execution penalties);
* error counts fall monotonically as the cycle period grows, and the
  smaller the skip number the more errors at a given short period.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence, Tuple

from ..analysis.series import Series
from ..analysis.tables import format_table
from .context import ExperimentContext, default_context
from .fig13_14_latency_sweep import run as run_sweep


@dataclasses.dataclass
class SkipComparisonResult:
    width: int
    kind: str
    latency: Dict[int, Series]
    errors: Dict[int, Series]
    baselines: Dict[str, float]

    def crossover_ok(self) -> bool:
        """Smallest skip is best at the longest cycle and worst at the
        shortest cycle (the paper's qualitative claim)."""
        skips = sorted(self.latency)
        small, large = skips[0], skips[-1]
        at_long = {
            skip: self.latency[skip].y[-1] for skip in (small, large)
        }
        at_short = {
            skip: self.latency[skip].y[0] for skip in (small, large)
        }
        return (
            at_long[small] <= at_long[large]
            and at_short[small] >= at_short[large]
        )

    def errors_monotone(self, slack: float = 0.0) -> bool:
        """Error counts never grow with a longer cycle period.

        ``slack`` tolerates small upticks (fraction of the total ops):
        an *adaptive* design may flip its judging block at different
        windows for different clock periods, which wiggles the counts;
        traditional designs are strictly monotone.
        """
        allowance = slack * max(
            (series.y.max() for series in self.errors.values()), default=0
        )
        return all(
            all(a + allowance >= b for a, b in zip(series.y, series.y[1:]))
            for series in self.errors.values()
        )

    def render(self) -> str:
        rows = []
        for skip, series in sorted(self.latency.items()):
            err = self.errors[skip]
            rows.append(
                [
                    "skip%d" % skip,
                    series.y[0],
                    series.y[-1],
                    int(err.y[0]),
                    int(err.y[-1]),
                ]
            )
        return (
            format_table(
                [
                    "design",
                    "lat @shortT",
                    "lat @longT",
                    "err @shortT",
                    "err @longT",
                ],
                rows,
            )
            + "\ncrossover: %s  errors monotone: %s"
            % (self.crossover_ok(), self.errors_monotone())
        )


def run(
    context: Optional[ExperimentContext] = None,
    width: int = 16,
    kind: str = "column",
    num_patterns: Optional[int] = None,
    cycles: Optional[Sequence[float]] = None,
    adaptive: bool = True,
) -> SkipComparisonResult:
    ctx = context or default_context()
    sweep = run_sweep(
        ctx,
        width=width,
        num_patterns=num_patterns,
        cycles=cycles,
        kinds=(kind,),
        adaptive=adaptive,
    )
    latency = {
        skip: series
        for (k, skip), series in sweep.latency.items()
        if k == kind
    }
    errors = {
        skip: series
        for (k, skip), series in sweep.errors.items()
        if k == kind
    }
    return SkipComparisonResult(
        width=width,
        kind=kind,
        latency=latency,
        errors=errors,
        baselines=sweep.baselines,
    )


def run_fig15(context=None, kind: str = "column", **kw):
    return run(context, width=16, kind=kind, **kw)


def run_fig16(context=None, kind: str = "column", **kw):
    return run(context, width=16, kind=kind, **kw)


def run_fig17(context=None, kind: str = "column", **kw):
    return run(context, width=32, kind=kind, **kw)


def run_fig18(context=None, kind: str = "column", **kw):
    return run(context, width=32, kind=kind, **kw)
