"""Experiment registry and runner."""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..errors import ConfigError
from .context import ExperimentContext, default_context
from . import (
    claims,
    ext_baselines,
    ext_em,
    ext_faults,
    ext_vladder,
    ext_workloads,
    fig05_delay_distribution,
    fig06_zeros_vs_delay,
    fig07_aging_trend,
    fig09_10_zero_distribution,
    fig13_14_latency_sweep,
    fig15_18_skip_comparison,
    fig19_22_adaptive_errors,
    fig23_24_adaptive_latency,
    fig25_area,
    fig26_27_lifetime,
    tables_one_cycle_ratio,
)

#: Experiment id -> runner(context, **kw).  Ids match DESIGN.md section 4.
REGISTRY: Dict[str, Callable] = {
    "fig05": fig05_delay_distribution.run,
    "fig06": fig06_zeros_vs_delay.run,
    "fig07": fig07_aging_trend.run,
    "fig09_10": fig09_10_zero_distribution.run,
    "tab1": tables_one_cycle_ratio.run_table1,
    "tab2": tables_one_cycle_ratio.run_table2,
    "fig13": fig13_14_latency_sweep.run_fig13,
    "fig14": fig13_14_latency_sweep.run_fig14,
    "fig15": fig15_18_skip_comparison.run_fig15,
    "fig16": fig15_18_skip_comparison.run_fig16,
    "fig17": fig15_18_skip_comparison.run_fig17,
    "fig18": fig15_18_skip_comparison.run_fig18,
    "fig19": fig19_22_adaptive_errors.run_fig19,
    "fig20": fig19_22_adaptive_errors.run_fig20,
    "fig21": fig19_22_adaptive_errors.run_fig21,
    "fig22": fig19_22_adaptive_errors.run_fig22,
    "fig23": fig23_24_adaptive_latency.run_fig23,
    "fig24": fig23_24_adaptive_latency.run_fig24,
    "fig25": fig25_area.run,
    "fig26": fig26_27_lifetime.run_fig26,
    "fig27": fig26_27_lifetime.run_fig27,
    # Extensions beyond the paper's figures (Section V discussion,
    # related-work baselines, motivating workloads).
    "claims": claims.run,
    "ext_em": ext_em.run,
    "ext_baselines": ext_baselines.run,
    "ext_faults": ext_faults.run,
    "ext_vladder": ext_vladder.run,
    "ext_workloads": ext_workloads.run,
}


def get_experiment(name: str) -> Callable:
    """Look up an experiment runner by id."""
    try:
        return REGISTRY[name]
    except KeyError:
        raise ConfigError(
            "unknown experiment %r (known: %s)" % (name, sorted(REGISTRY))
        ) from None


def run_experiment(
    name: str,
    context: Optional[ExperimentContext] = None,
    **overrides,
):
    """Run one experiment and return its result object."""
    runner = get_experiment(name)
    return runner(context or default_context(), **overrides)
