"""Typed experiment registry and runner.

Every experiment is registered as an :class:`ExperimentSpec` -- a typed
record (id, title, runner, default overrides, tags) instead of a bare
``Dict[str, Callable]``.  The spec normalizes the historical
``run`` / ``run_fig13`` / ``run_table1`` naming split behind one
surface: callers always go through :func:`run_experiment` (or
``spec.run``), and :func:`list_experiments` filters by tag.

Override names are validated against the runner's signature *before*
the run starts, so a typo like ``num_pattern=500`` raises
:class:`~repro.errors.ConfigError` immediately (with a did-you-mean
suggestion) instead of failing minutes into a sweep -- same for unknown
experiment ids.
"""

from __future__ import annotations

import dataclasses
import difflib
import inspect
import os
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import ConfigError
from .context import ExperimentContext, default_context
from . import (
    claims,
    ext_baselines,
    ext_em,
    ext_faults,
    ext_mc,
    ext_vladder,
    ext_workloads,
    fig05_delay_distribution,
    fig06_zeros_vs_delay,
    fig07_aging_trend,
    fig09_10_zero_distribution,
    fig13_14_latency_sweep,
    fig15_18_skip_comparison,
    fig19_22_adaptive_errors,
    fig23_24_adaptive_latency,
    fig25_area,
    fig26_27_lifetime,
    tables_one_cycle_ratio,
)

#: Tags with registry-wide meaning: ``paper`` experiments reproduce a
#: figure/table of the source paper, ``extension`` ones go beyond it.
KNOWN_TAGS = ("paper", "extension", "faults", "aging", "workloads", "mc")


@dataclasses.dataclass(frozen=True)
class Resources:
    """Declared shared-state needs of one experiment.

    What used to be implicit in each experiment module -- which
    ``(width, kind)`` designs it characterizes, which netlists it merely
    builds, which operand-stream widths it draws -- becomes an explicit
    declaration on the spec, so the suite scheduler
    (:mod:`repro.experiments.scheduler`) can group the expensive shared
    characterization into a warm-up stage that runs each design exactly
    once, before independent experiments fan out over worker processes.

    Attributes:
        designs: ``(width, kind)`` pairs whose characterized
            :class:`~repro.aging.AgedCircuitFactory` the experiment
            touches (the expensive resource: implies the netlist too).
        netlists: ``(width, kind)`` pairs needing only the generated
            netlist (e.g. area accounting).
        streams: Operand-stream widths the experiment draws via
            ``context.stream`` (cheap; declared for completeness).
    """

    designs: Tuple[Tuple[int, str], ...] = ()
    netlists: Tuple[Tuple[int, str], ...] = ()
    streams: Tuple[int, ...] = ()

    def __post_init__(self):
        for width, kind in tuple(self.designs) + tuple(self.netlists):
            if not (isinstance(width, int) and width > 0):
                raise ConfigError(
                    "resource width must be a positive int, got %r"
                    % (width,)
                )
            if not isinstance(kind, str):
                raise ConfigError(
                    "resource kind must be a string, got %r" % (kind,)
                )

    def all_netlists(self) -> Tuple[Tuple[int, str], ...]:
        """Every netlist implied (designs' plus netlist-only), deduped
        in declaration order."""
        seen = []
        for pair in tuple(self.designs) + tuple(self.netlists):
            if pair not in seen:
                seen.append(pair)
        return tuple(seen)


def _designs(*pairs) -> Tuple[Tuple[int, str], ...]:
    return tuple((int(w), str(k)) for w, k in pairs)


def _all_kinds(width: int) -> Tuple[Tuple[int, str], ...]:
    return _designs(*((width, kind) for kind in ("am", "column", "row")))


@dataclasses.dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment.

    Attributes:
        id: Registry key (matches DESIGN.md section 4).
        title: One-line human description (shown by the CLI listing).
        runner: ``runner(context, **overrides) -> result``; the result
            object exposes ``render()`` (and usually the
            ``summary()``/``to_dict()`` protocol of
            :mod:`repro.analysis.serialize`).
        defaults: Overrides applied under the caller's (callers win).
        tags: Free-form labels; ``paper`` / ``extension`` at minimum.
    """

    id: str
    title: str
    runner: Callable
    defaults: Mapping = dataclasses.field(default_factory=dict)
    tags: Tuple[str, ...] = ()
    #: Declared shared-state needs (designs / netlists / streams) the
    #: suite scheduler warms up and shares across workers.
    resources: Resources = dataclasses.field(default_factory=Resources)

    def __post_init__(self):
        if not self.id:
            raise ConfigError("experiment id must be non-empty")
        if not callable(self.runner):
            raise ConfigError(
                "experiment %r runner must be callable" % self.id
            )

    def parameters(self) -> Dict[str, inspect.Parameter]:
        """The runner's override parameters (the context arg excluded)."""
        params = dict(inspect.signature(self.runner).parameters)
        params.pop("context", None)
        return params

    def accepts_any_keyword(self) -> bool:
        return any(
            p.kind is inspect.Parameter.VAR_KEYWORD
            for p in self.parameters().values()
        )

    def validate_overrides(self, overrides: Mapping) -> None:
        """Reject override names the runner does not accept.

        Without this, a misspelled override either exploded deep inside
        the runner (late ``TypeError``) or -- for runners taking
        ``**kwargs`` -- was silently swallowed.
        """
        if self.accepts_any_keyword():
            return
        params = self.parameters()
        known = {
            name
            for name, p in params.items()
            if p.kind
            in (
                inspect.Parameter.POSITIONAL_OR_KEYWORD,
                inspect.Parameter.KEYWORD_ONLY,
            )
        }
        for name in overrides:
            if name not in known:
                raise ConfigError(
                    "experiment %r does not accept override %r%s "
                    "(accepted: %s)"
                    % (
                        self.id,
                        name,
                        _suggestion(name, known),
                        ", ".join(sorted(known)) or "none",
                    )
                )

    def run(
        self,
        context: Optional[ExperimentContext] = None,
        **overrides,
    ):
        """Validate ``overrides``, merge :attr:`defaults` under them,
        and invoke the runner."""
        merged = dict(self.defaults)
        merged.update(overrides)
        self.validate_overrides(merged)
        return self.runner(context or default_context(), **merged)


def _suggestion(name: str, known) -> str:
    close = difflib.get_close_matches(name, sorted(known), n=1)
    return " -- did you mean %r?" % close[0] if close else ""


def _spec(
    id: str,
    title: str,
    runner: Callable,
    tags: Sequence[str],
    resources: Optional[Resources] = None,
    **defaults,
) -> ExperimentSpec:
    return ExperimentSpec(
        id=id,
        title=title,
        runner=runner,
        defaults=defaults,
        tags=tuple(tags),
        resources=resources or Resources(),
    )


#: Experiment id -> :class:`ExperimentSpec`.  Ids match DESIGN.md
#: section 4; iterate with :func:`list_experiments`.
REGISTRY: Dict[str, ExperimentSpec] = {
    spec.id: spec
    for spec in (
        _spec("fig05", "Per-pattern delay distributions (Fig. 5)",
              fig05_delay_distribution.run, ("paper",),
              Resources(designs=_all_kinds(16), streams=(16,))),
        _spec("fig06", "Zero count vs mean delay (Fig. 6)",
              fig06_zeros_vs_delay.run, ("paper",),
              Resources(designs=_designs((16, "column")), streams=(16,))),
        _spec("fig07", "BTI aging trend of the critical path (Fig. 7)",
              fig07_aging_trend.run, ("paper", "aging"),
              Resources(designs=_designs((16, "column"), (16, "row")))),
        _spec("fig09_10", "Operand zero-count distributions (Figs. 9-10)",
              fig09_10_zero_distribution.run, ("paper",),
              Resources(streams=(16,))),
        _spec("tab1", "One-cycle ratios, 16x16 (Table I)",
              tables_one_cycle_ratio.run_table1, ("paper",),
              Resources(streams=(16,))),
        _spec("tab2", "One-cycle ratios, 32x32 (Table II)",
              tables_one_cycle_ratio.run_table2, ("paper",),
              Resources(streams=(32,))),
        _spec("fig13", "Latency vs cycle period, 16x16 (Fig. 13)",
              fig13_14_latency_sweep.run_fig13, ("paper",),
              Resources(designs=_all_kinds(16), streams=(16,))),
        _spec("fig14", "Latency vs cycle period, 32x32 (Fig. 14)",
              fig13_14_latency_sweep.run_fig14, ("paper",),
              Resources(designs=_all_kinds(32), streams=(32,))),
        _spec("fig15", "Skip comparison: 16x16 latency (Fig. 15)",
              fig15_18_skip_comparison.run_fig15, ("paper",),
              Resources(designs=_all_kinds(16), streams=(16,))),
        _spec("fig16", "Skip comparison: 16x16 errors (Fig. 16)",
              fig15_18_skip_comparison.run_fig16, ("paper",),
              Resources(designs=_all_kinds(16), streams=(16,))),
        _spec("fig17", "Skip comparison: 32x32 latency (Fig. 17)",
              fig15_18_skip_comparison.run_fig17, ("paper",),
              Resources(designs=_all_kinds(32), streams=(32,))),
        _spec("fig18", "Skip comparison: 32x32 errors (Fig. 18)",
              fig15_18_skip_comparison.run_fig18, ("paper",),
              Resources(designs=_all_kinds(32), streams=(32,))),
        _spec("fig19", "Adaptive vs traditional errors, 16 CB (Fig. 19)",
              fig19_22_adaptive_errors.run_fig19, ("paper", "aging"),
              Resources(designs=_designs((16, "column")), streams=(16,))),
        _spec("fig20", "Adaptive vs traditional errors, 16 RB (Fig. 20)",
              fig19_22_adaptive_errors.run_fig20, ("paper", "aging"),
              Resources(designs=_designs((16, "row")), streams=(16,))),
        _spec("fig21", "Adaptive vs traditional errors, 32 CB (Fig. 21)",
              fig19_22_adaptive_errors.run_fig21, ("paper", "aging"),
              Resources(designs=_designs((32, "column")), streams=(32,))),
        _spec("fig22", "Adaptive vs traditional errors, 32 RB (Fig. 22)",
              fig19_22_adaptive_errors.run_fig22, ("paper", "aging"),
              Resources(designs=_designs((32, "row")), streams=(32,))),
        _spec("fig23", "Adaptive vs traditional latency, 16x16 (Fig. 23)",
              fig23_24_adaptive_latency.run_fig23, ("paper", "aging"),
              Resources(designs=_all_kinds(16), streams=(16,))),
        _spec("fig24", "Adaptive vs traditional latency, 32x32 (Fig. 24)",
              fig23_24_adaptive_latency.run_fig24, ("paper", "aging"),
              Resources(designs=_all_kinds(32), streams=(32,))),
        _spec("fig25", "Area accounting (Fig. 25)",
              fig25_area.run, ("paper",),
              Resources(netlists=_all_kinds(16) + _all_kinds(32))),
        _spec("fig26", "Lifetime latency under aging (Fig. 26)",
              fig26_27_lifetime.run_fig26, ("paper", "aging"),
              Resources(designs=_all_kinds(16), streams=(16,))),
        _spec("fig27", "Lifetime power under aging (Fig. 27)",
              fig26_27_lifetime.run_fig27, ("paper", "aging"),
              Resources(designs=_all_kinds(32), streams=(32,))),
        _spec("claims", "Headline-claim checklist over all figures",
              claims.run, ("paper",),
              Resources(designs=_all_kinds(16),
                        netlists=_all_kinds(32), streams=(16,))),
        # Extensions beyond the paper's figures (Section V discussion,
        # related-work baselines, motivating workloads).
        _spec("ext_em", "Electromigration-aware aging",
              ext_em.run, ("extension", "aging"),
              Resources(designs=_designs((16, "column"), (16, "row")),
                        streams=(16,))),
        _spec("ext_baselines", "Wallace/Dadda/Booth baselines",
              ext_baselines.run, ("extension",),
              Resources(designs=_all_kinds(16), streams=(16,))),
        _spec("ext_faults", "Fault-injection coverage + recovery",
              ext_faults.run, ("extension", "faults"),
              Resources(designs=_designs((8, "column")))),
        _spec("ext_vladder", "Aging-aware variable-latency adder",
              ext_vladder.run, ("extension",)),
        _spec("mc_yield",
              "Variation x aging Monte Carlo: yield/latency surfaces",
              ext_mc.run_yield, ("extension", "mc", "aging"),
              Resources(designs=_designs((8, "column"))),
              num_dies=200, years=(0.0, 5.0, 10.0)),
        _spec("mc_guardband",
              "Variation x aging Monte Carlo: Skip-n guard-band tuning",
              ext_mc.run_guardband, ("extension", "mc", "aging"),
              Resources(designs=_designs((8, "column"))),
              num_dies=200, years=(0.0, 5.0, 10.0)),
        _spec("ext_workloads", "DSP / Markov workload study",
              ext_workloads.run, ("extension", "workloads"),
              Resources(designs=_designs((16, "column")))),
    )
}


# Fault-injection specs for scheduler degradation tests.  Registered
# only when REPRO_TEST_EXPERIMENTS is set; the environment propagates
# to ProcessPoolExecutor workers, so the injected ids resolve there too.
if os.environ.get("REPRO_TEST_EXPERIMENTS"):
    from . import _testing

    _testing.register_test_experiments(REGISTRY)


def get_experiment(name: str) -> ExperimentSpec:
    """Look up an :class:`ExperimentSpec` by id.

    Unknown ids raise :class:`~repro.errors.ConfigError` with a
    nearest-name suggestion (``ext_fault`` -> "did you mean
    'ext_faults'?").
    """
    try:
        return REGISTRY[name]
    except KeyError:
        raise ConfigError(
            "unknown experiment %r%s (known: %s)"
            % (name, _suggestion(str(name), REGISTRY), sorted(REGISTRY))
        ) from None


def list_experiments(tag: Optional[str] = None) -> List[ExperimentSpec]:
    """All registered specs (id order), optionally filtered by tag."""
    specs = [REGISTRY[name] for name in sorted(REGISTRY)]
    if tag is None:
        return specs
    return [spec for spec in specs if tag in spec.tags]


def run_experiment(
    name: str,
    context: Optional[ExperimentContext] = None,
    **overrides,
):
    """Run one experiment and return its result object.

    ``overrides`` are validated against the runner's signature before
    anything executes; unknown names raise
    :class:`~repro.errors.ConfigError`.
    """
    return get_experiment(name).run(context, **overrides)
