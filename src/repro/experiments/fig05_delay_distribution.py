"""Fig. 5: path-delay distribution of the 16x16 AM, column-bypassing and
row-bypassing multipliers over 65 536 random patterns.

Paper readings this reproduces:

* maximum path delay: 1.32 ns (AM), 1.88 ns (CB), 1.82 ns (RB) -- in our
  calibration these are the static critical paths;
* more than 98% of AM paths are faster than 0.7 ns;
* more than 93% (CB) / 98% (RB) of paths are faster than 0.9 ns.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from ..analysis.histogram import Histogram
from ..analysis.tables import format_table
from ..timing.sta import StaticTiming
from .context import ExperimentContext, default_context

PAPER_PATTERNS = 65536
KINDS = ("am", "column", "row")

#: Paper-reported quantile statements: kind -> (threshold ns, fraction).
PAPER_FRACTIONS = {"am": (0.7, 0.98), "column": (0.9, 0.93), "row": (0.9, 0.98)}
PAPER_MAX_DELAY = {"am": 1.32, "column": 1.88, "row": 1.82}


@dataclasses.dataclass
class Fig05Result:
    histograms: Dict[str, Histogram]
    critical_ns: Dict[str, float]
    observed_max_ns: Dict[str, float]
    fraction_below: Dict[str, float]
    num_patterns: int

    def render(self) -> str:
        rows = []
        for kind in KINDS:
            threshold, paper_fraction = PAPER_FRACTIONS[kind]
            rows.append(
                [
                    kind,
                    self.critical_ns[kind],
                    PAPER_MAX_DELAY[kind],
                    self.observed_max_ns[kind],
                    "P(d<%.1f)" % threshold,
                    self.fraction_below[kind],
                    paper_fraction,
                ]
            )
        return format_table(
            [
                "multiplier",
                "crit ns",
                "paper max",
                "obs max",
                "quantile",
                "measured",
                "paper",
            ],
            rows,
        )


def run(
    context: Optional[ExperimentContext] = None,
    num_patterns: Optional[int] = None,
) -> Fig05Result:
    ctx = context or default_context()
    n = num_patterns or ctx.patterns(PAPER_PATTERNS)
    histograms = {}
    critical = {}
    observed = {}
    fractions = {}
    for kind in KINDS:
        result = ctx.stream_result(16, kind, years=0.0, num_patterns=n)
        histograms[kind] = Histogram.from_samples(
            result.delays, num_bins=40, name="16x16 %s" % kind
        )
        critical[kind] = StaticTiming(
            ctx.netlist(16, kind), ctx.technology
        ).critical_delay
        observed[kind] = result.max_delay
        threshold, _ = PAPER_FRACTIONS[kind]
        fractions[kind] = float((result.delays < threshold).mean())
    return Fig05Result(
        histograms=histograms,
        critical_ns=critical,
        observed_max_ns=observed,
        fraction_below=fractions,
        num_patterns=n,
    )
