"""Figs. 23 and 24: average latency of adaptive vs traditional variable
latency (plus the fixed baselines) on aged silicon, per skip number.

Fig. 23: 16x16, Skip-7/8/9 panels.  Fig. 24: 32x32, Skip-15/16/17.

Paper reading: the adaptive design's latency is equal to or better than
the traditional design's, with the biggest gap at short cycle periods
where the traditional design drowns in Razor penalties.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence, Tuple

from ..analysis.series import Series
from ..analysis.tables import format_table
from .context import ExperimentContext, default_context
from .fig13_14_latency_sweep import (
    CYCLE_GRIDS,
    PAPER_PATTERNS,
    SKIP_SETS,
)


@dataclasses.dataclass
class AdaptiveLatencyResult:
    width: int
    years: float
    #: (kind, skip, adaptive) -> latency Series.
    latency: Dict[Tuple[str, int, bool], Series]
    baselines: Dict[str, float]

    def gap_at_shortest(self, kind: str, skip: int) -> float:
        """Traditional minus adaptive latency at the shortest period."""
        trad = self.latency[(kind, skip, False)].y[0]
        adap = self.latency[(kind, skip, True)].y[0]
        return float(trad - adap)

    def render(self) -> str:
        rows = []
        for (kind, skip, adaptive), series in sorted(
            self.latency.items(), key=lambda kv: (kv[0][0], kv[0][1], kv[0][2])
        ):
            rows.append(
                [
                    "%s skip%d %s"
                    % (kind, skip, "A-VL" if adaptive else "T-VL"),
                    series.y[0],
                    series.best()[1],
                    series.y[-1],
                ]
            )
        return format_table(
            ["design", "lat @shortT", "best", "lat @longT"], rows
        )


def run(
    context: Optional[ExperimentContext] = None,
    width: int = 16,
    years: float = 7.0,
    skips: Optional[Sequence[int]] = None,
    cycles: Optional[Sequence[float]] = None,
    num_patterns: Optional[int] = None,
    kinds: Sequence[str] = ("column", "row"),
) -> AdaptiveLatencyResult:
    ctx = context or default_context()
    n = num_patterns or ctx.patterns(PAPER_PATTERNS)
    skips = tuple(skips or SKIP_SETS[width])
    cycles = tuple(cycles or CYCLE_GRIDS[width])
    md, mr = ctx.stream(width, n)

    baselines = {
        "am": ctx.fixed_design(width, "am").latency_ns(years),
        "flcb": ctx.fixed_design(width, "column").latency_ns(years),
        "flrb": ctx.fixed_design(width, "row").latency_ns(years),
    }
    latency: Dict[Tuple[str, int, bool], Series] = {}
    for kind in kinds:
        stream = ctx.stream_result(width, kind, years, n)
        for skip in skips:
            for adaptive in (False, True):
                values = []
                for cycle in cycles:
                    design = ctx.variable_design(
                        width, kind, skip, cycle, adaptive=adaptive
                    )
                    report = design.run_patterns(
                        md, mr, years=years, stream=stream
                    ).report
                    values.append(report.average_latency_ns)
                label = "%s-%s-%d skip%d" % (
                    "A" if adaptive else "T",
                    "VLCB" if kind == "column" else "VLRB",
                    width,
                    skip,
                )
                latency[(kind, skip, adaptive)] = Series.build(
                    label, cycles, values
                )
    return AdaptiveLatencyResult(
        width=width, years=years, latency=latency, baselines=baselines
    )


def run_fig23(context=None, **kw):
    return run(context, width=16, **kw)


def run_fig24(context=None, **kw):
    return run(context, width=32, **kw)
