"""Command-line experiment runner.

Usage::

    python -m repro.experiments                # list experiments
    python -m repro.experiments --tag paper    # list a tag's experiments
    python -m repro.experiments fig05          # run one
    python -m repro.experiments all            # run everything
    python -m repro.experiments all --scale .1 # quick pass (10% patterns)
"""

from __future__ import annotations

import argparse
import sys
import time

from .context import ExperimentContext
from .registry import list_experiments, run_experiment


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        help="experiment id (see DESIGN.md) or 'all'",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="pattern-count multiplier (1.0 = paper counts)",
    )
    parser.add_argument(
        "--report",
        metavar="PATH",
        help="also write a markdown reproduction report to PATH",
    )
    parser.add_argument(
        "--tag",
        help="restrict the listing / 'all' run to one tag "
        "(e.g. paper, extension)",
    )
    args = parser.parse_args(argv)

    if not args.experiment:
        print("available experiments:")
        for spec in list_experiments(tag=args.tag):
            print(
                "  %-14s %-45s [%s]"
                % (spec.id, spec.title, ", ".join(spec.tags))
            )
        return 0

    context = ExperimentContext(scale=args.scale)
    if args.experiment == "all":
        names = [spec.id for spec in list_experiments(tag=args.tag)]
    else:
        names = [args.experiment]
    report = None
    if args.report:
        from ..analysis.report import ReproductionReport

        report = ReproductionReport(
            title="Aging-aware multiplier reproduction (scale %.2f)"
            % args.scale
        )
    for name in names:
        start = time.time()
        result = run_experiment(name, context)
        elapsed = time.time() - start
        print("=" * 72)
        print("%s  (%.1f s)" % (name, elapsed))
        print("=" * 72)
        print(result.render())
        print()
        if report is not None:
            report.add_section(name, result.render(), elapsed)
    if report is not None:
        report.write(args.report)
        print("report written to %s" % args.report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
