"""Command-line experiment runner.

Usage::

    python -m repro.experiments                 # list experiments
    python -m repro.experiments --tag paper     # list a tag's experiments
    python -m repro.experiments fig05           # run one
    python -m repro.experiments fig05,fig07     # run a few
    python -m repro.experiments all             # run everything
    python -m repro.experiments all --scale .1  # quick pass (10% patterns)
    python -m repro.experiments all --jobs 4    # parallel suite run
    python -m repro.experiments all --store .repro-store   # persistent
    python -m repro.experiments all --store .repro-store --cold

``--jobs N`` fans the suite out over N worker processes after a warm-up
stage characterizes each shared design exactly once; rendered outputs
are byte-identical to the serial run.  ``--store PATH`` persists
netlists / stress profiles / stream results across invocations, so a
warm re-run touches almost no simulation; ``--cold`` clears the store
first.  Exit status: 0 on success, 1 when any experiment failed (the
rest still ran -- see the accounting table), 2 on configuration errors
(unknown experiment ids come with a did-you-mean suggestion).
"""

from __future__ import annotations

import argparse
import json
import sys

from ..errors import ReproError
from .scheduler import run_suite
from .registry import get_experiment, list_experiments
from .store import ArtifactStore


def _kernel_arg(text: str) -> str:
    from ..timing.engine import normalize_kernel

    try:
        return normalize_kernel(text)
    except ReproError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        help="experiment id (see DESIGN.md), comma-separated ids,"
        " or 'all'",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="pattern-count multiplier (1.0 = paper counts)",
    )
    parser.add_argument(
        "--report",
        metavar="PATH",
        help="also write a markdown reproduction report to PATH",
    )
    parser.add_argument(
        "--tag",
        help="restrict the listing / 'all' run to one tag "
        "(e.g. paper, extension)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes (default 1 = serial; >1 shares a store)",
    )
    parser.add_argument(
        "--store",
        metavar="PATH",
        help="persistent artifact store directory (created on demand);"
        " warm re-runs skip cached netlists/stress/streams",
    )
    parser.add_argument(
        "--cold",
        action="store_true",
        help="clear the --store directory before running",
    )
    parser.add_argument(
        "--dump-rendered",
        metavar="PATH",
        help="write a JSON map of experiment id -> rendered output"
        " (the byte-identity surface for serial-vs-parallel checks)",
    )
    parser.add_argument(
        "--kernel",
        type=_kernel_arg,
        default="soa",
        help="gate-kernel backend: soa, percell or numba (all"
        " bit-identical; numba falls back to soa when unavailable)",
    )
    parser.add_argument(
        "--pool",
        metavar="SPEC",
        default=None,
        help="worker pool: local:N, tcp:host:port,... or manifest:DIR"
        " (see 'python -m repro distrib')",
    )
    args = parser.parse_args(argv)

    if not args.experiment:
        print("available experiments:")
        for spec in list_experiments(tag=args.tag):
            print(
                "  %-14s %-45s [%s]"
                % (spec.id, spec.title, ", ".join(spec.tags))
            )
        return 0

    try:
        return _run(args)
    except ReproError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2


def _run(args) -> int:
    if args.experiment == "all":
        names = None
    else:
        names = [
            name for name in args.experiment.split(",") if name
        ]
        for name in names:
            get_experiment(name)  # fail fast with did-you-mean
    store = None
    if args.store:
        store = ArtifactStore(args.store)
        if args.cold:
            store.clear()

    def emit(entry):
        print("=" * 72)
        print("%s  (%.1f s)" % (entry.name, entry.elapsed))
        print("=" * 72)
        print(entry.rendered)
        print()

    pool = None
    if args.pool is not None:
        from ..distrib.pool import parse_pool_spec

        pool = parse_pool_spec(args.pool)
    try:
        suite = run_suite(
            names=names,
            tag=args.tag if args.experiment == "all" else None,
            scale=args.scale,
            jobs=args.jobs,
            store=store,
            on_result=emit,
            kernel=args.kernel,
            pool=pool,
        )
    finally:
        if pool is not None:
            pool.close()
    print(suite.render())

    if args.dump_rendered:
        with open(args.dump_rendered, "w", encoding="utf-8") as fp:
            json.dump(
                suite.rendered_by_name(), fp, indent=2, sort_keys=True
            )
        print("rendered outputs written to %s" % args.dump_rendered)
    if args.report:
        from ..analysis.report import ReproductionReport

        report = ReproductionReport(
            title="Aging-aware multiplier reproduction (scale %.2f)"
            % args.scale
        )
        for entry in suite.entries:
            report.add_section(entry.name, entry.rendered, entry.elapsed)
        report.add_section("suite accounting", suite.render())
        report.write(args.report)
        print("report written to %s" % args.report)
    return 1 if suite.failures() else 0


if __name__ == "__main__":
    print(
        "note: 'python -m repro.experiments' is deprecated; use"
        " 'python -m repro experiments' (same arguments)",
        file=sys.stderr,
    )
    sys.exit(main())
