"""Fig. 6: delay distribution of the 16x16 column-bypassing multiplier
under three fixed multiplicand zero counts (6, 8 and 10), 3 000 random
patterns each.

Paper reading: as the number of zeros in the multiplicand grows, the
distribution shifts left and the average delay falls -- the property the
AHL judging blocks exploit.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from ..analysis.histogram import Histogram
from ..analysis.tables import format_table
from ..workloads.generators import operands_with_zero_count, uniform_operands
from .context import ExperimentContext, default_context

PAPER_PATTERNS = 3000
ZERO_COUNTS = (6, 8, 10)


@dataclasses.dataclass
class Fig06Result:
    histograms: Dict[int, Histogram]
    mean_delay_ns: Dict[int, float]
    num_patterns: int

    @property
    def monotone_decreasing(self) -> bool:
        """The paper's claim: more zeros => lower average delay."""
        means = [self.mean_delay_ns[z] for z in sorted(self.mean_delay_ns)]
        return all(a > b for a, b in zip(means, means[1:]))

    def render(self) -> str:
        rows = [
            [z, self.mean_delay_ns[z], self.histograms[z].mode_bin()[0]]
            for z in sorted(self.mean_delay_ns)
        ]
        table = format_table(["zeros in md", "mean ns", "mode bin lo"], rows)
        return table + "\nleft-shift with more zeros: %s" % (
            self.monotone_decreasing,
        )


def run(
    context: Optional[ExperimentContext] = None,
    num_patterns: Optional[int] = None,
    width: int = 16,
) -> Fig06Result:
    ctx = context or default_context()
    n = num_patterns or ctx.patterns(PAPER_PATTERNS)
    circuit = ctx.factory(width, "column").circuit(0.0)
    histograms = {}
    means = {}
    for zeros in ZERO_COUNTS:
        md = operands_with_zero_count(width, n, zeros, seed=100 + zeros)
        _, mr = uniform_operands(width, n, seed=200 + zeros)
        result = circuit.run({"md": md, "mr": mr})
        histograms[zeros] = Histogram.from_samples(
            result.delays, num_bins=30, name="%d zeros" % zeros
        )
        means[zeros] = result.mean_delay
    return Fig06Result(histograms=histograms, mean_delay_ns=means, num_patterns=n)
