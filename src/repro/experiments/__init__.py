"""Experiment harness: one module per paper table/figure.

Every experiment is a function taking an :class:`ExperimentContext`
(which caches netlists, stress profiles and circuit simulations so a
full reproduction run stays tractable) and returning a plain result
dataclass with a ``render()`` method that prints the same rows/series
the paper reports.

Run everything from the command line::

    python -m repro.experiments            # list experiments
    python -m repro.experiments fig05      # one experiment
    python -m repro.experiments all        # the whole evaluation

See DESIGN.md section 4 for the experiment-to-figure index and
EXPERIMENTS.md for recorded paper-vs-measured values.
"""

from .context import ExperimentContext
from .registry import (
    REGISTRY,
    ExperimentSpec,
    Resources,
    get_experiment,
    list_experiments,
    run_experiment,
)
from .scheduler import SuiteEntry, SuitePlan, SuiteResult, plan_suite, run_suite
from .store import ArtifactStore
from .sweep import SweepSpec, Variant, VariantSweep, enumerate_variants

__all__ = [
    "ArtifactStore",
    "ExperimentContext",
    "ExperimentSpec",
    "REGISTRY",
    "Resources",
    "SuiteEntry",
    "SuitePlan",
    "SuiteResult",
    "SweepSpec",
    "Variant",
    "VariantSweep",
    "enumerate_variants",
    "get_experiment",
    "list_experiments",
    "plan_suite",
    "run_experiment",
    "run_suite",
]
