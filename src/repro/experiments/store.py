"""Persistent, fingerprint-keyed experiment artifact store.

Reproducing the paper means running ~30 experiments, and every fresh
process used to pay netlist construction, ``AgedCircuitFactory
.characterize`` and the circuit stream simulations again from zero.
The :class:`ArtifactStore` persists those three artifact classes on
disk so they are computed once -- across experiments, across worker
processes of a parallel suite run (:mod:`repro.experiments.scheduler`),
and across invocations:

* ``netlist`` -- generated :class:`~repro.nets.netlist.Netlist` objects,
  keyed by their builder arguments (pickled; the netlist is this
  library's own internal format);
* ``stress``  -- characterized :class:`~repro.aging.stress
  .StressProfile` s (the expensive ``characterize`` output), keyed by
  the netlist's structural hash x technology x characterization
  workload;
* ``stream``  -- :class:`~repro.timing.engine.StreamResult` payloads,
  keyed by netlist hash x technology x characterization x aging point x
  stimulus.

Every entry is a single file written atomically (tmp + ``os.replace``)
with its full key embedded; on read the embedded key must match the
requested key exactly, so a stale, corrupt or truncated file is ignored
and rebuilt, never trusted -- the fingerprint-guard idiom proven in
:mod:`repro.faults.store` and :mod:`repro.timing.value_cache`.

The manifest recording every write is **sharded by digest prefix** into
:data:`NUM_MANIFEST_SHARDS` JSONL files, each guarded by an advisory
:class:`~repro.util.locking.FileLock` (``fcntl`` + bounded backoff, see
:mod:`repro.util.retry`), so many concurrent writer processes append
without interleaving and :meth:`ArtifactStore.compact` can never drop a
record a writer appended mid-compaction.  Every shard is torn-line
tolerant (a killed writer loses at most its last line) and an entirely
unreadable shard is treated as empty -- counted in
:attr:`ArtifactStore.corruption`, never raised.  A legacy unsharded
``manifest.jsonl`` is still read, and folded into the shards by the
next ``compact()``.

Concurrent writers are safe by construction: two processes building the
same artifact race to ``os.replace`` the same content-addressed path,
and either result is valid for every reader.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import shutil
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..config import SimulationConfig, Technology
from ..errors import ConfigError
from ..nets.netlist import Netlist
from ..timing.engine import StreamResult
from ..util.locking import FileLock
from ..util.retry import Backoff, retry_call

#: Format tag embedded in every artifact and manifest header.
FORMAT = "repro-artifact"
#: Current artifact schema version; bump to invalidate every store.
VERSION = 1
#: Artifact kinds the store accepts.  ``population`` holds the compact
#: per-(die, year) reductions of a priced Monte Carlo population
#: (:class:`repro.montecarlo.population.PopulationReductions` payload,
#: fingerprint-keyed on the sampler config); ``surface`` holds the
#: derived analytics dict (:class:`repro.montecarlo.analytics
#: .MonteCarloResult`); ``delta`` holds per-variant sweep records
#: (:mod:`repro.experiments.sweep` evaluation dicts, fingerprint-keyed
#: on the parent base x mutation site), so re-running a variant sweep
#: only evaluates mutants the store has not seen.
KINDS = ("netlist", "stress", "stream", "population", "surface", "delta")
#: Legacy (pre-sharding) manifest file name, still read if present.
MANIFEST = "manifest.jsonl"
#: Manifest shard count; shard = first hex nibble of the digest.
NUM_MANIFEST_SHARDS = 16

_EXT = {
    "netlist": ".pkl",
    "stress": ".npz",
    "stream": ".npz",
    "population": ".npz",
    "surface": ".pkl",
    "delta": ".pkl",
}


def _canonical(key: Dict) -> str:
    """Canonical JSON of a key dict (one JSON round-trip semantics)."""
    return json.dumps(key, sort_keys=True, separators=(",", ":"))


def artifact_digest(kind: str, key: Dict) -> str:
    """sha256 fingerprint of ``(format, version, kind, key)``."""
    if kind not in KINDS:
        raise ConfigError(
            "unknown artifact kind %r (known: %s)" % (kind, KINDS)
        )
    h = hashlib.sha256()
    h.update(
        _canonical(
            {
                "format": FORMAT,
                "version": VERSION,
                "kind": kind,
                "key": key,
            }
        ).encode()
    )
    return h.hexdigest()


def technology_fingerprint(technology: Technology) -> str:
    """Stable sha256 of every technology constant."""
    h = hashlib.sha256()
    h.update(_canonical(dataclasses.asdict(technology)).encode())
    return h.hexdigest()


def config_fingerprint(config: SimulationConfig) -> str:
    """Stable sha256 of the architecture-simulation configuration."""
    h = hashlib.sha256()
    h.update(_canonical(dataclasses.asdict(config)).encode())
    return h.hexdigest()


# ----------------------------------------------------------------------
# Per-kind (de)serialization
# ----------------------------------------------------------------------


def _save_pickle(path: str, key: Dict, payload) -> None:
    tmp = path + ".tmp"
    with open(tmp, "wb") as fp:
        pickle.dump(
            {
                "format": FORMAT,
                "version": VERSION,
                "key": _canonical(key),
                "payload": payload,
            },
            fp,
            protocol=pickle.HIGHEST_PROTOCOL,
        )
    os.replace(tmp, path)


def _load_pickle(path: str, key: Dict):
    with open(path, "rb") as fp:
        record = pickle.load(fp)
    if (
        not isinstance(record, dict)
        or record.get("format") != FORMAT
        or record.get("version") != VERSION
        or record.get("key") != _canonical(key)
    ):
        return None
    return record["payload"]


def _save_npz(path: str, key: Dict, arrays: Dict, meta: Dict) -> None:
    meta = dict(meta)
    meta.update(
        {"format": FORMAT, "version": VERSION, "key": _canonical(key)}
    )
    payload = {
        "meta": np.frombuffer(
            json.dumps(meta).encode(), dtype=np.uint8
        ).copy()
    }
    payload.update(arrays)
    tmp = path + ".tmp"
    with open(tmp, "wb") as fp:
        np.savez(fp, **payload)
    os.replace(tmp, path)


def _load_npz(path: str, key: Dict):
    """Returns ``(meta, arrays)`` or None on any mismatch/corruption."""
    with np.load(path) as data:
        meta = json.loads(bytes(data["meta"]).decode())
        if (
            meta.get("format") != FORMAT
            or meta.get("version") != VERSION
            or meta.get("key") != _canonical(key)
        ):
            return None
        arrays = {name: data[name] for name in data.files if name != "meta"}
    return meta, arrays


def _stress_arrays(stress) -> Dict:
    return {
        "pmos_stress": stress.pmos_stress,
        "nmos_stress": stress.nmos_stress,
    }


def _stress_payload(meta: Dict, arrays: Dict):
    from ..aging.stress import StressProfile

    return StressProfile(
        netlist_name=meta["netlist_name"],
        pmos_stress=arrays["pmos_stress"],
        nmos_stress=arrays["nmos_stress"],
    )


def _population_payload(meta: Dict, arrays: Dict) -> Dict:
    """Reassemble a Monte Carlo population's ``{"meta", "arrays"}``
    payload (see :class:`repro.montecarlo.population
    .PopulationReductions`)."""
    return {
        "meta": meta["population"],
        "arrays": {
            name[len("pop__"):]: arr
            for name, arr in arrays.items()
            if name.startswith("pop__")
        },
    }


def _stream_arrays(result: StreamResult) -> "tuple[Dict, Dict]":
    meta = {
        "num_patterns": result.num_patterns,
        "outputs": sorted(result.outputs),
        "bit_arrivals": sorted(result.bit_arrivals or {}),
        "has_stats": result.signal_prob is not None,
    }
    arrays = {
        "delays": result.delays,
        "switched_caps": result.switched_caps,
    }
    for name, arr in result.outputs.items():
        arrays["out__" + name] = arr
    for name, arr in (result.bit_arrivals or {}).items():
        arrays["arr__" + name] = arr
    if result.signal_prob is not None:
        arrays["signal_prob"] = result.signal_prob
        arrays["toggle_counts"] = result.toggle_counts
    return meta, arrays


def _stream_payload(meta: Dict, arrays: Dict) -> StreamResult:
    bit_arrivals = {
        name: arrays["arr__" + name] for name in meta["bit_arrivals"]
    }
    return StreamResult(
        outputs={
            name: arrays["out__" + name] for name in meta["outputs"]
        },
        delays=arrays["delays"],
        switched_caps=arrays["switched_caps"],
        num_patterns=int(meta["num_patterns"]),
        bit_arrivals=bit_arrivals or None,
        signal_prob=arrays["signal_prob"] if meta["has_stats"] else None,
        toggle_counts=(
            arrays["toggle_counts"] if meta["has_stats"] else None
        ),
    )


# ----------------------------------------------------------------------


class ArtifactStore:
    """On-disk artifact cache shared by contexts, workers and runs.

    Args:
        directory: Store root (created on first write).  Value planes
            cached by store-backed factories live under
            ``<directory>/planes``; fault-campaign checkpoints under
            ``<directory>/campaigns``.

    Attributes:
        counters: ``kind -> {"hits": n, "misses": n, "writes": n}``,
            cumulative for this process (a parallel suite run merges the
            workers' counters into the parent's accounting).
        corruption: Robustness accounting -- ``{"artifacts": n,
            "manifest_lines": n, "manifest_shards": n}``.  Torn or
            corrupt state is always degraded to a cache miss and
            rebuilt; these counters are how the degradation stays
            observable instead of silent.
    """

    #: Acquisition budget for every internal shard lock.
    LOCK_TIMEOUT_S = 10.0

    def __init__(self, directory: str, lock_timeout_s: Optional[float] = None):
        if not directory:
            raise ConfigError("artifact store needs a directory")
        self.directory = str(directory)
        self.lock_timeout_s = (
            self.LOCK_TIMEOUT_S if lock_timeout_s is None else lock_timeout_s
        )
        self.counters: Dict[str, Dict[str, int]] = {
            kind: {"hits": 0, "misses": 0, "writes": 0} for kind in KINDS
        }
        self.corruption: Dict[str, int] = {
            "artifacts": 0,
            "manifest_lines": 0,
            "manifest_shards": 0,
        }

    # -- paths ----------------------------------------------------------

    def _path(self, kind: str, key: Dict) -> str:
        return self._digest_path(kind, artifact_digest(kind, key))

    def _digest_path(self, kind: str, digest: str) -> str:
        return os.path.join(
            self.directory, "%s-%s%s" % (kind, digest[:32], _EXT[kind])
        )

    def planes_dir(self) -> str:
        """Directory for :class:`~repro.timing.value_cache
        .ValuePlaneCache` entries of store-backed factories."""
        return os.path.join(self.directory, "planes")

    def campaigns_dir(self) -> str:
        """Directory for fault-campaign JSONL checkpoints."""
        path = os.path.join(self.directory, "campaigns")
        os.makedirs(path, exist_ok=True)
        return path

    def _ensure_dir(self) -> None:
        os.makedirs(self.directory, exist_ok=True)

    # -- generic load/save ---------------------------------------------

    def load(self, kind: str, key: Dict):
        """The stored artifact for ``key``, or None (miss counts).

        A file that exists but fails validation (torn write, foreign
        bytes, stale embedded key) degrades to a miss *and* increments
        ``corruption["artifacts"]`` -- corruption is never an exception
        here, only an observable rebuild.
        """
        path = self._path(kind, key)
        if os.path.exists(path):
            try:
                if kind in ("netlist", "surface", "delta"):
                    payload = _load_pickle(path, key)
                else:
                    loaded = _load_npz(path, key)
                    if loaded is None:
                        payload = None
                    elif kind == "stress":
                        payload = _stress_payload(*loaded)
                    elif kind == "population":
                        payload = _population_payload(*loaded)
                    else:
                        payload = _stream_payload(*loaded)
            except Exception:
                payload = None  # corrupt/foreign file: treat as miss
            if payload is not None:
                self.counters[kind]["hits"] += 1
                return payload
            self.corruption["artifacts"] += 1
        self.counters[kind]["misses"] += 1
        return None

    def save(self, kind: str, key: Dict, payload) -> None:
        """Atomically persist one artifact and log it to the manifest."""
        if kind not in KINDS:
            raise ConfigError(
                "unknown artifact kind %r (known: %s)" % (kind, KINDS)
            )
        self._ensure_dir()
        digest = artifact_digest(kind, key)
        path = self._digest_path(kind, digest)
        if kind == "netlist":
            if not isinstance(payload, Netlist):
                raise ConfigError("netlist artifact must be a Netlist")
            _save_pickle(path, key, payload)
        elif kind == "surface":
            if not isinstance(payload, dict):
                raise ConfigError("surface artifact must be a dict")
            _save_pickle(path, key, payload)
        elif kind == "delta":
            if not isinstance(payload, dict):
                raise ConfigError("delta artifact must be a dict")
            _save_pickle(path, key, payload)
        elif kind == "stress":
            _save_npz(
                path,
                key,
                _stress_arrays(payload),
                {"netlist_name": payload.netlist_name},
            )
        elif kind == "population":
            if (
                not isinstance(payload, dict)
                or "meta" not in payload
                or "arrays" not in payload
            ):
                raise ConfigError(
                    'population artifact must be a {"meta", "arrays"} dict'
                )
            _save_npz(
                path,
                key,
                {
                    "pop__" + name: np.asarray(arr)
                    for name, arr in payload["arrays"].items()
                },
                {"population": payload["meta"]},
            )
        else:
            meta, arrays = _stream_arrays(payload)
            _save_npz(path, key, arrays, meta)
        self.counters[kind]["writes"] += 1
        self._log(
            {
                "kind": kind,
                "key": key,
                "file": os.path.basename(path),
            },
            digest,
        )

    def get_or_build(self, kind: str, key: Dict, build):
        """Load ``key`` or build-and-persist it (built at most once per
        store; concurrent builders race benignly on the atomic rename)."""
        payload = self.load(kind, key)
        if payload is None:
            payload = build()
            self.save(kind, key, payload)
        return payload

    # -- manifest -------------------------------------------------------

    def _manifest_path(self) -> str:
        """The legacy unsharded manifest (read-only compatibility)."""
        return os.path.join(self.directory, MANIFEST)

    def _shard_path(self, shard: int) -> str:
        return os.path.join(self.directory, "manifest-%x.jsonl" % shard)

    def _shard_lock(self, shard: int) -> FileLock:
        return FileLock(
            self._shard_path(shard) + ".lock",
            timeout_s=self.lock_timeout_s,
        )

    @staticmethod
    def _shard_of_digest(digest: str) -> int:
        return int(digest[0], 16) % NUM_MANIFEST_SHARDS

    @staticmethod
    def _shard_of_file(filename: str) -> int:
        """Shard owning a manifest record, recovered from its artifact
        file name (``<kind>-<digest32><ext>``)."""
        _, _, digest = filename.partition("-")
        try:
            return int(digest[0], 16) % NUM_MANIFEST_SHARDS
        except (IndexError, ValueError):
            return 0

    def shard_paths(self) -> List[str]:
        """Existing manifest shard files (diagnostics and tests)."""
        return [
            self._shard_path(shard)
            for shard in range(NUM_MANIFEST_SHARDS)
            if os.path.exists(self._shard_path(shard))
        ]

    def _log(self, record: Dict, digest: str) -> None:
        self._ensure_dir()
        shard = self._shard_of_digest(digest)
        line = _canonical(record) + "\n"
        with self._shard_lock(shard):
            with open(
                self._shard_path(shard), "a", encoding="utf-8"
            ) as fp:
                fp.write(line)

    def _read_jsonl(self, path: str) -> List[Dict]:
        """One manifest file's complete records.  Torn/corrupt lines
        are skipped and counted; a wholly unreadable file is an empty
        shard (counted), never an exception."""
        if not os.path.exists(path):
            return []
        try:
            with open(path, "r", encoding="utf-8") as fp:
                lines = [line for line in fp.read().split("\n") if line]
        except (OSError, UnicodeError):
            self.corruption["manifest_shards"] += 1
            return []
        records = []
        for number, line in enumerate(lines):
            try:
                record = json.loads(line)
            except ValueError:
                self.corruption["manifest_lines"] += 1
                if number == len(lines) - 1:
                    break  # torn trailing write of a killed process
                continue  # interleaved writers: skip, keep the rest
            if isinstance(record, dict):
                records.append(record)
            else:
                self.corruption["manifest_lines"] += 1
        return records

    def manifest(self) -> List[Dict]:
        """All complete manifest records over every shard (plus a
        legacy unsharded manifest when present)."""
        records = self._read_jsonl(self._manifest_path())
        for shard in range(NUM_MANIFEST_SHARDS):
            records.extend(self._read_jsonl(self._shard_path(shard)))
        return records

    def _rewrite_shard(self, shard: int, records: List[Dict]) -> None:
        """Atomically replace one shard's contents (caller holds the
        shard lock)."""
        self._ensure_dir()
        path = self._shard_path(shard)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fp:
            for record in records:
                fp.write(_canonical(record) + "\n")
        os.replace(tmp, path)

    def _fold_legacy_manifest(self) -> None:
        """Distribute a pre-sharding ``manifest.jsonl`` into the shards
        (idempotent; the legacy file is removed afterwards)."""
        legacy_path = self._manifest_path()
        if not os.path.exists(legacy_path):
            return
        legacy = self._read_jsonl(legacy_path)
        by_shard: Dict[int, List[Dict]] = {}
        for record in legacy:
            shard = self._shard_of_file(record.get("file", ""))
            by_shard.setdefault(shard, []).append(record)
        for shard, records in sorted(by_shard.items()):
            with self._shard_lock(shard):
                with open(
                    self._shard_path(shard), "a", encoding="utf-8"
                ) as fp:
                    for record in records:
                        fp.write(_canonical(record) + "\n")
        try:
            os.remove(legacy_path)
        except OSError:
            pass

    def compact(self) -> int:
        """Rewrite every manifest shard from its valid lines,
        de-duplicated by file name (last record wins), dropping records
        whose artifact no longer exists.  Returns the number of
        surviving records.

        Each shard is read and rewritten while holding that shard's
        lock -- the same lock :meth:`save` appends under -- so a record
        appended by a concurrent writer can never fall between
        compaction's read and its rewrite (the PR-5 store lost exactly
        that race).  At most one shard lock is held at a time.
        """
        self._fold_legacy_manifest()
        total = 0
        for shard in range(NUM_MANIFEST_SHARDS):
            with self._shard_lock(shard):
                records = self._read_jsonl(self._shard_path(shard))
                if not records and not os.path.exists(
                    self._shard_path(shard)
                ):
                    continue
                by_file: Dict[str, Dict] = {}
                for record in records:
                    by_file[record.get("file", "")] = record
                survivors = [
                    record
                    for record in by_file.values()
                    if os.path.exists(
                        os.path.join(
                            self.directory, record.get("file", "")
                        )
                    )
                ]
                self._rewrite_shard(shard, survivors)
                total += len(survivors)
        return total

    # -- maintenance ----------------------------------------------------

    def clear(self) -> None:
        """Delete every artifact, plane and checkpoint (cold start).

        Safe to call while other processes write: deletion races
        (a writer re-creating files mid-``rmtree``) are retried with
        bounded backoff instead of surfacing ``OSError``.  Anything a
        concurrent writer creates *after* the final sweep survives --
        clear removes the state present when it ran, it does not fence
        future writers.
        """

        def _sweep() -> None:
            if os.path.isdir(self.directory):
                shutil.rmtree(self.directory)

        retry_call(
            _sweep,
            retry_on=(OSError,),
            backoff=Backoff(
                initial_s=0.01, max_delay_s=0.2, max_elapsed_s=5.0
            ),
            description="clearing store %s" % self.directory,
        )
        for kind in self.counters:
            self.counters[kind] = {"hits": 0, "misses": 0, "writes": 0}
        for name in self.corruption:
            self.corruption[name] = 0

    def merge_counters(self, counters: Dict[str, Dict[str, int]]) -> None:
        """Fold another process's counter snapshot into this one."""
        for kind, stats in counters.items():
            mine = self.counters.setdefault(
                kind, {"hits": 0, "misses": 0, "writes": 0}
            )
            for name, value in stats.items():
                mine[name] = mine.get(name, 0) + int(value)

    def counter_totals(self) -> Dict[str, int]:
        """Summed ``{"hits": n, "misses": n, "writes": n}`` over kinds."""
        totals = {"hits": 0, "misses": 0, "writes": 0}
        for stats in self.counters.values():
            for name in totals:
                totals[name] += stats.get(name, 0)
        return totals

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        """A deep copy of :attr:`counters` (for before/after deltas)."""
        return {kind: dict(stats) for kind, stats in self.counters.items()}


def counter_delta(
    before: Dict[str, Dict[str, int]],
    after: Dict[str, Dict[str, int]],
) -> Dict[str, Dict[str, int]]:
    """Per-kind counter difference ``after - before``."""
    delta: Dict[str, Dict[str, int]] = {}
    for kind, stats in after.items():
        base = before.get(kind, {})
        diff = {
            name: value - base.get(name, 0)
            for name, value in stats.items()
        }
        if any(diff.values()):
            delta[kind] = diff
    return delta


def delta_totals(delta: Dict[str, Dict[str, int]]) -> Dict[str, int]:
    """Summed hits/misses/writes over a :func:`counter_delta`."""
    totals = {"hits": 0, "misses": 0, "writes": 0}
    for stats in delta.values():
        for name in totals:
            totals[name] += stats.get(name, 0)
    return totals
