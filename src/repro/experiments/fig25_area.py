"""Fig. 25: area (transistor counts) of AM, FLCB, A-VLCB, FLRB and
A-VLRB at 16x16 and 32x32, normalized to the AM.

Paper readings this reproduces:

* the adaptive designs cost extra area for the AHL and Razor flip-flops
  (paper: +22.9% / +23.5% over FLCB / FLRB at 16x16);
* the *relative* overhead shrinks at 32x32 (paper: +12.3% / +5.7%)
  because the AHL and Razor bank grow much slower than the array.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

from ..analysis.tables import format_table
from ..core.ahl import ahl_netlist
from ..nets.area import AreaReport, area_report
from .context import ExperimentContext, default_context

PAPER_OVERHEAD = {  # (width, kind) -> adaptive-vs-fixed area overhead
    (16, "column"): 0.229,
    (16, "row"): 0.235,
    (32, "column"): 0.123,
    (32, "row"): 0.057,
}


@dataclasses.dataclass
class AreaResult:
    #: (width, design) -> report;  design in {am, flcb, a-vlcb, flrb, a-vlrb}.
    reports: Dict[Tuple[int, str], AreaReport]

    def normalized(self, width: int) -> Dict[str, float]:
        baseline = self.reports[(width, "am")]
        return {
            design: report.normalized_to(baseline)
            for (w, design), report in self.reports.items()
            if w == width
        }

    def adaptive_overhead(self, width: int, kind: str) -> float:
        """Adaptive-vs-fixed area overhead ratio (the paper's metric)."""
        fixed = "flcb" if kind == "column" else "flrb"
        adaptive = "a-vlcb" if kind == "column" else "a-vlrb"
        return (
            self.reports[(width, adaptive)].total
            / self.reports[(width, fixed)].total
            - 1.0
        )

    def render(self) -> str:
        rows = []
        widths = sorted({w for w, _ in self.reports})
        for width in widths:
            norm = self.normalized(width)
            for design in ("am", "flcb", "a-vlcb", "flrb", "a-vlrb"):
                report = self.reports[(width, design)]
                rows.append(
                    [
                        "%dx%d %s" % (width, width, design),
                        report.combinational,
                        report.flip_flops,
                        report.razor_flip_flops,
                        report.ahl,
                        report.total,
                        norm[design],
                    ]
                )
        return format_table(
            ["design", "comb", "dff", "razor", "ahl", "total", "vs AM"],
            rows,
        )


def run(
    context: Optional[ExperimentContext] = None,
    widths: Tuple[int, ...] = (16, 32),
) -> AreaResult:
    ctx = context or default_context()
    reports: Dict[Tuple[int, str], AreaReport] = {}
    for width in widths:
        skip = width // 2 - 1
        reports[(width, "am")] = area_report(
            ctx.netlist(width, "am"),
            name="am-%d" % width,
            input_ff_bits=2 * width,
            output_ff_bits=2 * width,
        )
        for kind, fixed_name, adaptive_name in (
            ("column", "flcb", "a-vlcb"),
            ("row", "flrb", "a-vlrb"),
        ):
            netlist = ctx.netlist(width, kind)
            reports[(width, fixed_name)] = area_report(
                netlist,
                name="%s-%d" % (fixed_name, width),
                input_ff_bits=2 * width,
                output_ff_bits=2 * width,
            )
            ahl_nl, seq_bits = ahl_netlist(width, skip)
            reports[(width, adaptive_name)] = area_report(
                netlist,
                name="%s-%d" % (adaptive_name, width),
                input_ff_bits=2 * width,
                output_ff_bits=0,
                razor_bits=2 * width,
                ahl_netlist=ahl_nl,
                extra_dff_bits=seq_bits,
            )
    return AreaResult(reports=reports)
