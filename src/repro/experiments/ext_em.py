"""Extension experiment ``ext_em``: BTI + electromigration lifetime.

The paper's conclusion (Section V) argues that the proposed variable-
latency multipliers remain effective when interconnect electromigration
compounds the BTI transistor aging, because they have less timing waste
to start with, while traditional designs must clock at the doubly
degraded worst case.  This experiment quantifies that: it composes the
calibrated BTI delay factors with activity-driven EM factors and
compares the fixed-latency and adaptive designs' latency growth.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence

import numpy as np

from ..aging.electromigration import (
    ElectromigrationModel,
    cell_toggle_rates,
    combined_delay_scale,
)
from ..analysis.series import Series
from ..analysis.tables import format_table
from ..timing.sta import StaticTiming, critical_delays
from .context import ExperimentContext, default_context

YEARS = (0.0, 2.0, 5.0, 7.0, 10.0)
PAPER_PATTERNS = 10000


@dataclasses.dataclass
class EmResult:
    width: int
    #: design -> latency Series over years, BTI only.
    bti_only: Dict[str, Series]
    #: design -> latency Series over years, BTI + EM.
    combined: Dict[str, Series]

    def growth(self, table: str, design: str) -> float:
        series = (self.bti_only if table == "bti" else self.combined)[design]
        return float(series.y[-1] / series.y[0] - 1.0)

    def render(self) -> str:
        rows = []
        for design in sorted(self.bti_only):
            rows.append(
                [
                    design,
                    self.growth("bti", design),
                    self.growth("combined", design),
                ]
            )
        return format_table(
            ["design", "BTI growth", "BTI+EM growth"], rows
        )


def run(
    context: Optional[ExperimentContext] = None,
    width: int = 16,
    years: Sequence[float] = YEARS,
    num_patterns: Optional[int] = None,
    cycle_ns: Optional[float] = None,
    skip: Optional[int] = None,
    em_model: Optional[ElectromigrationModel] = None,
) -> EmResult:
    ctx = context or default_context()
    n = num_patterns or ctx.patterns(PAPER_PATTERNS)
    skip = skip if skip is not None else width // 2 - 1
    md, mr = ctx.stream(width, n)
    em = em_model or ElectromigrationModel(ctx.technology)

    bti_only: Dict[str, list] = {}
    combined: Dict[str, list] = {}
    for kind in ("column", "row"):
        netlist = ctx.netlist(width, kind)
        factory = ctx.factory(width, kind)
        if cycle_ns is None:
            flcb0 = StaticTiming(netlist, ctx.technology).critical_delay
            vl_cycle = 0.64 * flcb0
        else:
            vl_cycle = cycle_ns
        stats = ctx.stream_result(
            width, kind, 0.0, n, collect_net_stats=True
        )
        rates = cell_toggle_rates(netlist, stats.toggle_counts, n)

        fixed_name = "flcb" if kind == "column" else "flrb"
        adaptive_name = "a-vlcb" if kind == "column" else "a-vlrb"
        for name in (fixed_name, adaptive_name):
            bti_only.setdefault(name, [])
            combined.setdefault(name, [])

        # One delay-scale row per (year, with_em) corner; the adaptive
        # designs' streams are then priced in a single batched arrival
        # replay off the shared value plane instead of one full
        # simulation per corner -- bit-identical per the replay
        # contract (see AgedCircuitFactory.replay_scales).
        corners = []
        for year in years:
            bti_scale = (
                factory.delay_scale(year) if year else None
            )
            for with_em in (False, True):
                if bti_scale is None:
                    scale = None
                    if with_em and year:
                        scale = em.delay_scale(netlist, rates, year)
                elif with_em:
                    scale = combined_delay_scale(
                        bti_scale, em.delay_scale(netlist, rates, year)
                    )
                else:
                    scale = bti_scale
                corners.append((with_em, scale))
        num_cells = len(netlist.cells)
        streams = factory.replay_scales(
            np.vstack(
                [
                    np.ones(num_cells) if scale is None else scale
                    for _, scale in corners
                ]
            ),
            {"md": md, "mr": mr},
        )
        # Fixed designs clock at the degraded critical path: one
        # vectorized multi-corner STA sweep (bit-identical per corner
        # to a per-scale StaticTiming build).
        fixed_delays = critical_delays(
            netlist,
            ctx.technology,
            np.vstack(
                [
                    np.ones(num_cells) if scale is None else scale
                    for _, scale in corners
                ]
            ),
        )
        for index, ((with_em, scale), stream) in enumerate(
            zip(corners, streams)
        ):
            table = combined if with_em else bti_only
            table[fixed_name].append(float(fixed_delays[index]))
            # Adaptive design: fixed clock, Razor absorbs the drift.
            arch = ctx.variable_design(width, kind, skip, vl_cycle)
            report = arch.run_patterns(
                md, mr, years=0.0, stream=stream
            ).report
            table[adaptive_name].append(report.average_latency_ns)

    def pack(table):
        return {
            name: Series.build(name, list(years) * 1, values)
            for name, values in table.items()
        }

    return EmResult(width=width, bti_only=pack(bti_only),
                    combined=pack(combined))
