"""Fault-injection experiment specs for scheduler degradation tests.

These specs are NOT part of the normal registry: they only exist when
the ``REPRO_TEST_EXPERIMENTS`` environment variable is set (see the
hook at the bottom of :mod:`repro.experiments.registry`).  Because the
environment propagates to ``ProcessPoolExecutor`` workers, the injected
ids resolve inside worker processes too -- which is exactly what the
worker-crash degradation tests need: a spec that raises in-worker and a
spec that kills its worker process outright.
"""

from __future__ import annotations

import os
import time


class _Rendered:
    """Minimal result object satisfying the ``render()`` protocol."""

    def __init__(self, text: str):
        self._text = text

    def render(self) -> str:
        return self._text


def run_ok(context, delay_s: float = 0.0):
    """A well-behaved experiment (optionally slow, to order crashes)."""
    if delay_s:
        time.sleep(delay_s)
    return _Rendered("test experiment ok")


def run_raise(context):
    """Deterministic in-worker failure: must become an error record
    without a retry and without touching other experiments."""
    raise RuntimeError("injected failure")


def run_crash(context):
    """Kill the worker process outright (no exception, no cleanup) --
    the ProcessPoolExecutor sees a BrokenProcessPool."""
    os._exit(3)


def register_test_experiments(registry=None) -> None:
    from .registry import REGISTRY, Resources, _spec

    target = REGISTRY if registry is None else registry
    for spec in (
        _spec("_test_ok", "Injected no-op (testing)",
              run_ok, ("testing",), Resources()),
        _spec("_test_slow", "Injected slow no-op (testing)",
              run_ok, ("testing",), Resources(), delay_s=0.5),
        _spec("_test_raise", "Injected raising spec (testing)",
              run_raise, ("testing",), Resources()),
        _spec("_test_crash", "Injected crashing spec (testing)",
              run_crash, ("testing",), Resources()),
    ):
        target[spec.id] = spec
