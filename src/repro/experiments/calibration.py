"""Technology calibration (the two fitted constants of DESIGN.md).

The shipped :class:`repro.config.Technology` defaults already contain the
fitted values; these functions re-derive them so tests can verify the
defaults and users can recalibrate after changing the cell library.

* :func:`calibrate_time_unit` fits the logical-effort unit so the 16x16
  array multiplier's critical path equals the paper's 1.32 ns.
* :func:`calibrate_bti_prefactor` fits Eq. 2's constant ``A`` so the
  16x16 column-bypassing multiplier's critical path degrades by 13%
  over seven years (paper Fig. 7).
"""

from __future__ import annotations

from ..aging.degradation import AgedCircuitFactory
from ..arith.array_mult import array_multiplier
from ..arith.column_bypass import column_bypass_multiplier
from ..config import DEFAULT_TECHNOLOGY, Technology
from ..errors import CalibrationError
from ..timing.sta import StaticTiming

#: Paper targets.
AM16_CRITICAL_NS = 1.32
SEVEN_YEAR_DRIFT = 0.13


def calibrate_time_unit(
    technology: Technology = DEFAULT_TECHNOLOGY,
    target_ns: float = AM16_CRITICAL_NS,
) -> Technology:
    """Return a technology whose AM-16 critical path is ``target_ns``."""
    if target_ns <= 0:
        raise CalibrationError("target_ns must be positive")
    netlist = array_multiplier(16)
    crit_units = (
        StaticTiming(netlist, technology).critical_delay
        / technology.time_unit_ns
    )
    return technology.replace(time_unit_ns=target_ns / crit_units)


def calibrate_bti_prefactor(
    technology: Technology = DEFAULT_TECHNOLOGY,
    target_drift: float = SEVEN_YEAR_DRIFT,
    years: float = 7.0,
    tolerance: float = 1e-3,
    max_iterations: int = 60,
    characterize_patterns: int = 1500,
) -> Technology:
    """Bisect Eq. 2's prefactor to the target critical-path drift."""
    if not 0 < target_drift < 1:
        raise CalibrationError("target_drift must lie in (0, 1)")
    netlist = column_bypass_multiplier(16)
    factory = AgedCircuitFactory.characterize(
        netlist, technology, num_patterns=characterize_patterns, seed=3
    )
    base = StaticTiming(netlist, technology).critical_delay

    def drift(prefactor: float) -> float:
        candidate = technology.replace(bti_prefactor=prefactor)
        aged_factory = AgedCircuitFactory(netlist, factory.stress, candidate)
        scale = aged_factory.delay_scale(years)
        aged = StaticTiming(netlist, candidate, scale).critical_delay
        return aged / base - 1.0

    lo, hi = 1e5, 1e10
    if not drift(lo) < target_drift < drift(hi):
        raise CalibrationError("target drift outside the bisection bracket")
    mid = lo
    for _ in range(max_iterations):
        mid = (lo * hi) ** 0.5
        if abs(drift(mid) - target_drift) < tolerance:
            break
        if drift(mid) < target_drift:
            lo = mid
        else:
            hi = mid
    return technology.replace(bti_prefactor=mid)
