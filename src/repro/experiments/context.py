"""Shared, cached experiment state.

The paper's evaluation reuses the same five designs (AM, FLCB, FLRB,
A-VLCB, A-VLRB) at two widths across ~20 figures.  Building a 32x32
bypassing multiplier and simulating 10 000 patterns through it costs
seconds, so the context memoizes:

* generated netlists per ``(width, kind)``,
* characterized :class:`~repro.aging.AgedCircuitFactory` instances
  (stress profiles + compiled circuits per year),
* operand streams per ``(width, num_patterns, seed)``,
* full :class:`~repro.timing.engine.StreamResult` runs per
  ``(width, kind, years, num_patterns, seed)`` -- the clock-period
  sweeps then only re-run the (cheap) architecture control loop.

``scale`` < 1.0 shrinks every pattern count proportionally -- the
benchmark suite uses it to keep wall-clock reasonable while preserving
the statistics (documented in EXPERIMENTS.md).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..aging.degradation import AgedCircuitFactory
from ..config import (
    DEFAULT_SIM_CONFIG,
    DEFAULT_TECHNOLOGY,
    SimulationConfig,
    Technology,
)
from ..core.architecture import AgingAwareMultiplier
from ..core.baselines import FixedLatencyDesign, build_multiplier
from ..errors import ConfigError
from ..nets.netlist import Netlist
from ..timing.engine import StreamResult
from ..timing.value_cache import ValuePlaneCache, netlist_fingerprint
from ..workloads.generators import uniform_operands
from .store import ArtifactStore, technology_fingerprint

#: Seed offset so experiment streams differ from characterization streams.
STREAM_SEED_BASE = 77_000

#: Seed the characterization workload uses (AgedCircuitFactory default).
CHARACTERIZE_SEED = 2014


@dataclasses.dataclass
class ExperimentContext:
    """Caches shared between experiments.  Not thread-safe."""

    technology: Technology = DEFAULT_TECHNOLOGY
    config: SimulationConfig = DEFAULT_SIM_CONFIG
    #: Global pattern-count multiplier (1.0 = the paper's counts).
    scale: float = 1.0
    characterize_patterns: int = 2000
    #: Optional persistent :class:`~repro.experiments.store
    #: .ArtifactStore`.  When set, netlists / stress profiles / stream
    #: results are looked up there before being computed, every fresh
    #: computation is persisted, and factories cache value planes under
    #: the store directory -- a warm re-run touches almost no simulation.
    store: Optional[ArtifactStore] = None
    #: Execution backend for every circuit this context compiles (all
    #: kernels are bit-identical, so store artifacts stay shared).
    kernel: str = "soa"

    def __post_init__(self):
        if self.scale <= 0:
            raise ConfigError("scale must be positive")
        from ..timing.engine import normalize_kernel

        self.kernel = normalize_kernel(self.kernel)
        self._netlists: Dict[Tuple[int, str], Netlist] = {}
        self._factories: Dict[Tuple[int, str], AgedCircuitFactory] = {}
        self._streams: Dict[Tuple[int, int, int], Tuple[np.ndarray, np.ndarray]] = {}
        self._runs: Dict[Tuple[int, str, float, int, int], StreamResult] = {}
        self._fixed: Dict[Tuple[int, str], FixedLatencyDesign] = {}
        self._tech_fp: Optional[str] = None
        self._netlist_fps: Dict[Tuple[int, str], str] = {}

    # -- store keys ----------------------------------------------------

    def _technology_fp(self) -> str:
        if self._tech_fp is None:
            self._tech_fp = technology_fingerprint(self.technology)
        return self._tech_fp

    def _netlist_fp(self, width: int, kind: str) -> str:
        key = (width, kind)
        if key not in self._netlist_fps:
            self._netlist_fps[key] = netlist_fingerprint(
                self.netlist(width, kind)
            )
        return self._netlist_fps[key]

    def _stress_key(self, width: int, kind: str) -> Dict:
        return {
            "netlist": self._netlist_fp(width, kind),
            "technology": self._technology_fp(),
            "num_patterns": self.characterize_patterns,
            "seed": CHARACTERIZE_SEED,
        }

    def _stream_key(
        self,
        width: int,
        kind: str,
        years: float,
        num_patterns: int,
        seed: int,
        collect_net_stats: bool,
    ) -> Dict:
        key = self._stress_key(width, kind)
        key.update(
            {
                "years": float(years),
                "stream_seed": STREAM_SEED_BASE + seed,
                "stream_patterns": num_patterns,
                "net_stats": bool(collect_net_stats),
            }
        )
        return key

    # ------------------------------------------------------------------

    def patterns(self, paper_count: int, floor: int = 200) -> int:
        """Scale a paper pattern count (never below ``floor``)."""
        return max(floor, int(round(paper_count * self.scale)))

    def netlist(self, width: int, kind: str) -> Netlist:
        key = (width, kind)
        if key not in self._netlists:
            if self.store is not None:
                self._netlists[key] = self.store.get_or_build(
                    "netlist",
                    {"width": width, "kind": kind},
                    lambda: build_multiplier(width, kind),
                )
            else:
                self._netlists[key] = build_multiplier(width, kind)
        return self._netlists[key]

    def factory(self, width: int, kind: str) -> AgedCircuitFactory:
        key = (width, kind)
        if key not in self._factories:
            netlist = self.netlist(width, kind)
            if self.store is not None:
                stress = self.store.get_or_build(
                    "stress",
                    self._stress_key(width, kind),
                    lambda: AgedCircuitFactory.characterize_stress(
                        netlist,
                        self.technology,
                        num_patterns=self.characterize_patterns,
                        seed=CHARACTERIZE_SEED,
                    ),
                )
                factory = AgedCircuitFactory(
                    netlist, stress, self.technology, self.kernel
                )
                factory.use_plane_cache(
                    ValuePlaneCache(directory=self.store.planes_dir())
                )
            else:
                factory = AgedCircuitFactory.characterize(
                    netlist,
                    self.technology,
                    num_patterns=self.characterize_patterns,
                    seed=CHARACTERIZE_SEED,
                    kernel=self.kernel,
                )
            self._factories[key] = factory
        return self._factories[key]

    def fixed_design(self, width: int, kind: str) -> FixedLatencyDesign:
        """The fixed-latency baseline (memoized, so its per-year static
        timing cache is shared by every experiment in a suite run)."""
        key = (width, kind)
        if key not in self._fixed:
            self._fixed[key] = FixedLatencyDesign(
                self.netlist(width, kind),
                self.factory(width, kind),
                self.technology,
            )
        return self._fixed[key]

    def variable_design(
        self,
        width: int,
        kind: str,
        skip: int,
        cycle_ns: float,
        adaptive: bool = True,
    ) -> AgingAwareMultiplier:
        """An architecture sharing this context's factory caches."""
        return AgingAwareMultiplier(
            netlist=self.netlist(width, kind),
            kind=kind,
            width=width,
            skip=skip,
            cycle_ns=cycle_ns,
            factory=self.factory(width, kind),
            technology=self.technology,
            config=self.config,
            adaptive=adaptive,
        )

    # ------------------------------------------------------------------

    def stream(
        self, width: int, num_patterns: int, seed: int = 1
    ) -> Tuple[np.ndarray, np.ndarray]:
        key = (width, num_patterns, seed)
        if key not in self._streams:
            self._streams[key] = uniform_operands(
                width, num_patterns, STREAM_SEED_BASE + seed
            )
        return self._streams[key]

    def stream_result(
        self,
        width: int,
        kind: str,
        years: float,
        num_patterns: int,
        seed: int = 1,
        collect_net_stats: bool = False,
    ) -> StreamResult:
        """Cached circuit simulation of the standard stream.

        Backed by the two-plane engine: the factory computes (and
        caches) one value plane per stimulus and replays arrivals for
        the requested age -- bit-identical to a full
        ``circuit(years).run(...)``.
        """
        return self.stream_results(
            width,
            kind,
            [years],
            num_patterns,
            seed=seed,
            collect_net_stats=collect_net_stats,
        )[0]

    def stream_results(
        self,
        width: int,
        kind: str,
        years: "Sequence[float]",
        num_patterns: int,
        seed: int = 1,
        collect_net_stats: bool = False,
    ) -> "List[StreamResult]":
        """Stream results for many aging timesteps (one per ``years``
        entry), batch-replaying every timestep missing from the cache
        in a single vectorized arrival pass."""
        keys = [
            (width, kind, float(year), num_patterns, seed)
            for year in years
        ]
        missing = []
        for key in keys:
            cached = self._runs.get(key)
            if cached is None or (
                collect_net_stats and cached.signal_prob is None
            ):
                if key not in missing:
                    missing.append(key)
        if missing and self.store is not None:
            still_missing = []
            for key in missing:
                stored = self.store.load(
                    "stream",
                    self._stream_key(
                        width, kind, key[2], num_patterns, seed,
                        collect_net_stats,
                    ),
                )
                if stored is None:
                    still_missing.append(key)
                else:
                    self._runs[key] = stored
            missing = still_missing
        if missing:
            md, mr = self.stream(width, num_patterns, seed)
            fresh = self.factory(width, kind).stream_results(
                [key[2] for key in missing],
                {"md": md, "mr": mr},
                collect_net_stats=collect_net_stats,
            )
            for key, result in zip(missing, fresh):
                self._runs[key] = result
                if self.store is not None:
                    self.store.save(
                        "stream",
                        self._stream_key(
                            width, kind, key[2], num_patterns, seed,
                            collect_net_stats,
                        ),
                        result,
                    )
        return [self._runs[key] for key in keys]

    def clear(self) -> None:
        """Drop every cache (used by memory-sensitive test runs)."""
        self._netlists.clear()
        self._factories.clear()
        self._streams.clear()
        self._runs.clear()
        self._fixed.clear()


#: Module-level default context shared by ad-hoc callers.
DEFAULT_CONTEXT: Optional[ExperimentContext] = None


def default_context() -> ExperimentContext:
    """The lazily created process-wide context."""
    global DEFAULT_CONTEXT
    if DEFAULT_CONTEXT is None:
        DEFAULT_CONTEXT = ExperimentContext()
    return DEFAULT_CONTEXT
