"""Shared, cached experiment state.

The paper's evaluation reuses the same five designs (AM, FLCB, FLRB,
A-VLCB, A-VLRB) at two widths across ~20 figures.  Building a 32x32
bypassing multiplier and simulating 10 000 patterns through it costs
seconds, so the context memoizes:

* generated netlists per ``(width, kind)``,
* characterized :class:`~repro.aging.AgedCircuitFactory` instances
  (stress profiles + compiled circuits per year),
* operand streams per ``(width, num_patterns, seed)``,
* full :class:`~repro.timing.engine.StreamResult` runs per
  ``(width, kind, years, num_patterns, seed)`` -- the clock-period
  sweeps then only re-run the (cheap) architecture control loop.

``scale`` < 1.0 shrinks every pattern count proportionally -- the
benchmark suite uses it to keep wall-clock reasonable while preserving
the statistics (documented in EXPERIMENTS.md).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..aging.degradation import AgedCircuitFactory
from ..config import (
    DEFAULT_SIM_CONFIG,
    DEFAULT_TECHNOLOGY,
    SimulationConfig,
    Technology,
)
from ..core.architecture import AgingAwareMultiplier
from ..core.baselines import FixedLatencyDesign, build_multiplier
from ..errors import ConfigError
from ..nets.netlist import Netlist
from ..timing.engine import StreamResult
from ..workloads.generators import uniform_operands

#: Seed offset so experiment streams differ from characterization streams.
STREAM_SEED_BASE = 77_000


@dataclasses.dataclass
class ExperimentContext:
    """Caches shared between experiments.  Not thread-safe."""

    technology: Technology = DEFAULT_TECHNOLOGY
    config: SimulationConfig = DEFAULT_SIM_CONFIG
    #: Global pattern-count multiplier (1.0 = the paper's counts).
    scale: float = 1.0
    characterize_patterns: int = 2000

    def __post_init__(self):
        if self.scale <= 0:
            raise ConfigError("scale must be positive")
        self._netlists: Dict[Tuple[int, str], Netlist] = {}
        self._factories: Dict[Tuple[int, str], AgedCircuitFactory] = {}
        self._streams: Dict[Tuple[int, int, int], Tuple[np.ndarray, np.ndarray]] = {}
        self._runs: Dict[Tuple[int, str, float, int, int], StreamResult] = {}

    # ------------------------------------------------------------------

    def patterns(self, paper_count: int, floor: int = 200) -> int:
        """Scale a paper pattern count (never below ``floor``)."""
        return max(floor, int(round(paper_count * self.scale)))

    def netlist(self, width: int, kind: str) -> Netlist:
        key = (width, kind)
        if key not in self._netlists:
            self._netlists[key] = build_multiplier(width, kind)
        return self._netlists[key]

    def factory(self, width: int, kind: str) -> AgedCircuitFactory:
        key = (width, kind)
        if key not in self._factories:
            self._factories[key] = AgedCircuitFactory.characterize(
                self.netlist(width, kind),
                self.technology,
                num_patterns=self.characterize_patterns,
            )
        return self._factories[key]

    def fixed_design(self, width: int, kind: str) -> FixedLatencyDesign:
        return FixedLatencyDesign(
            self.netlist(width, kind),
            self.factory(width, kind),
            self.technology,
        )

    def variable_design(
        self,
        width: int,
        kind: str,
        skip: int,
        cycle_ns: float,
        adaptive: bool = True,
    ) -> AgingAwareMultiplier:
        """An architecture sharing this context's factory caches."""
        return AgingAwareMultiplier(
            netlist=self.netlist(width, kind),
            kind=kind,
            width=width,
            skip=skip,
            cycle_ns=cycle_ns,
            factory=self.factory(width, kind),
            technology=self.technology,
            config=self.config,
            adaptive=adaptive,
        )

    # ------------------------------------------------------------------

    def stream(
        self, width: int, num_patterns: int, seed: int = 1
    ) -> Tuple[np.ndarray, np.ndarray]:
        key = (width, num_patterns, seed)
        if key not in self._streams:
            self._streams[key] = uniform_operands(
                width, num_patterns, STREAM_SEED_BASE + seed
            )
        return self._streams[key]

    def stream_result(
        self,
        width: int,
        kind: str,
        years: float,
        num_patterns: int,
        seed: int = 1,
        collect_net_stats: bool = False,
    ) -> StreamResult:
        """Cached circuit simulation of the standard stream.

        Backed by the two-plane engine: the factory computes (and
        caches) one value plane per stimulus and replays arrivals for
        the requested age -- bit-identical to a full
        ``circuit(years).run(...)``.
        """
        return self.stream_results(
            width,
            kind,
            [years],
            num_patterns,
            seed=seed,
            collect_net_stats=collect_net_stats,
        )[0]

    def stream_results(
        self,
        width: int,
        kind: str,
        years: "Sequence[float]",
        num_patterns: int,
        seed: int = 1,
        collect_net_stats: bool = False,
    ) -> "List[StreamResult]":
        """Stream results for many aging timesteps (one per ``years``
        entry), batch-replaying every timestep missing from the cache
        in a single vectorized arrival pass."""
        keys = [
            (width, kind, float(year), num_patterns, seed)
            for year in years
        ]
        missing = []
        for key in keys:
            cached = self._runs.get(key)
            if cached is None or (
                collect_net_stats and cached.signal_prob is None
            ):
                if key not in missing:
                    missing.append(key)
        if missing:
            md, mr = self.stream(width, num_patterns, seed)
            fresh = self.factory(width, kind).stream_results(
                [key[2] for key in missing],
                {"md": md, "mr": mr},
                collect_net_stats=collect_net_stats,
            )
            for key, result in zip(missing, fresh):
                self._runs[key] = result
        return [self._runs[key] for key in keys]

    def clear(self) -> None:
        """Drop every cache (used by memory-sensitive test runs)."""
        self._netlists.clear()
        self._factories.clear()
        self._streams.clear()
        self._runs.clear()


#: Module-level default context shared by ad-hoc callers.
DEFAULT_CONTEXT: Optional[ExperimentContext] = None


def default_context() -> ExperimentContext:
    """The lazily created process-wide context."""
    global DEFAULT_CONTEXT
    if DEFAULT_CONTEXT is None:
        DEFAULT_CONTEXT = ExperimentContext()
    return DEFAULT_CONTEXT
