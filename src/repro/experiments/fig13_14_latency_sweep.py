"""Figs. 13 and 14: average latency vs cycle period for the adaptive
variable-latency designs against the AM / FLCB / FLRB baselines.

Fig. 13 (16x16): Skip-7/8/9 panels, cycle periods around 0.7-1.1 ns.
Fig. 14 (32x32): Skip-15/16/17 panels, cycle periods around 1.3-1.9 ns.

Paper headline readings this reproduces (16x16): with Skip-7 at
T = 0.9 ns the A-VLCB is ~37% faster than the FLCB and ~11% faster than
the AM; each skip number has a *preferred cycle-period range* -- too
short a clock piles up Razor penalties, too long a clock wastes slack.

This module is the workhorse for Figs. 15 and 17 as well: those figures
overlay the same latency series across skip numbers.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..analysis.series import Series
from ..analysis.tables import format_table
from .context import ExperimentContext, default_context

PAPER_PATTERNS = 10000

#: Default sweeps per width: cycle periods in ns.  The paper sweeps
#: 0.7-1.0 ns (16x16) and 1.4-1.65 ns (32x32); our calibrated per-pattern
#: delay distribution is shifted slightly left of the authors', so the
#: grids are positioned over the same *relative* region -- from deep in
#: the Razor-error cliff up past the timing-waste knee (EXPERIMENTS.md
#: records the mapping).
CYCLE_GRIDS = {
    16: tuple(np.round(np.arange(0.35, 1.125, 0.05), 3)),
    32: tuple(np.round(np.arange(0.50, 1.65, 0.075), 3)),
}
SKIP_SETS = {16: (7, 8, 9), 32: (15, 16, 17)}


@dataclasses.dataclass
class LatencySweepResult:
    width: int
    #: (kind, skip) -> latency Series over the cycle grid.
    latency: Dict[Tuple[str, int], Series]
    #: (kind, skip) -> Razor error-count Series over the cycle grid.
    errors: Dict[Tuple[str, int], Series]
    #: Fixed baselines: name -> latency ns.
    baselines: Dict[str, float]
    num_patterns: int
    years: float

    def best_point(self, kind: str, skip: int) -> Tuple[float, float]:
        """(cycle, latency) minimizing average latency."""
        return self.latency[(kind, skip)].best()

    def improvement_vs(self, kind: str, skip: int, baseline: str) -> float:
        """Best-point latency reduction vs a named baseline."""
        _, best = self.best_point(kind, skip)
        return 1.0 - best / self.baselines[baseline]

    def preferred_range(self, kind: str, skip: int) -> Sequence[float]:
        """Cycle periods beating the AM baseline (the paper's notion)."""
        return self.latency[(kind, skip)].crossings_below(
            self.baselines["am"]
        )

    def render(self) -> str:
        rows = []
        for (kind, skip), series in sorted(self.latency.items()):
            cycle, best = series.best()
            base = "flcb" if kind == "column" else "flrb"
            rows.append(
                [
                    "%s skip%d" % (kind, skip),
                    cycle,
                    best,
                    self.improvement_vs(kind, skip, base),
                    self.improvement_vs(kind, skip, "am"),
                ]
            )
        table = format_table(
            ["design", "best T ns", "latency ns", "vs fixed", "vs AM"], rows
        )
        base_line = "baselines: " + "  ".join(
            "%s=%.3f" % (k, v) for k, v in sorted(self.baselines.items())
        )
        return table + "\n" + base_line


def run(
    context: Optional[ExperimentContext] = None,
    width: int = 16,
    skips: Optional[Sequence[int]] = None,
    cycles: Optional[Sequence[float]] = None,
    num_patterns: Optional[int] = None,
    years: float = 0.0,
    adaptive: bool = True,
    kinds: Sequence[str] = ("column", "row"),
) -> LatencySweepResult:
    ctx = context or default_context()
    n = num_patterns or ctx.patterns(PAPER_PATTERNS)
    skips = tuple(skips or SKIP_SETS[width])
    cycles = tuple(cycles or CYCLE_GRIDS[width])
    md, mr = ctx.stream(width, n)

    baselines = {
        "am": ctx.fixed_design(width, "am").latency_ns(years),
        "flcb": ctx.fixed_design(width, "column").latency_ns(years),
        "flrb": ctx.fixed_design(width, "row").latency_ns(years),
    }

    latency: Dict[Tuple[str, int], Series] = {}
    errors: Dict[Tuple[str, int], Series] = {}
    for kind in kinds:
        stream = ctx.stream_result(width, kind, years, n)
        for skip in skips:
            lat = []
            err = []
            for cycle in cycles:
                design = ctx.variable_design(
                    width, kind, skip, cycle, adaptive=adaptive
                )
                report = design.run_patterns(
                    md, mr, years=years, stream=stream
                ).report
                lat.append(report.average_latency_ns)
                err.append(report.error_count)
            label = "%s-%s skip%d" % (
                "A" if adaptive else "T",
                "VLCB" if kind == "column" else "VLRB",
                skip,
            )
            latency[(kind, skip)] = Series.build(label, cycles, lat)
            errors[(kind, skip)] = Series.build(label + " errors", cycles, err)
    return LatencySweepResult(
        width=width,
        latency=latency,
        errors=errors,
        baselines=baselines,
        num_patterns=n,
        years=years,
    )


def run_fig13(context: Optional[ExperimentContext] = None, **kw):
    return run(context, width=16, **kw)


def run_fig14(context: Optional[ExperimentContext] = None, **kw):
    return run(context, width=32, **kw)
