"""Extension experiment ``ext_faults``: fault coverage + recovery.

The paper validates the architecture against *smooth* BTI aging; the
aging-monitor literature (Juracy et al.'s survey; the NBTI multiplier
fault-injection flows in PAPERS.md) validates countermeasures by
injecting the faults aging actually produces and watching the
error-detection and reconfiguration machinery respond.  This experiment
does both measurements for the reproduction:

1. **Coverage sweep** -- an :class:`~repro.faults.InjectionCampaign`
   over stuck-at / transient / delay fault sites measures what fraction
   of corrupted products the Razor bank flags.  The expected split is
   stark and physical: *delay* faults produce late arrivals, which is
   exactly what Razor samples for, while stuck-at and SEU corruption
   mostly latches cleanly before the main edge -- silent data corruption
   Razor was never designed to catch.
2. **Adaptive response** -- a localized delay hot-spot on the critical
   path elevates the one-cycle error rate; the adaptive design's aging
   indicator must trip and switch to Skip-(n+1), recovering most of the
   error-rate elevation, while the non-adaptive baseline keeps erroring.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from typing import Dict, Optional

from ..analysis.tables import format_table
from ..core.architecture import AgingAwareMultiplier
from ..faults.campaign import CampaignResult, InjectionCampaign
from ..faults.models import DelayFault
from ..timing.sta import StaticTiming
from .context import ExperimentContext, default_context

PAPER_PATTERNS = 10000


@dataclasses.dataclass
class HotSpotResponse:
    """Adaptive vs traditional design under one delay hot-spot."""

    fault: DelayFault
    #: design name -> Razor error count under the hot-spot.
    errors: Dict[str, int]
    #: design name -> average latency (ns/op) under the hot-spot.
    latency_ns: Dict[str, float]
    #: Operation index where the adaptive indicator flipped (-1: never).
    adaptive_aged_at: int
    #: Error counts of the pristine (no-fault) adaptive run.
    pristine_errors: int


@dataclasses.dataclass
class FaultCoverageResult:
    width: int
    cycle_ns: float
    campaign: CampaignResult
    hotspot: HotSpotResponse

    def coverage(self, kind: Optional[str] = None) -> float:
        return self.campaign.detection_coverage(kind)

    def summary(self) -> Dict:
        out = {
            "width": self.width,
            "cycle_ns": self.cycle_ns,
            "hotspot_adaptive_errors": self.hotspot.errors["adaptive"],
            "hotspot_traditional_errors":
                self.hotspot.errors["traditional"],
            "hotspot_adaptive_aged_at": self.hotspot.adaptive_aged_at,
        }
        out.update(
            ("campaign_%s" % key, value)
            for key, value in self.campaign.summary().items()
        )
        return out

    def to_dict(self) -> Dict:
        return {
            "width": self.width,
            "cycle_ns": self.cycle_ns,
            "campaign": self.campaign.to_dict(),
            "hotspot": {
                "fault": self.hotspot.fault.describe(),
                "errors": dict(self.hotspot.errors),
                "latency_ns": dict(self.hotspot.latency_ns),
                "adaptive_aged_at": self.hotspot.adaptive_aged_at,
                "pristine_errors": self.hotspot.pristine_errors,
            },
        }

    def render(self) -> str:
        lines = [self.campaign.render(), ""]
        lines.append(
            "hot-spot %s: pristine adaptive errors %d"
            % (
                self.hotspot.fault.describe(),
                self.hotspot.pristine_errors,
            )
        )
        rows = [
            [name, float(self.hotspot.errors[name]),
             self.hotspot.latency_ns[name]]
            for name in sorted(self.hotspot.errors)
        ]
        lines.append(
            format_table(["design", "errors", "ns/op"], rows)
        )
        lines.append(
            "adaptive indicator flipped at op %d"
            % self.hotspot.adaptive_aged_at
        )
        return "\n".join(lines)


def run(
    context: Optional[ExperimentContext] = None,
    width: int = 8,
    num_sites: int = 60,
    num_patterns: Optional[int] = None,
    cycle_fraction: float = 0.6,
    skip: Optional[int] = None,
    seed: int = 3,
    years: float = 0.0,
    workers: int = 1,
    checkpoint: Optional[str] = None,
    prune: bool = True,
) -> FaultCoverageResult:
    ctx = context or default_context()
    n = num_patterns or ctx.patterns(PAPER_PATTERNS, floor=400)
    skip = skip if skip is not None else width // 2 - 1
    netlist = ctx.netlist(width, "column")
    sta = StaticTiming(netlist, ctx.technology)
    cycle_ns = cycle_fraction * sta.critical_delay

    adaptive = ctx.variable_design(width, "column", skip, cycle_ns)
    campaign = InjectionCampaign.sweep(
        adaptive,
        num_sites=num_sites,
        num_patterns=n,
        seed=seed,
        years=years,
    )
    if checkpoint is None and ctx.store is not None:
        # Persist the campaign under the experiment store, keyed by the
        # campaign fingerprint so a changed configuration gets a fresh
        # file instead of a CheckpointError: a warm suite run resumes
        # every site and simulates nothing.
        digest = hashlib.sha256(
            json.dumps(
                campaign.fingerprint(), sort_keys=True, default=str
            ).encode()
        ).hexdigest()
        checkpoint = os.path.join(
            ctx.store.campaigns_dir(), "ext_faults-%s.jsonl" % digest[:24]
        )
    campaign_result = campaign.run(
        workers=workers, checkpoint=checkpoint, prune=prune
    )

    # A localized hot-spot late on the critical path: the extra delay
    # rides on top of every pattern exercising that path, lifting the
    # one-cycle error rate past the indicator threshold.
    path = sta.critical_path()
    victim = path[len(path) // 2]
    hot = DelayFault(victim.index, 0.9 * cycle_ns)

    def run_design(arch: AgingAwareMultiplier):
        site_campaign = InjectionCampaign(
            arch, [hot], num_patterns=n, seed=seed, years=years
        )
        _, result = site_campaign.run_site(hot)
        return result

    traditional = ctx.variable_design(
        width, "column", skip, cycle_ns, adaptive=False
    )
    adaptive_run = run_design(adaptive)
    traditional_run = run_design(traditional)
    pristine = InjectionCampaign(
        adaptive, [], num_patterns=n, seed=seed, years=years
    ).run_pristine()

    hotspot = HotSpotResponse(
        fault=hot,
        errors={
            "adaptive": adaptive_run.report.error_count,
            "traditional": traditional_run.report.error_count,
        },
        latency_ns={
            "adaptive": adaptive_run.report.average_latency_ns,
            "traditional": traditional_run.report.average_latency_ns,
        },
        adaptive_aged_at=adaptive_run.report.indicator_aged_at,
        pristine_errors=pristine.report.error_count,
    )
    return FaultCoverageResult(
        width=width,
        cycle_ns=cycle_ns,
        campaign=campaign_result,
        hotspot=hotspot,
    )
