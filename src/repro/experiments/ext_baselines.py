"""Extension experiment ``ext_baselines``: why bypassing multipliers host
variable latency well (and Wallace/Booth do not).

The paper picks the column- and row-bypassing multipliers as hosts
because their per-pattern delay is *predictable from an operand's zero
count*.  This experiment puts the classic fast baselines (Wallace tree,
radix-4 Booth) through the same timing engine and measures, per design:

* the critical path and mean per-pattern delay;
* the delay spread (p95/p50) -- variable latency needs a fat, cheap
  majority;
* the zero-count/delay correlation -- the judging block needs the delay
  to be *predictable*, not just variable.

Expected outcome (asserted in the bench): the bypassing designs show a
strong negative correlation and a wide spread; Wallace and Booth show
weak correlation, so a zero-count judging block cannot classify their
patterns -- the architectural reason the paper builds on bypassing.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

import numpy as np

from ..analysis.tables import format_table
from ..arith import (
    array_multiplier,
    booth_multiplier,
    column_bypass_multiplier,
    count_zeros,
    dadda_multiplier,
    row_bypass_multiplier,
    wallace_multiplier,
)
from ..timing.engine import CompiledCircuit
from ..timing.sta import StaticTiming
from .context import ExperimentContext, default_context

PAPER_PATTERNS = 10000

GENERATORS = {
    "am": array_multiplier,
    "column": column_bypass_multiplier,
    "row": row_bypass_multiplier,
    "wallace": wallace_multiplier,
    "dadda": dadda_multiplier,
    "booth": booth_multiplier,
}


@dataclasses.dataclass
class BaselineStats:
    name: str
    cells: int
    critical_ns: float
    mean_delay_ns: float
    p50_ns: float
    p95_ns: float
    zero_delay_correlation: float

    @property
    def spread(self) -> float:
        """p95 / p50 -- how much a variable-latency split can win."""
        return self.p95_ns / self.p50_ns if self.p50_ns else 0.0


@dataclasses.dataclass
class BaselineComparison:
    width: int
    stats: Dict[str, BaselineStats]

    def render(self) -> str:
        rows = [
            [
                s.name,
                s.cells,
                s.critical_ns,
                s.mean_delay_ns,
                s.spread,
                s.zero_delay_correlation,
            ]
            for s in self.stats.values()
        ]
        return format_table(
            ["design", "cells", "crit ns", "mean ns", "p95/p50", "corr(z,d)"],
            rows,
        )


def run(
    context: Optional[ExperimentContext] = None,
    width: int = 16,
    num_patterns: Optional[int] = None,
) -> BaselineComparison:
    ctx = context or default_context()
    n = num_patterns or ctx.patterns(PAPER_PATTERNS)
    md, mr = ctx.stream(width, n)
    zeros = count_zeros(md, width)

    stats: Dict[str, BaselineStats] = {}
    for name, generator in GENERATORS.items():
        if name in ("am", "column", "row"):
            netlist = ctx.netlist(width, name)
            result = ctx.stream_result(width, name, 0.0, n)
        else:
            netlist = generator(width)
            result = CompiledCircuit(netlist, ctx.technology).run(
                {"md": md, "mr": mr}
            )
        judged = zeros if name != "row" else count_zeros(mr, width)
        usable = result.delays > 0
        correlation = float(
            np.corrcoef(judged[usable], result.delays[usable])[0, 1]
        )
        stats[name] = BaselineStats(
            name=name,
            cells=len(netlist.cells),
            critical_ns=StaticTiming(netlist, ctx.technology).critical_delay,
            mean_delay_ns=result.mean_delay,
            p50_ns=float(np.quantile(result.delays, 0.5)),
            p95_ns=float(np.quantile(result.delays, 0.95)),
            zero_delay_correlation=correlation,
        )
    return BaselineComparison(width=width, stats=stats)
