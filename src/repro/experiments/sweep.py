"""Variant sweeps: many near-identical netlist mutants, one base.

The aging-aware design loop (and the ROADMAP's design-space
exploration item) evaluates families of mutants of one parent design:
gate swaps (``AND2 -> OR2`` style approximations), column / partial
product truncations (tie a cell to a constant rail) and per-cell delay
nudges (sizing / Vth tweaks).  A :class:`VariantSweep` evaluates such a
family through :mod:`repro.timing.delta`:

* the parent is simulated **once** into a :class:`~repro.timing.delta
  .DeltaBase` (value plane with captured values + dense arrival
  tensor at the aging corners);
* every mutant is priced by :func:`~repro.timing.delta.replay_delta`,
  re-simulating only the affected cone -- bit-identical to the
  from-scratch :func:`~repro.timing.delta.evaluate_full` path, which
  stays available as ``engine="full"`` (the CI oracle and the benchmark
  baseline);
* per-variant records carry **only engine-independent fields** (site
  id, sha256 digests of outputs and delays, per-corner delay
  summaries), so a ``--engine delta`` sweep JSON is byte-identical to a
  ``--engine full`` one -- ``cmp`` in CI proves the contract end to
  end;
* records are cached in the :class:`~repro.experiments.store
  .ArtifactStore` under the ``delta`` kind, and sweeps shard over
  :mod:`repro.distrib` pools via the ``variant_shard`` job (workers
  rebuild the base deterministically from the spec and evaluate index
  ranges).

Variant enumeration is deterministic: mutants are drawn without
replacement from per-family pools (retype / tie / delay, round-robin)
by a seeded generator, so every worker, engine and re-run sees the same
family in the same order.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config import DEFAULT_TECHNOLOGY, Technology
from ..errors import ConfigError
from ..faults.injector import fault_delay_scales
from ..faults.models import DelayFault
from ..nets.mutate import Mutation, apply_mutations, tie_high, tie_low
from ..nets.netlist import Netlist
from ..timing.delta import (
    DeltaBase,
    DeltaResult,
    evaluate_full,
    replay_delta,
)
from ..timing.value_cache import netlist_fingerprint
from .context import ExperimentContext
from .store import ArtifactStore, technology_fingerprint

#: Sweep payload format tag / schema version.
FORMAT = "repro-variant-sweep"
VERSION = 1

#: Involutive gate approximation swaps (same arity, same pins).
RETYPE_SWAPS = {
    "AND2": "OR2",
    "OR2": "AND2",
    "NAND2": "NOR2",
    "NOR2": "NAND2",
    "XOR2": "XNOR2",
    "XNOR2": "XOR2",
    "AND3": "OR3",
    "OR3": "AND3",
    "INV": "BUF",
    "BUF": "INV",
}

#: Engines :meth:`VariantSweep.run` accepts.
ENGINES = ("delta", "full")


@dataclasses.dataclass(frozen=True)
class SweepSpec:
    """JSON-round-trippable description of one variant sweep."""

    width: int = 16
    kind: str = "column"
    years: Tuple[float, ...] = (0.0, 10.0)
    num_patterns: int = 2000
    seed: int = 1
    characterize_patterns: int = 2000
    kernel: str = "soa"
    num_variants: int = 100
    variant_seed: int = 0
    #: Additive delay (ns) of the per-cell nudge family.
    delay_extra_ns: float = 0.4
    #: Arrival-cone fraction above which ``replay_delta`` falls back to
    #: a from-scratch evaluation (None: never fall back).
    max_cone_fraction: Optional[float] = None

    def to_dict(self) -> Dict:
        data = dataclasses.asdict(self)
        data["years"] = [float(year) for year in self.years]
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "SweepSpec":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(
                "unknown sweep spec fields: %s" % sorted(unknown)
            )
        data = dict(data)
        if "years" in data:
            data["years"] = tuple(float(y) for y in data["years"])
        return cls(**data)


@dataclasses.dataclass(frozen=True)
class Variant:
    """One mutant: structural mutations and/or delay nudges."""

    site: str
    mutations: Tuple[Mutation, ...] = ()
    delay_faults: Tuple[DelayFault, ...] = ()


def enumerate_variants(
    netlist: Netlist, spec: SweepSpec
) -> List[Variant]:
    """The sweep's deterministic mutant family.

    Variants are drawn round-robin from three pools -- gate retypes
    (:data:`RETYPE_SWAPS`), constant ties (alternating low/high) and
    per-cell delay nudges -- each a seeded permutation consumed without
    replacement, so indices, sites and order are identical across
    processes and engines.  Grouped (bypass) cells are never mutated
    structurally; delay nudges may land anywhere, like delay faults.
    """
    rng = np.random.default_rng(spec.variant_seed)
    retypable = [
        cell.index
        for cell in netlist.cells
        if cell.group is None and cell.cell_type.name in RETYPE_SWAPS
    ]
    tieable = [
        cell.index for cell in netlist.cells if cell.group is None
    ]
    nudgeable = [cell.index for cell in netlist.cells]
    pools = [
        [int(i) for i in rng.permutation(pool)] if pool else []
        for pool in (retypable, nudgeable, tieable)
    ]
    capacity = sum(len(pool) for pool in pools)
    if spec.num_variants > capacity:
        raise ConfigError(
            "sweep asks for %d variants but the %d-cell netlist only"
            " offers %d distinct sites"
            % (spec.num_variants, len(netlist.cells), capacity)
        )
    variants: List[Variant] = []
    cursor = [0, 0, 0]
    family = 0
    while len(variants) < spec.num_variants:
        if cursor[family] >= len(pools[family]):
            family = (family + 1) % 3
            continue
        index = pools[family][cursor[family]]
        cursor[family] += 1
        if family == 0:
            mutation = Mutation(
                index, RETYPE_SWAPS[netlist.cells[index].cell_type.name]
            )
            variants.append(
                Variant(mutation.site_id(), mutations=(mutation,))
            )
        elif family == 1:
            fault = DelayFault(index, spec.delay_extra_ns)
            variants.append(
                Variant(fault.site_id(), delay_faults=(fault,))
            )
        else:
            tie = tie_low(index) if len(variants) % 2 else tie_high(index)
            variants.append(Variant(tie.site_id(), mutations=(tie,)))
        family = (family + 1) % 3
    return variants


def _result_record(site: str, result: DeltaResult) -> Dict:
    """The engine-independent record of one variant evaluation.

    Only bit-stable fields appear (digests of the byte-identity surface
    plus float summaries derived from it), so serialized records from
    the delta and full engines compare byte-equal.
    """
    digest = hashlib.sha256()
    for name in sorted(result.outputs):
        digest.update(name.encode())
        digest.update(np.ascontiguousarray(result.outputs[name]).tobytes())
    outputs_sha = digest.hexdigest()
    delays_sha = hashlib.sha256(
        np.ascontiguousarray(result.delays).tobytes()
    ).hexdigest()
    return {
        "site": site,
        "outputs_sha256": outputs_sha,
        "delays_sha256": delays_sha,
        "max_delay_ns": [float(x) for x in result.max_delays()],
        "mean_delay_ns": [float(x) for x in result.mean_delays()],
    }


def sweep_payload(spec: SweepSpec, records: List[Dict]) -> Dict:
    """The canonical sweep result document (engine-independent)."""
    return {
        "format": FORMAT,
        "version": VERSION,
        "spec": spec.to_dict(),
        "records": records,
    }


def render_payload(payload: Dict) -> str:
    """Canonical JSON text -- byte-identical across engines and hosts
    for byte-identical records."""
    return json.dumps(payload, sort_keys=True, indent=2) + "\n"


class VariantSweep:
    """Evaluate a deterministic mutant family against one parent base.

    Args:
        spec: The sweep description.
        technology: Technology constants (the context default).
        store: Optional :class:`ArtifactStore`; per-variant records are
            cached under the ``delta`` kind and netlist / stress /
            plane artifacts flow through the usual store paths.
        context: Optional pre-built :class:`ExperimentContext` to share
            caches with other experiments (overrides ``technology`` /
            ``store``).
    """

    def __init__(
        self,
        spec: SweepSpec,
        technology: Technology = DEFAULT_TECHNOLOGY,
        store: Optional[ArtifactStore] = None,
        context: Optional[ExperimentContext] = None,
    ):
        self.spec = spec
        if context is None:
            context = ExperimentContext(
                technology=technology,
                characterize_patterns=spec.characterize_patterns,
                store=store,
                kernel=spec.kernel,
            )
        self.context = context
        self.store = context.store
        self._netlist: Optional[Netlist] = None
        self._variants: Optional[List[Variant]] = None
        self._scales: Optional[np.ndarray] = None
        self._base: Optional[DeltaBase] = None

    # -- lazily shared parent state ------------------------------------

    @property
    def netlist(self) -> Netlist:
        if self._netlist is None:
            self._netlist = self.context.netlist(
                self.spec.width, self.spec.kind
            )
        return self._netlist

    @property
    def variants(self) -> List[Variant]:
        if self._variants is None:
            self._variants = enumerate_variants(self.netlist, self.spec)
        return self._variants

    @property
    def scales(self) -> np.ndarray:
        """Base ``(k, num_cells)`` aging scale matrix (one row per
        requested lifetime point)."""
        if self._scales is None:
            factory = self.context.factory(
                self.spec.width, self.spec.kind
            )
            self._scales = factory.lifetime_delay_scales(
                list(self.spec.years)
            )
        return self._scales

    @property
    def stimulus(self) -> Dict[str, np.ndarray]:
        md, mr = self.context.stream(
            self.spec.width, self.spec.num_patterns, self.spec.seed
        )
        return {"md": md, "mr": mr}

    def base(self) -> DeltaBase:
        """The parent :class:`DeltaBase` (built once, then reused by
        every delta evaluation)."""
        if self._base is None:
            factory = self.context.factory(
                self.spec.width, self.spec.kind
            )
            self._base = DeltaBase(
                factory.circuit(0.0), self.stimulus, self.scales
            )
        return self._base

    # -- per-variant evaluation ----------------------------------------

    def _variant_scales(self, variant: Variant) -> np.ndarray:
        if not variant.delay_faults:
            return self.scales
        return fault_delay_scales(
            self.netlist,
            variant.delay_faults,
            self.scales,
            self.context.technology,
        )

    def evaluate(self, index: int, engine: str = "delta") -> Tuple[Dict, str]:
        """Evaluate one variant; returns ``(record, method)``."""
        if engine not in ENGINES:
            raise ConfigError(
                "engine must be one of %s, got %r" % (ENGINES, engine)
            )
        variant = self.variants[index]
        child = (
            apply_mutations(self.netlist, variant.mutations)
            if variant.mutations
            else self.netlist
        )
        scales = self._variant_scales(variant)
        if engine == "delta":
            result = replay_delta(
                self.base(),
                child,
                delay_scales=scales,
                max_cone_fraction=self.spec.max_cone_fraction,
            )
        else:
            result = evaluate_full(
                child,
                self.stimulus,
                scales,
                technology=self.context.technology,
                kernel=self.spec.kernel,
            )
        return _result_record(variant.site, result), result.method

    def _record_key(self, variant: Variant) -> Dict:
        """Store key of one variant record -- parent lineage x stimulus
        x corners x site.  Engine and kernel are deliberately absent:
        the record is part of the byte-identity surface."""
        return {
            "parent": netlist_fingerprint(self.netlist),
            "technology": technology_fingerprint(
                self.context.technology
            ),
            "characterize": [
                self.spec.characterize_patterns,
                self.spec.width,
                self.spec.kind,
            ],
            "years": [float(y) for y in self.spec.years],
            "stream": [self.spec.num_patterns, self.spec.seed],
            "delay_extra_ns": self.spec.delay_extra_ns,
            "site": variant.site,
        }

    def run(
        self,
        engine: str = "delta",
        pool=None,
        chunk_size: Optional[int] = None,
    ) -> Tuple[Dict, Dict]:
        """Evaluate every variant; returns ``(payload, stats)``.

        ``payload`` is the canonical engine-independent document (see
        :func:`sweep_payload`); ``stats`` carries engine, wall time and
        per-method counts for operator output only.
        """
        if engine not in ENGINES:
            raise ConfigError(
                "engine must be one of %s, got %r" % (ENGINES, engine)
            )
        start = time.perf_counter()
        records: List[Optional[Dict]] = [None] * len(self.variants)
        methods: Dict[str, int] = {}
        store_hits = 0
        pending: List[int] = []
        if self.store is not None:
            for index, variant in enumerate(self.variants):
                cached = self.store.load(
                    "delta", self._record_key(variant)
                )
                if cached is not None:
                    records[index] = cached
                    store_hits += 1
                else:
                    pending.append(index)
        else:
            pending = list(range(len(self.variants)))

        if pending and pool is not None:
            from ..distrib.pool import run_sweep_pooled

            for index, record in run_sweep_pooled(
                pool,
                self.spec.to_dict(),
                pending,
                engine=engine,
                chunk_size=chunk_size,
            ):
                records[index] = record
                methods["pooled"] = methods.get("pooled", 0) + 1
        else:
            for index in pending:
                record, method = self.evaluate(index, engine=engine)
                records[index] = record
                methods[method] = methods.get(method, 0) + 1
        if self.store is not None:
            for index in pending:
                self.store.save(
                    "delta",
                    self._record_key(self.variants[index]),
                    records[index],
                )
        stats = {
            "engine": engine,
            "num_variants": len(self.variants),
            "elapsed_s": time.perf_counter() - start,
            "methods": methods,
            "store_hits": store_hits,
        }
        return sweep_payload(self.spec, records), stats
