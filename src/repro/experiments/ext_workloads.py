"""Extension experiment ``ext_workloads``: application-shaped streams.

The paper evaluates on uniform random operands; its introduction
motivates the multiplier with FFT/DCT/filtering kernels.  This
experiment drives the architecture with the application-shaped streams
of :mod:`repro.workloads.dsp` and reports, per workload:

* the one-cycle *potential* (fraction of patterns the relaxed judging
  block would call one-cycle) and the ratio actually realized,
* the average latency, Razor error count and whether the aging
  indicator tripped,
* the improvement over the fixed-latency host.

Two findings: (a) DSP coefficient streams are zero-rich, so their
one-cycle potential is higher than uniform noise's; (b) their *temporal*
structure differs too -- a FIR stream interleaves near-full-scale center
taps with tiny tail taps, producing transition patterns that violate a
clock tuned on uniform noise, which trips the AHL.  The indicator thus
adapts to workload structure exactly as it adapts to aging -- an
emergent property of the paper's design worth documenting.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

import numpy as np

from ..analysis.tables import format_table
from ..workloads.dsp import dct_stream, fir_filter_stream, image_gradient_stream
from ..workloads.generators import uniform_operands
from .context import ExperimentContext, default_context

PAPER_PATTERNS = 10000


def _streams(width: int, n: int) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
    return {
        "uniform": uniform_operands(width, n, seed=5),
        "fir": fir_filter_stream(width, n, seed=5),
        "dct": dct_stream(width, n, seed=5),
        "image": image_gradient_stream(width, n, seed=5),
    }


@dataclasses.dataclass
class WorkloadRow:
    name: str
    one_cycle_potential: float
    one_cycle_ratio: float
    average_latency_ns: float
    error_count: int
    indicator_aged_at: int
    improvement_vs_fixed: float
    products_exact: bool


@dataclasses.dataclass
class WorkloadResult:
    width: int
    cycle_ns: float
    rows: Dict[str, WorkloadRow]

    def render(self) -> str:
        table = [
            [
                row.name,
                row.one_cycle_potential,
                row.one_cycle_ratio,
                row.average_latency_ns,
                row.error_count,
                row.indicator_aged_at,
                row.improvement_vs_fixed,
                row.products_exact,
            ]
            for row in self.rows.values()
        ]
        return format_table(
            ["workload", "potential", "realized", "latency ns", "errors",
             "ahl@op", "vs fixed", "exact"],
            table,
        )


def run(
    context: Optional[ExperimentContext] = None,
    width: int = 16,
    kind: str = "column",
    num_patterns: Optional[int] = None,
    cycle_ns: float = 0.9,
    skip: Optional[int] = None,
) -> WorkloadResult:
    ctx = context or default_context()
    n = num_patterns or ctx.patterns(PAPER_PATTERNS)
    skip = skip if skip is not None else width // 2 - 1
    arch = ctx.variable_design(width, kind, skip, cycle_ns)
    fixed = ctx.fixed_design(width, kind).latency_ns(0.0)

    from ..core.judging import JudgingBlock

    relaxed = JudgingBlock(width, skip)
    rows: Dict[str, WorkloadRow] = {}
    for name, (md, mr) in _streams(width, n).items():
        result = arch.run_patterns(md, mr, check_golden=True)
        report = result.report
        judged = md if kind == "column" else mr
        rows[name] = WorkloadRow(
            name=name,
            one_cycle_potential=relaxed.one_cycle_ratio(judged),
            one_cycle_ratio=report.one_cycle_ratio,
            average_latency_ns=report.average_latency_ns,
            error_count=report.error_count,
            indicator_aged_at=report.indicator_aged_at,
            improvement_vs_fixed=report.improvement_over(fixed),
            products_exact=bool(result.golden_ok),
        )
    return WorkloadResult(width=width, cycle_ns=cycle_ns, rows=rows)
