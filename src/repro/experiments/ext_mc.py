"""Extension: the ``mc`` experiment family (variation x aging MC).

Two registered views over the same priced population (shared through
the artifact store, so running both prices the dies once):

* ``mc_yield`` -- yield / latency surfaces over (year, clock period);
* ``mc_guardband`` -- per-(year, clock) smallest AHL Skip-n meeting the
  target timing yield.

Defaults are suite-friendly (200 dies x 3 years on the 8-bit column
design); ``python -m repro mc`` is the population-scale entry point.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

from ..montecarlo.analytics import MonteCarloResult
from ..montecarlo.spec import MonteCarloSpec
from .context import ExperimentContext


def _build_spec(
    num_dies, years, clock_fractions, seed, num_patterns, target_yield,
) -> MonteCarloSpec:
    overrides = {
        "num_dies": num_dies,
        "years": years,
        "clock_fractions": clock_fractions,
        "seed": seed,
        "num_patterns": num_patterns,
        "target_yield": target_yield,
    }
    return MonteCarloSpec.from_overrides(
        **{k: v for k, v in overrides.items() if v is not None}
    )


def run_yield(
    context: ExperimentContext,
    num_dies: Optional[int] = None,
    width: int = 8,
    kind: str = "column",
    skip: Optional[int] = None,
    years: Optional[Tuple[float, ...]] = None,
    clock_fractions: Optional[Tuple[float, ...]] = None,
    seed: Optional[int] = None,
    num_patterns: Optional[int] = None,
    target_yield: Optional[float] = None,
    jobs: int = 1,
) -> MonteCarloResult:
    """Yield / latency surfaces of a sampled die population."""
    # Local import: the runner pulls repro.experiments (context, store,
    # scheduler), which imports this module via the registry.
    from ..montecarlo.runner import run_montecarlo

    spec = _build_spec(
        num_dies, years, clock_fractions, seed, num_patterns,
        target_yield,
    )
    return run_montecarlo(
        spec, width=width, kind=kind, skip=skip, jobs=jobs,
        context=context,
    )


@dataclasses.dataclass
class GuardbandReport:
    """Guard-band view of a :class:`MonteCarloResult` (same payload,
    tuning-centric rendering)."""

    result: MonteCarloResult

    def summary(self) -> Dict:
        return self.result.summary()

    def to_dict(self) -> Dict:
        return self.result.to_dict()

    def render(self) -> str:
        res = self.result
        lines = [
            "AHL Skip-n guard-band tuning: %d dies, %dx%d %s, target"
            " yield %.3f"
            % (
                res.num_dies,
                res.width,
                res.width,
                res.design.get("kind", "?"),
                res.target_yield,
            ),
            "smallest feasible skip per (year, clock period); '-' ="
            " target unmet at every legal skip",
            "%8s | %s"
            % (
                "year",
                " ".join("%7.3f" % t for t in res.clock_ns),
            ),
        ]
        for j, year in enumerate(res.years):
            cells = [
                "%7d" % s if s >= 0 else "%7s" % "-"
                for s in res.guardband_skip[j]
            ]
            lines.append("%8.1f | %s" % (year, " ".join(cells)))
        return "\n".join(lines)


def run_guardband(
    context: ExperimentContext,
    num_dies: Optional[int] = None,
    width: int = 8,
    kind: str = "column",
    skip: Optional[int] = None,
    years: Optional[Tuple[float, ...]] = None,
    clock_fractions: Optional[Tuple[float, ...]] = None,
    seed: Optional[int] = None,
    num_patterns: Optional[int] = None,
    target_yield: Optional[float] = None,
    jobs: int = 1,
) -> GuardbandReport:
    """Per-population AHL Skip-n guard-band tuning."""
    return GuardbandReport(
        run_yield(
            context,
            num_dies=num_dies,
            width=width,
            kind=kind,
            skip=skip,
            years=years,
            clock_fractions=clock_fractions,
            seed=seed,
            num_patterns=num_patterns,
            target_yield=target_yield,
            jobs=jobs,
        )
    )
