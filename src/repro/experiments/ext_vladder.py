"""Extension experiment ``ext_vladder``: the VL-Adder lineage ([20]-[21])
upgraded with the paper's adaptive hold logic.

Compares, over a seven-year lifetime:

* the fixed-latency RCA (clock = aged critical path),
* the traditional variable-latency adder (single hold criterion, the
  Chen et al. design the introduction cites),
* the adaptive variable-latency adder (this paper's AHL idea applied to
  the adder's propagate-window hold logic).

Two operating points are evaluated, mirroring the multiplier figures:

* a *safe* clock (5/8 of the fresh critical path, the Fig. 4
  proportion) for the lifetime-latency claim -- the adaptive adder's
  latency stays nearly flat while the fixed adder tracks the ~13%
  critical-path drift;
* a *tight* clock (1/3 of the critical path, inside the error cliff)
  for the adaptation claim -- aged, the adaptive adder switches to the
  strict hold and ends with fewer Razor errors than the traditional
  single-criterion design.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence

import numpy as np

from ..analysis.series import Series
from ..analysis.tables import format_table
from ..core.adder_architecture import AgingAwareAdder
from ..timing.sta import StaticTiming
from .context import ExperimentContext, default_context

YEARS = (0.0, 2.0, 5.0, 7.0)
PAPER_PATTERNS = 10000


@dataclasses.dataclass
class VlAdderResult:
    width: int
    safe_cycle_ns: float
    tight_cycle_ns: float
    latency: Dict[str, Series]
    errors: Dict[str, Series]
    #: Tight-clock error counts per design over the years.
    tight_errors: Dict[str, Series]

    def growth(self, design: str) -> float:
        series = self.latency[design]
        return float(series.y[-1] / series.y[0] - 1.0)

    def adaptive_never_worse(self) -> bool:
        return bool(
            np.all(
                self.tight_errors["a-vl"].y <= self.tight_errors["t-vl"].y
            )
        )

    def render(self) -> str:
        rows = []
        for design in sorted(self.latency):
            series = self.latency[design]
            rows.append(
                [
                    design,
                    series.y[0],
                    series.y[-1],
                    self.growth(design),
                ]
            )
        table = format_table(
            ["design", "lat y0", "lat y-last", "growth"], rows
        )
        tight = format_table(
            ["design", "tight-clock errors y0", "y-last"],
            [
                [d, int(self.tight_errors[d].y[0]),
                 int(self.tight_errors[d].y[-1])]
                for d in ("t-vl", "a-vl")
            ],
        )
        return table + "\n\n" + tight


def run(
    context: Optional[ExperimentContext] = None,
    width: int = 16,
    years: Sequence[float] = YEARS,
    num_patterns: Optional[int] = None,
    cycle_ns: Optional[float] = None,
) -> VlAdderResult:
    ctx = context or default_context()
    n = num_patterns or ctx.patterns(PAPER_PATTERNS)
    adaptive = AgingAwareAdder.build(
        width,
        cycle_ns=cycle_ns,
        technology=ctx.technology,
        config=ctx.config,
        characterize_patterns=ctx.characterize_patterns,
    )
    traditional = dataclasses.replace(adaptive, adaptive=False, name="")
    tight_cycle = adaptive.critical_path_ns() / 3.0

    rng = np.random.default_rng(41)
    high = 1 << width
    a = rng.integers(0, high, n, dtype=np.uint64)
    b = rng.integers(0, high, n, dtype=np.uint64)

    latency: Dict[str, list] = {"fixed": [], "t-vl": [], "a-vl": []}
    errors: Dict[str, list] = {"fixed": [], "t-vl": [], "a-vl": []}
    tight: Dict[str, list] = {"t-vl": [], "a-vl": []}
    for year in years:
        scale = (
            None if year == 0 else adaptive.factory.delay_scale(year)
        )
        latency["fixed"].append(
            StaticTiming(
                adaptive.netlist, ctx.technology, scale
            ).critical_delay
        )
        errors["fixed"].append(0)
        for name, design in (("t-vl", traditional), ("a-vl", adaptive)):
            report = design.run_patterns(a, b, years=year).report
            latency[name].append(report.average_latency_ns)
            errors[name].append(report.error_count)
            tight_report = design.with_cycle(tight_cycle).run_patterns(
                a, b, years=year
            ).report
            tight[name].append(tight_report.error_count)

    return VlAdderResult(
        width=width,
        safe_cycle_ns=adaptive.cycle_ns,
        tight_cycle_ns=tight_cycle,
        latency={
            k: Series.build(k, list(years), v) for k, v in latency.items()
        },
        errors={
            k: Series.build(k, list(years), v) for k, v in errors.items()
        },
        tight_errors={
            k: Series.build(k, list(years), v) for k, v in tight.items()
        },
    )
