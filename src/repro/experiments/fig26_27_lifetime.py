"""Figs. 26 and 27: normalized latency, power and EDP over seven years.

Fig. 26 (16x16): the A-VLCB/A-VLRB run at T = 1.2 ns with Skip-7 -- a
relaxed point where (fresh) no timing violations occur.  Fig. 27
(32x32): T = 2.3 ns with Skip-15.

Paper readings this reproduces:

* fixed designs (AM/FLCB/FLRB) slow down ~15% over 7 years, the
  adaptive variable-latency designs only a few percent;
* the AM crosses above the adaptive designs' latency after ~2 years;
* power *decreases* year over year (leakage falls as Vth rises) and the
  AM burns the most; the fixed bypassing designs burn less than their
  variable-latency versions (Razor + AHL overhead);
* the adaptive designs end with the lowest average EDP.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence, Tuple

from ..analysis.series import Series
from ..analysis.tables import format_table
from ..timing.power import power_report
from .context import ExperimentContext, default_context

YEARS = (0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0)
PAPER_PATTERNS = 10000
#: Operating points.  The paper clocks the 16x16 designs at 1.2 ns
#: against its 1.88 ns FLCB critical path (ratio 0.638) and the 32x32
#: designs at 2.3 ns against 3.88 ns (ratio 0.593); our calibrated
#: critical paths are slightly shorter, so the same *relative* points
#: land at 1.17 ns and 2.26 ns.
SETTINGS = {
    16: {"cycle_ns": 1.17, "skip": 7},
    32: {"cycle_ns": 2.26, "skip": 15},
}
DESIGNS = ("am", "flcb", "flrb", "a-vlcb", "a-vlrb")


@dataclasses.dataclass
class LifetimeResult:
    width: int
    years: Sequence[float]
    latency_ns: Dict[str, Series]
    power_w: Dict[str, Series]
    edp: Dict[str, Series]

    def normalized(self, table: Dict[str, Series], baseline: str = "am"):
        base = table[baseline].y[0]
        return {
            name: Series.build(series.name, series.x, series.y / base)
            for name, series in table.items()
        }

    def latency_growth(self, design: str) -> float:
        series = self.latency_ns[design]
        return float(series.y[-1] / series.y[0] - 1.0)

    def mean_edp_reduction_vs_am(self, design: str) -> float:
        """Average EDP reduction vs the AM across the lifetime."""
        am = self.edp["am"].y
        dev = self.edp[design].y
        return float((1.0 - dev / am).mean())

    def render(self) -> str:
        rows = []
        for design in DESIGNS:
            rows.append(
                [
                    design,
                    self.latency_ns[design].y[0],
                    self.latency_ns[design].y[-1],
                    self.latency_growth(design),
                    self.power_w[design].y[0] * 1e3,
                    self.power_w[design].y[-1] * 1e3,
                    self.mean_edp_reduction_vs_am(design),
                ]
            )
        return format_table(
            [
                "design",
                "lat y0",
                "lat y7",
                "growth",
                "mW y0",
                "mW y7",
                "EDP red. vs AM",
            ],
            rows,
        )


def _design_kind(design: str) -> str:
    if design == "am":
        return "am"
    return "column" if "cb" in design else "row"


def run(
    context: Optional[ExperimentContext] = None,
    width: int = 16,
    years: Sequence[float] = YEARS,
    num_patterns: Optional[int] = None,
    cycle_ns: Optional[float] = None,
    skip: Optional[int] = None,
) -> LifetimeResult:
    ctx = context or default_context()
    n = num_patterns or ctx.patterns(PAPER_PATTERNS)
    cycle_ns = cycle_ns or SETTINGS[width]["cycle_ns"]
    skip = skip or SETTINGS[width]["skip"]
    md, mr = ctx.stream(width, n)

    latency: Dict[str, list] = {d: [] for d in DESIGNS}
    power: Dict[str, list] = {d: [] for d in DESIGNS}
    edp: Dict[str, list] = {d: [] for d in DESIGNS}

    for design in DESIGNS:
        kind = _design_kind(design)
        netlist = ctx.netlist(width, kind)
        factory = ctx.factory(width, kind)
        # Switching activity is delay-independent: one fresh run serves
        # every year (leakage picks up the Vth drift separately).
        stream = ctx.stream_result(width, kind, 0.0, n)
        adaptive = design.startswith("a-")
        if adaptive:
            # Prefetch every aging timestep in one batched arrival
            # replay (shared value plane, vectorized corner axis).
            aged_streams = dict(
                zip(years, ctx.stream_results(width, kind, years, n))
            )
        else:
            # Prefetch every year's critical path in one vectorized
            # STA sweep (fills the design's per-year latency cache).
            ctx.fixed_design(width, kind).latencies_ns(years)
        for year in years:
            dvth = factory.mean_delta_vth(year)
            if adaptive:
                arch = ctx.variable_design(
                    width, kind, skip, cycle_ns, adaptive=True
                )
                aged_stream = (
                    stream if year == 0 else aged_streams[year]
                )
                report = arch.run_patterns(
                    md, mr, years=year, stream=aged_stream
                ).report
                lat = report.average_latency_ns
                pw = power_report(
                    netlist,
                    stream,
                    lat,
                    ctx.technology,
                    mean_delta_vth=dvth,
                    input_ff_bits=2 * width,
                    razor_bits=2 * width,
                    cycles_per_op=report.average_cycles_per_op,
                    name=design,
                )
            else:
                lat = ctx.fixed_design(width, kind).latency_ns(year)
                pw = power_report(
                    netlist,
                    stream,
                    lat,
                    ctx.technology,
                    mean_delta_vth=dvth,
                    input_ff_bits=2 * width,
                    output_ff_bits=2 * width,
                    cycles_per_op=1.0,
                    name=design,
                )
            latency[design].append(lat)
            power[design].append(pw.total_watts)
            edp[design].append(pw.edp_joule_ns)

    def pack(table):
        return {
            d: Series.build(d, list(years), table[d]) for d in DESIGNS
        }

    return LifetimeResult(
        width=width,
        years=years,
        latency_ns=pack(latency),
        power_w=pack(power),
        edp=pack(edp),
    )


def run_fig26(context=None, **kw):
    return run(context, width=16, **kw)


def run_fig27(context=None, **kw):
    return run(context, width=32, **kw)
