"""Figs. 9 and 10: distribution of the number of 0s and 1s in random
multiplicators (Fig. 9) and multiplicands (Fig. 10).

Paper reading: with uniformly random inputs the zero/one counts follow
the (binomial, near-normal) bell curve, so judging on zeros or on ones
is equivalent.  The result also reports the exact binomial expectation
for comparison.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Optional

import numpy as np

from ..analysis.tables import format_table
from ..arith.reference import count_ones, count_zeros
from .context import ExperimentContext, default_context

PAPER_PATTERNS = 65536


def binomial_pmf(width: int) -> np.ndarray:
    """Exact Binomial(width, 1/2) pmf over 0..width."""
    return np.array(
        [math.comb(width, k) / 2.0**width for k in range(width + 1)]
    )


@dataclasses.dataclass
class ZeroDistributionResult:
    width: int
    zero_counts: Dict[str, np.ndarray]  # operand -> histogram over 0..width
    one_counts: Dict[str, np.ndarray]
    num_patterns: int

    def empirical_pmf(self, operand: str, which: str = "zeros") -> np.ndarray:
        table = (
            self.zero_counts if which == "zeros" else self.one_counts
        )[operand]
        return table / table.sum()

    def max_pmf_error(self, operand: str = "md") -> float:
        """Sup-distance between the empirical and binomial pmfs."""
        return float(
            np.abs(
                self.empirical_pmf(operand) - binomial_pmf(self.width)
            ).max()
        )

    def render(self) -> str:
        pmf = binomial_pmf(self.width)
        rows = []
        for k in range(self.width + 1):
            rows.append(
                [
                    k,
                    int(self.zero_counts["mr"][k]),
                    int(self.zero_counts["md"][k]),
                    round(pmf[k] * self.num_patterns, 1),
                ]
            )
        return format_table(
            ["#zeros", "mr count (Fig9)", "md count (Fig10)", "binomial"],
            rows,
        )


def run(
    context: Optional[ExperimentContext] = None,
    num_patterns: Optional[int] = None,
    width: int = 16,
) -> ZeroDistributionResult:
    ctx = context or default_context()
    n = num_patterns or ctx.patterns(PAPER_PATTERNS)
    md, mr = ctx.stream(width, n)
    zero_counts = {}
    one_counts = {}
    for name, operand in (("md", md), ("mr", mr)):
        zeros = count_zeros(operand, width)
        ones = count_ones(operand, width)
        zero_counts[name] = np.bincount(zeros, minlength=width + 1)
        one_counts[name] = np.bincount(ones, minlength=width + 1)
    return ZeroDistributionResult(
        width=width,
        zero_counts=zero_counts,
        one_counts=one_counts,
        num_patterns=n,
    )
