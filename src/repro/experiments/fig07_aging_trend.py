"""Fig. 7: seven-year NBTI/PBTI aging trend of the 16x16 column- and
row-bypassing multipliers.

Paper reading: the BTI effect increases the critical-path delay by about
13% over seven years at 125 degC.  (The 13% point is a calibration
target -- see DESIGN.md -- but the *shape* of the curve, the t^(1/6)
saturation, and the row-vs-column agreement are genuine predictions.)
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence

from ..analysis.series import Series
from ..analysis.tables import format_table
from ..timing.sta import critical_delays
from .context import ExperimentContext, default_context

YEARS = (0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0)
PAPER_DRIFT = 0.13


@dataclasses.dataclass
class Fig07Result:
    series: Dict[str, Series]
    drift_at_7y: Dict[str, float]

    def render(self) -> str:
        rows = []
        for kind, series in self.series.items():
            rows.append(
                [kind]
                + [round(v, 4) for v in series.y]
                + [self.drift_at_7y[kind]]
            )
        headers = ["multiplier"] + ["y%d ns" % y for y in range(8)] + ["drift"]
        return format_table(headers, rows)


def run(
    context: Optional[ExperimentContext] = None,
    years: Sequence[float] = YEARS,
    width: int = 16,
) -> Fig07Result:
    ctx = context or default_context()
    series = {}
    drift = {}
    for kind in ("column", "row"):
        factory = ctx.factory(width, kind)
        # One vectorized STA sweep over all aging corners (bit-identical
        # to a per-year StaticTiming loop; see timing.sta.critical_delays).
        delays = critical_delays(
            ctx.netlist(width, kind),
            ctx.technology,
            factory.lifetime_delay_scales(years),
        ).tolist()
        series[kind] = Series.build("%dx%d %s" % (width, width, kind),
                                    list(years), delays)
        drift[kind] = delays[-1] / delays[0] - 1.0
    return Fig07Result(series=series, drift_at_7y=drift)
