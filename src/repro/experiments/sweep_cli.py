"""``python -m repro sweep`` -- incremental variant sweeps.

Evaluates a deterministic family of netlist mutants (gate retypes,
constant ties, per-cell delay nudges) of one multiplier design, either
through the cone-delta fast path (``--engine delta``, the default) or
from scratch per variant (``--engine full``).  Both engines write the
same canonical, engine-independent JSON document, so::

    python -m repro sweep --variants 20 --out a.json --engine delta
    python -m repro sweep --variants 20 --out b.json --engine full
    cmp a.json b.json

is the end-to-end byte-identity check CI runs (the ``delta-smoke``
job).  Method counts and wall time go to stdout only.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..errors import ReproError
from .store import ArtifactStore
from .sweep import ENGINES, SweepSpec, VariantSweep, render_payload


def _kernel_arg(text: str) -> str:
    from ..timing.engine import normalize_kernel

    try:
        return normalize_kernel(text)
    except ReproError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _years_arg(text: str):
    try:
        return tuple(float(part) for part in text.split(",") if part)
    except ValueError:
        raise argparse.ArgumentTypeError(
            "years must be a comma-separated float list, got %r" % text
        ) from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro sweep",
        description="Incremental (cone-delta) netlist variant sweeps.",
    )
    parser.add_argument(
        "--engine",
        choices=ENGINES,
        default="delta",
        help="delta: patch-replay against one parent base (default);"
        " full: from-scratch compile+run per variant (the oracle)",
    )
    parser.add_argument("--width", type=int, default=16)
    parser.add_argument(
        "--kind",
        default="column",
        help="multiplier kind (am, column, row)",
    )
    parser.add_argument(
        "--variants", type=int, default=100, metavar="N",
        help="number of mutants to evaluate (default 100)",
    )
    parser.add_argument(
        "--years",
        type=_years_arg,
        default=(0.0, 10.0),
        help="comma-separated aging corners, e.g. 0,5,10 (default 0,10)",
    )
    parser.add_argument("--patterns", type=int, default=2000)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--variant-seed", type=int, default=0)
    parser.add_argument("--characterize-patterns", type=int, default=2000)
    parser.add_argument(
        "--kernel",
        type=_kernel_arg,
        default="soa",
        help="execution kernel for full/base runs (soa, percell, numba)",
    )
    parser.add_argument(
        "--delay-extra-ns", type=float, default=0.4,
        help="additive delay of the nudge family (default 0.4)",
    )
    parser.add_argument(
        "--max-cone-fraction", type=float, default=None,
        help="fall back to a full evaluation when the arrival cone"
        " exceeds this fraction of all cells (default: never)",
    )
    parser.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the canonical sweep JSON here ('-' for stdout)",
    )
    parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="ArtifactStore directory (caches per-variant records"
        " under the 'delta' kind)",
    )
    parser.add_argument(
        "--pool", default=None, metavar="SPEC",
        help="worker pool: local:N, tcp:host:port,... or manifest:DIR",
    )
    parser.add_argument(
        "--chunk-size", type=int, default=None,
        help="variants per pool batch (default: auto)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    spec = SweepSpec(
        width=args.width,
        kind=args.kind,
        years=args.years,
        num_patterns=args.patterns,
        seed=args.seed,
        characterize_patterns=args.characterize_patterns,
        kernel=args.kernel,
        num_variants=args.variants,
        variant_seed=args.variant_seed,
        delay_extra_ns=args.delay_extra_ns,
        max_cone_fraction=args.max_cone_fraction,
    )
    store = ArtifactStore(args.store) if args.store else None
    pool = None
    if args.pool is not None:
        from ..distrib.pool import parse_pool_spec

        pool = parse_pool_spec(args.pool)
    try:
        sweep = VariantSweep(spec, store=store)
        payload, stats = sweep.run(
            engine=args.engine, pool=pool, chunk_size=args.chunk_size
        )
    except ReproError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 1
    finally:
        if pool is not None:
            pool.close()
    text = render_payload(payload)
    if args.out == "-":
        sys.stdout.write(text)
    elif args.out:
        with open(args.out, "w") as fp:
            fp.write(text)
    methods = ", ".join(
        "%s=%d" % (name, count)
        for name, count in sorted(stats["methods"].items())
    ) or "none"
    print(
        "sweep: %d variants via %s in %.2fs (%.1f ms/variant;"
        " methods: %s; store hits: %d)"
        % (
            stats["num_variants"],
            stats["engine"],
            stats["elapsed_s"],
            1e3 * stats["elapsed_s"] / max(1, stats["num_variants"]),
            methods,
            stats["store_hits"],
        )
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
