"""Figs. 19-22: Razor error counts, traditional vs adaptive variable
latency on aged silicon.

Fig. 19: 16x16 column.  Fig. 20: 32x32 column.
Fig. 21: 16x16 row.     Fig. 22: 32x32 row.

Paper reading: the adaptive design's error count is consistently below
the traditional design's, because once the aging indicator trips, the
stricter Skip-(n+1) block stops classifying marginal patterns as
one-cycle.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence

from ..analysis.series import Series
from ..analysis.tables import format_table
from .context import ExperimentContext, default_context
from .fig13_14_latency_sweep import CYCLE_GRIDS, PAPER_PATTERNS


@dataclasses.dataclass
class AdaptiveErrorResult:
    width: int
    kind: str
    years: float
    traditional: Series
    adaptive: Series

    def adaptive_never_worse(self, slack: int = 0) -> bool:
        """Adaptive error count <= traditional at every cycle period."""
        return all(
            a <= t + slack
            for a, t in zip(self.adaptive.y, self.traditional.y)
        )

    def render(self) -> str:
        rows = [
            [cycle, int(t), int(a)]
            for cycle, t, a in zip(
                self.traditional.x, self.traditional.y, self.adaptive.y
            )
        ]
        return format_table(["cycle ns", "T-VL errors", "A-VL errors"], rows)


def run(
    context: Optional[ExperimentContext] = None,
    width: int = 16,
    kind: str = "column",
    years: float = 7.0,
    skip: Optional[int] = None,
    cycles: Optional[Sequence[float]] = None,
    num_patterns: Optional[int] = None,
) -> AdaptiveErrorResult:
    ctx = context or default_context()
    n = num_patterns or ctx.patterns(PAPER_PATTERNS)
    if skip is None:
        skip = width // 2 - 1
    cycles = tuple(cycles or CYCLE_GRIDS[width])
    md, mr = ctx.stream(width, n)
    stream = ctx.stream_result(width, kind, years, n)

    counts = {}
    for adaptive in (False, True):
        series = []
        for cycle in cycles:
            design = ctx.variable_design(
                width, kind, skip, cycle, adaptive=adaptive
            )
            report = design.run_patterns(md, mr, years=years, stream=stream)
            series.append(report.report.error_count)
        counts[adaptive] = Series.build(
            "%s skip%d" % ("A-VL" if adaptive else "T-VL", skip),
            cycles,
            series,
        )
    return AdaptiveErrorResult(
        width=width,
        kind=kind,
        years=years,
        traditional=counts[False],
        adaptive=counts[True],
    )


def run_fig19(context=None, **kw):
    return run(context, width=16, kind="column", **kw)


def run_fig20(context=None, **kw):
    return run(context, width=32, kind="column", **kw)


def run_fig21(context=None, **kw):
    return run(context, width=16, kind="row", **kw)


def run_fig22(context=None, **kw):
    return run(context, width=32, kind="row", **kw)
